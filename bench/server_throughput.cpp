// Load generator for the net/ embedding service: drives hundreds of
// concurrent connections of pipelined kSolve traffic against a net::Server
// and reports saturation throughput, tail latency (p50/p99/p999) and
// error/backpressure counts, next to the in-process query_batch baseline on
// the *same* request stream and worker count — the wire tax made visible.
//
// Two workload sections, mirroring service_throughput's cache regimes:
//   hot   repeat-heavy pool draws, Zipf-skewed (--zipf, default 1.1): most
//         requests hit the result cache (the cached-hot regime);
//   cold  every request a fresh scenario: full solves (uniform-cold).
//
// By default the bench spawns its own in-process server; --connect HOST:PORT
// drives an external one (the CI smoke job runs examples/embed_server and
// points the bench at it) and skips the in-process baseline.
//
// A reply is counted by wire status; transport failures and undecodable
// replies count as protocol_errors (the CI smoke asserts this stays 0).
// Latency samples are per-request burst round-trips: with --pipeline P > 1
// a sample includes the queueing delay of its burst, which is the honest
// client-side view of pipelined load.
//
// Knobs (env):   DBR_SEED, DBR_THREADS
// Knobs (argv):  --connections N   concurrent client connections (default 64)
//                --requests N      requests per section          (default 1200)
//                --pipeline N      frames in flight per connection (default 4)
//                --unique N        hot scenario pool size        (default 24)
//                --zipf S          Zipf skew of the hot section  (default 1.1)
//                --instances N     multi-instance placement mode: draw each
//                                  request's (base, n) Zipf-skewed from a
//                                  pool of N FFC instances (workload.hpp's
//                                  make_instance_stream); 0 = classic mixed
//                                  workload (default 0)
//                --connect H:P     drive an external server; skips baseline
//                --no-baseline     skip the in-process query_batch baseline
//                --workers N       server worker threads (default DBR_THREADS)
//                --max-pending N   server admission bound (default 1024)
//                --timeout-ms F    server per-request deadline (default off)
//                --hot-only / --cold-only
//                --out PATH        JSON path (default BENCH_server.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/engine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload.hpp"

namespace {

using dbr::Rng;
using dbr::bench::make_instance_stream;
using dbr::bench::make_stream;
using dbr::net::Client;
using dbr::net::Server;
using dbr::net::ServerOptions;
using dbr::net::TransportError;
using dbr::net::WireStatus;
using dbr::service::BatchStats;
using dbr::service::EmbedEngine;
using dbr::service::EmbedRequest;
using dbr::service::EmbedStatus;
using dbr::service::EngineOptions;

using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct LoadResult {
  std::vector<double> latencies;  ///< per-request burst RTT, micros
  std::uint64_t ok = 0;
  std::uint64_t no_embedding = 0;  ///< kOk wire status, kNoEmbedding answer
  std::uint64_t overloaded = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t other_status = 0;
  std::uint64_t protocol_errors = 0;
  double wall_micros = 0.0;

  std::uint64_t replies() const {
    return ok + no_embedding + overloaded + timeouts + shutting_down +
           other_status;
  }
  double qps() const {
    return wall_micros > 0.0
               ? static_cast<double>(replies()) / (wall_micros / 1e6)
               : 0.0;
  }
};

/// Fans `stream` out over `connections` client threads, each pipelining
/// `pipeline` frames per burst. Every request gets exactly one reply (or
/// one protocol error).
LoadResult run_load(const std::string& host, std::uint16_t port,
                    const std::vector<EmbedRequest>& stream,
                    std::size_t connections, std::size_t pipeline) {
  connections = std::max<std::size_t>(1, std::min(connections, stream.size()));
  pipeline = std::max<std::size_t>(1, pipeline);

  struct PerThread {
    std::vector<double> latencies;
    LoadResult counts;  ///< latencies unused; only the counters
  };
  std::vector<PerThread> per_thread(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const Clock::time_point start = Clock::now();
  for (std::size_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      PerThread& mine = per_thread[t];
      try {
        Client client;
        client.connect(host, port, /*timeout_ms=*/60000.0);
        // Static round-robin slice: thread t serves t, t+C, t+2C, ...
        std::vector<EmbedRequest> burst;
        for (std::size_t i = t; i < stream.size();) {
          burst.clear();
          for (std::size_t k = 0; k < pipeline && i < stream.size();
               ++k, i += connections)
            burst.push_back(stream[i]);
          const Clock::time_point t0 = Clock::now();
          const std::vector<Client::SolveReply> replies =
              client.solve_pipeline(burst, /*want_ring=*/false);
          const double rtt = micros_between(t0, Clock::now());
          for (const Client::SolveReply& r : replies) {
            mine.latencies.push_back(rtt);
            switch (r.status) {
              case WireStatus::kOk:
                if (r.embed.status == EmbedStatus::kOk)
                  ++mine.counts.ok;
                else
                  ++mine.counts.no_embedding;
                break;
              case WireStatus::kOverloaded: ++mine.counts.overloaded; break;
              case WireStatus::kTimeout: ++mine.counts.timeouts; break;
              case WireStatus::kShuttingDown: ++mine.counts.shutting_down; break;
              default: ++mine.counts.other_status; break;
            }
          }
        }
      } catch (const TransportError&) {
        ++mine.counts.protocol_errors;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  LoadResult out;
  out.wall_micros = micros_between(start, Clock::now());
  for (PerThread& p : per_thread) {
    out.latencies.insert(out.latencies.end(), p.latencies.begin(),
                         p.latencies.end());
    out.ok += p.counts.ok;
    out.no_embedding += p.counts.no_embedding;
    out.overloaded += p.counts.overloaded;
    out.timeouts += p.counts.timeouts;
    out.shutting_down += p.counts.shutting_down;
    out.other_status += p.counts.other_status;
    out.protocol_errors += p.counts.protocol_errors;
  }
  std::sort(out.latencies.begin(), out.latencies.end());
  return out;
}

/// One in-flight correctness probe: a want_ring solve whose answer must be
/// bit-identical to the in-process engine's answer for the same request.
bool ring_spot_check(const std::string& host, std::uint16_t port,
                     const EmbedRequest& request, EmbedEngine* baseline) {
  try {
    Client client;
    client.connect(host, port);
    const Client::SolveReply reply = client.solve(request, /*want_ring=*/true);
    if (reply.status != WireStatus::kOk) return false;
    if (baseline == nullptr) return reply.embed.has_ring;
    const auto local = baseline->query(request);
    return reply.embed.has_ring &&
           reply.embed.ring == local.result->ring.nodes &&
           reply.embed.ring_length == local.result->ring_length;
  } catch (const TransportError&) {
    return false;
  }
}

void emit_load_json(dbr::bench::JsonWriter& json, LoadResult& load) {
  json.begin_object()
      .field("replies", load.replies())
      .field("wall_micros", load.wall_micros)
      .field("throughput_qps", load.qps())
      .field("protocol_errors", load.protocol_errors);
  json.key("statuses")
      .begin_object()
      .field("ok", load.ok)
      .field("no_embedding", load.no_embedding)
      .field("overloaded", load.overloaded)
      .field("timeout", load.timeouts)
      .field("shutting_down", load.shutting_down)
      .field("other", load.other_status)
      .end_object();
  json.key("latency_micros")
      .begin_object()
      .field("p50", percentile(load.latencies, 50))
      .field("p99", percentile(load.latencies, 99))
      .field("p999", percentile(load.latencies, 99.9))
      .end_object();
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t connections = 64;
  std::size_t requests = 1200;
  std::size_t pipeline = 4;
  std::size_t unique = 24;
  double zipf_s = 1.1;
  std::size_t instances = 0;
  std::string connect_to;
  bool run_baseline = true;
  bool run_hot = true;
  bool run_cold = true;
  std::size_t workers = 0;
  std::size_t max_pending = 1024;
  double timeout_ms = 0.0;
  std::string out_path = "BENCH_server.json";

  constexpr const char* kName = "server_throughput";
  constexpr const char* kSummary =
      "multi-connection load against the net/ embed server vs the in-process "
      "baseline; writes BENCH_server.json";
  const std::initializer_list<dbr::bench::UsageFlag> kFlags = {
      {"--connections N", "concurrent client connections (default 64)"},
      {"--requests N", "requests per section (default 1200)"},
      {"--pipeline N", "frames in flight per connection (default 4)"},
      {"--unique N", "hot scenario pool size (default 24)"},
      {"--zipf S", "Zipf skew of the hot section (default 1.1)"},
      {"--instances N", "multi-instance mode: Zipf over N (base, n) instances"},
      {"--connect H:P", "drive an external server; skips the baseline"},
      {"--no-baseline", "skip the in-process query_batch baseline"},
      {"--workers N", "server worker threads (default DBR_THREADS)"},
      {"--max-pending N", "server admission bound (default 1024)"},
      {"--timeout-ms F", "server per-request deadline (default off)"},
      {"--hot-only", "run only the cached-hot section"},
      {"--cold-only", "run only the uniform-cold section"},
      {"--out PATH", "JSON artifact path (default BENCH_server.json)"},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--connections") connections = std::strtoull(next(), nullptr, 10);
    else if (arg == "--requests") requests = std::strtoull(next(), nullptr, 10);
    else if (arg == "--pipeline") pipeline = std::strtoull(next(), nullptr, 10);
    else if (arg == "--unique") unique = std::strtoull(next(), nullptr, 10);
    else if (arg == "--zipf") zipf_s = std::strtod(next(), nullptr);
    else if (arg == "--instances") instances = std::strtoull(next(), nullptr, 10);
    else if (arg == "--connect") connect_to = next();
    else if (arg == "--no-baseline") run_baseline = false;
    else if (arg == "--workers") workers = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-pending") max_pending = std::strtoull(next(), nullptr, 10);
    else if (arg == "--timeout-ms") timeout_ms = std::strtod(next(), nullptr);
    else if (arg == "--hot-only") run_cold = false;
    else if (arg == "--cold-only") run_hot = false;
    else if (arg == "--out") out_path = next();
    else return dbr::bench::usage_exit(argv[i], kName, kSummary, kFlags);
  }
  if (workers == 0) workers = dbr::worker_count();

  // Resolve the target server: external (--connect) or in-process.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::unique_ptr<EmbedEngine> server_engine;
  std::unique_ptr<Server> server;
  if (!connect_to.empty()) {
    const std::size_t colon = connect_to.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--connect expects HOST:PORT\n";
      return 64;
    }
    host = connect_to.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(connect_to.c_str() + colon + 1, nullptr, 10));
    run_baseline = false;  // no handle on the remote engine
  } else {
    server_engine = std::make_unique<EmbedEngine>();
    ServerOptions sopts;
    sopts.workers = workers;
    sopts.max_pending = max_pending;
    sopts.request_timeout_ms = timeout_ms;
    server = std::make_unique<Server>(*server_engine, sopts);
    server->start();
    port = server->port();
  }

  dbr::bench::heading("server throughput: wire service vs in-process engine");
  std::cout << "target=" << host << ":" << port
            << (server ? " (in-process)" : " (external)")
            << " connections=" << connections << " pipeline=" << pipeline
            << " requests/section=" << requests << " workers=" << workers
            << " zipf=" << zipf_s << "\n";

  struct Section {
    std::string name;
    std::vector<EmbedRequest> stream;
    std::optional<double> baseline_qps;
    LoadResult load;
    bool ring_ok = false;
  };
  std::vector<Section> sections;
  Rng rng(dbr::bench::seed());
  if (run_hot) {
    Section s;
    s.name = "hot";
    s.stream = instances > 0
                   ? make_instance_stream(rng, requests, instances, zipf_s,
                                          /*repeat_fraction=*/0.9,
                                          /*hot_faults=*/unique,
                                          /*fault_zipf_s=*/1.1)
                   : make_stream(rng, requests, unique,
                                 /*repeat_fraction=*/0.9, zipf_s);
    sections.push_back(std::move(s));
  }
  if (run_cold) {
    Section s;
    s.name = "cold";
    s.stream = instances > 0
                   ? make_instance_stream(rng, requests, instances, zipf_s,
                                          /*repeat_fraction=*/0.0,
                                          /*hot_faults=*/unique,
                                          /*fault_zipf_s=*/0.0)
                   : make_stream(rng, requests, unique, /*repeat_fraction=*/0.0);
    sections.push_back(std::move(s));
  }

  dbr::TextTable table({"section", "replies", "qps", "baseline_qps", "ratio",
                        "p50_us", "p99_us", "p999_us", "proto_err"});
  for (Section& s : sections) {
    if (run_baseline) {
      // Equal footing: a fresh engine and the same stream, solved by the
      // in-process batch path on the same number of workers.
      EmbedEngine baseline;
      BatchStats stats;
      baseline.query_batch(s.stream, &stats);
      s.baseline_qps = stats.throughput_qps();
    }
    s.load = run_load(host, port, s.stream, connections, pipeline);
    s.ring_ok = ring_spot_check(host, port, s.stream.front(),
                                server_engine.get());
    const double ratio =
        s.baseline_qps && *s.baseline_qps > 0 ? s.load.qps() / *s.baseline_qps
                                              : 0.0;
    table.new_row()
        .add(s.name)
        .add(s.load.replies())
        .add(s.load.qps(), 1)
        .add(s.baseline_qps.value_or(0.0), 1)
        .add(ratio, 3)
        .add(percentile(s.load.latencies, 50), 1)
        .add(percentile(s.load.latencies, 99), 1)
        .add(percentile(s.load.latencies, 99.9), 1)
        .add(s.load.protocol_errors);
  }
  dbr::bench::emit(table);

  std::uint64_t total_protocol_errors = 0;
  bool rings_ok = true;
  for (const Section& s : sections) {
    total_protocol_errors += s.load.protocol_errors;
    rings_ok = rings_ok && s.ring_ok;
  }

  dbr::bench::JsonWriter json;
  json.begin_object()
      .field("bench", "server_throughput")
      .field("seed", dbr::bench::seed())
      .field("workers", static_cast<std::uint64_t>(workers));
  json.key("config")
      .begin_object()
      .field("connections", static_cast<std::uint64_t>(connections))
      .field("requests_per_section", static_cast<std::uint64_t>(requests))
      .field("pipeline", static_cast<std::uint64_t>(pipeline))
      .field("unique_scenarios", static_cast<std::uint64_t>(unique))
      .field("zipf_s", zipf_s)
      .field("instances", static_cast<std::uint64_t>(instances))
      .field("max_pending", static_cast<std::uint64_t>(max_pending))
      .field("request_timeout_ms", timeout_ms)
      .field("external_server", server == nullptr)
      .end_object();
  json.key("sections").begin_object();
  for (Section& s : sections) {
    json.key(s.name).begin_object();
    if (s.baseline_qps)
      json.key("baseline_inprocess")
          .begin_object()
          .field("throughput_qps", *s.baseline_qps)
          .end_object();
    json.key("server");
    emit_load_json(json, s.load);
    if (s.baseline_qps && *s.baseline_qps > 0)
      json.field("saturation_ratio", s.load.qps() / *s.baseline_qps);
    json.field("ring_spot_check", s.ring_ok);
    json.end_object();
  }
  json.end_object();
  json.field("protocol_errors_total", total_protocol_errors);
  json.end_object();

  if (server) {
    server->drain();
    server->wait();
  }

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  if (total_protocol_errors > 0) {
    std::cerr << "protocol errors: " << total_protocol_errors << "\n";
    return 1;
  }
  if (!rings_ok) {
    std::cerr << "ring spot check failed\n";
    return 1;
  }
  return 0;
}
