// Ablation studies for the design choices called out in DESIGN.md:
//  (a) Strategy 2 vs Strategy 3 on primes satisfying both Lemma 3.5
//      conditions - Strategy 2's extra H_0 buys one more disjoint cycle;
//  (b) root invariance of the FFC: the cycle length is the component size
//      regardless of which necklace representative roots the broadcast;
//  (c) graceful degradation of the edge-fault constructions beyond the
//      proven budget MAX{psi(d)-1, phi(d)}.

#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "core/disjoint_hc.hpp"
#include "core/edge_fault.hpp"
#include "core/ffc.hpp"
#include "debruijn/cycle.hpp"
#include "nt/numtheory.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

// Builds the HC selection of a strategy with multiplier mu (f(x) = mu*x,
// f(0) = lambda) on GF(p), picking even powers of lambda, optionally + H_0.
std::vector<SymbolCycle> strategy_family(const gf::Field& field, unsigned n,
                                         gf::Field::Elem mu, bool add_h0) {
  const core::MaximalCycleFamily family(field, n);
  const std::uint64_t p = field.characteristic();
  const std::uint64_t lambda = nt::primitive_root(p);
  std::vector<SymbolCycle> out;
  std::uint64_t x = lambda * lambda % p;  // lambda^2
  for (std::uint64_t k = 1; k <= (p - 1) / 2; ++k) {
    out.push_back(family.hamiltonian_cycle(
        static_cast<gf::Field::Elem>(x),
        field.mul(mu, static_cast<gf::Field::Elem>(x))));
    x = x * (lambda * lambda % p) % p;
  }
  if (add_h0) {
    out.push_back(family.hamiltonian_cycle(0, static_cast<gf::Field::Elem>(lambda)));
  }
  return out;
}

bool pairwise_disjoint(const WordSpace& ws, const std::vector<SymbolCycle>& family) {
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = i + 1; j < family.size(); ++j) {
      if (!edges_disjoint(ws, family[i], family[j])) return false;
    }
  }
  return true;
}

std::vector<Word> random_nonloop_edges(const WordSpace& ws, unsigned count, Rng& rng) {
  std::vector<Word> out;
  while (out.size() < count) {
    const Word e = rng.below(ws.edge_word_count());
    const auto [u, v] = ws.edge_endpoints(e);
    if (u == v) continue;
    if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
  }
  return out;
}

void print_tables() {
  heading("(a) Strategy 2 vs Strategy 3 where both apply (n = 2)");
  {
    TextTable t({"p", "(p-1)/2 even", "S3 cycles", "S3 disjoint",
                 "S2+H0 cycles", "S2 disjoint"});
    for (std::uint64_t p : {13ull, 29ull}) {
      const gf::Field field(p);
      const WordSpace ws(static_cast<Digit>(p), 2);
      // Strategy 3 uses mu = 2 (2 is an odd power of lambda for these p).
      const auto s3 = strategy_family(field, 2, 2, /*add_h0=*/false);
      // Strategy 2 uses the odd-power multiplier found from condition (b);
      // the library picks it internally, so take the full library family.
      const auto s2 = core::disjoint_hamiltonian_cycles(p, 2);
      t.new_row()
          .add(p)
          .add(std::string((p - 1) / 2 % 2 == 0 ? "yes" : "no"))
          .add(s3.size())
          .add(std::string(pairwise_disjoint(ws, s3) ? "yes" : "NO"))
          .add(s2.size())
          .add(std::string(pairwise_disjoint(ws, s2) ? "yes" : "NO"));
    }
    emit(t);
    std::cout << "Strategy 2's extra H_0 is exactly one additional ring.\n";
  }

  heading("(b) FFC root invariance (B(2,10), f = 5, 10 random fault sets)");
  {
    const core::FfcSolver solver{DeBruijnDigraph(2, 10)};
    const WordSpace& ws = solver.graph().words();
    Rng rng(seed());
    TextTable t({"fault set", "roots tried", "distinct |H| values", "|B*|"});
    for (unsigned trial = 0; trial < 10; ++trial) {
      const auto faults = rng.sample_distinct(ws.size(), 5);
      const auto base = solver.solve(faults);
      // Try every necklace representative inside the same component.
      const auto active = solver.active_mask(faults);
      const auto comp = solver.component_of(active, base.root);
      std::set<std::uint64_t> lengths;
      unsigned roots = 0;
      for (Word rep = 0; rep < ws.size(); ++rep) {
        if (!comp[rep] || ws.min_rotation(rep) != rep) continue;
        core::FfcOptions opts;
        opts.root = rep;
        lengths.insert(solver.solve(faults, opts).cycle.length());
        ++roots;
      }
      t.new_row().add(trial).add(roots).add(lengths.size()).add(base.bstar_size);
    }
    emit(t);
    std::cout << "One length per component: H always covers all of B*.\n";
  }

  heading("(c) Beyond the proven budget: empirical survival (d = 5, n = 3)");
  {
    const std::uint64_t d = 5;
    const unsigned n = 3;
    const WordSpace ws(5, 3);
    Rng rng(seed() + 2);
    TextTable t({"f", "budget", "family ok", "phi ok", "either ok", "trials"});
    const unsigned budget = static_cast<unsigned>(core::max_tolerable_edge_faults(d));
    for (unsigned f = 0; f <= budget + 5; ++f) {
      unsigned fam_ok = 0, phi_ok = 0, any_ok = 0;
      const unsigned tries = 20;
      for (unsigned trial = 0; trial < tries; ++trial) {
        const auto faults = random_nonloop_edges(ws, f, rng);
        const auto fam = core::fault_free_hc_family_scan(d, n, faults);
        const auto phi = core::fault_free_hc_phi_construction(d, n, faults);
        if (fam.has_value()) ++fam_ok;
        if (phi.has_value()) ++phi_ok;
        if (fam.has_value() || phi.has_value()) ++any_ok;
      }
      t.new_row()
          .add(f)
          .add(std::string(f <= budget ? "within" : "beyond"))
          .add(fam_ok)
          .add(phi_ok)
          .add(any_ok)
          .add(tries);
    }
    emit(t);
    std::cout << "Within budget both constructions are perfect; beyond it they\n"
                 "degrade gracefully rather than at a cliff.\n";
  }
}

void BM_StrategyFamily(benchmark::State& state) {
  const gf::Field field(13);
  for (auto _ : state) {
    auto fam = strategy_family(field, 2, 2, false);
    benchmark::DoNotOptimize(fam.size());
  }
}
BENCHMARK(BM_StrategyFamily);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "ablation_strategies",
                         "Ablation studies: Strategy 2 vs 3, inverted psi-index vs full scan, phi splits");
}
