// Packet-level recovery cost of repair vs cold re-solve (ROADMAP item 4).
//
// Runs the verify/ traffic-scenario sweep — seeded (instance, pattern,
// timed-churn, horizon, queue-bound) tuples — through the sim/traffic
// stack twice per scenario: once with incremental repair enabled and once
// forcing a cold re-solve on every fault epoch, on the SAME flows and the
// SAME churn script. Reports the application-visible currency of the
// Section 2.4 round model:
//
//   - packets dropped per fault, by reason (dead node / cut link / queue
//     overflow / no route during rebuild),
//   - time-to-recovery in rounds (the rebuild-window lengths),
//   - goodput before / during / after the rebuild windows.
//
// The headline comparison is the *fault-attributed* drop count (drops
// inside rebuild windows, per FaultImpact), not total drops: steady-state
// queue overflow is ring-shape congestion noise — a re-solved ring can
// congest more or less than a spliced one under identical flows — while
// the window-attributed count is exactly what the recovery path controls.
//
// Every scenario runs twice per mode and must replay bit-identically
// (trace-hash witness). Every installed ring is held against the verify/
// oracle. Writes the machine-readable BENCH_traffic.json; exits nonzero
// when repair does not strictly beat cold on fault-attributed drops and
// rebuild rounds, on any oracle violation, any conservation failure, or
// any nondeterministic replay.
//
// Knobs (env):   DBR_SEED
// Knobs (argv):  --scenarios N   seeded scenarios in the sweep (default 24)
//                --packets N     packets per flow (default 96)
//                --out PATH      JSON path (default BENCH_traffic.json)

#include <array>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "verify/scenario.hpp"
#include "workload.hpp"

namespace {

using dbr::Rng;
using dbr::sim::DropReason;
using dbr::sim::FaultImpact;
using dbr::sim::Flow;
using dbr::sim::kDropReasonCount;
using dbr::sim::run_traffic_scenario;
using dbr::sim::ScenarioTrafficResult;
using dbr::sim::TrafficConfig;
using dbr::verify::TrafficScenario;

/// Everything the comparison aggregates from one mode's runs.
struct SideAgg {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::array<std::uint64_t, kDropReasonCount> dropped{};
  std::uint64_t fault_drops = 0;  ///< window-attributed (the headline)
  std::uint64_t rebuild_rounds = 0;
  std::uint64_t fault_epochs = 0;
  std::uint64_t delivered_before = 0, delivered_during = 0,
                 delivered_after = 0;
  std::uint64_t rounds_before = 0, rounds_during = 0, rounds_after = 0;

  void fold(const dbr::sim::TrafficStats& s) {
    injected += s.injected;
    delivered += s.delivered;
    for (std::size_t i = 0; i < kDropReasonCount; ++i) dropped[i] += s.dropped[i];
    for (const FaultImpact& f : s.faults) fault_drops += f.drops_total();
    rebuild_rounds += s.rebuild_rounds;
    fault_epochs += s.fault_epochs;
    delivered_before += s.delivered_before;
    delivered_during += s.delivered_during;
    delivered_after += s.delivered_after;
    rounds_before += s.rounds_before;
    rounds_during += s.rounds_during;
    rounds_after += s.rounds_after;
  }
};

double goodput(std::uint64_t delivered, std::uint64_t rounds) {
  return rounds > 0 ? static_cast<double>(delivered) / static_cast<double>(rounds)
                    : 0.0;
}

std::uint64_t attributed_drops(const dbr::sim::TrafficStats& s) {
  std::uint64_t total = 0;
  for (const FaultImpact& f : s.faults) total += f.drops_total();
  return total;
}

void json_side(dbr::bench::JsonWriter& json, const char* key,
               const dbr::sim::TrafficStats& s, std::uint64_t trace_hash,
               std::uint64_t repaired_rings) {
  json.key(key)
      .begin_object()
      .field("injected", s.injected)
      .field("delivered", s.delivered)
      .field("dropped_dead_node",
             s.dropped[static_cast<std::size_t>(DropReason::kDeadNode)])
      .field("dropped_cut_link",
             s.dropped[static_cast<std::size_t>(DropReason::kCutLink)])
      .field("dropped_queue_overflow",
             s.dropped[static_cast<std::size_t>(DropReason::kQueueOverflow)])
      .field("dropped_no_route",
             s.dropped[static_cast<std::size_t>(DropReason::kNoRoute)])
      .field("fault_attributed_drops", attributed_drops(s))
      .field("in_flight", s.in_flight)
      .field("rebuild_rounds", s.rebuild_rounds)
      .field("fib_installs", s.fib_installs)
      .field("goodput_before", goodput(s.delivered_before, s.rounds_before))
      .field("goodput_during", goodput(s.delivered_during, s.rounds_during))
      .field("goodput_after", goodput(s.delivered_after, s.rounds_after))
      .field("repaired_rings", repaired_rings)
      .field("trace_hash", trace_hash)
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kName = "traffic_recovery";
  constexpr const char* kSummary =
      "packet loss and recovery rounds, repair vs cold re-solve, over the "
      "seeded traffic-scenario sweep; writes BENCH_traffic.json";
  const std::initializer_list<dbr::bench::UsageFlag> kFlags = {
      {"--scenarios N", "seeded scenarios in the sweep (default 24)"},
      {"--packets N", "packets per flow (default 96)"},
      {"--out PATH", "JSON artifact path (default BENCH_traffic.json)"},
  };
  std::size_t scenarios = 24;
  std::uint64_t packets = 96;
  std::string out_path = "BENCH_traffic.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--scenarios") scenarios = std::strtoull(next(), nullptr, 10);
    else if (arg == "--packets") packets = std::strtoull(next(), nullptr, 10);
    else if (arg == "--out") out_path = next();
    else return dbr::bench::usage_exit(argv[i], kName, kSummary, kFlags);
  }

  dbr::bench::heading("traffic recovery: repair vs cold re-solve");
  std::cout << "scenarios=" << scenarios << ", packets/flow=" << packets
            << ", seed=" << dbr::bench::seed() << "\n";

  dbr::service::EngineOptions repair_options;
  repair_options.incremental_repair = true;
  repair_options.validate_responses = true;
  dbr::service::EngineOptions cold_options;
  cold_options.incremental_repair = false;
  cold_options.validate_responses = true;

  const std::vector<TrafficScenario> sweep =
      dbr::verify::make_traffic_sweep(dbr::bench::seed() * 1000003, scenarios);

  dbr::bench::JsonWriter json;
  json.begin_object()
      .field("bench", "traffic_recovery")
      .field("seed", dbr::bench::seed());
  json.key("config")
      .begin_object()
      .field("scenarios", static_cast<std::uint64_t>(scenarios))
      .field("packets_per_flow", packets)
      .end_object();

  SideAgg repair_total, cold_total;
  std::map<dbr::verify::TrafficPattern, std::pair<SideAgg, SideAgg>> by_pattern;
  std::uint64_t oracle_violations = 0;
  std::uint64_t repaired_rings = 0;
  std::uint64_t conservation_failures = 0;
  std::uint64_t replay_mismatches = 0;

  json.key("scenarios").begin_array();
  for (const TrafficScenario& sc : sweep) {
    // The same flow set feeds both modes: seeded off the scenario, shaped
    // by the workload TrafficMatrix against whatever ring the mode solved.
    const auto flows = [&sc, packets](const dbr::NodeCycle& ring) {
      Rng rng = Rng(sc.seed).split(400);
      dbr::bench::TrafficMatrix matrix;
      matrix.packets_per_flow = packets;
      return matrix.flows(ring, sc.pattern, rng);
    };
    const ScenarioTrafficResult repair =
        run_traffic_scenario(sc, repair_options, TrafficConfig{}, flows);
    const ScenarioTrafficResult cold =
        run_traffic_scenario(sc, cold_options, TrafficConfig{}, flows);
    // Replay witness: a second run of each mode must be bit-identical.
    const ScenarioTrafficResult repair2 =
        run_traffic_scenario(sc, repair_options, TrafficConfig{}, flows);
    const ScenarioTrafficResult cold2 =
        run_traffic_scenario(sc, cold_options, TrafficConfig{}, flows);
    if (repair.trace_hash != repair2.trace_hash ||
        cold.trace_hash != cold2.trace_hash) {
      ++replay_mismatches;
      std::cerr << "nondeterministic replay: " << sc.describe() << "\n";
    }
    if (!repair.stats.conserved() || !cold.stats.conserved()) {
      ++conservation_failures;
      std::cerr << "conservation failure: " << sc.describe() << "\n";
    }
    oracle_violations +=
        repair.stats.oracle_violations + cold.stats.oracle_violations;
    repaired_rings += repair.drive.repaired_rings;

    repair_total.fold(repair.stats);
    cold_total.fold(cold.stats);
    auto& [pattern_repair, pattern_cold] = by_pattern[sc.pattern];
    pattern_repair.fold(repair.stats);
    pattern_cold.fold(cold.stats);

    json.begin_object()
        .field("seed", sc.seed)
        .field("pattern", dbr::verify::to_string(sc.pattern))
        .field("base", static_cast<std::uint64_t>(sc.base_request.base))
        .field("n", sc.base_request.n)
        .field("strategy", dbr::service::to_string(sc.base_request.strategy))
        .field("horizon", sc.horizon)
        .field("queue_capacity", sc.queue_capacity)
        .field("churn_events", static_cast<std::uint64_t>(sc.churn.size()))
        .field("fault_epochs", repair.stats.fault_epochs);
    json_side(json, "repair", repair.stats, repair.trace_hash,
              repair.drive.repaired_rings);
    json_side(json, "cold", cold.stats, cold.trace_hash,
              cold.drive.repaired_rings);
    json.end_object();
  }
  json.end_array();

  dbr::TextTable table({"pattern", "mode", "injected", "delivered",
                        "fault_drops", "overflow", "rebuild_rds",
                        "goodput_during"});
  const auto table_rows = [&table](const char* pattern, const char* mode,
                                   const SideAgg& agg) {
    table.new_row()
        .add(pattern)
        .add(mode)
        .add(agg.injected)
        .add(agg.delivered)
        .add(agg.fault_drops)
        .add(agg.dropped[static_cast<std::size_t>(DropReason::kQueueOverflow)])
        .add(agg.rebuild_rounds)
        .add(goodput(agg.delivered_during, agg.rounds_during), 2);
  };
  json.key("patterns").begin_array();
  for (const auto& [pattern, sides] : by_pattern) {
    const char* name = dbr::verify::to_string(pattern);
    table_rows(name, "repair", sides.first);
    table_rows(name, "cold", sides.second);
    const auto pattern_side = [&json](const char* key, const SideAgg& agg) {
      json.key(key)
          .begin_object()
          .field("injected", agg.injected)
          .field("delivered", agg.delivered)
          .field("fault_attributed_drops", agg.fault_drops)
          .field("dropped_queue_overflow",
                 agg.dropped[static_cast<std::size_t>(
                     DropReason::kQueueOverflow)])
          .field("rebuild_rounds", agg.rebuild_rounds)
          .field("goodput_before",
                 goodput(agg.delivered_before, agg.rounds_before))
          .field("goodput_during",
                 goodput(agg.delivered_during, agg.rounds_during))
          .field("goodput_after", goodput(agg.delivered_after, agg.rounds_after))
          .end_object();
    };
    json.begin_object().field("pattern", name);
    pattern_side("repair", sides.first);
    pattern_side("cold", sides.second);
    json.end_object();
  }
  json.end_array();
  table_rows("TOTAL", "repair", repair_total);
  table_rows("TOTAL", "cold", cold_total);
  dbr::bench::emit(table);

  const double mean_recovery_repair =
      repair_total.fault_epochs > 0
          ? static_cast<double>(repair_total.rebuild_rounds) /
                static_cast<double>(repair_total.fault_epochs)
          : 0.0;
  const double mean_recovery_cold =
      cold_total.fault_epochs > 0
          ? static_cast<double>(cold_total.rebuild_rounds) /
                static_cast<double>(cold_total.fault_epochs)
          : 0.0;
  const bool deterministic = replay_mismatches == 0;
  const bool conserved = conservation_failures == 0;
  const bool repair_wins_drops =
      repair_total.fault_drops < cold_total.fault_drops;
  const bool repair_wins_recovery =
      repair_total.rebuild_rounds < cold_total.rebuild_rounds;
  const bool splice_engaged = repaired_rings > 0;

  std::cout << "fault-attributed drops: repair=" << repair_total.fault_drops
            << " cold=" << cold_total.fault_drops
            << "  |  recovery rounds/fault: repair=" << mean_recovery_repair
            << " cold=" << mean_recovery_cold
            << "  |  spliced rings: " << repaired_rings << "\n";
  std::cout << "oracle violations: " << oracle_violations
            << ", deterministic replay: " << (deterministic ? "yes" : "NO")
            << ", conserved: " << (conserved ? "yes" : "NO") << "\n";

  json.key("totals")
      .begin_object()
      .field("repair_fault_drops", repair_total.fault_drops)
      .field("cold_fault_drops", cold_total.fault_drops)
      .field("repair_rebuild_rounds", repair_total.rebuild_rounds)
      .field("cold_rebuild_rounds", cold_total.rebuild_rounds)
      .field("repair_mean_recovery_rounds", mean_recovery_repair)
      .field("cold_mean_recovery_rounds", mean_recovery_cold)
      .field("repaired_rings", repaired_rings)
      .field("oracle_violations", oracle_violations)
      .field("deterministic_replay", deterministic)
      .field("conserved", conserved)
      .field("repair_fewer_fault_drops", repair_wins_drops)
      .field("repair_fewer_rebuild_rounds", repair_wins_recovery)
      .end_object();
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";

  const bool ok = deterministic && conserved && oracle_violations == 0 &&
                  splice_engaged && repair_wins_drops && repair_wins_recovery;
  if (!ok) {
    std::cerr << "traffic recovery gate FAILED (repair_wins_drops="
              << repair_wins_drops << ", repair_wins_recovery="
              << repair_wins_recovery << ", splice_engaged=" << splice_engaged
              << ")\n";
  }
  return ok ? 0 : 1;
}
