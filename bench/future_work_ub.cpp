// Future-work probe (thesis Chapter 5, Questions 3 and 4): does the
// *undirected* De Bruijn graph UB(d,n), whose connectivity is twice that of
// B(d,n), admit fault-free cycles of length >= d^n - nf for up to
// f < 2(d-1) node faults - i.e. beyond the directed bound f <= d-2?
//
// The questions are open in the paper; this bench answers them empirically
// on small instances by exhaustive longest-cycle search over UB(d,n) with
// the faulty nodes (not whole necklaces) removed. Undirected cycles must
// use >= 3 nodes (a 2-cycle would reuse one edge), so the search is run on
// the symmetric digraph and lengths below 3 are reported as 0.

#include <iostream>

#include "bench_common.hpp"
#include "debruijn/debruijn.hpp"
#include "graph/digraph.hpp"
#include "graph/longest_cycle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

Digraph symmetric_ub(const UndirectedDeBruijn& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (Word v = 0; v < g.num_nodes(); ++v) {
    for (Word w : g.neighbors(v)) edges.emplace_back(v, w);
  }
  return Digraph::from_edges(g.num_nodes(), edges);
}

// Longest undirected simple cycle (>= 3 nodes) avoiding the faults.
std::uint64_t longest_ub_cycle(const Digraph& sym, const std::vector<bool>& active) {
  const std::uint64_t len = longest_cycle_bruteforce(sym, active);
  return len >= 3 ? len : 0;
}

void print_tables() {
  heading("Future work: fault-free cycles in UB(d,n) beyond the directed bound");
  std::cout << "Question 3 asks for cycles >= d^n - nf under f < 2(d-1) node\n"
               "faults; the directed guarantee stops at f <= d-2. Exhaustive\n"
               "search over small UB(d,n) (worst observed over random fault\n"
               "sets; faults remove only the faulty nodes):\n";
  TextTable t({"UB(d,n)", "f", "directed bound f<=d-2?", "worst cycle found",
               "d^n - nf", "conjecture holds"});
  Rng rng(seed());
  struct Case {
    Digit d;
    unsigned n;
  };
  for (const Case c : {Case{3, 2}, Case{4, 2}, Case{2, 4}}) {
    const UndirectedDeBruijn g(c.d, c.n);
    const Digraph sym = symmetric_ub(g);
    const WordSpace& ws = g.words();
    const unsigned fmax = 2 * (c.d - 1) - 1;  // f < 2(d-1)
    for (unsigned f = 1; f <= fmax; ++f) {
      std::uint64_t worst = ws.size();
      const unsigned tries = 12;
      for (unsigned trial = 0; trial < tries; ++trial) {
        const auto faults = rng.sample_distinct(ws.size(), f);
        std::vector<bool> active(ws.size(), true);
        for (Word v : faults) active[v] = false;
        worst = std::min(worst, longest_ub_cycle(sym, active));
      }
      const std::int64_t bound =
          static_cast<std::int64_t>(ws.size()) - static_cast<std::int64_t>(c.n) * f;
      t.new_row()
          .add("UB(" + std::to_string(c.d) + "," + std::to_string(c.n) + ")")
          .add(f)
          .add(std::string(f <= c.d - 2 ? "within" : "beyond"))
          .add(worst)
          .add(bound)
          .add(std::string(static_cast<std::int64_t>(worst) >= bound ? "yes" : "NO"));
    }
  }
  emit(t);
  std::cout << "On every small instance tried, UB absorbs roughly twice the\n"
               "directed fault budget while staying above d^n - nf, supporting\n"
               "the thesis' Question 3 conjecture (no counterexample found).\n";
}

void BM_UndirectedLongestCycle(benchmark::State& state) {
  const UndirectedDeBruijn g(3, 2);
  const Digraph sym = symmetric_ub(g);
  std::vector<bool> active(g.num_nodes(), true);
  active[4] = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(longest_ub_cycle(sym, active));
  }
}
BENCHMARK(BM_UndirectedLongestCycle);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "future_work_ub",
                         "Future-work probe: fault-free cycles in undirected UB(d,n) (Chapter 5)");
}
