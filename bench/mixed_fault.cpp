// Mixed node+edge fault workload for the core/mixed_fault pipeline.
//
// Three measurements, every answer held against the independent verify/
// oracle (the engine runs with validate_responses, so a violation turns
// into kInternalError and fails the bench):
//
//  1. Per-regime serve latency: seeded mixed scenarios (node-heavy,
//     edge-heavy, correlated router-loss, fault-free, beyond-guarantee,
//     shuffled-duplicates) through a context-reusing engine, result cache
//     off so every query pays the solve path.
//
//  2. Correlated-collapse cost: "dead router plus its 2d incident links"
//     must canonicalize onto the plain "dead router" cache entry — the
//     second presentation must be a result-cache hit with the identical
//     result object.
//
//  3. Mixed churn: a kill/cut + repair/restore timeline served by a
//     stateful kMixed EmbedSession vs a cold stateless query per event.
//
// Writes the machine-readable BENCH_mixed_fault.json.
//
// Knobs (env):   DBR_SEED
// Knobs (argv):  --queries N   scenarios per regime            (default 60)
//                --events N    churn events in the session part (default 300)
//                --out PATH    JSON path (default BENCH_mixed_fault.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/engine.hpp"
#include "service/session.hpp"
#include "service/stats.hpp"
#include "util/table.hpp"
#include "util/word.hpp"
#include "verify/oracle.hpp"
#include "verify/scenario.hpp"

namespace {

using dbr::Word;
using dbr::service::EmbedEngine;
using dbr::service::EmbedRequest;
using dbr::service::EmbedResponse;
using dbr::service::EmbedSession;
using dbr::service::EmbedStatus;
using dbr::service::EngineOptions;
using dbr::service::FaultKind;
using dbr::service::LatencyRecorder;
using dbr::service::Strategy;

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

struct RegimeStats {
  std::uint64_t queries = 0;
  std::uint64_t embedded = 0;
  std::uint64_t no_embedding = 0;
  LatencyRecorder latency;
};

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kName = "mixed_fault";
  constexpr const char* kSummary =
      "mixed node+edge fault solve latency per regime, correlated-collapse "
      "cache sharing, and mixed churn sessions; writes BENCH_mixed_fault.json";
  const std::initializer_list<dbr::bench::UsageFlag> kFlags = {
      {"--queries N", "scenarios per mixed regime (default 60)"},
      {"--events N", "churn events in the session part (default 300)"},
      {"--out PATH", "JSON artifact path (default BENCH_mixed_fault.json)"},
  };
  std::size_t queries = 60;
  std::size_t events = 300;
  std::string out_path = "BENCH_mixed_fault.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--queries") queries = std::strtoull(next(), nullptr, 10);
    else if (arg == "--events") events = std::strtoull(next(), nullptr, 10);
    else if (arg == "--out") out_path = next();
    else return dbr::bench::usage_exit(argv[i], kName, kSummary, kFlags);
  }

  dbr::bench::heading("mixed faults: per-regime serve latency (oracle-validated)");
  std::cout << "queries=" << queries << " per regime, events=" << events
            << " churn events\n";

  dbr::bench::JsonWriter json;
  json.begin_object()
      .field("bench", "mixed_fault")
      .field("seed", dbr::bench::seed());
  json.key("config")
      .begin_object()
      .field("queries_per_regime", static_cast<std::uint64_t>(queries))
      .field("session_events", static_cast<std::uint64_t>(events))
      .end_object();

  // --- 1. Per-regime latency over the seeded mixed scenario grammar. ---
  EngineOptions options;
  options.validate_responses = true;  // oracle on every computed answer
  options.enable_cache = false;       // every query pays the solve path
  EmbedEngine engine(options);

  std::map<dbr::verify::Regime, RegimeStats> regimes;
  bool quarantined = false;
  std::uint64_t seed = dbr::bench::seed();
  // Scan seeds until every regime of the mixed table collected `queries`.
  const auto regime_done = [&](dbr::verify::Regime r) {
    const auto it = regimes.find(r);
    return it != regimes.end() && it->second.queries >= queries;
  };
  std::size_t scanned = 0;
  const std::size_t scan_budget = 200 * queries + 1000;
  while (scanned++ < scan_budget) {
    const dbr::verify::Scenario sc =
        dbr::verify::make_scenario(seed++, Strategy::kMixed);
    if (regime_done(sc.regime)) continue;
    RegimeStats& stats = regimes[sc.regime];
    const EmbedResponse resp = engine.query(sc.request);
    ++stats.queries;
    stats.latency.record(resp.latency_micros);
    if (!resp.result) {
      quarantined = true;
      continue;
    }
    switch (resp.result->status) {
      case EmbedStatus::kOk: ++stats.embedded; break;
      case EmbedStatus::kNoEmbedding: ++stats.no_embedding; break;
      default:
        quarantined = true;  // oracle violation or internal failure
        std::cerr << "QUARANTINED " << sc.describe() << ": "
                  << resp.result->error << "\n";
    }
    bool all_done = true;
    for (const dbr::verify::Regime r :
         {dbr::verify::Regime::kFaultFree, dbr::verify::Regime::kMixedNodeHeavy,
          dbr::verify::Regime::kMixedEdgeHeavy,
          dbr::verify::Regime::kMixedCorrelated,
          dbr::verify::Regime::kBeyondGuarantee,
          dbr::verify::Regime::kShuffledDuplicates}) {
      all_done = all_done && regime_done(r);
    }
    if (all_done) break;
  }

  dbr::TextTable table(
      {"regime", "queries", "ok", "no_embed", "mean_us", "p50_us", "p99_us"});
  json.key("regimes").begin_array();
  for (auto& [regime, stats] : regimes) {
    const dbr::service::LatencySnapshot snap = stats.latency.snapshot();
    table.new_row()
        .add(dbr::verify::to_string(regime))
        .add(stats.queries)
        .add(stats.embedded)
        .add(stats.no_embedding)
        .add(snap.mean(), 1)
        .add(snap.percentile(50), 1)
        .add(snap.percentile(99), 1);
    json.begin_object()
        .field("regime", dbr::verify::to_string(regime))
        .field("queries", stats.queries)
        .field("embedded", stats.embedded)
        .field("no_embedding", stats.no_embedding)
        .field("mean_micros", snap.mean())
        .field("p50_micros", snap.percentile(50))
        .field("p99_micros", snap.percentile(99))
        .end_object();
  }
  json.end_array();
  dbr::bench::emit(table);
  const auto validation = engine.validation_stats();
  std::cout << "oracle: " << validation.checked << " answers checked, "
            << validation.violations << " violations\n";

  // --- 2. Correlated collapse: one cache entry for router and router+links. ---
  dbr::bench::heading("mixed faults: correlated router-loss collapse");
  EmbedEngine cached_engine;  // defaults: result cache on
  const dbr::WordSpace ws(4, 5);
  bool collapse_identical = true;
  std::uint64_t collapse_hits = 0;
  LatencyRecorder bare_lat, correlated_lat;
  for (Word u = 1; u <= 64; ++u) {
    EmbedRequest bare;
    bare.base = 4;
    bare.n = 5;
    bare.fault_kind = FaultKind::kMixed;
    bare.faults = {u};
    EmbedRequest correlated = bare;
    for (dbr::Digit a = 0; a < 4; ++a) {
      correlated.edge_faults.push_back(ws.edge_word(u, a));
      correlated.edge_faults.push_back(
          ws.edge_word(ws.shift_prepend(u, a), ws.tail(u)));
    }
    Clock::time_point start = Clock::now();
    const EmbedResponse first = cached_engine.query(bare);
    bare_lat.record(micros_since(start));
    start = Clock::now();
    const EmbedResponse second = cached_engine.query(correlated);
    correlated_lat.record(micros_since(start));
    if (second.cache_hit) ++collapse_hits;
    collapse_identical =
        collapse_identical && first.result && second.result == first.result;
  }
  std::cout << "router-only mean " << bare_lat.mean()
            << " us, +incident-links mean " << correlated_lat.mean()
            << " us, cache hits " << collapse_hits << "/64, identical: "
            << (collapse_identical ? "yes" : "NO") << "\n";
  json.key("correlated_collapse")
      .begin_object()
      .field("instances", std::uint64_t{64})
      .field("router_only_mean_micros", bare_lat.mean())
      .field("with_links_mean_micros", correlated_lat.mean())
      .field("cache_hits", collapse_hits)
      .field("identical_responses", collapse_identical)
      .end_object();

  // --- 3. Mixed churn: stateful session vs stateless cold queries. ---
  dbr::bench::heading("mixed faults: churn session vs stateless cold");
  EmbedRequest churn_instance;
  churn_instance.base = 4;
  churn_instance.n = 5;
  churn_instance.fault_kind = FaultKind::kMixed;
  const dbr::verify::ChurnScript churn = dbr::verify::make_churn_script(
      dbr::bench::seed(), churn_instance, events, /*max_live=*/3);

  EmbedEngine warm_engine;
  EmbedSession session(warm_engine, 4, 5, FaultKind::kMixed);
  EngineOptions cold_options;
  cold_options.reuse_contexts = false;
  cold_options.enable_cache = false;
  EmbedEngine cold_engine(cold_options);

  LatencyRecorder session_lat, stateless_lat;
  std::vector<Word> live_nodes, live_edges;
  bool session_identical = true;
  double session_wall = 0.0, stateless_wall = 0.0;
  for (const dbr::verify::ChurnEvent& event : churn.events) {
    Clock::time_point start = Clock::now();
    if (event.add) {
      session.add_fault(event.kind, event.fault);
    } else {
      session.clear_fault(event.kind, event.fault);
    }
    const EmbedResponse incremental = session.current_ring();
    const double session_micros = micros_since(start);
    session_wall += session_micros;
    session_lat.record(session_micros);

    std::vector<Word>& track =
        event.kind == FaultKind::kEdge ? live_edges : live_nodes;
    if (event.add) {
      track.push_back(event.fault);
    } else {
      track.erase(std::find(track.begin(), track.end(), event.fault));
    }
    EmbedRequest req = churn_instance;
    req.faults = live_nodes;
    req.edge_faults = live_edges;
    start = Clock::now();
    const EmbedResponse stateless = cold_engine.query(req);
    const double stateless_micros = micros_since(start);
    stateless_wall += stateless_micros;
    stateless_lat.record(stateless_micros);

    if (!incremental.result || !stateless.result ||
        !incremental.result->same_embedding(*stateless.result)) {
      session_identical = false;
    }
  }
  const double session_speedup =
      session_wall > 0.0 ? stateless_wall / session_wall : 0.0;
  const dbr::service::LatencySnapshot session_snap = session_lat.snapshot();
  const dbr::service::LatencySnapshot stateless_snap = stateless_lat.snapshot();
  dbr::TextTable session_table({"mode", "events", "mean_us", "p50_us", "p99_us"});
  session_table.new_row()
      .add("session")
      .add(static_cast<std::uint64_t>(churn.events.size()))
      .add(session_snap.mean(), 1)
      .add(session_snap.percentile(50), 1)
      .add(session_snap.percentile(99), 1);
  session_table.new_row()
      .add("stateless_cold")
      .add(static_cast<std::uint64_t>(churn.events.size()))
      .add(stateless_snap.mean(), 1)
      .add(stateless_snap.percentile(50), 1)
      .add(stateless_snap.percentile(99), 1);
  dbr::bench::emit(session_table);
  std::cout << "session speedup vs stateless cold: " << session_speedup
            << "x (result-cache hits on revisited states: "
            << session.stats().result_cache_hits << ")\n";

  json.key("session")
      .begin_object()
      .field("base", std::uint64_t{4})
      .field("n", std::uint64_t{5})
      .field("events", static_cast<std::uint64_t>(churn.events.size()))
      .field("session_wall_micros", session_wall)
      .field("stateless_wall_micros", stateless_wall)
      .field("speedup", session_speedup)
      .field("session_p50_micros", session_snap.percentile(50))
      .field("session_p99_micros", session_snap.percentile(99))
      .field("stateless_p50_micros", stateless_snap.percentile(50))
      .field("stateless_p99_micros", stateless_snap.percentile(99))
      .field("result_cache_hits", session.stats().result_cache_hits)
      .field("identical_responses", session_identical)
      .end_object();

  const bool ok = !quarantined && validation.violations == 0 &&
                  collapse_identical && collapse_hits == 64 &&
                  session_identical;
  json.field("oracle_checked", validation.checked);
  json.field("oracle_violations", validation.violations);
  json.field("identical_responses", collapse_identical && session_identical);
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
