// Reproduces Figure 3.3 / Example 3.6: the Hamiltonian decomposition of the
// modified De Bruijn graph UMB(2,3) - two disjoint Hamiltonian cycles
// covering all 16 edges - plus decomposition summaries for odd prime powers
// (Section 3.2.3).

#include <iostream>

#include "bench_common.hpp"
#include "core/mod_debruijn.hpp"
#include "debruijn/debruijn.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_decomposition(Digit d, unsigned n, bool full_cycles) {
  const auto mb = core::modified_debruijn_decomposition(d, n);
  const WordSpace ws(d, n);
  std::cout << "MB(" << unsigned(d) << "," << n << "): " << mb.cycles.size()
            << " disjoint Hamiltonian cycles of length " << ws.size() << "\n";
  if (full_cycles) {
    for (std::size_t i = 0; i < mb.cycles.size(); ++i) {
      std::cout << "  H_" << i << " = " << to_string(ws, mb.cycles[i]) << "\n";
    }
  }
  std::cout << "  rerouted (removed from B): ";
  for (const auto& [u, v] : mb.removed_edges) {
    std::cout << "(" << ws.to_string(u) << "->" << ws.to_string(v) << ") ";
  }
  std::cout << "\n  new edges: ";
  for (const auto& [u, v] : mb.added_edges) {
    std::cout << "(" << ws.to_string(u) << "->" << ws.to_string(v) << ") ";
  }
  std::cout << "\n";
}

void print_tables() {
  heading("Figure 3.3 / Example 3.6 - Hamiltonian decomposition of UMB(2,3)");
  print_decomposition(2, 3, /*full_cycles=*/true);

  heading("Odd prime power decompositions (d disjoint HCs each)");
  print_decomposition(3, 3, /*full_cycles=*/true);
  print_decomposition(5, 2, /*full_cycles=*/false);
  print_decomposition(7, 2, /*full_cycles=*/false);
  print_decomposition(9, 2, /*full_cycles=*/false);

  heading("Summary");
  TextTable t({"graph", "cycles", "nodes/cycle", "added", "removed"});
  for (auto [d, n] : {std::pair<Digit, unsigned>{2, 3}, {2, 5}, {3, 3}, {5, 2},
                      {7, 2}, {9, 2}, {3, 4}}) {
    const auto mb = core::modified_debruijn_decomposition(d, n);
    const WordSpace ws(d, n);
    t.new_row()
        .add("MB(" + std::to_string(d) + "," + std::to_string(n) + ")")
        .add(mb.cycles.size())
        .add(ws.size())
        .add(mb.added_edges.size())
        .add(mb.removed_edges.size());
  }
  emit(t);
}

void BM_Decomposition(benchmark::State& state) {
  const Digit d = static_cast<Digit>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    auto mb = core::modified_debruijn_decomposition(d, n);
    benchmark::DoNotOptimize(mb.cycles.size());
  }
}
BENCHMARK(BM_Decomposition)->Args({2, 8})->Args({3, 5})->Args({9, 3});

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "fig_3_3_umb",
                         "Figure 3.3 / Example 3.6: Hamiltonian decomposition of UMB(2,3)");
}
