// Reproduces Table 3.2: MAX{psi(d)-1, phi(d)}, the number of edge faults
// B(d,n) provably survives with a Hamiltonian cycle (Proposition 3.4), for
// 2 <= d <= 35 - exact arithmetic that must match the published row - and
// demonstrates the tolerance constructively at the bound for several d.

#include <iostream>

#include "bench_common.hpp"
#include "core/disjoint_hc.hpp"
#include "core/edge_fault.hpp"
#include "debruijn/cycle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

std::vector<Word> random_nonloop_edges(const WordSpace& ws, unsigned count, Rng& rng) {
  std::vector<Word> out;
  while (out.size() < count) {
    const Word e = rng.below(ws.edge_word_count());
    const auto [u, v] = ws.edge_endpoints(e);
    if (u == v) continue;
    if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
  }
  return out;
}

void print_tables() {
  heading("Table 3.2 - MAX{psi(d)-1, phi(d)} tolerable edge faults, 2 <= d <= 35");
  {
    TextTable t({"d", "psi(d)-1", "phi(d)", "MAX"});
    for (std::uint64_t d = 2; d <= 35; ++d) {
      t.new_row()
          .add(d)
          .add(core::psi(d) - 1)
          .add(core::phi_edge_bound(d))
          .add(core::max_tolerable_edge_faults(d));
    }
    emit(t);
    std::cout << "Sole d where the disjoint family beats the phi construction: d = 28.\n";
  }

  heading("Constructive demonstration at the bound (n = 2, 20 random fault sets)");
  {
    TextTable t({"d", "budget f", "successes", "trials"});
    Rng rng(seed());
    for (std::uint64_t d : {3ull, 4ull, 5ull, 6ull, 8ull, 9ull, 12ull, 13ull, 15ull}) {
      const WordSpace ws(static_cast<Digit>(d), 2);
      const unsigned budget = static_cast<unsigned>(core::max_tolerable_edge_faults(d));
      unsigned ok = 0;
      const unsigned tries = 20;
      for (unsigned trial = 0; trial < tries; ++trial) {
        const auto faults = random_nonloop_edges(ws, budget, rng);
        const auto hc = core::fault_free_hamiltonian_cycle(d, 2, faults);
        if (hc.has_value() && is_hamiltonian(ws, *hc) && avoids_edges(ws, *hc, faults)) {
          ++ok;
        }
      }
      t.new_row().add(d).add(budget).add(ok).add(tries);
    }
    emit(t);
  }
}

void BM_FaultFreeHcAtBudget(benchmark::State& state) {
  const std::uint64_t d = static_cast<std::uint64_t>(state.range(0));
  const WordSpace ws(static_cast<Digit>(d), 2);
  Rng rng(1);
  const auto faults = random_nonloop_edges(
      ws, static_cast<unsigned>(core::max_tolerable_edge_faults(d)), rng);
  for (auto _ : state) {
    auto hc = core::fault_free_hamiltonian_cycle(d, 2, faults);
    benchmark::DoNotOptimize(hc.has_value());
  }
}
BENCHMARK(BM_FaultFreeHcAtBudget)->Arg(5)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "table_3_2",
                         "Table 3.2: MAX{psi(d)-1, phi(d)} edge-fault tolerance, 2 <= d <= 35");
}
