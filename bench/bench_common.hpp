#pragma once

// Shared plumbing for the reproduction benches. Every bench binary prints
// the paper-style table(s) first (deterministic, seed-fixed reproduction of
// the corresponding table/figure) and then runs its google-benchmark timing
// section. Knobs:
//   DBR_TRIALS   Monte-Carlo trials per table row (default 1000)
//   DBR_SEED     RNG seed (default 42)

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace dbr::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return fallback;
}

inline std::uint64_t trials() { return env_u64("DBR_TRIALS", 1000); }
inline std::uint64_t seed() { return env_u64("DBR_SEED", 42); }

/// True when DBR_FORMAT=csv: table-producing benches then emit CSV rows
/// (for plotting) instead of the aligned text rendering.
inline bool csv_output() {
  const char* v = std::getenv("DBR_FORMAT");
  return v != nullptr && std::string(v) == "csv";
}

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Renders a TextTable according to DBR_FORMAT.
template <typename Table>
void emit(const Table& table) {
  if (csv_output()) {
    std::cout << table.to_csv();
  } else {
    std::cout << table.to_string();
  }
}

/// Minimal streaming JSON emitter for the machine-readable `BENCH_*.json`
/// artifacts every bench can produce alongside its human-readable tables.
/// Caller is responsible for well-formed nesting (begin/end pairs and a key
/// before every value inside an object); commas and escaping are handled.
class JsonWriter {
 public:
  JsonWriter& begin_object() { separate(); out_ += '{'; has_items_.push_back(false); return *this; }
  JsonWriter& end_object() { out_ += '}'; has_items_.pop_back(); return *this; }
  JsonWriter& begin_array() { separate(); out_ += '['; has_items_.push_back(false); return *this; }
  JsonWriter& end_array() { out_ += ']'; has_items_.pop_back(); return *this; }

  JsonWriter& key(std::string_view k) {
    separate();
    append_string(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) { separate(); append_string(v); return *this; }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) { separate(); out_ += v ? "true" : "false"; return *this; }
  JsonWriter& value(double v) {
    separate();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) { separate(); out_ += std::to_string(v); return *this; }
  JsonWriter& value(std::int64_t v) { separate(); out_ += std::to_string(v); return *this; }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  template <typename T>
  JsonWriter& field(std::string_view k, T v) { return key(k).value(v); }

  const std::string& str() const { return out_; }

  /// Writes the document (plus trailing newline) to `path`; returns success.
  bool write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << out_ << '\n';
    return static_cast<bool>(f);
  }

 private:
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!has_items_.empty()) {
      if (has_items_.back()) out_ += ',';
      has_items_.back() = true;
    }
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> has_items_;
  bool pending_value_ = false;
};

/// One command-line flag's usage line.
struct UsageFlag {
  const char* flag;  ///< e.g. "--queries N"
  const char* help;  ///< one-line description
};

/// Prints the shared usage block: synopsis, the bench's own flags, the
/// google-benchmark pass-through note, and the common environment knobs.
/// Every bench main routes --help (and unknown-argument errors) through
/// this, so no binary silently ignores argv again.
inline void print_usage(std::ostream& os, const char* name,
                        const char* summary,
                        std::initializer_list<UsageFlag> flags,
                        bool benchmark_flags) {
  os << "usage: " << name << " [options]\n  " << summary << "\n";
  if (flags.size() > 0) {
    os << "\noptions:\n";
    for (const UsageFlag& f : flags) {
      std::string col = f.flag;
      if (col.size() < 22) col.resize(22, ' ');
      os << "  " << col << "  " << f.help << "\n";
    }
  }
  os << "  --help, -h              this message\n";
  if (benchmark_flags) {
    os << "\n  --benchmark_* flags pass through to google-benchmark\n"
          "  (e.g. --benchmark_filter=..., --benchmark_min_time=...)\n";
  }
  os << "\nenvironment:\n"
        "  DBR_TRIALS   Monte-Carlo trials per table row (default 1000)\n"
        "  DBR_SEED     RNG seed (default 42)\n"
        "  DBR_FORMAT   'csv' emits CSV tables instead of aligned text\n"
        "  DBR_THREADS  worker threads for util/parallel (default: hardware)\n";
}

/// --help/unknown-argument handling for benches with their own flag loops:
/// returns 0 for --help/-h (usage printed to stdout), 64 for an argument
/// the caller did not recognize (usage printed to stderr), -1 to proceed.
inline int usage_exit(const char* arg, const char* name, const char* summary,
                      std::initializer_list<UsageFlag> flags,
                      bool benchmark_flags = false) {
  const std::string_view a = arg;
  if (a == "--help" || a == "-h") {
    print_usage(std::cout, name, summary, flags, benchmark_flags);
    return 0;
  }
  std::cerr << name << ": unknown argument: " << a << "\n\n";
  print_usage(std::cerr, name, summary, flags, benchmark_flags);
  return 64;  // EX_USAGE
}

/// Validates argv (only --help/-h and --benchmark_* flags are meaningful to
/// a table-reproduction bench), prints the table section, then hands over
/// to google-benchmark. Call from main() after registering benchmarks.
inline int run(int argc, char** argv, void (*print_tables)(),
               const char* name, const char* summary) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark_", 0) == 0) continue;  // google-benchmark's
    return usage_exit(argv[i], name, summary, {}, /*benchmark_flags=*/true);
  }
  print_tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace dbr::bench
