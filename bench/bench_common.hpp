#pragma once

// Shared plumbing for the reproduction benches. Every bench binary prints
// the paper-style table(s) first (deterministic, seed-fixed reproduction of
// the corresponding table/figure) and then runs its google-benchmark timing
// section. Knobs:
//   DBR_TRIALS   Monte-Carlo trials per table row (default 1000)
//   DBR_SEED     RNG seed (default 42)

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

namespace dbr::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return fallback;
}

inline std::uint64_t trials() { return env_u64("DBR_TRIALS", 1000); }
inline std::uint64_t seed() { return env_u64("DBR_SEED", 42); }

/// True when DBR_FORMAT=csv: table-producing benches then emit CSV rows
/// (for plotting) instead of the aligned text rendering.
inline bool csv_output() {
  const char* v = std::getenv("DBR_FORMAT");
  return v != nullptr && std::string(v) == "csv";
}

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Renders a TextTable according to DBR_FORMAT.
template <typename Table>
void emit(const Table& table) {
  if (csv_output()) {
    std::cout << table.to_csv();
  } else {
    std::cout << table.to_string();
  }
}

/// Prints the table section, then hands over to google-benchmark. Call from
/// main() after registering benchmarks.
inline int run(int argc, char** argv, void (*print_tables)()) {
  print_tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace dbr::bench
