#pragma once

// The mixed embedding query workload introduced with the service engine
// bench (PR 1): a seeded stream of node-fault (FFC), edge-fault
// (psi-scan / phi-construction) and butterfly-lift scenarios, with a hot
// pool of repeated queries. Shared by service_throughput and
// verify_overhead so both measure the same traffic shape.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "service/types.hpp"
#include "sim/traffic.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/word.hpp"

namespace dbr::bench {

/// One random scenario; `variant` cycles through the three workload families.
/// WordSpace supplies the overflow-validated d^n / d^(n+1) sample spaces.
inline service::EmbedRequest random_scenario(Rng& rng, std::uint64_t variant) {
  service::EmbedRequest req;
  switch (variant % 3) {
    case 0: {  // node faults -> FFC
      static constexpr struct { dbr::Digit d; unsigned n; } kGraphs[] = {
          {2, 11}, {2, 12}, {3, 7}, {2, 13}};
      const auto& g = kGraphs[rng.below(std::size(kGraphs))];
      req.base = g.d;
      req.n = g.n;
      req.fault_kind = service::FaultKind::kNode;
      const std::uint64_t f = 1 + rng.below(3);
      for (std::uint64_t v : rng.sample_distinct(WordSpace(g.d, g.n).size(), f))
        req.faults.push_back(v);
      break;
    }
    case 1: {  // edge faults -> psi-scan / phi-construction
      static constexpr struct { dbr::Digit d; unsigned n; } kGraphs[] = {
          {3, 7}, {4, 6}, {5, 5}};
      const auto& g = kGraphs[rng.below(std::size(kGraphs))];
      req.base = g.d;
      req.n = g.n;
      req.fault_kind = service::FaultKind::kEdge;
      const std::uint64_t f = 1 + rng.below(2);
      for (std::uint64_t v :
           rng.sample_distinct(WordSpace(g.d, g.n).edge_word_count(), f))
        req.faults.push_back(v);
      break;
    }
    default: {  // butterfly lift (gcd(d, n) = 1)
      static constexpr struct { dbr::Digit d; unsigned n; } kGraphs[] = {
          {3, 7}, {4, 5}, {5, 4}};
      const auto& g = kGraphs[rng.below(std::size(kGraphs))];
      req.base = g.d;
      req.n = g.n;
      req.fault_kind = service::FaultKind::kEdge;
      req.strategy = service::Strategy::kButterfly;
      req.faults.push_back(rng.below(WordSpace(g.d, g.n).edge_word_count()));
      break;
    }
  }
  return req;
}

/// Zipf(s) sampler over ranks [0, n): rank k is drawn with probability
/// proportional to 1 / (k+1)^s. Precomputes the CDF once (the pool is
/// small), then samples by binary search — the standard hot-key model for
/// cache benchmarks: s ~ 1 concentrates most draws on a handful of ranks,
/// s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t operator()(Rng& rng) const {
    const double u =
        static_cast<double>(rng.below(1u << 30)) / static_cast<double>(1u << 30);
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// A request stream of length `requests`: with probability `repeat_fraction`
/// a draw from a hot pool of `unique` scenarios, otherwise a fresh one.
/// `zipf_s` > 0 skews pool draws Zipf(s) by rank (the hot-key regime:
/// rank 0 dominates); 0 keeps the uniform pool of the original workload.
inline std::vector<service::EmbedRequest> make_stream(Rng& rng,
                                                      std::size_t requests,
                                                      std::size_t unique,
                                                      double repeat_fraction,
                                                      double zipf_s = 0.0) {
  std::vector<service::EmbedRequest> pool;
  pool.reserve(unique);
  for (std::size_t i = 0; i < unique; ++i)
    pool.push_back(random_scenario(rng, i));
  const ZipfSampler zipf(pool.size(), zipf_s);

  std::vector<service::EmbedRequest> stream;
  stream.reserve(requests);
  std::uint64_t fresh_variant = unique;
  for (std::size_t i = 0; i < requests; ++i) {
    const bool repeat =
        static_cast<double>(rng.below(1u << 20)) / (1u << 20) < repeat_fraction;
    if (repeat && !pool.empty()) {
      const std::size_t rank =
          zipf_s > 0.0 ? zipf(rng) : static_cast<std::size_t>(rng.below(pool.size()));
      stream.push_back(pool[rank]);
    } else {
      stream.push_back(random_scenario(rng, fresh_variant++));
    }
  }
  return stream;
}

/// One (base, n) instance of the multi-instance fabric workload.
struct InstanceSpec {
  dbr::Digit base = 2;
  unsigned n = 3;
};

/// Deterministic pool of `count` distinct FFC instances for placement
/// traffic, drawn from the (base, n) grid below ordered by node count
/// ascending — so every instance is large enough that its context build is
/// the dominant per-miss cost (the effect sharded context residency
/// amortizes) while staying bounded. Requires `count` within the grid.
inline std::vector<InstanceSpec> make_instance_pool(std::size_t count) {
  std::vector<InstanceSpec> grid;
  const auto add_range = [&grid](dbr::Digit d, unsigned lo, unsigned hi) {
    for (unsigned n = lo; n <= hi; ++n) grid.push_back({d, n});
  };
  add_range(2, 9, 16);  //    512 ..  65536 nodes
  add_range(3, 6, 9);   //    729 ..  19683
  add_range(4, 5, 8);   //   1024 ..  65536
  add_range(5, 4, 6);   //    625 ..  15625
  add_range(6, 4, 6);   //   1296 ..  46656
  add_range(7, 3, 5);   //    343 ..  16807
  add_range(8, 3, 5);   //    512 ..  32768
  add_range(9, 3, 4);   //    729 ..   6561
  std::stable_sort(grid.begin(), grid.end(),
                   [](const InstanceSpec& a, const InstanceSpec& b) {
                     return WordSpace(a.base, a.n).size() <
                            WordSpace(b.base, b.n).size();
                   });
  if (count > grid.size()) count = grid.size();
  grid.resize(count);
  return grid;
}

/// A multi-instance request stream: each request first draws its (base, n)
/// instance Zipf(`instance_zipf_s`)-skewed over a make_instance_pool of
/// `instances` (the placement skew the fabric must absorb), then its fault
/// set — a draw from the instance's hot pool of `hot_faults` scenarios
/// with probability `repeat_fraction` (Zipf(`fault_zipf_s`) by rank), a
/// fresh fault set otherwise. By default every request is a node-fault FFC
/// solve; `edge_fraction` > 0 turns that share of draws on base >= 3
/// instances into edge-fault solves, whose per-(base, n) precompute (the
/// psi/phi machinery) dwarfs a single solve — the regime where context
/// residency, not raw compute, bounds throughput.
inline std::vector<service::EmbedRequest> make_instance_stream(
    Rng& rng, std::size_t requests, std::size_t instances,
    double instance_zipf_s, double repeat_fraction, std::size_t hot_faults,
    double fault_zipf_s, double edge_fraction = 0.0) {
  const std::vector<InstanceSpec> pool = make_instance_pool(instances);
  const ZipfSampler instance_rank(pool.size(), instance_zipf_s);
  const ZipfSampler fault_rank(hot_faults == 0 ? 1 : hot_faults, fault_zipf_s);
  const auto coin = [&rng](double p) {
    return static_cast<double>(rng.below(1u << 20)) / (1u << 20) < p;
  };

  // Per-instance hot scenario pools (kind + fault set), built lazily.
  std::vector<std::vector<service::EmbedRequest>> hot(pool.size());
  const auto sample_request = [&](const InstanceSpec& inst) {
    service::EmbedRequest req;
    req.base = inst.base;
    req.n = inst.n;
    const bool edge = inst.base >= 3 && coin(edge_fraction);
    const WordSpace ws(inst.base, inst.n);
    if (edge) {
      req.fault_kind = service::FaultKind::kEdge;
      const std::uint64_t f = 1 + rng.below(2);
      for (std::uint64_t v : rng.sample_distinct(ws.edge_word_count(), f))
        req.faults.push_back(v);
    } else {
      req.fault_kind = service::FaultKind::kNode;
      const std::uint64_t f = 1 + rng.below(3);
      for (std::uint64_t v : rng.sample_distinct(ws.size(), f))
        req.faults.push_back(v);
    }
    return req;
  };

  std::vector<service::EmbedRequest> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t which = instance_rank(rng);
    const InstanceSpec& inst = pool[which];
    if (coin(repeat_fraction) && hot_faults > 0) {
      auto& pool_for = hot[which];
      if (pool_for.empty()) {
        pool_for.reserve(hot_faults);
        for (std::size_t k = 0; k < hot_faults; ++k)
          pool_for.push_back(sample_request(inst));
      }
      stream.push_back(pool_for[fault_rank(rng) % pool_for.size()]);
    } else {
      stream.push_back(sample_request(inst));
    }
  }
  return stream;
}

/// Synthesizes the packet flows of one verify::TrafficPattern against a
/// solved ring: every endpoint lies on the ring, so the fault-free warmup
/// routes everything and later drops are attributable to churn alone. Flow
/// fan-outs are bounded (hotspot 32 sources, incast 16, uniform 16) so the
/// generated horizons can drain the queues; ring-allreduce is deliberately
/// unbounded — one flow per ring member is its definition.
struct TrafficMatrix {
  std::uint64_t packets_per_flow = 32;  ///< stream length of each flow
  std::uint64_t start_round = 0;        ///< first injection round

  /// The pattern's flows over `ring`, seeded placement drawn from `rng`
  /// (deterministic for a fixed rng state). Requires a ring of >= 2 nodes.
  std::vector<sim::Flow> flows(const NodeCycle& ring,
                               verify::TrafficPattern pattern,
                               Rng& rng) const {
    const std::vector<Word>& nodes = ring.nodes;
    const std::size_t k = nodes.size();
    require(k >= 2, "traffic needs a ring of at least two nodes");
    std::vector<sim::Flow> out;
    const auto add = [&](std::size_t src_pos, std::size_t dst_pos,
                         std::uint64_t packets, std::uint64_t start,
                         std::uint32_t tag) {
      if (src_pos == dst_pos) return;  // degenerate on tiny rings
      out.push_back({nodes[src_pos], nodes[dst_pos], packets, start, tag});
    };
    // Spread positions: offset s of `count` lands 1 + s*(k-1)/count ring
    // hops past `anchor` — distinct for count <= k-1 and never the anchor.
    const auto spread = [&](std::size_t anchor, std::size_t s,
                            std::size_t count) {
      return (anchor + 1 + s * (k - 1) / count) % k;
    };
    switch (pattern) {
      case verify::TrafficPattern::kRingAllReduce:
        // The pipelined all-reduce of examples/ring_allreduce: every ring
        // member streams chunks to its ring successor.
        for (std::size_t i = 0; i < k; ++i) {
          add(i, (i + 1) % k, packets_per_flow, start_round,
              static_cast<std::uint32_t>(i));
        }
        break;
      case verify::TrafficPattern::kTokenStream: {
        // A few token streams each traverse the whole ring (destination is
        // the source's ring predecessor, k-1 hops away).
        const std::size_t tokens = std::min<std::size_t>(4, k - 1);
        for (std::size_t i = 0; i < tokens; ++i) {
          const std::size_t j = i * k / tokens;
          add(j, (j + k - 1) % k, packets_per_flow, start_round,
              static_cast<std::uint32_t>(i));
        }
        break;
      }
      case verify::TrafficPattern::kHotspot: {
        // Spread sources stream at one hot destination, starts staggered so
        // the contention near the hot node builds gradually.
        const std::size_t hot = rng.below(k);
        const std::size_t sources = std::min<std::size_t>(32, k - 1);
        for (std::size_t s = 0; s < sources; ++s) {
          add(spread(hot, s, sources), hot, packets_per_flow, start_round + s,
              static_cast<std::uint32_t>(s));
        }
        break;
      }
      case verify::TrafficPattern::kIncast: {
        // A synchronized burst fan-in: every source starts the same round,
        // so the shared ring segments ahead of the sink overflow first.
        const std::size_t sink = rng.below(k);
        const std::size_t fan = std::min<std::size_t>(16, k - 1);
        for (std::size_t s = 0; s < fan; ++s) {
          add(spread(sink, s, fan), sink, packets_per_flow, start_round,
              static_cast<std::uint32_t>(s));
        }
        break;
      }
      case verify::TrafficPattern::kUniform: {
        const std::size_t count = std::min<std::size_t>(16, k - 1);
        for (std::size_t c = 0; c < count; ++c) {
          const std::size_t src = rng.below(k);
          std::size_t dst = rng.below(k);
          if (dst == src) dst = (dst + 1) % k;
          add(src, dst, packets_per_flow, start_round,
              static_cast<std::uint32_t>(c));
        }
        break;
      }
    }
    return out;
  }
};

}  // namespace dbr::bench
