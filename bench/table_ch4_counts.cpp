// Reproduces the Chapter 4 worked examples and the necklace census they
// come from - exact values that must match the paper:
//   * necklaces of length 6 in B(2,12): 9
//   * total necklaces in B(2,12): 352
//   * weight-4 necklaces of length 6 in B(2,12): 2
//   * total weight-4 necklaces in B(2,12): 43
//   * weight-4 necklaces of length 4 in B(3,4): 4
// plus full by-length / by-weight censuses cross-checked by enumeration.

#include <iostream>

#include "bench_common.hpp"
#include "debruijn/necklaces.hpp"
#include "necklace/count.hpp"
#include "nt/numtheory.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Chapter 4 worked examples (must match the paper exactly)");
  {
    TextTable t({"quantity", "formula value", "paper"});
    t.new_row()
        .add(std::string("necklaces of length 6 in B(2,12)"))
        .add(necklace::necklaces_by_length(2, 12, 6))
        .add(std::string("9"));
    t.new_row()
        .add(std::string("total necklaces in B(2,12)"))
        .add(necklace::necklaces_total(2, 12))
        .add(std::string("352"));
    t.new_row()
        .add(std::string("weight-4 necklaces of length 6 in B(2,12)"))
        .add(necklace::binary_weight_necklaces_by_length(12, 4, 6))
        .add(std::string("2"));
    t.new_row()
        .add(std::string("total weight-4 necklaces in B(2,12)"))
        .add(necklace::binary_weight_necklaces_total(12, 4))
        .add(std::string("43"));
    t.new_row()
        .add(std::string("weight-4 necklaces of length 4 in B(3,4)"))
        .add(necklace::weight_necklaces_by_length(3, 4, 4, 4))
        .add(std::string("4"));
    emit(t);
    ensure(necklace::necklaces_by_length(2, 12, 6) == 9 &&
               necklace::necklaces_total(2, 12) == 352 &&
               necklace::binary_weight_necklaces_by_length(12, 4, 6) == 2 &&
               necklace::binary_weight_necklaces_total(12, 4) == 43 &&
               necklace::weight_necklaces_by_length(3, 4, 4, 4) == 4,
           "Chapter 4 examples must reproduce exactly");
  }

  heading("Necklace census of B(2,12) by length (formula vs enumeration)");
  {
    const WordSpace ws(2, 12);
    TextTable t({"t", "formula", "enumerated"});
    for (auto t_len : nt::divisors(12)) {
      t.new_row()
          .add(t_len)
          .add(necklace::necklaces_by_length(2, 12, t_len))
          .add(necklace::brute_count_by_length(ws, static_cast<unsigned>(t_len),
                                               [](Word) { return true; }));
    }
    emit(t);
  }

  heading("Weight census of B(2,12) (formula vs enumeration)");
  {
    const WordSpace ws(2, 12);
    TextTable t({"k", "formula", "enumerated"});
    for (std::uint64_t k = 0; k <= 12; ++k) {
      t.new_row()
          .add(k)
          .add(necklace::binary_weight_necklaces_total(12, k))
          .add(necklace::brute_count_total(
              ws, [&ws, k](Word x) { return ws.weight(x) == k; }));
    }
    emit(t);
  }

  heading("Type census of B(3,4) (multinomial counting, Section 4.3)");
  {
    TextTable t({"type [k0,k1,k2]", "necklaces"});
    for (std::uint64_t k0 = 0; k0 <= 4; ++k0) {
      for (std::uint64_t k1 = 0; k0 + k1 <= 4; ++k1) {
        const std::uint64_t k2 = 4 - k0 - k1;
        const std::vector<std::uint64_t> type{k0, k1, k2};
        std::string label = "[";
        label += std::to_string(k0);
        label += ',';
        label += std::to_string(k1);
        label += ',';
        label += std::to_string(k2);
        label += ']';
        t.new_row().add(label).add(necklace::type_necklaces_total(3, 4, type));
      }
    }
    emit(t);
  }
}

void BM_CountingFormulas(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t n = 2; n <= 36; ++n) acc += necklace::necklaces_total(2, n);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CountingFormulas);

void BM_BruteForceCensus(benchmark::State& state) {
  const WordSpace ws(2, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    auto count = necklace::brute_count_total(ws, [](Word) { return true; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BruteForceCensus)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "table_ch4_counts",
                         "Chapter 4 worked examples: necklace census exact counts");
}
