// Scaling, replication, and fail-stop recovery bench for the sharded
// multi-engine fabric (service/fabric): writes BENCH_fabric.json.
//
// Three sections:
//
//   scaling      the same skewed multi-instance stream (workload.hpp's
//                make_instance_stream) driven through fabrics of 1, 2, ...,
//                --shards shards with an EQUAL TOTAL worker count and a
//                fixed per-shard context cache. One shard cannot keep the
//                instance working set resident and thrashes on context
//                rebuilds (the dominant per-miss cost); N shards partition
//                the keyspace so each shard's arc fits — aggregate context
//                residency, not raw parallelism, is the scale-out story,
//                which is why the curve holds even on one core. Every
//                response is checked bit-identical to a single-engine
//                reference.
//
//   replication  a hot-skewed stream against replicas=0 vs --replicas:
//                reports the owner shard's load share before/after hot-key
//                replication spreads reads across the successor chain, the
//                replica read count, and the throughput ratio.
//
//   shard_kill   a fabric with validate_responses on serves the stream from
//                its worker pools while the main thread kills the most
//                loaded shard mid-batch (timing the remap = recovery) and
//                later revives it. Every answer — before, during, and after
//                the remap — must be bit-identical to the precomputed
//                single-engine reference and pass the in-fabric oracle; the
//                exit code is nonzero on any violation or mismatch.
//
// Knobs (env):   DBR_SEED
// Knobs (argv):  --shards N        max shard count, scaling doubles up to it
//                                  (default 4)
//                --requests N      requests per section        (default 400)
//                --instances N     (base, n) instance pool size (default 12)
//                --ctx-capacity N  per-shard context cache capacity (default 4)
//                --workers N       total fabric workers, split per shard
//                                  (default 4; must divide by each config)
//                --zipf S          instance Zipf skew          (default 0.6)
//                --repeat F        hot fault-set repeat fraction (default 0.15)
//                --hot-threshold N hot-key promotion threshold (default 16)
//                --replicas N      hot replicas in the replication/kill
//                                  sections (default 1)
//                --edge-fraction F share of edge-fault solves on base >= 3
//                                  instances — the expensive-context regime
//                                  (default 0.7)
//                --out PATH        JSON path (default BENCH_fabric.json)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/engine.hpp"
#include "service/fabric.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload.hpp"

namespace {

using dbr::Rng;
using dbr::bench::make_instance_pool;
using dbr::bench::make_instance_stream;
using dbr::service::EmbedEngine;
using dbr::service::EmbedRequest;
using dbr::service::EmbedResponse;
using dbr::service::EngineOptions;
using dbr::service::FabricOptions;
using dbr::service::FabricStats;
using dbr::service::ShardRouter;

using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Single-engine ground truth for `stream`: a plain EmbedEngine with enough
/// context capacity to never thrash, queried sequentially. Deterministic,
/// so every fabric answer must match it bit for bit.
std::vector<std::shared_ptr<const dbr::service::EmbedResult>> reference_answers(
    const std::vector<EmbedRequest>& stream, std::size_t instances) {
  EngineOptions opts;
  opts.context_cache_capacity = instances + 1;
  EmbedEngine engine(opts);
  std::vector<std::shared_ptr<const dbr::service::EmbedResult>> out;
  out.reserve(stream.size());
  for (const EmbedRequest& req : stream) out.push_back(engine.query(req).result);
  return out;
}

std::uint64_t count_mismatches(
    const std::vector<EmbedResponse>& got,
    const std::vector<std::shared_ptr<const dbr::service::EmbedResult>>& want) {
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].result == nullptr || !got[i].result->same_embedding(*want[i]))
      ++mismatches;
  }
  return mismatches;
}

struct ScalingPoint {
  std::size_t shards = 0;
  std::size_t workers_per_shard = 0;
  double wall_micros = 0.0;
  std::uint64_t context_builds = 0;
  std::uint64_t context_hits = 0;
  std::uint64_t result_hits = 0;
  std::uint64_t mismatches = 0;

  double qps(std::size_t requests) const {
    return wall_micros > 0.0 ? static_cast<double>(requests) / (wall_micros / 1e6)
                             : 0.0;
  }
};

/// The load share of the busiest shard: 1.0 means one shard serves
/// everything (the unreplicated hot-key regime), 1/alive is perfect spread.
double max_load_share(const FabricStats& stats) {
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const auto& shard : stats.shards) {
    total += shard.queries;
    peak = std::max(peak, shard.queries);
  }
  return total > 0 ? static_cast<double>(peak) / static_cast<double>(total) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_shards = 4;
  std::size_t requests = 400;
  std::size_t instances = 12;
  std::size_t ctx_capacity = 4;
  std::size_t workers = 4;
  double zipf_s = 0.6;
  double repeat_fraction = 0.15;
  std::uint64_t hot_threshold = 16;
  std::size_t replicas = 1;
  double edge_fraction = 0.7;
  std::string out_path = "BENCH_fabric.json";

  constexpr const char* kName = "fabric_throughput";
  constexpr const char* kSummary =
      "shard-scaling curve, hot-key replication offload, and mid-load "
      "shard-kill recovery of the service fabric; writes BENCH_fabric.json";
  const std::initializer_list<dbr::bench::UsageFlag> kFlags = {
      {"--shards N", "max shard count; scaling doubles 1..N (default 4)"},
      {"--requests N", "requests per section (default 400)"},
      {"--instances N", "(base, n) instance pool size (default 12)"},
      {"--ctx-capacity N", "per-shard context cache capacity (default 4)"},
      {"--workers N", "total fabric workers across shards (default 4)"},
      {"--zipf S", "instance Zipf skew (default 0.6)"},
      {"--repeat F", "hot fault-set repeat fraction (default 0.15)"},
      {"--hot-threshold N", "hot-key promotion threshold (default 16)"},
      {"--replicas N", "hot replicas for replication/kill (default 1)"},
      {"--edge-fraction F", "share of edge-fault solves (default 0.7)"},
      {"--out PATH", "JSON artifact path (default BENCH_fabric.json)"},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--shards") max_shards = std::strtoull(next(), nullptr, 10);
    else if (arg == "--requests") requests = std::strtoull(next(), nullptr, 10);
    else if (arg == "--instances") instances = std::strtoull(next(), nullptr, 10);
    else if (arg == "--ctx-capacity") ctx_capacity = std::strtoull(next(), nullptr, 10);
    else if (arg == "--workers") workers = std::strtoull(next(), nullptr, 10);
    else if (arg == "--zipf") zipf_s = std::strtod(next(), nullptr);
    else if (arg == "--repeat") repeat_fraction = std::strtod(next(), nullptr);
    else if (arg == "--hot-threshold") hot_threshold = std::strtoull(next(), nullptr, 10);
    else if (arg == "--replicas") replicas = std::strtoull(next(), nullptr, 10);
    else if (arg == "--edge-fraction") edge_fraction = std::strtod(next(), nullptr);
    else if (arg == "--out") out_path = next();
    else return dbr::bench::usage_exit(argv[i], kName, kSummary, kFlags);
  }
  if (max_shards == 0) max_shards = 1;
  if (workers == 0) workers = max_shards;
  instances = make_instance_pool(instances).size();  // clamp to the grid

  dbr::bench::heading("fabric throughput: shard scaling / replication / recovery");
  std::cout << "shards<=" << max_shards << " requests/section=" << requests
            << " instances=" << instances << " ctx_capacity=" << ctx_capacity
            << " workers_total=" << workers << " zipf=" << zipf_s
            << " replicas=" << replicas << "\n";

  Rng rng(dbr::bench::seed());
  const std::vector<EmbedRequest> stream = make_instance_stream(
      rng, requests, instances, zipf_s, repeat_fraction,
      /*hot_faults=*/8, /*fault_zipf_s=*/1.1, edge_fraction);
  const auto reference = reference_answers(stream, instances);

  // --- scaling --------------------------------------------------------------

  std::vector<ScalingPoint> curve;
  for (std::size_t shards = 1; shards <= max_shards; shards *= 2) {
    FabricOptions fopts;
    fopts.shards = shards;
    fopts.hot_threshold = hot_threshold;
    fopts.hot_replicas = 0;  // isolate the residency effect
    fopts.workers_per_shard = std::max<std::size_t>(1, workers / shards);
    fopts.engine.context_cache_capacity = ctx_capacity;
    ShardRouter fabric(fopts);

    const Clock::time_point t0 = Clock::now();
    const std::vector<EmbedResponse> responses = fabric.query_batch(stream);
    ScalingPoint point;
    point.wall_micros = micros_between(t0, Clock::now());
    point.shards = shards;
    point.workers_per_shard = fopts.workers_per_shard;
    point.mismatches = count_mismatches(responses, reference);
    const auto agg = fabric.aggregate_engine_stats();
    point.context_builds = agg.contexts.misses;
    point.context_hits = agg.contexts.hits;
    point.result_hits = agg.serve.result_hits;
    curve.push_back(point);
  }

  dbr::TextTable scaling_table({"shards", "workers/shard", "qps", "speedup",
                                "ctx_builds", "ctx_hits", "result_hits",
                                "mismatches"});
  const double base_qps = curve.front().qps(requests);
  for (const ScalingPoint& p : curve) {
    scaling_table.new_row()
        .add(p.shards)
        .add(p.workers_per_shard)
        .add(p.qps(requests), 1)
        .add(base_qps > 0 ? p.qps(requests) / base_qps : 0.0, 2)
        .add(p.context_builds)
        .add(p.context_hits)
        .add(p.result_hits)
        .add(p.mismatches);
  }
  dbr::bench::emit(scaling_table);
  const double speedup =
      base_qps > 0 ? curve.back().qps(requests) / base_qps : 0.0;

  // --- replication ----------------------------------------------------------

  // A deliberately hot-skewed stream: most requests land on a handful of
  // instances, so without replication their owner shard serves nearly
  // everything.
  Rng hot_rng(dbr::bench::seed() + 1);
  const std::vector<EmbedRequest> hot_stream = make_instance_stream(
      hot_rng, requests, instances, /*instance_zipf_s=*/1.4,
      /*repeat_fraction=*/0.5, /*hot_faults=*/8, /*fault_zipf_s=*/1.1,
      edge_fraction);

  struct ReplPoint {
    double wall_micros = 0.0;
    std::uint64_t replica_reads = 0;
    std::uint64_t hot_keys = 0;
    double owner_share = 0.0;
  };
  const auto run_repl = [&](std::size_t hot_replicas) {
    FabricOptions fopts;
    fopts.shards = max_shards;
    fopts.hot_threshold = std::max<std::uint64_t>(1, hot_threshold / 2);
    fopts.hot_replicas = hot_replicas;
    fopts.workers_per_shard = std::max<std::size_t>(1, workers / max_shards);
    fopts.engine.context_cache_capacity = ctx_capacity;
    ShardRouter fabric(fopts);
    const Clock::time_point t0 = Clock::now();
    (void)fabric.query_batch(hot_stream);
    ReplPoint point;
    point.wall_micros = micros_between(t0, Clock::now());
    const FabricStats stats = fabric.stats();
    point.replica_reads = stats.replica_reads;
    point.hot_keys = stats.hot_keys;
    point.owner_share = max_load_share(stats);
    return point;
  };
  const ReplPoint repl_off = run_repl(0);
  const ReplPoint repl_on = run_repl(replicas);

  dbr::TextTable repl_table({"replicas", "qps", "replica_reads", "hot_keys",
                             "peak_load_share"});
  const auto repl_qps = [&](const ReplPoint& p) {
    return p.wall_micros > 0
               ? static_cast<double>(requests) / (p.wall_micros / 1e6)
               : 0.0;
  };
  repl_table.new_row().add(0).add(repl_qps(repl_off), 1).add(
      repl_off.replica_reads).add(repl_off.hot_keys).add(repl_off.owner_share, 3);
  repl_table.new_row().add(replicas).add(repl_qps(repl_on), 1).add(
      repl_on.replica_reads).add(repl_on.hot_keys).add(repl_on.owner_share, 3);
  dbr::bench::emit(repl_table);

  // --- shard kill -----------------------------------------------------------

  FabricOptions kopts;
  kopts.shards = max_shards;
  kopts.hot_threshold = hot_threshold;
  kopts.hot_replicas = replicas;
  kopts.workers_per_shard = std::max<std::size_t>(1, workers / max_shards);
  kopts.engine.context_cache_capacity = ctx_capacity;
  kopts.engine.validate_responses = true;  // in-fabric oracle on every answer
  ShardRouter kill_fabric(kopts);
  // The most popular instance is rank 0 of the pool; killing its owner
  // forces the hottest arc through a remap under load.
  const auto pool = make_instance_pool(instances);
  const dbr::service::ShardId victim =
      kill_fabric.owner_of(pool.front().base, pool.front().n);

  std::vector<EmbedResponse> kill_responses;
  std::atomic<bool> batch_done{false};
  const Clock::time_point kill_t0 = Clock::now();
  std::thread load([&] {
    kill_responses = kill_fabric.query_batch(stream);
    batch_done.store(true);
  });
  // Wait until the fabric is visibly mid-batch, then fail-stop the victim.
  const auto served = [&] {
    return kill_fabric.aggregate_engine_stats().serve.queries;
  };
  while (!batch_done.load() && served() < requests / 4)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Clock::time_point t0 = Clock::now();
  kill_fabric.kill_shard(victim);
  const double recovery_ms = micros_between(t0, Clock::now()) / 1000.0;
  while (!batch_done.load() && served() < (3 * requests) / 5)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  t0 = Clock::now();
  kill_fabric.revive_shard(victim);
  const double revive_ms = micros_between(t0, Clock::now()) / 1000.0;
  load.join();
  const double kill_wall_micros = micros_between(kill_t0, Clock::now());

  const std::uint64_t kill_mismatches =
      count_mismatches(kill_responses, reference);
  const FabricStats kill_stats = kill_fabric.stats();
  const auto kill_agg = kill_fabric.aggregate_engine_stats();

  dbr::TextTable kill_table({"victim", "recovery_ms", "revive_ms",
                             "remapped_keys", "remap_rounds", "oracle_checked",
                             "violations", "mismatches"});
  kill_table.new_row()
      .add(victim)
      .add(recovery_ms, 2)
      .add(revive_ms, 2)
      .add(kill_stats.remapped_keys)
      .add(kill_stats.remap_cost.total_rounds())
      .add(kill_agg.validation.checked)
      .add(kill_agg.validation.violations)
      .add(kill_mismatches);
  dbr::bench::emit(kill_table);

  // --- JSON artifact --------------------------------------------------------

  std::uint64_t scaling_mismatches = 0;
  for (const ScalingPoint& p : curve) scaling_mismatches += p.mismatches;

  dbr::bench::JsonWriter json;
  json.begin_object()
      .field("bench", "fabric_throughput")
      .field("seed", dbr::bench::seed());
  json.key("config")
      .begin_object()
      .field("max_shards", static_cast<std::uint64_t>(max_shards))
      .field("requests_per_section", static_cast<std::uint64_t>(requests))
      .field("instances", static_cast<std::uint64_t>(instances))
      .field("ctx_capacity_per_shard", static_cast<std::uint64_t>(ctx_capacity))
      .field("workers_total", static_cast<std::uint64_t>(workers))
      .field("instance_zipf_s", zipf_s)
      .field("repeat_fraction", repeat_fraction)
      .field("hot_threshold", hot_threshold)
      .field("hot_replicas", static_cast<std::uint64_t>(replicas))
      .field("edge_fraction", edge_fraction)
      .end_object();
  json.key("scaling").begin_object().key("configs").begin_array();
  for (const ScalingPoint& p : curve) {
    json.begin_object()
        .field("shards", static_cast<std::uint64_t>(p.shards))
        .field("workers_per_shard", static_cast<std::uint64_t>(p.workers_per_shard))
        .field("throughput_qps", p.qps(requests))
        .field("wall_micros", p.wall_micros)
        .field("context_builds", p.context_builds)
        .field("context_hits", p.context_hits)
        .field("result_hits", p.result_hits)
        .field("mismatches", p.mismatches)
        .end_object();
  }
  json.end_array()
      .field("speedup_max_vs_1", speedup)
      .field("mismatches", scaling_mismatches)
      .end_object();
  json.key("replication")
      .begin_object()
      .key("replicas_off")
      .begin_object()
      .field("throughput_qps", repl_qps(repl_off))
      .field("replica_reads", repl_off.replica_reads)
      .field("hot_keys", repl_off.hot_keys)
      .field("peak_load_share", repl_off.owner_share)
      .end_object()
      .key("replicas_on")
      .begin_object()
      .field("throughput_qps", repl_qps(repl_on))
      .field("replica_reads", repl_on.replica_reads)
      .field("hot_keys", repl_on.hot_keys)
      .field("peak_load_share", repl_on.owner_share)
      .end_object()
      .field("read_speedup",
             repl_qps(repl_off) > 0 ? repl_qps(repl_on) / repl_qps(repl_off) : 0.0)
      .field("peak_share_drop", repl_off.owner_share - repl_on.owner_share)
      .end_object();
  json.key("shard_kill")
      .begin_object()
      .field("victim", static_cast<std::uint64_t>(victim))
      .field("recovery_ms", recovery_ms)
      .field("revive_ms", revive_ms)
      .field("wall_micros", kill_wall_micros)
      .field("responses", static_cast<std::uint64_t>(kill_responses.size()))
      .field("oracle_checked", kill_agg.validation.checked)
      .field("oracle_violations", kill_agg.validation.violations)
      .field("mismatches", kill_mismatches)
      .key("remap")
      .begin_object()
      .field("events", kill_stats.remap_events)
      .field("remapped_keys", kill_stats.remapped_keys)
      .field("rounds", kill_stats.remap_cost.total_rounds())
      .field("messages", kill_stats.remap_cost.messages)
      .end_object()
      .end_object();
  json.key("acceptance")
      .begin_object()
      .field("speedup_target", 2.5)
      .field("speedup", speedup)
      .field("speedup_pass", speedup >= 2.5)
      .field("correct", scaling_mismatches == 0 && kill_mismatches == 0 &&
                            kill_agg.validation.violations == 0)
      .end_object();
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";

  if (scaling_mismatches > 0 || kill_mismatches > 0) {
    std::cerr << "bit-identity violated: scaling=" << scaling_mismatches
              << " shard_kill=" << kill_mismatches << "\n";
    return 1;
  }
  if (kill_agg.validation.violations > 0) {
    std::cerr << "oracle violations: " << kill_agg.validation.violations << "\n";
    return 1;
  }
  return 0;
}
