// Measures the cost of EngineOptions::validate_responses - the debug mode
// that runs the independent verify/ oracle on every cache miss - on the
// PR-1 mixed workload (bench/workload.hpp). Four modes: cache {off, on} x
// validation {off, on}. Prints a human-readable table and writes the
// machine-readable BENCH_verify_overhead.json with per-mode throughput and
// the overhead ratios; exits nonzero if the oracle flags any violation or
// validation changes any answer.
//
// Knobs (env):   DBR_SEED, DBR_THREADS
// Knobs (argv):  --requests N          stream length            (default 1200)
//                --unique N            hot scenario pool size   (default 24)
//                --repeat-fraction F   P(query drawn from pool) (default 0.9)
//                --out PATH            JSON path (default BENCH_verify_overhead.json)

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/engine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload.hpp"

namespace {

using dbr::Rng;
using dbr::bench::make_stream;
using dbr::service::BatchStats;
using dbr::service::EmbedEngine;
using dbr::service::EmbedRequest;
using dbr::service::EmbedResponse;
using dbr::service::EngineOptions;
using dbr::service::ValidationStats;

struct ModeOutcome {
  std::string name;
  BatchStats stats;
  ValidationStats validation;
  std::vector<EmbedResponse> responses;
};

ModeOutcome run_mode(const std::vector<EmbedRequest>& stream, bool cached,
                     bool validated) {
  EngineOptions options;
  options.enable_cache = cached;
  options.validate_responses = validated;
  EmbedEngine engine(options);
  ModeOutcome out;
  out.name = std::string(cached ? "cached" : "uncached") + "+" +
             (validated ? "oracle" : "plain");
  out.responses = engine.query_batch(stream, &out.stats);
  out.validation = engine.validation_stats();
  return out;
}

bool same_answers(const ModeOutcome& a, const ModeOutcome& b) {
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    if (!a.responses[i].result->same_embedding(*b.responses[i].result))
      return false;
  }
  return true;
}

void emit_mode_json(dbr::bench::JsonWriter& json, const ModeOutcome& mode) {
  const auto latency = mode.stats.merged_latency().snapshot();
  json.begin_object()
      .field("processed", mode.stats.processed())
      .field("wall_micros", mode.stats.wall_micros)
      .field("throughput_qps", mode.stats.throughput_qps())
      .field("cache_hits", mode.stats.cache_hits())
      .field("hit_rate", mode.stats.hit_rate())
      .field("oracle_checked", mode.validation.checked)
      .field("oracle_violations", mode.validation.violations)
      // Quarantined responses are counted apart and excluded from the
      // latency percentiles below (they measure the veto, not serving).
      .field("quarantined", mode.stats.quarantined());
  json.key("latency_micros")
      .begin_object()
      .field("mean", latency.mean())
      .field("p50", latency.percentile(50))
      .field("p90", latency.percentile(90))
      .field("p99", latency.percentile(99))
      .end_object();
  json.end_object();
}

double overhead_ratio(const ModeOutcome& plain, const ModeOutcome& oracle) {
  return oracle.stats.throughput_qps() > 0
             ? plain.stats.throughput_qps() / oracle.stats.throughput_qps()
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 1200;
  std::size_t unique = 24;
  double repeat_fraction = 0.9;
  std::string out_path = "BENCH_verify_overhead.json";

  constexpr const char* kName = "verify_overhead";
  constexpr const char* kSummary =
      "engine throughput with oracle validation on vs off; writes "
      "BENCH_verify_overhead.json";
  const std::initializer_list<dbr::bench::UsageFlag> kFlags = {
      {"--requests N", "total queries in the stream (default 1200)"},
      {"--unique N", "distinct fault sets (default 24)"},
      {"--repeat-fraction F", "fraction of repeated queries (default 0.9)"},
      {"--out PATH", "JSON artifact path (default BENCH_verify_overhead.json)"},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") requests = std::strtoull(next(), nullptr, 10);
    else if (arg == "--unique") unique = std::strtoull(next(), nullptr, 10);
    else if (arg == "--repeat-fraction") repeat_fraction = std::strtod(next(), nullptr);
    else if (arg == "--out") out_path = next();
    else return dbr::bench::usage_exit(argv[i], kName, kSummary, kFlags);
  }
  if (requests == 0) {
    std::cerr << "--requests must be positive\n";
    return 2;
  }

  Rng rng(dbr::bench::seed());
  const std::vector<EmbedRequest> stream =
      make_stream(rng, requests, unique, repeat_fraction);

  dbr::bench::heading("verify overhead: oracle validation on the mixed workload");
  std::cout << "requests=" << requests << " unique=" << unique
            << " repeat_fraction=" << repeat_fraction
            << " threads=" << dbr::worker_count() << "\n";

  const ModeOutcome uncached_plain = run_mode(stream, false, false);
  const ModeOutcome uncached_oracle = run_mode(stream, false, true);
  const ModeOutcome cached_plain = run_mode(stream, true, false);
  const ModeOutcome cached_oracle = run_mode(stream, true, true);
  const ModeOutcome* modes[] = {&uncached_plain, &uncached_oracle,
                                &cached_plain, &cached_oracle};

  dbr::TextTable table({"mode", "qps", "hit_rate", "p50_us", "p99_us",
                        "checked", "violations", "quarantined"});
  for (const ModeOutcome* mode : modes) {
    const auto latency = mode->stats.merged_latency().snapshot();
    table.new_row()
        .add(mode->name)
        .add(mode->stats.throughput_qps(), 1)
        .add(mode->stats.hit_rate(), 3)
        .add(latency.percentile(50), 1)
        .add(latency.percentile(99), 1)
        .add(mode->validation.checked)
        .add(mode->validation.violations)
        .add(mode->stats.quarantined());
  }
  dbr::bench::emit(table);

  std::uint64_t violations = 0;
  for (const ModeOutcome* mode : modes) violations += mode->validation.violations;
  const bool identical = same_answers(uncached_plain, uncached_oracle) &&
                         same_answers(uncached_plain, cached_plain) &&
                         same_answers(uncached_plain, cached_oracle);
  const double uncached_overhead = overhead_ratio(uncached_plain, uncached_oracle);
  const double cached_overhead = overhead_ratio(cached_plain, cached_oracle);
  std::cout << "validation overhead: " << uncached_overhead
            << "x uncached, " << cached_overhead << "x cached; violations: "
            << violations << ", identical responses: "
            << (identical ? "yes" : "NO") << "\n";

  dbr::bench::JsonWriter json;
  json.begin_object()
      .field("bench", "verify_overhead")
      .field("seed", dbr::bench::seed())
      .field("threads", dbr::worker_count());
  json.key("config")
      .begin_object()
      .field("requests", static_cast<std::uint64_t>(requests))
      .field("unique_scenarios", static_cast<std::uint64_t>(unique))
      .field("repeat_fraction", repeat_fraction)
      .end_object();
  json.key("modes").begin_object();
  for (const ModeOutcome* mode : modes) {
    json.key(mode->name);
    emit_mode_json(json, *mode);
  }
  json.end_object()
      .field("overhead_uncached", uncached_overhead)
      .field("overhead_cached", cached_overhead)
      .field("oracle_violations", violations)
      .field("identical_responses", identical)
      .end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return (identical && violations == 0) ? 0 : 1;
}
