// Verifies Propositions 2.2 and 2.3 and the worst-case optimality argument
// of Section 2.5 across a parameter grid:
//  * f <= d-2 node faults leave a cycle >= d^n - nf with eccentricity <= 2n;
//  * a single fault in B(2,n) leaves >= 2^n - (n+1);
//  * the adversarial fault set {a^(n-1)(d-1)} pins the FFC exactly at
//    d^n - nf, and exhaustive search confirms no better cycle exists on the
//    small instances.

#include <iostream>

#include "bench_common.hpp"
#include "core/ffc.hpp"
#include "graph/longest_cycle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Proposition 2.2 - cycle >= d^n - nf and ecc <= 2n for f <= d-2 (random faults)");
  {
    TextTable t({"d", "n", "f", "trials", "min |H|", "d^n - nf", "max ecc", "2n"});
    Rng rng(seed());
    for (auto [d, n] : {std::pair<Digit, unsigned>{3, 4}, {4, 4}, {5, 3}, {6, 3},
                        {7, 3}, {8, 2}, {9, 3}}) {
      const core::FfcSolver solver{DeBruijnDigraph(d, n)};
      const WordSpace& ws = solver.graph().words();
      for (unsigned f = 1; f <= d - 2; f += (d > 5 ? 2 : 1)) {
        std::uint64_t min_len = ws.size();
        std::uint32_t max_ecc = 0;
        const unsigned num_trials = 50;
        for (unsigned trial = 0; trial < num_trials; ++trial) {
          const auto faults = rng.sample_distinct(ws.size(), f);
          const auto r = solver.solve(faults);
          min_len = std::min<std::uint64_t>(min_len, r.cycle.length());
          max_ecc = std::max(max_ecc, r.root_eccentricity);
        }
        t.new_row()
            .add(static_cast<std::uint64_t>(d))
            .add(n)
            .add(f)
            .add(num_trials)
            .add(min_len)
            .add(static_cast<std::int64_t>(ws.size()) - static_cast<std::int64_t>(n) * f)
            .add(static_cast<std::uint64_t>(max_ecc))
            .add(2 * n);
      }
    }
    emit(t);
  }

  heading("Proposition 2.3 - single fault in B(2,n): |H| >= 2^n - (n+1), exhaustive");
  {
    TextTable t({"n", "faults tried", "min |H|", "2^n - (n+1)"});
    for (unsigned n : {4u, 6u, 8u, 10u}) {
      const core::FfcSolver solver{DeBruijnDigraph(2, n)};
      const WordSpace& ws = solver.graph().words();
      std::uint64_t min_len = ws.size();
      for (Word fault = 0; fault < ws.size(); ++fault) {
        const auto r = solver.solve(std::vector<Word>{fault});
        min_len = std::min<std::uint64_t>(min_len, r.cycle.length());
      }
      t.new_row().add(n).add(ws.size()).add(min_len).add(
          static_cast<std::int64_t>(ws.size()) - (n + 1));
    }
    emit(t);
  }

  heading("Worst-case fault placement {a^(n-1)(d-1)}: FFC == d^n - nf == optimum");
  {
    TextTable t({"d", "n", "f", "FFC length", "d^n - nf", "exhaustive optimum"});
    for (auto [d, n, f] : {std::tuple<Digit, unsigned, unsigned>{3, 2, 1},
                           {4, 2, 1}, {4, 2, 2}, {5, 2, 3}, {3, 3, 1}}) {
      const core::FfcSolver solver{DeBruijnDigraph(d, n)};
      const WordSpace& ws = solver.graph().words();
      std::vector<Word> faults;
      std::vector<bool> active(ws.size(), true);
      for (Digit a = 0; a < f; ++a) {
        Word x = ws.repeated(a);
        x = ws.with_digit(x, n - 1, d - 1);
        faults.push_back(x);
        active[x] = false;
      }
      const auto r = solver.solve(faults);
      const auto best = longest_cycle_bruteforce(solver.graph().materialize(), active);
      t.new_row()
          .add(static_cast<std::uint64_t>(d))
          .add(n)
          .add(f)
          .add(r.cycle.length())
          .add(static_cast<std::int64_t>(ws.size()) - static_cast<std::int64_t>(n) * f)
          .add(best);
    }
    emit(t);
  }
}

void BM_SolveWorstCase(benchmark::State& state) {
  const Digit d = static_cast<Digit>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const core::FfcSolver solver{DeBruijnDigraph(d, n)};
  const WordSpace& ws = solver.graph().words();
  std::vector<Word> faults;
  for (Digit a = 0; a + 2 < d; ++a) {
    faults.push_back(ws.with_digit(ws.repeated(a), n - 1, d - 1));
  }
  for (auto _ : state) {
    auto r = solver.solve(faults);
    benchmark::DoNotOptimize(r.cycle.length());
  }
}
BENCHMARK(BM_SolveWorstCase)->Args({5, 4})->Args({7, 3})->Args({4, 6});

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "prop_2_bounds",
                         "Propositions 2.2/2.3: FFC length and eccentricity bounds across a grid");
}
