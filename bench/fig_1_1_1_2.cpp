// Reproduces Figures 1.1 and 1.2: the structure of the binary De Bruijn
// graphs B(2,3), B(2,4) and of the undirected UB(2,3) - emitted as
// adjacency lists plus the degree census of [PR82] quoted in Section 1.2
// (d nodes of degree 2d-2, d(d-1) of degree 2d-1, d^n - d^2 of degree 2d).

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "debruijn/debruijn.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void dump_directed(Digit d, unsigned n) {
  const DeBruijnDigraph g(d, n);
  const WordSpace& ws = g.words();
  std::cout << "B(" << unsigned(d) << "," << n << "): " << g.num_nodes()
            << " nodes, " << g.num_edges() << " directed edges ("
            << unsigned(d) << " loops)\n";
  for (Word v = 0; v < g.num_nodes(); ++v) {
    std::cout << "  " << ws.to_string(v) << " ->";
    for (Word w : g.successors(v)) std::cout << " " << ws.to_string(w);
    if (g.is_loop_node(v)) std::cout << "   (loop)";
    std::cout << "\n";
  }
}

void print_tables() {
  heading("Figure 1.1(a) - B(2,3)");
  dump_directed(2, 3);
  heading("Figure 1.1(b) - B(2,4)");
  dump_directed(2, 4);

  heading("Figure 1.2 - UB(2,3) (loops deleted, parallel edges merged)");
  {
    const UndirectedDeBruijn g(2, 3);
    const WordSpace& ws = g.words();
    std::cout << "UB(2,3): " << g.num_nodes() << " nodes, " << g.num_edges()
              << " undirected edges\n";
    for (Word v = 0; v < g.num_nodes(); ++v) {
      std::cout << "  " << ws.to_string(v) << " --";
      for (Word w : g.neighbors(v)) std::cout << " " << ws.to_string(w);
      std::cout << "\n";
    }
  }

  heading("Degree census of UB(d,n) vs the [PR82] formula");
  {
    TextTable t({"d", "n", "deg 2d-2 (want d)", "deg 2d-1 (want d(d-1))",
                 "deg 2d (want d^n - d^2)"});
    for (auto [d, n] : {std::pair<Digit, unsigned>{2, 3}, {2, 4}, {3, 4}, {4, 4}, {4, 6}}) {
      const UndirectedDeBruijn g(d, n);
      std::map<unsigned, std::uint64_t> census;
      for (Word v = 0; v < g.num_nodes(); ++v) ++census[g.degree(v)];
      t.new_row()
          .add(static_cast<std::uint64_t>(d))
          .add(n)
          .add(census[2 * d - 2])
          .add(census[2 * d - 1])
          .add(census[2 * d]);
    }
    emit(t);
  }
}

void BM_NeighborEnumeration(benchmark::State& state) {
  const UndirectedDeBruijn g(4, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (Word v = 0; v < g.num_nodes(); ++v) acc += g.degree(v);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_NeighborEnumeration)->Arg(4)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "fig_1_1_1_2",
                         "Figures 1.1/1.2: B(2,3), B(2,4), UB(2,3) structure and degree census");
}
