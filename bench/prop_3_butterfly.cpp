// Verifies Propositions 3.5 and 3.6: for gcd(d,n) = 1 the butterfly F(d,n)
// inherits psi(d) disjoint Hamiltonian cycles and tolerates
// MAX{psi(d)-1, phi(d)} edge faults, via the lift Phi of Section 3.4.

#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "butterfly/butterfly.hpp"
#include "butterfly/lift.hpp"
#include "core/butterfly_embedding.hpp"
#include "core/disjoint_hc.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Proposition 3.6 - psi(d) disjoint Hamiltonian cycles in F(d,n)");
  {
    TextTable t({"F(d,n)", "nodes", "psi(d)", "built", "Hamiltonian", "disjoint"});
    for (auto [d, n] : {std::pair<Digit, unsigned>{2, 3}, {2, 5}, {3, 2}, {3, 4},
                        {4, 3}, {5, 2}, {5, 4}, {7, 2}, {8, 3}, {9, 2}}) {
      const ButterflyDigraph bf(d, n);
      const auto family = core::butterfly_disjoint_hcs(bf);
      bool all_ham = true;
      for (const auto& hc : family) {
        all_ham = all_ham && hc.size() == bf.num_nodes() &&
                  butterfly::is_butterfly_cycle(bf, hc);
      }
      std::set<std::pair<NodeId, NodeId>> seen;
      bool disjoint = true;
      for (const auto& hc : family) {
        for (std::size_t i = 0; i < hc.size(); ++i) {
          if (!seen.insert({hc[i], hc[(i + 1) % hc.size()]}).second) disjoint = false;
        }
      }
      t.new_row()
          .add("F(" + std::to_string(d) + "," + std::to_string(n) + ")")
          .add(bf.num_nodes())
          .add(core::psi(d))
          .add(family.size())
          .add(std::string(all_ham ? "yes" : "NO"))
          .add(std::string(disjoint ? "yes" : "NO"));
    }
    emit(t);
  }

  heading("Proposition 3.5 - fault-free HC under budget-level edge faults");
  {
    TextTable t({"F(d,n)", "budget", "trials", "successes"});
    Rng rng(seed());
    for (auto [d, n] : {std::pair<Digit, unsigned>{2, 3}, {3, 4}, {4, 3}, {5, 3},
                        {7, 2}, {9, 2}}) {
      const ButterflyDigraph bf(d, n);
      const auto edges = bf.materialize().edge_list();
      const unsigned budget = static_cast<unsigned>(core::max_tolerable_edge_faults(d));
      unsigned ok = 0;
      const unsigned tries = 15;
      for (unsigned trial = 0; trial < tries; ++trial) {
        std::vector<std::pair<NodeId, NodeId>> faults;
        for (auto idx : rng.sample_distinct(edges.size(), budget)) {
          faults.push_back(edges[idx]);
        }
        const auto hc = core::butterfly_fault_free_hc(bf, faults);
        if (!hc.has_value() || !butterfly::is_butterfly_cycle(bf, *hc)) continue;
        std::set<std::pair<NodeId, NodeId>> used;
        for (std::size_t i = 0; i < hc->size(); ++i) {
          used.insert({(*hc)[i], (*hc)[(i + 1) % hc->size()]});
        }
        bool avoided = true;
        for (const auto& e : faults) avoided = avoided && !used.contains(e);
        if (avoided) ++ok;
      }
      t.new_row()
          .add("F(" + std::to_string(d) + "," + std::to_string(n) + ")")
          .add(budget)
          .add(tries)
          .add(ok);
    }
    emit(t);
  }

  heading("gcd(d,n) != 1 correctly rejected");
  {
    const ButterflyDigraph bf(2, 4);
    try {
      (void)core::butterfly_disjoint_hcs(bf);
      std::cout << "F(2,4): NOT rejected (bug)\n";
    } catch (const precondition_error&) {
      std::cout << "F(2,4): rejected as expected (gcd(2,4) = 2)\n";
    }
  }
}

void BM_ButterflyLiftFamily(benchmark::State& state) {
  const ButterflyDigraph bf(static_cast<Digit>(state.range(0)),
                            static_cast<unsigned>(state.range(1)));
  for (auto _ : state) {
    auto family = core::butterfly_disjoint_hcs(bf);
    benchmark::DoNotOptimize(family.size());
  }
}
BENCHMARK(BM_ButterflyLiftFamily)->Args({4, 3})->Args({5, 4})->Args({8, 3});

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "prop_3_butterfly",
                         "Propositions 3.5/3.6: butterfly edge-fault tolerance via the lift Phi");
}
