// Reproduces Table 3.1: the guaranteed number psi(d) of pairwise disjoint
// Hamiltonian cycles in B(d,n) for 2 <= d <= 38 (exact arithmetic - the
// reproduction must match the published row verbatim), and validates the
// constructions by actually building and checking the families for every
// d <= 16 at n = 2.

#include <iostream>

#include "bench_common.hpp"
#include "core/disjoint_hc.hpp"
#include "debruijn/cycle.hpp"
#include "nt/numtheory.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Table 3.1 - psi(d), guaranteed disjoint Hamiltonian cycles, 2 <= d <= 38");
  {
    TextTable t({"d", "psi(d)", "strategy"});
    for (std::uint64_t d = 2; d <= 38; ++d) {
      std::string strategy;
      std::uint64_t p = 0;
      unsigned e = 0;
      if (nt::is_prime_power(d, &p, &e)) {
        if (p == 2) {
          strategy = "1 (char 2: d-1 cycles)";
        } else if ((p - 1) / 2 % 2 == 0 && core::lemma35_condition_b(p)) {
          strategy = "2 (+H_0: (d+1)/2)";
        } else if (core::lemma35_condition_b(p)) {
          strategy = "2 ((d-1)/2)";
        } else {
          strategy = "3 ((d-1)/2)";
        }
      } else {
        strategy = "Rees product";
      }
      t.new_row().add(d).add(core::psi(d)).add(strategy);
    }
    emit(t);
  }

  heading("Constructed-family verification (n = 2)");
  {
    TextTable t({"d", "psi(d)", "built", "all Hamiltonian", "pairwise disjoint"});
    for (std::uint64_t d = 2; d <= 16; ++d) {
      const WordSpace ws(static_cast<Digit>(d), 2);
      const auto family = core::disjoint_hamiltonian_cycles(d, 2);
      bool all_ham = true;
      for (const auto& hc : family) all_ham = all_ham && is_hamiltonian(ws, hc);
      bool disjoint = true;
      for (std::size_t i = 0; i < family.size() && disjoint; ++i) {
        for (std::size_t j = i + 1; j < family.size(); ++j) {
          if (!edges_disjoint(ws, family[i], family[j])) {
            disjoint = false;
            break;
          }
        }
      }
      t.new_row()
          .add(d)
          .add(core::psi(d))
          .add(family.size())
          .add(std::string(all_ham ? "yes" : "NO"))
          .add(std::string(disjoint ? "yes" : "NO"));
    }
    emit(t);
  }
}

void BM_DisjointFamilyConstruction(benchmark::State& state) {
  const std::uint64_t d = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto family = core::disjoint_hamiltonian_cycles(d, 2);
    benchmark::DoNotOptimize(family.size());
  }
}
BENCHMARK(BM_DisjointFamilyConstruction)->Arg(4)->Arg(8)->Arg(13)->Arg(16);

void BM_PsiEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t d = 2; d <= 38; ++d) acc += dbr::core::psi(d);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PsiEvaluation);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "table_3_1",
                         "Table 3.1: psi(d) disjoint Hamiltonian cycles, 2 <= d <= 38");
}
