// Verifies the O(K + n) communication complexity of the distributed FFC
// protocol (Section 2.4): per-phase round counts across network sizes, the
// broadcast phase tracking eccentricity(R) + 1, and wall-clock scaling of
// the centralized solver.

#include <iostream>

#include "bench_common.hpp"
#include "core/distributed_ffc.hpp"
#include "core/ffc.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Distributed FFC round counts (fault-free networks)");
  {
    TextTable t({"graph", "nodes", "n", "ecc(R)", "probe", "broadcast", "dossier",
                 "announce", "reroute", "total", "K+3n+2"});
    for (auto [d, n] : {std::pair<Digit, unsigned>{2, 6}, {2, 8}, {2, 10}, {2, 12},
                        {3, 5}, {3, 7}, {4, 4}, {4, 5}, {5, 4}}) {
      const core::DistributedFfcSolver solver{DeBruijnDigraph(d, n)};
      const auto r = solver.run({}, 1);
      t.new_row()
          .add("B(" + std::to_string(d) + "," + std::to_string(n) + ")")
          .add(r.bstar_size)
          .add(n)
          .add(static_cast<std::uint64_t>(r.root_eccentricity))
          .add(r.stats.probe_rounds)
          .add(r.stats.broadcast_rounds)
          .add(r.stats.dossier_rounds)
          .add(r.stats.announce_rounds)
          .add(r.stats.reroute_rounds)
          .add(r.stats.total_rounds())
          .add(static_cast<std::uint64_t>(r.root_eccentricity) + 3 * n + 2);
    }
    emit(t);
  }

  heading("Round counts under faults (B(2,10), increasing f)");
  {
    TextTable t({"f", "|B*|", "ecc(R)", "total rounds", "messages"});
    const core::DistributedFfcSolver solver{DeBruijnDigraph(2, 10)};
    Rng rng(seed());
    for (unsigned f : {0u, 2u, 5u, 10u, 20u, 40u}) {
      const auto faults = rng.sample_distinct(1024, f);
      Word root;
      try {
        root = solver.default_root(faults);
      } catch (const precondition_error&) {
        continue;
      }
      const auto r = solver.run(faults, root);
      t.new_row()
          .add(f)
          .add(r.bstar_size)
          .add(static_cast<std::uint64_t>(r.root_eccentricity))
          .add(r.stats.total_rounds())
          .add(r.stats.messages);
    }
    emit(t);
  }
}

void BM_CentralizedSolve(benchmark::State& state) {
  const Digit d = static_cast<Digit>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const core::FfcSolver solver{DeBruijnDigraph(d, n)};
  Rng rng(1);
  const auto faults = rng.sample_distinct(solver.graph().num_nodes(), 3);
  for (auto _ : state) {
    auto r = solver.solve(faults);
    benchmark::DoNotOptimize(r.bstar_size);
  }
  state.SetComplexityN(static_cast<std::int64_t>(solver.graph().num_nodes()));
}
BENCHMARK(BM_CentralizedSolve)
    ->Args({2, 8})
    ->Args({2, 10})
    ->Args({2, 12})
    ->Args({2, 14})
    ->Args({4, 5})
    ->Args({4, 6})
    ->Args({4, 7})
    ->Complexity(benchmark::oN);

void BM_DistributedProtocol(benchmark::State& state) {
  const core::DistributedFfcSolver solver{
      DeBruijnDigraph(2, static_cast<unsigned>(state.range(0)))};
  for (auto _ : state) {
    auto r = solver.run({}, 1);
    benchmark::DoNotOptimize(r.stats.total_rounds());
  }
}
BENCHMARK(BM_DistributedProtocol)->Arg(8)->Arg(10)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "ffc_scaling",
                         "Distributed FFC communication complexity O(K + n) (Section 2.4)");
}
