// Reproduces Table 2.2: size of the component containing R = 00001 and the
// eccentricity of R in B(4,5) with f randomly distributed faulty necklaces.
//
// Shape criteria: B(4,5) fragments far less than B(2,10) (d = 4 gives three
// necklace-disjoint escape routes, Proposition 2.2): min size equals the
// d^n - nf line almost everywhere, and the eccentricity stays within a
// round or two of n + 1 = 6 even at f = 50.

#include <iostream>

#include "bench_common.hpp"
#include "core/ffc.hpp"
#include "fault_sweep.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Table 2.2 - B(4,5), component of R = 00001 under f faulty necklaces");
  std::cout << "trials per row: " << trials() << ", seed: " << seed() << "\n";
  emit(fault_sweep_table(4, 5, paper_fault_counts(), trials(), seed()));
  std::cout << "Paper reference (f=10): avg 975.07, min 974, ecc avg 6.08.\n";
}

void BM_ComponentAndEccentricityB45(benchmark::State& state) {
  const core::FfcSolver solver{DeBruijnDigraph(4, 5)};
  const unsigned f = static_cast<unsigned>(state.range(0));
  std::uint64_t s = 0;
  for (auto _ : state) {
    const auto row = fault_sweep_row(solver, f, 10, 11 + ++s);
    benchmark::DoNotOptimize(row.avg_size);
  }
}
BENCHMARK(BM_ComponentAndEccentricityB45)->Arg(1)->Arg(10)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "table_2_2",
                         "Table 2.2: component size and eccentricity in B(4,5) under faulty necklaces");
}
