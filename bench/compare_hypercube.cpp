// Reproduces the Chapter 2 introduction's comparison: with two faults in a
// 4096-node network, the hypercube Q_12 guarantees a fault-free cycle of
// length 4092 ([WC92, CL91a]) while the De Bruijn graph B(4,6) guarantees at
// least 4084 - using 33% fewer links (16,384 directed De Bruijn edges vs
// 24,576 hypercube links). Both sides are built constructively here.

#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "core/ffc.hpp"
#include "hypercube/fault_free_cycle.hpp"
#include "hypercube/hypercube.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Chapter 2 comparison - 4096-node De Bruijn B(4,6) vs hypercube Q_12");
  const DeBruijnDigraph debruijn(4, 6);
  const hypercube::Hypercube cube(12);
  {
    TextTable t({"network", "nodes", "links", "degree", "guarantee (f=2)"});
    t.new_row()
        .add(std::string("B(4,6)"))
        .add(debruijn.num_nodes())
        .add(debruijn.num_edges())
        .add(std::string("d=4 in/out"))
        .add(std::string(">= 4084 (d^n - nf)"));
    t.new_row()
        .add(std::string("Q_12"))
        .add(cube.num_nodes())
        .add(cube.num_links())
        .add(std::string("12"))
        .add(std::string(">= 4092 (2^n - 2f)"));
    emit(t);
  }

  heading("Constructive check over random 2-fault sets (10 trials each)");
  {
    const core::FfcSolver solver(debruijn);
    Rng rng(seed());
    TextTable t({"trial", "B(4,6) cycle", ">= 4084", "Q_12 cycle", ">= 4092"});
    for (unsigned trial = 0; trial < 10; ++trial) {
      const auto db_faults = rng.sample_distinct(debruijn.num_nodes(), 2);
      const auto db = solver.solve(db_faults);
      const auto hc_faults = rng.sample_distinct(cube.num_nodes(), 2);
      const auto hc = hypercube::fault_free_cycle(12, hc_faults);
      t.new_row()
          .add(trial)
          .add(db.cycle.length())
          .add(std::string(db.cycle.length() >= 4084 ? "yes" : "NO"))
          .add(hc.size())
          .add(std::string(hc.size() >= 4092 ? "yes" : "NO"));
    }
    emit(t);
  }

  heading("Guarantee per fault budget (worst-case bounds)");
  {
    TextTable t({"f", "B(4,6): d^n - nf", "Q_12: 2^n - 2f", "B tolerates?", "Q tolerates?"});
    for (unsigned f = 0; f <= 10; ++f) {
      t.new_row()
          .add(f)
          .add(static_cast<std::int64_t>(4096 - 6 * f))
          .add(static_cast<std::int64_t>(4096 - 2 * f))
          .add(std::string(f <= 2 ? "guaranteed" : "heuristic"))   // f <= d-2
          .add(std::string(f <= 10 ? "guaranteed" : "heuristic")); // f <= n-2
    }
    emit(t);
    std::cout << "The De Bruijn guarantee window (f <= d-2 = 2) is narrower, but at\n"
                 "equal fault count its network needs 2/3 of the links and constant\n"
                 "degree 4 instead of log N = 12.\n";
  }
}

void BM_DeBruijnSide(benchmark::State& state) {
  const core::FfcSolver solver{DeBruijnDigraph(4, 6)};
  Rng rng(3);
  const auto faults = rng.sample_distinct(4096, 2);
  for (auto _ : state) {
    auto r = solver.solve(faults);
    benchmark::DoNotOptimize(r.cycle.length());
  }
}
BENCHMARK(BM_DeBruijnSide);

void BM_HypercubeSide(benchmark::State& state) {
  Rng rng(3);
  const auto faults = rng.sample_distinct(4096, 2);
  for (auto _ : state) {
    auto c = hypercube::fault_free_cycle(12, faults);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_HypercubeSide);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "compare_hypercube",
                         "Fault-free cycle guarantee: hypercube Q_12 vs De Bruijn B(4,6) (Chapter 2 intro)");
}
