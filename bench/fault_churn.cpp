// Fault-churn workload for the instance-context architecture.
//
// Two measurements, both on same-(base, n) streams whose fault sets are all
// distinct (so the result cache never serves a repeat and every query pays
// the solve path):
//
//  1. Context reuse vs cold per-query precompute: the same stream through an
//     engine that shares the per-instance InstanceContext (reuse_contexts =
//     true, the default) and through one that rebuilds it on every query
//     (reuse_contexts = false, the pre-refactor behavior). Responses must be
//     bit-identical; the speedup is the hot-path win of the context/solve
//     split.
//
//  2. Session incremental updates: a seeded add/remove fault-churn timeline
//     served by a stateful EmbedSession (pinned context + result cache)
//     vs a cold stateless query per event. Reports per-update latency.
//
//  3. Raw cold-solve speed: the allocation-free arena path (solve_ffc into
//     a reused SolveScratch, leaning on the context's precomputed
//     label-merge tables) vs the legacy per-call-allocation reference
//     (FfcSolver::solve) on the same shared context. Results are asserted
//     bit-identical field for field; the JSON `cold_solve_speedup` field is
//     the number CI's fault-churn smoke gates on.
//
//  4. Incremental repair vs full recompute: the same churn timeline (every
//     event a single-fault delta) through a repair-enabled session
//     (EngineOptions::incremental_repair - core/repair necklace splicing)
//     and a recompute session, result caches off so every event pays its
//     real serve path. Every answer on both sides is held against the
//     verify/ oracle; the bench exits nonzero on any violation or any
//     verdict divergence (other than repair strictly improving on a
//     beyond-guarantee kNoEmbedding, reported as `improved`).
//
// Writes the machine-readable BENCH_fault_churn.json.
//
// Knobs (env):   DBR_SEED
// Knobs (argv):  --queries N        distinct fault sets per family (default 250)
//                --events N         churn events in the session part (default 400)
//                --repair-events N  churn events per repair family  (default 300)
//                --out PATH         JSON path (default BENCH_fault_churn.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ffc.hpp"
#include "core/instance_context.hpp"
#include "core/solve_scratch.hpp"
#include "service/engine.hpp"
#include "service/session.hpp"
#include "service/stats.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/word.hpp"
#include "verify/oracle.hpp"
#include "verify/scenario.hpp"

namespace {

using dbr::Digit;
using dbr::Rng;
using dbr::Word;
using dbr::WordSpace;
using dbr::service::EmbedEngine;
using dbr::service::EmbedRequest;
using dbr::service::EmbedResponse;
using dbr::service::EmbedSession;
using dbr::service::EngineOptions;
using dbr::service::FaultKind;
using dbr::service::LatencyRecorder;
using dbr::service::LatencySnapshot;
using dbr::service::Strategy;

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

struct Family {
  const char* name;
  Digit base;
  unsigned n;
  FaultKind kind;
  Strategy strategy;
  std::uint64_t min_faults;
  std::uint64_t max_faults;
};

// One family per construction the context precomputes for: the FFC necklace
// tables, the psi-family index (+ phi machinery via kEdgeAuto), and the
// butterfly lift.
constexpr Family kFamilies[] = {
    {"ffc_node_b2_n12", 2, 12, FaultKind::kNode, Strategy::kFfc, 1, 3},
    {"edge_auto_b4_n6", 4, 6, FaultKind::kEdge, Strategy::kEdgeAuto, 1, 2},
    {"butterfly_b3_n7", 3, 7, FaultKind::kEdge, Strategy::kButterfly, 1, 1},
};

/// `count` requests on one instance with pairwise-distinct fault sets.
std::vector<EmbedRequest> distinct_fault_stream(const Family& family, Rng& rng,
                                                std::size_t count) {
  const WordSpace ws(family.base, family.n);
  const std::uint64_t space = family.kind == FaultKind::kNode
                                  ? ws.size()
                                  : ws.edge_word_count();
  std::set<std::vector<Word>> seen;
  std::vector<EmbedRequest> stream;
  stream.reserve(count);
  // A family can run out of distinct fault sets (e.g. single-fault families
  // have only `space` of them); cap the duplicate redraws so an oversized
  // --queries truncates the stream instead of spinning forever.
  std::uint64_t duplicate_draws = 0;
  const std::uint64_t max_duplicate_draws = 50 * count + 10000;
  while (stream.size() < count && duplicate_draws < max_duplicate_draws) {
    const std::uint64_t f =
        family.min_faults + rng.below(family.max_faults - family.min_faults + 1);
    std::vector<Word> faults;
    for (std::uint64_t v : rng.sample_distinct(space, f)) faults.push_back(v);
    std::vector<Word> key = faults;
    std::sort(key.begin(), key.end());
    if (!seen.insert(std::move(key)).second) {  // keep sets distinct
      ++duplicate_draws;
      continue;
    }
    EmbedRequest req;
    req.base = family.base;
    req.n = family.n;
    req.fault_kind = family.kind;
    req.strategy = family.strategy;
    req.faults = std::move(faults);
    stream.push_back(std::move(req));
  }
  return stream;
}

struct ModeRun {
  double wall_micros = 0.0;
  std::vector<EmbedResponse> responses;
  dbr::service::ServeStats serve;
};

ModeRun run_stream(const std::vector<EmbedRequest>& stream, bool reuse_contexts) {
  EngineOptions options;
  options.reuse_contexts = reuse_contexts;
  EmbedEngine engine(options);
  ModeRun out;
  out.responses.reserve(stream.size());
  const Clock::time_point start = Clock::now();
  for (const EmbedRequest& req : stream) out.responses.push_back(engine.query(req));
  out.wall_micros = micros_since(start);
  out.serve = engine.serve_stats();
  return out;
}

bool all_identical(const std::vector<EmbedResponse>& a,
                   const std::vector<EmbedResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].result || !b[i].result) return false;
    if (!a[i].result->same_embedding(*b[i].result)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kName = "fault_churn";
  constexpr const char* kSummary =
      "context reuse vs cold precompute + session incremental updates; "
      "writes BENCH_fault_churn.json";
  const std::initializer_list<dbr::bench::UsageFlag> kFlags = {
      {"--queries N", "distinct fault sets per family (default 250)"},
      {"--events N", "churn events in the session part (default 400)"},
      {"--repair-events N", "churn events per repair family (default 300)"},
      {"--out PATH", "JSON artifact path (default BENCH_fault_churn.json)"},
  };
  std::size_t queries = 250;
  std::size_t events = 400;
  std::size_t repair_events = 300;
  std::string out_path = "BENCH_fault_churn.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--queries") queries = std::strtoull(next(), nullptr, 10);
    else if (arg == "--events") events = std::strtoull(next(), nullptr, 10);
    else if (arg == "--repair-events") repair_events = std::strtoull(next(), nullptr, 10);
    else if (arg == "--out") out_path = next();
    else return dbr::bench::usage_exit(argv[i], kName, kSummary, kFlags);
  }

  Rng rng(dbr::bench::seed());
  dbr::bench::heading(
      "fault churn: context reuse vs cold per-query precompute");
  std::cout << "queries=" << queries << " per family, events=" << events
            << " (same (base,n), all fault sets distinct)\n";

  dbr::bench::JsonWriter json;
  json.begin_object()
      .field("bench", "fault_churn")
      .field("seed", dbr::bench::seed());
  json.key("config")
      .begin_object()
      .field("queries_per_family", static_cast<std::uint64_t>(queries))
      .field("session_events", static_cast<std::uint64_t>(events))
      .end_object();

  bool identical = true;
  double cold_total = 0.0, warm_total = 0.0;
  dbr::TextTable table({"family", "queries", "cold_us/q", "warm_us/q",
                        "speedup", "ctx_hits"});
  json.key("families").begin_array();
  for (const Family& family : kFamilies) {
    const std::vector<EmbedRequest> stream =
        distinct_fault_stream(family, rng, queries);
    const ModeRun cold = run_stream(stream, /*reuse_contexts=*/false);
    const ModeRun warm = run_stream(stream, /*reuse_contexts=*/true);
    const bool same = all_identical(cold.responses, warm.responses);
    identical = identical && same;
    cold_total += cold.wall_micros;
    warm_total += warm.wall_micros;
    const double speedup =
        warm.wall_micros > 0.0 ? cold.wall_micros / warm.wall_micros : 0.0;
    table.new_row()
        .add(family.name)
        .add(static_cast<std::uint64_t>(stream.size()))
        .add(cold.wall_micros / static_cast<double>(stream.size()), 1)
        .add(warm.wall_micros / static_cast<double>(stream.size()), 1)
        .add(speedup, 2)
        .add(warm.serve.context_hits);
    json.begin_object()
        .field("family", family.name)
        .field("base", static_cast<std::uint64_t>(family.base))
        .field("n", family.n)
        .field("strategy", dbr::service::to_string(family.strategy))
        .field("queries", static_cast<std::uint64_t>(stream.size()))
        .field("cold_wall_micros", cold.wall_micros)
        .field("warm_wall_micros", warm.wall_micros)
        .field("speedup", speedup)
        .field("warm_context_hits", warm.serve.context_hits)
        .field("warm_context_misses", warm.serve.context_misses)
        .field("cold_context_hits", cold.serve.context_hits)
        .field("identical_responses", same)
        .end_object();
  }
  json.end_array();
  dbr::bench::emit(table);

  const double overall_speedup = warm_total > 0.0 ? cold_total / warm_total : 0.0;
  std::cout << "overall speedup (context reuse vs cold precompute): "
            << overall_speedup << "x, identical responses: "
            << (identical ? "yes" : "NO") << "\n";

  // --- Raw cold-solve speed: arena path vs legacy allocation path. ---
  dbr::bench::heading("fault churn: raw FFC solve, arena vs legacy allocation");
  const Family& raw_family = kFamilies[0];  // ffc_node_b2_n12
  const std::vector<EmbedRequest> raw_stream =
      distinct_fault_stream(raw_family, rng, queries);
  const auto raw_ctx =
      dbr::core::InstanceContext::make(raw_family.base, raw_family.n);
  const dbr::core::FfcSolver raw_solver(*raw_ctx);
  dbr::core::SolveScratch raw_scratch;

  // Solve first, compare after: the identity audit stays out of both
  // timed loops.
  std::vector<dbr::core::FfcResult> legacy_results, arena_results;
  legacy_results.reserve(raw_stream.size());
  arena_results.reserve(raw_stream.size());
  const Clock::time_point legacy_start = Clock::now();
  for (const EmbedRequest& req : raw_stream)
    legacy_results.push_back(raw_solver.solve(req.faults));
  const double legacy_wall = micros_since(legacy_start);
  const Clock::time_point arena_start = Clock::now();
  for (const EmbedRequest& req : raw_stream)
    arena_results.push_back(dbr::core::solve_ffc(*raw_ctx, req.faults, raw_scratch));
  const double arena_wall = micros_since(arena_start);

  bool raw_identical = true;
  for (std::size_t i = 0; i < raw_stream.size(); ++i) {
    const dbr::core::FfcResult& a = legacy_results[i];
    const dbr::core::FfcResult& b = arena_results[i];
    raw_identical = raw_identical && a.cycle == b.cycle && a.root == b.root &&
                    a.bstar_size == b.bstar_size &&
                    a.root_eccentricity == b.root_eccentricity &&
                    a.faulty_necklace_reps == b.faulty_necklace_reps &&
                    a.faulty_node_count == b.faulty_node_count &&
                    a.necklace_count == b.necklace_count &&
                    a.tree_edges == b.tree_edges &&
                    a.modified_edges == b.modified_edges;
  }
  identical = identical && raw_identical;

  const double cold_solve_speedup =
      arena_wall > 0.0 ? legacy_wall / arena_wall : 0.0;
  dbr::TextTable raw_table(
      {"family", "queries", "legacy_us/q", "arena_us/q", "speedup"});
  raw_table.new_row()
      .add(raw_family.name)
      .add(static_cast<std::uint64_t>(raw_stream.size()))
      .add(legacy_wall / static_cast<double>(raw_stream.size()), 1)
      .add(arena_wall / static_cast<double>(raw_stream.size()), 1)
      .add(cold_solve_speedup, 2);
  dbr::bench::emit(raw_table);
  std::cout << "raw cold-solve speedup (arena vs legacy): "
            << cold_solve_speedup << "x, bit-identical results: "
            << (raw_identical ? "yes" : "NO") << "\n";
  json.key("raw_speed")
      .begin_object()
      .field("family", raw_family.name)
      .field("queries", static_cast<std::uint64_t>(raw_stream.size()))
      .field("legacy_wall_micros", legacy_wall)
      .field("arena_wall_micros", arena_wall)
      .field("cold_solve_speedup", cold_solve_speedup)
      .field("identical_results", raw_identical)
      .end_object();

  // --- Session incremental updates vs stateless cold queries. ---
  dbr::bench::heading("fault churn: session incremental updates");
  const Family session_family = kFamilies[0];  // FFC node churn
  EmbedRequest churn_instance;
  churn_instance.base = session_family.base;
  churn_instance.n = session_family.n;
  churn_instance.fault_kind = session_family.kind;
  churn_instance.strategy = session_family.strategy;
  // The verify/ churn regime over this bench-sized instance: same seeded
  // event grammar the session/fuzz tests replay.
  const dbr::verify::ChurnScript churn = dbr::verify::make_churn_script(
      dbr::bench::seed(), churn_instance, events, /*max_live=*/4);

  EmbedEngine warm_engine;  // defaults: result cache + context reuse
  EmbedSession session(warm_engine, session_family.base, session_family.n,
                       session_family.kind, session_family.strategy);
  EngineOptions cold_options;
  cold_options.reuse_contexts = false;
  cold_options.enable_cache = false;
  EmbedEngine cold_engine(cold_options);

  LatencyRecorder session_lat, stateless_lat;
  std::vector<Word> live;
  bool session_identical = true;
  double session_wall = 0.0, stateless_wall = 0.0;
  for (const dbr::verify::ChurnEvent& event : churn.events) {
    const bool add = event.add;
    const Word fault = event.fault;
    Clock::time_point start = Clock::now();
    if (add) {
      session.add_fault(fault);
    } else {
      session.clear_fault(fault);
    }
    const EmbedResponse& incremental = session.current_ring();
    const double session_micros = micros_since(start);
    session_wall += session_micros;
    session_lat.record(session_micros);

    if (add) {
      live.push_back(fault);
    } else {
      live.erase(std::find(live.begin(), live.end(), fault));
    }
    EmbedRequest req;
    req.base = session_family.base;
    req.n = session_family.n;
    req.fault_kind = session_family.kind;
    req.strategy = session_family.strategy;
    req.faults = live;
    start = Clock::now();
    const EmbedResponse stateless = cold_engine.query(req);
    const double stateless_micros = micros_since(start);
    stateless_wall += stateless_micros;
    stateless_lat.record(stateless_micros);

    if (!incremental.result || !stateless.result ||
        !incremental.result->same_embedding(*stateless.result)) {
      session_identical = false;
    }
  }
  identical = identical && session_identical;

  const double session_speedup =
      session_wall > 0.0 ? stateless_wall / session_wall : 0.0;
  const LatencySnapshot session_snap = session_lat.snapshot();
  const LatencySnapshot stateless_snap = stateless_lat.snapshot();
  dbr::TextTable session_table(
      {"mode", "events", "mean_us", "p50_us", "p99_us"});
  session_table.new_row()
      .add("session")
      .add(static_cast<std::uint64_t>(churn.events.size()))
      .add(session_snap.mean(), 1)
      .add(session_snap.percentile(50), 1)
      .add(session_snap.percentile(99), 1);
  session_table.new_row()
      .add("stateless_cold")
      .add(static_cast<std::uint64_t>(churn.events.size()))
      .add(stateless_snap.mean(), 1)
      .add(stateless_snap.percentile(50), 1)
      .add(stateless_snap.percentile(99), 1);
  dbr::bench::emit(session_table);
  std::cout << "session speedup vs stateless cold: " << session_speedup
            << "x (result-cache hits on revisited states: "
            << session.stats().result_cache_hits << ")\n";

  json.field("speedup_context_reuse", overall_speedup);
  json.key("session")
      .begin_object()
      .field("family", session_family.name)
      .field("events", static_cast<std::uint64_t>(churn.events.size()))
      .field("session_wall_micros", session_wall)
      .field("stateless_wall_micros", stateless_wall)
      .field("speedup", session_speedup)
      .field("session_mean_micros", session_snap.mean())
      .field("session_p50_micros", session_snap.percentile(50))
      .field("session_p99_micros", session_snap.percentile(99))
      .field("stateless_mean_micros", stateless_snap.mean())
      .field("stateless_p50_micros", stateless_snap.percentile(50))
      .field("stateless_p99_micros", stateless_snap.percentile(99))
      .field("result_cache_hits", session.stats().result_cache_hits)
      .field("solves", session.stats().solves)
      .field("identical_responses", session_identical)
      .end_object();

  // --- Incremental repair vs full recompute on single-fault deltas. ---
  dbr::bench::heading("fault churn: incremental repair vs full recompute");
  struct RepairFamily {
    const char* name;
    Digit base;
    unsigned n;
    FaultKind kind;
    Strategy strategy;
    std::uint64_t max_live;
  };
  // One family per repairable construction: FFC necklace splicing, the
  // psi-scan no-op path, and mixed pull-back detours.
  constexpr RepairFamily kRepairFamilies[] = {
      {"ffc_node_b2_n12", 2, 12, FaultKind::kNode, Strategy::kFfc, 4},
      {"edge_auto_b4_n6", 4, 6, FaultKind::kEdge, Strategy::kEdgeAuto, 2},
      {"mixed_b2_n10", 2, 10, FaultKind::kMixed, Strategy::kMixed, 3},
  };
  bool repair_verdicts_ok = true;
  std::uint64_t repair_violations = 0;
  double headline_speedup = 0.0;
  std::uint64_t headline_fell_back = 0;
  dbr::TextTable repair_table({"family", "events", "repair_p50_us",
                               "recompute_p50_us", "speedup_p50", "spliced",
                               "fell_back"});
  json.key("repair").begin_object();
  json.key("families").begin_array();
  for (const RepairFamily& family : kRepairFamilies) {
    EmbedRequest instance;
    instance.base = family.base;
    instance.n = family.n;
    instance.fault_kind = family.kind;
    instance.strategy = family.strategy;
    const dbr::verify::ChurnScript churn = dbr::verify::make_churn_script(
        dbr::bench::seed(), instance, repair_events, family.max_live);

    // Result caches off on both sides: every event pays its genuine serve
    // path (splice vs re-solve), not a cache replay of a revisited state.
    EngineOptions repair_opts;
    repair_opts.incremental_repair = true;
    repair_opts.enable_cache = false;
    EmbedEngine repair_engine(repair_opts);
    EmbedSession repair_session(repair_engine, family.base, family.n,
                                family.kind, family.strategy);
    EngineOptions recompute_opts;
    recompute_opts.enable_cache = false;
    EmbedEngine recompute_engine(recompute_opts);
    EmbedSession recompute_session(recompute_engine, family.base, family.n,
                                   family.kind, family.strategy);

    LatencyRecorder repair_lat, recompute_lat;
    std::uint64_t improved = 0;
    bool verdicts_ok = true;
    for (const dbr::verify::ChurnEvent& event : churn.events) {
      Clock::time_point start = Clock::now();
      if (event.add) {
        repair_session.add_fault(event.kind, event.fault);
      } else {
        repair_session.clear_fault(event.kind, event.fault);
      }
      const EmbedResponse repaired = repair_session.current_ring();
      repair_lat.record(micros_since(start));

      start = Clock::now();
      if (event.add) {
        recompute_session.add_fault(event.kind, event.fault);
      } else {
        recompute_session.clear_fault(event.kind, event.fault);
      }
      const EmbedResponse recomputed = recompute_session.current_ring();
      recompute_lat.record(micros_since(start));

      EmbedRequest request = instance;
      request.faults = repair_session.faults();
      request.edge_faults = repair_session.edge_faults();
      if (!repaired.result || !recomputed.result) {
        verdicts_ok = false;
        continue;
      }
      if (!dbr::verify::check_response(request, *repaired.result).ok() ||
          !dbr::verify::check_response(request, *recomputed.result).ok()) {
        ++repair_violations;
      }
      if (repaired.result->status == recomputed.result->status) {
        if (repaired.result->lower_bound != recomputed.result->lower_bound ||
            repaired.result->upper_bound != recomputed.result->upper_bound) {
          verdicts_ok = false;  // envelope divergence is a repair bug
        }
      } else if (repaired.result->status == dbr::service::EmbedStatus::kOk &&
                 recomputed.result->status ==
                     dbr::service::EmbedStatus::kNoEmbedding) {
        ++improved;  // a surviving spliced ring beats giving up
      } else {
        verdicts_ok = false;
      }
    }
    repair_verdicts_ok = repair_verdicts_ok && verdicts_ok;

    const auto& rstats = repair_session.repair_stats();
    const LatencySnapshot repair_snap = repair_lat.snapshot();
    const LatencySnapshot recompute_snap = recompute_lat.snapshot();
    const double speedup = repair_snap.percentile(50) > 0.0
                               ? recompute_snap.percentile(50) /
                                     repair_snap.percentile(50)
                               : 0.0;
    if (family.strategy == Strategy::kFfc) {
      headline_speedup = speedup;  // the primary churn family
      headline_fell_back = rstats.fell_back;
    }
    repair_table.new_row()
        .add(family.name)
        .add(static_cast<std::uint64_t>(churn.events.size()))
        .add(repair_snap.percentile(50), 1)
        .add(recompute_snap.percentile(50), 1)
        .add(speedup, 2)
        .add(rstats.spliced)
        .add(rstats.fell_back);
    json.begin_object()
        .field("family", family.name)
        .field("base", static_cast<std::uint64_t>(family.base))
        .field("n", family.n)
        .field("strategy", dbr::service::to_string(family.strategy))
        .field("events", static_cast<std::uint64_t>(churn.events.size()))
        .field("repair_p50_micros", repair_snap.percentile(50))
        .field("repair_p99_micros", repair_snap.percentile(99))
        .field("repair_mean_micros", repair_snap.mean())
        .field("recompute_p50_micros", recompute_snap.percentile(50))
        .field("recompute_p99_micros", recompute_snap.percentile(99))
        .field("recompute_mean_micros", recompute_snap.mean())
        .field("speedup_p50", speedup)
        .field("spliced", rstats.spliced)
        .field("fell_back", rstats.fell_back)
        .field("oracle_rejections", rstats.oracle_rejections)
        .field("improved_over_recompute", improved)
        .field("verdicts_identical", verdicts_ok)
        .end_object();
  }
  json.end_array();
  json.field("single_fault_median_speedup", headline_speedup)
      .field("headline_fell_back", headline_fell_back)
      .field("oracle_violations", repair_violations)
      .field("verdicts_identical", repair_verdicts_ok)
      .end_object();
  dbr::bench::emit(repair_table);
  std::cout << "repair speedup on single-fault deltas (ffc family, p50): "
            << headline_speedup << "x, oracle violations: "
            << repair_violations << ", verdicts identical: "
            << (repair_verdicts_ok ? "yes" : "NO") << "\n";

  json.field("identical_responses", identical);
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return (identical && repair_verdicts_ok && repair_violations == 0) ? 0 : 1;
}
