// Fault-churn workload for the instance-context architecture.
//
// Two measurements, both on same-(base, n) streams whose fault sets are all
// distinct (so the result cache never serves a repeat and every query pays
// the solve path):
//
//  1. Context reuse vs cold per-query precompute: the same stream through an
//     engine that shares the per-instance InstanceContext (reuse_contexts =
//     true, the default) and through one that rebuilds it on every query
//     (reuse_contexts = false, the pre-refactor behavior). Responses must be
//     bit-identical; the speedup is the hot-path win of the context/solve
//     split.
//
//  2. Session incremental updates: a seeded add/remove fault-churn timeline
//     served by a stateful EmbedSession (pinned context + result cache)
//     vs a cold stateless query per event. Reports per-update latency.
//
// Writes the machine-readable BENCH_fault_churn.json.
//
// Knobs (env):   DBR_SEED
// Knobs (argv):  --queries N   distinct fault sets per family   (default 250)
//                --events N    churn events in the session part (default 400)
//                --out PATH    JSON path (default BENCH_fault_churn.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/engine.hpp"
#include "service/session.hpp"
#include "service/stats.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/word.hpp"
#include "verify/scenario.hpp"

namespace {

using dbr::Digit;
using dbr::Rng;
using dbr::Word;
using dbr::WordSpace;
using dbr::service::EmbedEngine;
using dbr::service::EmbedRequest;
using dbr::service::EmbedResponse;
using dbr::service::EmbedSession;
using dbr::service::EngineOptions;
using dbr::service::FaultKind;
using dbr::service::LatencyRecorder;
using dbr::service::Strategy;

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

struct Family {
  const char* name;
  Digit base;
  unsigned n;
  FaultKind kind;
  Strategy strategy;
  std::uint64_t min_faults;
  std::uint64_t max_faults;
};

// One family per construction the context precomputes for: the FFC necklace
// tables, the psi-family index (+ phi machinery via kEdgeAuto), and the
// butterfly lift.
constexpr Family kFamilies[] = {
    {"ffc_node_b2_n12", 2, 12, FaultKind::kNode, Strategy::kFfc, 1, 3},
    {"edge_auto_b4_n6", 4, 6, FaultKind::kEdge, Strategy::kEdgeAuto, 1, 2},
    {"butterfly_b3_n7", 3, 7, FaultKind::kEdge, Strategy::kButterfly, 1, 1},
};

/// `count` requests on one instance with pairwise-distinct fault sets.
std::vector<EmbedRequest> distinct_fault_stream(const Family& family, Rng& rng,
                                                std::size_t count) {
  const WordSpace ws(family.base, family.n);
  const std::uint64_t space = family.kind == FaultKind::kNode
                                  ? ws.size()
                                  : ws.edge_word_count();
  std::set<std::vector<Word>> seen;
  std::vector<EmbedRequest> stream;
  stream.reserve(count);
  // A family can run out of distinct fault sets (e.g. single-fault families
  // have only `space` of them); cap the duplicate redraws so an oversized
  // --queries truncates the stream instead of spinning forever.
  std::uint64_t duplicate_draws = 0;
  const std::uint64_t max_duplicate_draws = 50 * count + 10000;
  while (stream.size() < count && duplicate_draws < max_duplicate_draws) {
    const std::uint64_t f =
        family.min_faults + rng.below(family.max_faults - family.min_faults + 1);
    std::vector<Word> faults;
    for (std::uint64_t v : rng.sample_distinct(space, f)) faults.push_back(v);
    std::vector<Word> key = faults;
    std::sort(key.begin(), key.end());
    if (!seen.insert(std::move(key)).second) {  // keep sets distinct
      ++duplicate_draws;
      continue;
    }
    EmbedRequest req;
    req.base = family.base;
    req.n = family.n;
    req.fault_kind = family.kind;
    req.strategy = family.strategy;
    req.faults = std::move(faults);
    stream.push_back(std::move(req));
  }
  return stream;
}

struct ModeRun {
  double wall_micros = 0.0;
  std::vector<EmbedResponse> responses;
  dbr::service::ServeStats serve;
};

ModeRun run_stream(const std::vector<EmbedRequest>& stream, bool reuse_contexts) {
  EngineOptions options;
  options.reuse_contexts = reuse_contexts;
  EmbedEngine engine(options);
  ModeRun out;
  out.responses.reserve(stream.size());
  const Clock::time_point start = Clock::now();
  for (const EmbedRequest& req : stream) out.responses.push_back(engine.query(req));
  out.wall_micros = micros_since(start);
  out.serve = engine.serve_stats();
  return out;
}

bool all_identical(const std::vector<EmbedResponse>& a,
                   const std::vector<EmbedResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].result || !b[i].result) return false;
    if (!a[i].result->same_embedding(*b[i].result)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kName = "fault_churn";
  constexpr const char* kSummary =
      "context reuse vs cold precompute + session incremental updates; "
      "writes BENCH_fault_churn.json";
  const std::initializer_list<dbr::bench::UsageFlag> kFlags = {
      {"--queries N", "distinct fault sets per family (default 250)"},
      {"--events N", "churn events in the session part (default 400)"},
      {"--out PATH", "JSON artifact path (default BENCH_fault_churn.json)"},
  };
  std::size_t queries = 250;
  std::size_t events = 400;
  std::string out_path = "BENCH_fault_churn.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--queries") queries = std::strtoull(next(), nullptr, 10);
    else if (arg == "--events") events = std::strtoull(next(), nullptr, 10);
    else if (arg == "--out") out_path = next();
    else return dbr::bench::usage_exit(argv[i], kName, kSummary, kFlags);
  }

  Rng rng(dbr::bench::seed());
  dbr::bench::heading(
      "fault churn: context reuse vs cold per-query precompute");
  std::cout << "queries=" << queries << " per family, events=" << events
            << " (same (base,n), all fault sets distinct)\n";

  dbr::bench::JsonWriter json;
  json.begin_object()
      .field("bench", "fault_churn")
      .field("seed", dbr::bench::seed());
  json.key("config")
      .begin_object()
      .field("queries_per_family", static_cast<std::uint64_t>(queries))
      .field("session_events", static_cast<std::uint64_t>(events))
      .end_object();

  bool identical = true;
  double cold_total = 0.0, warm_total = 0.0;
  dbr::TextTable table({"family", "queries", "cold_us/q", "warm_us/q",
                        "speedup", "ctx_hits"});
  json.key("families").begin_array();
  for (const Family& family : kFamilies) {
    const std::vector<EmbedRequest> stream =
        distinct_fault_stream(family, rng, queries);
    const ModeRun cold = run_stream(stream, /*reuse_contexts=*/false);
    const ModeRun warm = run_stream(stream, /*reuse_contexts=*/true);
    const bool same = all_identical(cold.responses, warm.responses);
    identical = identical && same;
    cold_total += cold.wall_micros;
    warm_total += warm.wall_micros;
    const double speedup =
        warm.wall_micros > 0.0 ? cold.wall_micros / warm.wall_micros : 0.0;
    table.new_row()
        .add(family.name)
        .add(static_cast<std::uint64_t>(stream.size()))
        .add(cold.wall_micros / static_cast<double>(stream.size()), 1)
        .add(warm.wall_micros / static_cast<double>(stream.size()), 1)
        .add(speedup, 2)
        .add(warm.serve.context_hits);
    json.begin_object()
        .field("family", family.name)
        .field("base", static_cast<std::uint64_t>(family.base))
        .field("n", family.n)
        .field("strategy", dbr::service::to_string(family.strategy))
        .field("queries", static_cast<std::uint64_t>(stream.size()))
        .field("cold_wall_micros", cold.wall_micros)
        .field("warm_wall_micros", warm.wall_micros)
        .field("speedup", speedup)
        .field("warm_context_hits", warm.serve.context_hits)
        .field("warm_context_misses", warm.serve.context_misses)
        .field("cold_context_hits", cold.serve.context_hits)
        .field("identical_responses", same)
        .end_object();
  }
  json.end_array();
  dbr::bench::emit(table);

  const double overall_speedup = warm_total > 0.0 ? cold_total / warm_total : 0.0;
  std::cout << "overall speedup (context reuse vs cold precompute): "
            << overall_speedup << "x, identical responses: "
            << (identical ? "yes" : "NO") << "\n";

  // --- Session incremental updates vs stateless cold queries. ---
  dbr::bench::heading("fault churn: session incremental updates");
  const Family session_family = kFamilies[0];  // FFC node churn
  EmbedRequest churn_instance;
  churn_instance.base = session_family.base;
  churn_instance.n = session_family.n;
  churn_instance.fault_kind = session_family.kind;
  churn_instance.strategy = session_family.strategy;
  // The verify/ churn regime over this bench-sized instance: same seeded
  // event grammar the session/fuzz tests replay.
  const dbr::verify::ChurnScript churn = dbr::verify::make_churn_script(
      dbr::bench::seed(), churn_instance, events, /*max_live=*/4);

  EmbedEngine warm_engine;  // defaults: result cache + context reuse
  EmbedSession session(warm_engine, session_family.base, session_family.n,
                       session_family.kind, session_family.strategy);
  EngineOptions cold_options;
  cold_options.reuse_contexts = false;
  cold_options.enable_cache = false;
  EmbedEngine cold_engine(cold_options);

  LatencyRecorder session_lat, stateless_lat;
  std::vector<Word> live;
  bool session_identical = true;
  double session_wall = 0.0, stateless_wall = 0.0;
  for (const dbr::verify::ChurnEvent& event : churn.events) {
    const bool add = event.add;
    const Word fault = event.fault;
    Clock::time_point start = Clock::now();
    if (add) {
      session.add_fault(fault);
    } else {
      session.clear_fault(fault);
    }
    const EmbedResponse& incremental = session.current_ring();
    const double session_micros = micros_since(start);
    session_wall += session_micros;
    session_lat.record(session_micros);

    if (add) {
      live.push_back(fault);
    } else {
      live.erase(std::find(live.begin(), live.end(), fault));
    }
    EmbedRequest req;
    req.base = session_family.base;
    req.n = session_family.n;
    req.fault_kind = session_family.kind;
    req.strategy = session_family.strategy;
    req.faults = live;
    start = Clock::now();
    const EmbedResponse stateless = cold_engine.query(req);
    const double stateless_micros = micros_since(start);
    stateless_wall += stateless_micros;
    stateless_lat.record(stateless_micros);

    if (!incremental.result || !stateless.result ||
        !incremental.result->same_embedding(*stateless.result)) {
      session_identical = false;
    }
  }
  identical = identical && session_identical;

  const double session_speedup =
      session_wall > 0.0 ? stateless_wall / session_wall : 0.0;
  dbr::TextTable session_table(
      {"mode", "events", "mean_us", "p50_us", "p99_us"});
  session_table.new_row()
      .add("session")
      .add(static_cast<std::uint64_t>(churn.events.size()))
      .add(session_lat.mean(), 1)
      .add(session_lat.percentile(50), 1)
      .add(session_lat.percentile(99), 1);
  session_table.new_row()
      .add("stateless_cold")
      .add(static_cast<std::uint64_t>(churn.events.size()))
      .add(stateless_lat.mean(), 1)
      .add(stateless_lat.percentile(50), 1)
      .add(stateless_lat.percentile(99), 1);
  dbr::bench::emit(session_table);
  std::cout << "session speedup vs stateless cold: " << session_speedup
            << "x (result-cache hits on revisited states: "
            << session.stats().result_cache_hits << ")\n";

  json.field("speedup_context_reuse", overall_speedup);
  json.key("session")
      .begin_object()
      .field("family", session_family.name)
      .field("events", static_cast<std::uint64_t>(churn.events.size()))
      .field("session_wall_micros", session_wall)
      .field("stateless_wall_micros", stateless_wall)
      .field("speedup", session_speedup)
      .field("session_mean_micros", session_lat.mean())
      .field("session_p50_micros", session_lat.percentile(50))
      .field("session_p99_micros", session_lat.percentile(99))
      .field("stateless_mean_micros", stateless_lat.mean())
      .field("stateless_p50_micros", stateless_lat.percentile(50))
      .field("stateless_p99_micros", stateless_lat.percentile(99))
      .field("result_cache_hits", session.stats().result_cache_hits)
      .field("solves", session.stats().solves)
      .field("identical_responses", session_identical)
      .end_object();
  json.field("identical_responses", identical);
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return identical ? 0 : 1;
}
