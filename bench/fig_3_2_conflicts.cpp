// Reproduces Figure 3.2: the conflict structure of the Hamiltonian cycles
// {H_x} in B(13,n) under Strategy 2 with f(x) = 7x. Lemma 3.4 predicts H_x
// conflicts exactly with {7x, 7^9 x, 7^-1 x, 7^-9 x} (a degree-4 circulant
// on Z_13^*), H_0 only with {7, -7}. The bench prints the predicted graph
// and then verifies it empirically by building every H_x for B(13,2) and
// intersecting edge sets pairwise.

#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "core/disjoint_hc.hpp"
#include "debruijn/cycle.hpp"
#include "nt/numtheory.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Figure 3.2 - predicted conflicts of {H_x} in B(13,n), f(x) = 7x");
  // 2 = 7 + 7^9 (mod 13): A = 1, B = 9, both odd (Example 3.3).
  const std::uint64_t p = 13;
  const std::uint64_t B = nt::pow_mod(7, 9, p);    // 7^9 = 2 - 7 mod 13 = 8
  std::cout << "2 = 7^1 + 7^9 (mod 13): 7 + " << B << " = " << (7 + B) % 13
            << "\n";
  TextTable t({"x", "f(x)", "2x-f(x)", "7^-1 x", "7^-9 x"});
  const std::uint64_t inv7 = nt::pow_mod(7, 11, p);
  const std::uint64_t inv79 = nt::pow_mod(B, 11, p);
  for (std::uint64_t x = 1; x < p; ++x) {
    t.new_row()
        .add(x)
        .add(7 * x % p)
        .add((2 * x + (p - 7) * x) % p)
        .add(inv7 * x % p)
        .add(inv79 * x % p);
  }
  emit(t);

  heading("Empirical conflict graph for B(13,2) (edge-set intersections)");
  const gf::Field field(13);
  const core::MaximalCycleFamily family(field, 2);
  const WordSpace ws(13, 2);
  // Build every H_x with f(x) = 7x (f(0) = 7).
  std::vector<std::set<Word>> edges(p);
  for (std::uint64_t x = 0; x < p; ++x) {
    const auto f_x = static_cast<gf::Field::Elem>(x == 0 ? 7 : 7 * x % p);
    const auto hc = family.hamiltonian_cycle(static_cast<gf::Field::Elem>(x), f_x);
    const auto ew = edge_words(ws, hc);
    edges[x] = std::set<Word>(ew.begin(), ew.end());
  }
  // Lemma 3.4: H_x ~ H_y iff y in {f(x), 2x - f(x)} or x in {f(y), 2y - f(y)}.
  const auto f_of = [&](std::uint64_t x) { return x == 0 ? 7 : 7 * x % p; };
  const auto lemma34 = [&](std::uint64_t x, std::uint64_t y) {
    const std::uint64_t fx = f_of(x), fy = f_of(y);
    const std::uint64_t mx = (2 * x + p * p - fx) % p;  // 2x - f(x)
    const std::uint64_t my = (2 * y + p * p - fy) % p;
    return y == fx || y == mx || x == fy || x == my;
  };
  unsigned mismatches = 0;
  std::cout << "conflicts found (x < y): ";
  for (std::uint64_t x = 0; x < p; ++x) {
    for (std::uint64_t y = x + 1; y < p; ++y) {
      std::vector<Word> common;
      std::set_intersection(edges[x].begin(), edges[x].end(), edges[y].begin(),
                            edges[y].end(), std::back_inserter(common));
      const bool observed = !common.empty();
      if (observed) std::cout << "(" << x << "," << y << ") ";
      if (observed != lemma34(x, y)) ++mismatches;
    }
  }
  std::cout << "\nLemma 3.4 prediction mismatches: " << mismatches << "\n";
  std::cout << "Selected disjoint set (Example 3.3): {H_0, H_1, H_{7^2}, H_{7^4},"
               " H_{7^6}, H_{7^8}, H_{7^10}} -> 7 = (13+1)/2 cycles\n";
}

void BM_H13Construction(benchmark::State& state) {
  const gf::Field field(13);
  const core::MaximalCycleFamily family(field, 2);
  for (auto _ : state) {
    auto hc = family.hamiltonian_cycle(3, 7 * 3 % 13);
    benchmark::DoNotOptimize(hc.length());
  }
}
BENCHMARK(BM_H13Construction);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "fig_3_2_conflicts",
                         "Figure 3.2: conflict circulant of the Strategy-2 cycles in B(13,n)");
}
