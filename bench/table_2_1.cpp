// Reproduces Table 2.1: size of the component containing R = 0...01 and the
// eccentricity of R in B(2,10) with f randomly distributed faulty necklaces.
//
// The paper's columns are Monte-Carlo statistics (its trial count is not
// stated; default here is 1000, override with DBR_TRIALS). Shape criteria:
// avg size tracks d^n - nf for small f and pulls ahead of it as f grows
// (faulty necklaces overlap), min size stays close to d^n - nf, and the
// eccentricity creeps up from n = 10 by a handful of rounds.

#include <iostream>

#include "bench_common.hpp"
#include "core/ffc.hpp"
#include "fault_sweep.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  heading("Table 2.1 - B(2,10), component of R = 0000000001 under f faulty necklaces");
  std::cout << "trials per row: " << trials() << ", seed: " << seed() << "\n";
  emit(fault_sweep_table(2, 10, paper_fault_counts(), trials(), seed()));
  std::cout << "Paper reference (f=2): avg 1004.48, min 1003, ecc avg 10.76.\n";
}

void BM_ComponentAndEccentricity(benchmark::State& state) {
  const core::FfcSolver solver{DeBruijnDigraph(2, 10)};
  const unsigned f = static_cast<unsigned>(state.range(0));
  std::uint64_t s = 0;
  for (auto _ : state) {
    const auto row = fault_sweep_row(solver, f, 10, 7 + ++s);
    benchmark::DoNotOptimize(row.avg_size);
  }
}
BENCHMARK(BM_ComponentAndEccentricity)->Arg(1)->Arg(10)->Arg(50);

void BM_FullFfcSolve(benchmark::State& state) {
  const core::FfcSolver solver{DeBruijnDigraph(2, 10)};
  Rng rng(123);
  const auto faults = rng.sample_distinct(1024, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto result = solver.solve(faults);
    benchmark::DoNotOptimize(result.bstar_size);
  }
}
BENCHMARK(BM_FullFfcSolve)->Arg(0)->Arg(5)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "table_2_1",
                         "Table 2.1: component size and eccentricity in B(2,10) under faulty necklaces");
}
