// The Chapter 3 motivation experiment: all-to-all broadcast over t disjoint
// Hamiltonian cycles. Each processor owns a message of L units addressed to
// everyone; the message is split into t parts, each circulating along its
// own ring with unit bandwidth per link per round. Because the rings are
// edge-disjoint they run concurrently, so completion takes about
// (N-1) * ceil(L/t) rounds - the t-fold speedup the paper describes
// (cf. the wormhole variant in [LS90]).

#include <deque>
#include <iostream>

#include "bench_common.hpp"
#include "core/disjoint_hc.hpp"
#include "debruijn/cycle.hpp"
#include "sim/engine.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

struct Unit {
  Word origin;
  std::uint32_t ring;
};

// Simulates the all-to-all broadcast; returns rounds until completion.
std::uint64_t simulate(Digit d, unsigned n, unsigned rings_used, unsigned total_units) {
  const WordSpace ws(d, n);
  const auto family = core::disjoint_hamiltonian_cycles(d, n);
  require(rings_used >= 1 && rings_used <= family.size(), "ring count out of range");
  // Successor map per ring.
  std::vector<std::vector<Word>> next(rings_used, std::vector<Word>(ws.size()));
  for (unsigned r = 0; r < rings_used; ++r) {
    const NodeCycle cyc = to_node_cycle(ws, family[r]);
    for (std::size_t i = 0; i < cyc.nodes.size(); ++i) {
      next[r][cyc.nodes[i]] = cyc.nodes[(i + 1) % cyc.nodes.size()];
    }
  }
  const unsigned per_ring = (total_units + rings_used - 1) / rings_used;

  sim::Engine engine(ws.size(), [&ws](NodeId u, NodeId v) {
    return ws.suffix(u) == ws.prefix(v);
  });
  // send_queue[node][ring]
  std::vector<std::vector<std::deque<Unit>>> queue(
      ws.size(), std::vector<std::deque<Unit>>(rings_used));
  for (Word v = 0; v < ws.size(); ++v) {
    for (unsigned r = 0; r < rings_used; ++r) {
      for (unsigned u = 0; u < per_ring; ++u) queue[v][r].push_back({v, r});
    }
  }

  const auto queues_empty = [&] {
    for (Word v = 0; v < ws.size(); ++v) {
      for (unsigned r = 0; r < rings_used; ++r) {
        if (!queue[v][r].empty()) return false;
      }
    }
    return true;
  };
  std::uint64_t rounds = 0;
  while (!queues_empty() || !engine.idle()) {
    // One unit per ring per node per round (unit link bandwidth; rings are
    // edge-disjoint so the d ports of a node serve distinct rings).
    for (Word v = 0; v < ws.size(); ++v) {
      for (unsigned r = 0; r < rings_used; ++r) {
        if (queue[v][r].empty()) continue;
        const Unit u = queue[v][r].front();
        queue[v][r].pop_front();
        engine.post(v, next[r][v], {v, u.ring, {u.origin}});
      }
    }
    engine.step([&](NodeId dest, std::vector<sim::Message>& batch) {
      for (const sim::Message& m : batch) {
        const Word origin = m.payload[0];
        if (origin == dest) continue;  // came full circle: absorbed
        queue[dest][m.tag].push_back({origin, m.tag});
      }
    });
    ++rounds;
  }
  return rounds;
}

void print_tables() {
  heading("All-to-all broadcast over t disjoint Hamiltonian cycles");
  struct Net {
    Digit d;
    unsigned n;
    unsigned units;  // divisible by every usable t for clean comparisons
  };
  for (const Net net : {Net{4, 3, 12}, Net{8, 2, 84}}) {
    const WordSpace ws(net.d, net.n);
    const unsigned max_rings =
        static_cast<unsigned>(core::psi(net.d));
    std::cout << "B(" << unsigned(net.d) << "," << net.n << "): N = " << ws.size()
              << " nodes, psi(d) = " << max_rings << " rings, message = "
              << net.units << " units per node\n";
    TextTable t({"t (rings)", "rounds", "ideal (N-1)*L/t", "speedup vs t=1"});
    std::uint64_t base = 0;
    for (unsigned rings = 1; rings <= max_rings; ++rings) {
      const std::uint64_t rounds = simulate(net.d, net.n, rings, net.units);
      if (rings == 1) base = rounds;
      t.new_row()
          .add(rings)
          .add(rounds)
          .add((ws.size() - 1) * ((net.units + rings - 1) / rings))
          .add(static_cast<double>(base) / static_cast<double>(rounds), 2);
    }
    emit(t);
  }
  std::cout << "Speedup tracks t: splitting the message across edge-disjoint\n"
               "rings multiplies the usable bandwidth (Section 3.2's motivation).\n";
}

void BM_AllToAll(benchmark::State& state) {
  const unsigned rings = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(4, 3, rings, 12));
  }
}
BENCHMARK(BM_AllToAll)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "all_to_all",
                         "All-to-all broadcast over t disjoint Hamiltonian cycles (Chapter 3 motivation)");
}
