// Reproduces Figures 3.4 and 3.5: the butterfly digraph F(2,3) and its
// partition into De Bruijn super-nodes S_x ([ABR90]); plus the Lemma 3.9
// illustration - the 4-cycle (110, 100, 001, 011) of B(2,3) lifting to a
// 12-cycle of F(2,3).

#include <iostream>

#include "bench_common.hpp"
#include "butterfly/butterfly.hpp"
#include "butterfly/lift.hpp"
#include "debruijn/debruijn.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

std::string bf_node(const ButterflyDigraph& bf, NodeId v) {
  std::string out = "(";
  out += std::to_string(bf.level_of(v));
  out += ',';
  out += bf.columns().to_string(bf.column_of(v));
  out += ')';
  return out;
}

void print_tables() {
  const ButterflyDigraph bf(2, 3);
  const WordSpace& ws = bf.columns();

  heading("Figure 3.4 - butterfly digraph F(2,3)");
  std::cout << bf.num_nodes() << " nodes (3 levels x 8 columns), "
            << bf.num_edges() << " edges\n";
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    std::cout << "  " << bf_node(bf, v) << " ->";
    bf.for_each_successor(v, [&](NodeId w) { std::cout << " " << bf_node(bf, w); });
    std::cout << "\n";
  }

  heading("Figure 3.5 - F(2,3) partitioned to resemble B(2,3)");
  const DeBruijnDigraph g(2, 3);
  for (Word x = 0; x < ws.size(); ++x) {
    std::cout << "  S_" << ws.to_string(x) << " = {";
    for (unsigned i = 0; i < 3; ++i) {
      std::cout << (i ? ", " : "") << bf_node(bf, butterfly::partition_node(bf, x, i));
    }
    std::cout << "}  De Bruijn successors:";
    for (Word y : g.successors(x)) std::cout << " " << ws.to_string(y);
    std::cout << "\n";
  }

  heading("Lemma 3.9 - lifting the 4-cycle (110, 100, 001, 011) to a 12-cycle");
  NodeCycle c;
  for (auto digits : {std::vector<Digit>{1, 1, 0}, {1, 0, 0}, {0, 0, 1}, {0, 1, 1}}) {
    c.nodes.push_back(ws.from_digits(digits));
  }
  const auto lifted = butterfly::lift_cycle(bf, c);
  std::cout << "Phi(C), length LCM(4,3) = " << lifted.size() << ":\n  ";
  for (NodeId v : lifted) std::cout << bf_node(bf, v) << " ";
  std::cout << "\nvalid butterfly cycle: "
            << (butterfly::is_butterfly_cycle(bf, lifted) ? "YES" : "NO") << "\n";
}

void BM_LiftCycle(benchmark::State& state) {
  const ButterflyDigraph big(3, 5);
  const WordSpace& ws = big.columns();
  NodeCycle c;  // a long necklace-ish cycle: use rotations of 01234-ish words
  c.nodes = {ws.from_digits(std::vector<Digit>{0, 1, 2, 1, 0}),
             ws.from_digits(std::vector<Digit>{1, 2, 1, 0, 0}),
             ws.from_digits(std::vector<Digit>{2, 1, 0, 0, 1}),
             ws.from_digits(std::vector<Digit>{1, 0, 0, 1, 2}),
             ws.from_digits(std::vector<Digit>{0, 0, 1, 2, 1})};
  for (auto _ : state) {
    auto lifted = butterfly::lift_cycle(big, c);
    benchmark::DoNotOptimize(lifted.size());
  }
}
BENCHMARK(BM_LiftCycle);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "fig_3_4_3_5_butterfly",
                         "Figures 3.4/3.5: butterfly F(2,3), super-nodes, Lemma 3.9 lift");
}
