// Verifies Propositions 3.3 and 3.4 constructively: for every d in a sweep,
// random edge-fault sets of exactly the promised budget MAX{psi(d)-1,
// phi(d)} always leave a Hamiltonian cycle, and the bench records which of
// the two constructions (disjoint-family scan vs recursive phi) produced
// it. One fault past the d-1 in-edge cut shows the budget is sharp.

#include <iostream>

#include "bench_common.hpp"
#include "core/disjoint_hc.hpp"
#include "core/edge_fault.hpp"
#include "debruijn/cycle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

std::vector<Word> random_nonloop_edges(const WordSpace& ws, unsigned count, Rng& rng) {
  std::vector<Word> out;
  while (out.size() < count) {
    const Word e = rng.below(ws.edge_word_count());
    const auto [u, v] = ws.edge_endpoints(e);
    if (u == v) continue;
    if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
  }
  return out;
}

void print_tables() {
  heading("Propositions 3.3/3.4 - random fault sets at the exact budget (n = 2)");
  {
    TextTable t({"d", "budget", "trials", "successes", "via family", "via phi"});
    Rng rng(seed());
    for (std::uint64_t d = 3; d <= 16; ++d) {
      const WordSpace ws(static_cast<Digit>(d), 2);
      const unsigned budget = static_cast<unsigned>(core::max_tolerable_edge_faults(d));
      unsigned ok = 0, via_family = 0, via_phi = 0;
      const unsigned tries = 30;
      for (unsigned trial = 0; trial < tries; ++trial) {
        const auto faults = random_nonloop_edges(ws, budget, rng);
        const auto fam = core::fault_free_hc_family_scan(d, 2, faults);
        const auto phi = core::fault_free_hc_phi_construction(d, 2, faults);
        if (fam.has_value()) ++via_family;
        if (phi.has_value()) ++via_phi;
        const auto any = fam.has_value() ? fam : phi;
        if (any.has_value() && is_hamiltonian(ws, *any) &&
            avoids_edges(ws, *any, faults)) {
          ++ok;
        }
      }
      t.new_row().add(d).add(budget).add(tries).add(ok).add(via_family).add(via_phi);
    }
    emit(t);
  }

  heading("Sharpness - the d-1 in-edge cut at 0^n defeats every Hamiltonian cycle");
  {
    TextTable t({"d", "budget d-2 ok", "d-1 cut infeasible"});
    for (std::uint64_t d : {3ull, 4ull, 5ull, 7ull, 8ull, 9ull}) {
      const WordSpace ws(static_cast<Digit>(d), 2);
      std::vector<Word> cut;
      for (Digit a = 1; a < d; ++a) cut.push_back(static_cast<Word>(a) * ws.size());
      const auto infeasible = core::fault_free_hamiltonian_cycle(d, 2, cut);
      std::vector<Word> partial(cut.begin(), cut.end() - 1);  // d-2 of them
      const auto feasible = core::fault_free_hamiltonian_cycle(d, 2, partial);
      t.new_row()
          .add(d)
          .add(std::string(feasible.has_value() ? "yes" : "NO"))
          .add(std::string(infeasible.has_value() ? "NO (found one?!)" : "yes"));
    }
    emit(t);
  }

  heading("Deeper graphs (n = 3, 4): budget-level random faults");
  {
    TextTable t({"d", "n", "budget", "trials", "successes"});
    Rng rng(seed() + 1);
    for (auto [d, n] : {std::pair<std::uint64_t, unsigned>{3, 4}, {4, 3}, {5, 3},
                        {6, 3}, {8, 3}, {9, 3}}) {
      const WordSpace ws(static_cast<Digit>(d), n);
      const unsigned budget = static_cast<unsigned>(core::max_tolerable_edge_faults(d));
      unsigned ok = 0;
      const unsigned tries = 15;
      for (unsigned trial = 0; trial < tries; ++trial) {
        const auto faults = random_nonloop_edges(ws, budget, rng);
        const auto hc = core::fault_free_hamiltonian_cycle(d, n, faults);
        if (hc.has_value() && is_hamiltonian(ws, *hc) && avoids_edges(ws, *hc, faults)) {
          ++ok;
        }
      }
      t.new_row().add(d).add(n).add(budget).add(tries).add(ok);
    }
    emit(t);
  }
}

void BM_EdgeFaultRecovery(benchmark::State& state) {
  const std::uint64_t d = static_cast<std::uint64_t>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const WordSpace ws(static_cast<Digit>(d), n);
  Rng rng(5);
  const auto faults = random_nonloop_edges(
      ws, static_cast<unsigned>(core::max_tolerable_edge_faults(d)), rng);
  for (auto _ : state) {
    auto hc = core::fault_free_hamiltonian_cycle(d, n, faults);
    benchmark::DoNotOptimize(hc.has_value());
  }
}
BENCHMARK(BM_EdgeFaultRecovery)->Args({5, 3})->Args({8, 3})->Args({9, 3});

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "prop_3_edge_faults",
                         "Propositions 3.3/3.4: edge-fault budgets met constructively per d");
}
