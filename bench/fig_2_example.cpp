// Reproduces Figures 2.1-2.4 and Example 2.1: the complete FFC walk-through
// on B(3,3) with faults {020, 112} - the necklace adjacency graph N*
// (Figure 2.3), the spanning tree T (Figure 2.4a), the modified tree D
// (Figure 2.4b) and the resulting 21-node fault-free cycle H, which must
// equal the cycle printed in the paper verbatim.

#include <iostream>

#include "bench_common.hpp"
#include "core/ffc.hpp"
#include "debruijn/cycle.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace dbr;
using namespace dbr::bench;

void print_tables() {
  const core::FfcSolver solver{DeBruijnDigraph(3, 3)};
  const WordSpace& ws = solver.graph().words();
  const WordSpace label_ws(3, 2);
  const std::vector<Word> faults{
      ws.from_digits(std::vector<Digit>{0, 2, 0}),
      ws.from_digits(std::vector<Digit>{1, 1, 2})};

  heading("Example 2.1 - faults {020, 112} in B(3,3)");
  std::cout << "faulty necklaces: ";
  for (Word rep : necklace_reps_of(ws, faults)) {
    std::cout << "[" << ws.to_string(rep) << "] = {";
    bool first = true;
    for (Word v : necklace_nodes(ws, rep)) {
      std::cout << (first ? "" : ", ") << ws.to_string(v);
      first = false;
    }
    std::cout << "} ";
  }
  std::cout << "\n";

  heading("Figure 2.3 - necklace adjacency graph N* of B*");
  const auto active = solver.active_mask(faults);
  const auto nstar = solver.necklace_adjacency(active);
  std::cout << nstar.reps.size() << " necklaces, " << nstar.edges.size()
            << " labeled edges (antiparallel pairs)\n";
  for (const auto& e : nstar.edges) {
    if (e.from < e.to) {  // print each antiparallel pair once
      std::cout << "  [" << ws.to_string(e.from) << "] <-" << label_ws.to_string(e.label)
                << "-> [" << ws.to_string(e.to) << "]\n";
    }
  }

  const auto result = solver.solve(faults);

  heading("Figure 2.4(a) - spanning tree T of N* (rooted at [000])");
  for (const auto& e : result.tree_edges) {
    std::cout << "  [" << ws.to_string(e.from) << "] --" << label_ws.to_string(e.label)
              << "--> [" << ws.to_string(e.to) << "]\n";
  }

  heading("Figure 2.4(b) - modified tree D (label classes turned into cycles)");
  for (const auto& e : result.modified_edges) {
    std::cout << "  [" << ws.to_string(e.from) << "] --" << label_ws.to_string(e.label)
              << "--> [" << ws.to_string(e.to) << "]\n";
  }

  heading("The fault-free cycle H (21 nodes)");
  std::cout << to_string(ws, result.cycle) << "\n";

  const std::vector<std::vector<Digit>> paper{
      {0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {1, 1, 0}, {1, 0, 1},
      {0, 1, 2}, {1, 2, 2}, {2, 2, 2}, {2, 2, 1}, {2, 1, 2}, {1, 2, 0},
      {2, 0, 1}, {0, 1, 0}, {1, 0, 2}, {0, 2, 2}, {2, 2, 0}, {2, 0, 2},
      {0, 2, 1}, {2, 1, 0}, {1, 0, 0}};
  bool match = result.cycle.length() == paper.size();
  for (std::size_t i = 0; match && i < paper.size(); ++i) {
    match = result.cycle.nodes[i] == ws.from_digits(paper[i]);
  }
  std::cout << "matches the cycle printed in the paper: " << (match ? "YES" : "NO")
            << "\n";
  ensure(match, "Example 2.1 reproduction must be exact");
}

void BM_Example21Solve(benchmark::State& state) {
  const core::FfcSolver solver{DeBruijnDigraph(3, 3)};
  const WordSpace& ws = solver.graph().words();
  const std::vector<Word> faults{ws.from_digits(std::vector<Digit>{0, 2, 0}),
                                 ws.from_digits(std::vector<Digit>{1, 1, 2})};
  for (auto _ : state) {
    auto result = solver.solve(faults);
    benchmark::DoNotOptimize(result.cycle.length());
  }
}
BENCHMARK(BM_Example21Solve);

}  // namespace

int main(int argc, char** argv) {
  return dbr::bench::run(argc, argv, &print_tables, "fig_2_example",
                         "Figures 2.1-2.4 / Example 2.1: FFC walk-through on B(3,3)");
}
