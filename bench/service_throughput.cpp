// Load generator for the src/service embedding query engine.
//
// Drives a mixed workload of repeated and fresh (base, n, fault-set) queries
// - node faults (FFC), edge faults (psi-scan / phi-construction) and
// butterfly lifts - through EmbedEngine::query_batch twice: once with the
// sharded result cache enabled and once without. Prints a human-readable
// summary and writes the machine-readable BENCH_service_throughput.json.
//
// Knobs (env):   DBR_SEED, DBR_THREADS
// Knobs (argv):  --requests N          stream length            (default 1200)
//                --unique N            hot scenario pool size   (default 24)
//                --repeat-fraction F   P(query drawn from pool) (default 0.9)
//                --zipf S              Zipf skew of pool draws; 0 = uniform
//                --no-cache            run only the uncached mode
//                --cache-only          run only the cached mode
//                --out PATH            JSON path (default BENCH_service_throughput.json)

#include <cstdint>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/engine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload.hpp"

namespace {

using dbr::Rng;
using dbr::bench::make_stream;
using dbr::service::BatchStats;
using dbr::service::EmbedEngine;
using dbr::service::EmbedRequest;
using dbr::service::EmbedResponse;
using dbr::service::EmbedStatus;
using dbr::service::EngineOptions;

struct ModeOutcome {
  BatchStats stats;
  std::vector<EmbedResponse> responses;
};

ModeOutcome run_mode(const std::vector<EmbedRequest>& stream, bool cached) {
  EngineOptions options;
  options.enable_cache = cached;
  EmbedEngine engine(options);
  ModeOutcome out;
  out.responses = engine.query_batch(stream, &out.stats);
  return out;
}

void emit_mode_json(dbr::bench::JsonWriter& json, const ModeOutcome& mode) {
  const auto latency = mode.stats.merged_latency().snapshot();
  std::uint64_t ok = 0, no_embedding = 0, bad_request = 0, internal_error = 0;
  for (const EmbedResponse& r : mode.responses) {
    switch (r.result->status) {
      case EmbedStatus::kOk: ++ok; break;
      case EmbedStatus::kNoEmbedding: ++no_embedding; break;
      case EmbedStatus::kBadRequest: ++bad_request; break;
      case EmbedStatus::kInternalError: ++internal_error; break;
    }
  }
  json.begin_object()
      .field("processed", mode.stats.processed())
      .field("wall_micros", mode.stats.wall_micros)
      .field("throughput_qps", mode.stats.throughput_qps())
      .field("cache_hits", mode.stats.cache_hits())
      .field("hit_rate", mode.stats.hit_rate())
      .field("ok", ok)
      .field("no_embedding", no_embedding)
      .field("bad_request", bad_request)
      .field("internal_error", internal_error);
  json.key("latency_micros")
      .begin_object()
      .field("mean", latency.mean())
      .field("p50", latency.percentile(50))
      .field("p90", latency.percentile(90))
      .field("p99", latency.percentile(99))
      .end_object();
  json.key("workers").begin_array();
  for (const auto& w : mode.stats.workers) {
    json.begin_object()
        .field("worker", static_cast<std::uint64_t>(w.worker))
        .field("processed", w.processed)
        .field("cache_hits", w.cache_hits)
        .field("busy_micros", w.busy_micros);
    const auto worker_latency = w.latency.snapshot();
    json.field("p50_micros", worker_latency.percentile(50))
        .field("p99_micros", worker_latency.percentile(99))
        .end_object();
  }
  json.end_array().end_object();
}

void print_mode(dbr::TextTable& table, const std::string& name,
                const ModeOutcome& mode) {
  const auto latency = mode.stats.merged_latency().snapshot();
  table.new_row()
      .add(name)
      .add(mode.stats.processed())
      .add(mode.stats.throughput_qps(), 1)
      .add(mode.stats.hit_rate(), 3)
      .add(latency.percentile(50), 1)
      .add(latency.percentile(99), 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 1200;
  std::size_t unique = 24;
  double repeat_fraction = 0.9;
  double zipf_s = 0.0;
  bool run_cached = true;
  bool run_uncached = true;
  std::string out_path = "BENCH_service_throughput.json";

  constexpr const char* kName = "service_throughput";
  constexpr const char* kSummary =
      "cached vs uncached engine throughput on the mixed workload; writes "
      "BENCH_service_throughput.json";
  const std::initializer_list<dbr::bench::UsageFlag> kFlags = {
      {"--requests N", "total queries in the stream (default 1200)"},
      {"--unique N", "distinct fault sets (default 24)"},
      {"--repeat-fraction F", "fraction of repeated queries (default 0.9)"},
      {"--zipf S", "Zipf exponent for hot-pool draws (0 = uniform, default)"},
      {"--no-cache", "run the uncached mode only"},
      {"--cache-only", "run the cached mode only"},
      {"--out PATH", "JSON artifact path (default BENCH_service_throughput.json)"},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--requests") requests = std::strtoull(next(), nullptr, 10);
    else if (arg == "--unique") unique = std::strtoull(next(), nullptr, 10);
    else if (arg == "--repeat-fraction") repeat_fraction = std::strtod(next(), nullptr);
    else if (arg == "--zipf") zipf_s = std::strtod(next(), nullptr);
    else if (arg == "--no-cache") run_cached = false;
    else if (arg == "--cache-only") run_uncached = false;
    else if (arg == "--out") out_path = next();
    else return dbr::bench::usage_exit(argv[i], kName, kSummary, kFlags);
  }

  Rng rng(dbr::bench::seed());
  const std::vector<EmbedRequest> stream =
      make_stream(rng, requests, unique, repeat_fraction, zipf_s);

  dbr::bench::heading("service throughput: mixed embedding query workload");
  std::cout << "requests=" << requests << " unique=" << unique
            << " repeat_fraction=" << repeat_fraction << " zipf=" << zipf_s
            << " threads=" << dbr::worker_count() << "\n";

  std::optional<ModeOutcome> cached, uncached;
  if (run_uncached) uncached = run_mode(stream, /*cached=*/false);
  if (run_cached) cached = run_mode(stream, /*cached=*/true);

  bool identical = true;
  if (cached && uncached) {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (!cached->responses[i].result->same_embedding(
              *uncached->responses[i].result)) {
        identical = false;
        break;
      }
    }
  }

  dbr::TextTable table(
      {"mode", "requests", "qps", "hit_rate", "p50_us", "p99_us"});
  if (uncached) print_mode(table, "uncached", *uncached);
  if (cached) print_mode(table, "cached", *cached);
  dbr::bench::emit(table);

  dbr::bench::JsonWriter json;
  json.begin_object()
      .field("bench", "service_throughput")
      .field("seed", dbr::bench::seed())
      .field("threads", dbr::worker_count());
  json.key("config")
      .begin_object()
      .field("requests", static_cast<std::uint64_t>(requests))
      .field("unique_scenarios", static_cast<std::uint64_t>(unique))
      .field("repeat_fraction", repeat_fraction)
      .field("zipf_s", zipf_s)
      .end_object();
  json.key("modes").begin_object();
  if (uncached) { json.key("uncached"); emit_mode_json(json, *uncached); }
  if (cached) { json.key("cached"); emit_mode_json(json, *cached); }
  json.end_object();
  if (cached && uncached) {
    const double speedup = uncached->stats.throughput_qps() > 0
        ? cached->stats.throughput_qps() / uncached->stats.throughput_qps()
        : 0.0;
    json.field("speedup_cached_vs_uncached", speedup)
        .field("identical_responses", identical);
    std::cout << "speedup (cached vs uncached): " << speedup
              << "x, identical responses: " << (identical ? "yes" : "NO")
              << "\n";
  }
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return identical ? 0 : 1;
}
