#pragma once

// The Monte-Carlo experiment behind Tables 2.1 and 2.2: for each fault count
// f, sample f distinct faulty nodes, remove their necklaces, and measure the
// size of the component containing R = 0...01 (or its nearest nonfaulty
// substitute) together with R's eccentricity inside that component. These
// are exactly the length of the FFC cycle and the broadcast rounds of Step
// 1.1 (Section 2.5.2).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/distributed_ffc.hpp"
#include "core/ffc.hpp"
#include "graph/algorithms.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dbr::bench {

struct SweepRow {
  unsigned faults = 0;
  double avg_size = 0;
  std::uint64_t max_size = 0;
  std::uint64_t min_size = 0;
  std::int64_t dn_minus_nf = 0;
  double avg_ecc = 0;
  std::uint32_t max_ecc = 0;
  std::uint32_t min_ecc = 0;
};

inline SweepRow fault_sweep_row(const core::FfcSolver& solver, unsigned f,
                                std::uint64_t num_trials, std::uint64_t seed) {
  const auto& graph = solver.graph();
  const WordSpace& ws = graph.words();
  const core::DistributedFfcSolver root_picker(graph);
  SweepRow row;
  row.faults = f;
  row.dn_minus_nf =
      static_cast<std::int64_t>(ws.size()) - static_cast<std::int64_t>(ws.length()) * f;
  std::vector<std::uint64_t> sizes(num_trials);
  std::vector<std::uint32_t> eccs(num_trials);
  // One RNG stream per trial: the table is reproducible for a given seed
  // regardless of DBR_THREADS.
  parallel_blocks(num_trials, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      Rng rng = Rng(seed + f).split(t);
      const auto faults = rng.sample_distinct(ws.size(), f);
      // R = 0...01, or the nearest nonfaulty node when its necklace died.
      const Word root = root_picker.default_root(faults);
      const auto active = solver.active_mask(faults);
      const auto comp = solver.component_of(active, root);
      std::uint64_t size = 0;
      for (Word v = 0; v < ws.size(); ++v) size += comp[v] ? 1 : 0;
      const SubgraphView<DeBruijnDigraph> view(graph, comp);
      const auto r = bfs(view, root, [&](NodeId v) { return comp[v]; });
      sizes[t] = size;
      eccs[t] = r.eccentricity();
    }
  });
  double sum_size = 0, sum_ecc = 0;
  row.min_size = sizes[0];
  row.min_ecc = eccs[0];
  for (std::size_t t = 0; t < num_trials; ++t) {
    sum_size += static_cast<double>(sizes[t]);
    sum_ecc += eccs[t];
    row.max_size = std::max(row.max_size, sizes[t]);
    row.min_size = std::min(row.min_size, sizes[t]);
    row.max_ecc = std::max(row.max_ecc, eccs[t]);
    row.min_ecc = std::min(row.min_ecc, eccs[t]);
  }
  row.avg_size = sum_size / static_cast<double>(num_trials);
  row.avg_ecc = sum_ecc / static_cast<double>(num_trials);
  return row;
}

inline TextTable fault_sweep_table(Digit d, unsigned n,
                                   const std::vector<unsigned>& fault_counts,
                                   std::uint64_t num_trials, std::uint64_t seed) {
  const core::FfcSolver solver{DeBruijnDigraph(d, n)};
  TextTable table({"f", "Avg. Size", "Max. Size", "Min. Size", "d^n - nf",
                   "Avg. Ecc.", "Max. Ecc.", "Min. Ecc."});
  for (unsigned f : fault_counts) {
    const SweepRow row = fault_sweep_row(solver, f, num_trials, seed);
    table.new_row()
        .add(row.faults)
        .add(row.avg_size, 2)
        .add(row.max_size)
        .add(row.min_size)
        .add(row.dn_minus_nf)
        .add(row.avg_ecc, 2)
        .add(row.max_ecc)
        .add(row.min_ecc);
  }
  return table;
}

/// The fault counts used by the paper's Tables 2.1/2.2.
inline std::vector<unsigned> paper_fault_counts() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50};
}

}  // namespace dbr::bench
