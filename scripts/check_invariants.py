#!/usr/bin/env python3
"""Repo-invariant lint suite: machine-checks the concurrency and hot-path
rules the codebase relies on but a compiler alone cannot see (or, for the
Clang thread-safety rules, cannot see on the tier-1 GCC toolchain).

Rules
-----
rcu-publish-under-guard
    No `RcuSnapshot::publish()` call may be reachable while the calling
    scope holds its *own* ReadGuard on the same cell: publish() may wait
    for readers to drain, and a guard pinned by the caller never drains
    (the PR 8 fabric deadlock). Guards on *other* cells are fine —
    revive_shard legitimately publishes ring_ under a keys_ ReadGuard.

hot-path-heap-alloc
    Functions taking a `SolveScratch&` in core/ffc.cpp, core/repair.cpp
    and core/mixed_fault.cpp are the allocation-free solve paths (the
    PR 7 guarantee): no heap-allocating container may be *constructed*
    inside them. Reference bindings to scratch members
    (`std::vector<Word>& x = s.foo;`) are allowed.

naked-mutex
    All of src/ must lock through the annotated wrappers in
    util/thread_annotations.hpp (util::Mutex, util::MutexLock, ...);
    naked std::mutex / std::lock_guard / std::condition_variable et al.
    are invisible to Clang's -Wthread-safety analysis.

verify-includes-core
    src/verify/ is the independent oracle: it must not include anything
    from core/ or butterfly/, or it could inherit the very bugs it
    exists to catch.

bare-analysis-escape
    `DBR_NO_THREAD_SAFETY_ANALYSIS` opts a function out of the analysis;
    every use must carry a justifying comment on the same or preceding
    line.

Suppressions
------------
A violation is suppressed by a `// lint:allow(<rule>): <reason>` comment
on the offending line or the line directly above it; the reason is
mandatory. Fixture files may carry `// lint:pretend-path: <path>` to be
linted as if they lived at <path> (so tests/lint_fixtures can exercise
path-scoped rules), and `// expect-violation: <rule>` markers that
--self-test checks against the rules actually fired.

Exit status: 0 clean, 1 violations (or a failed --self-test), 2 usage.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_ROOTS = ["src"]
FIXTURE_DIR = REPO / "tests" / "lint_fixtures"
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}

# The one header allowed to name the std lock primitives directly.
WRAPPER_HEADER = "src/util/thread_annotations.hpp"

# Files whose SolveScratch&-taking functions are arena hot paths.
HOT_PATH_FILES = (
    "src/core/ffc.cpp",
    "src/core/repair.cpp",
    "src/core/mixed_fault.cpp",
)

NAKED_LOCK_TOKENS = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)

HEAP_CONTAINERS = (
    "vector",
    "unordered_map",
    "unordered_set",
    "map",
    "set",
    "deque",
    "list",
    "string",
    "basic_string",
)
HEAP_CONTAINER_RE = re.compile(
    r"\bstd::(" + "|".join(HEAP_CONTAINERS) + r")\s*(<|\b)"
)

READ_GUARD_RE = re.compile(
    r"\bReadGuard\s+\w+\s*[({]\s*([^;(){}]+?)\s*[)}]\s*;"
)
PUBLISH_RE = re.compile(r"([\w.\->\[\]]+)\s*\.\s*publish\s*\(")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([\w-]+)\)\s*:\s*(\S.*)")
PRETEND_RE = re.compile(r"//\s*lint:pretend-path:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*expect-violation:\s*([\w-]+)")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure, so rule regexes never match inside either."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str | chr
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(" ")
            elif c == "\n":  # unterminated; resync
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def normalize_expr(expr: str) -> str:
    return re.sub(r"\s+", "", expr)


class SourceFile:
    def __init__(self, path: pathlib.Path):
        self.real_path = path
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.text.splitlines()
        self.code = strip_comments_and_strings(self.text)
        self.code_lines = self.code.splitlines()
        m = PRETEND_RE.search(self.text)
        rel = path.resolve()
        try:
            rel = rel.relative_to(REPO)
        except ValueError:
            pass
        self.lint_path = m.group(1) if m else str(rel)

    def allowed(self, rule: str, line: int) -> bool:
        """True when line (1-based) or the one above carries a matching
        lint:allow with a reason."""
        for idx in (line - 1, line - 2):
            if 0 <= idx < len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[idx])
                if m and m.group(1) == rule:
                    return True
        return False


def check_rcu_publish_under_guard(f: SourceFile) -> list[Violation]:
    """Tracks live ReadGuards by brace depth; flags a publish() whose
    receiver expression matches a guard's cell expression."""
    out = []
    depth = 0
    guards: list[tuple[str, int, int]] = []  # (cell, scope_depth, line)
    for lineno, line in enumerate(f.code_lines, start=1):
        opens = line.count("{")
        closes = line.count("}")
        depth_after = depth + opens - closes
        for m in READ_GUARD_RE.finditer(line):
            guards.append((normalize_expr(m.group(1)), depth_after, lineno))
        for m in PUBLISH_RE.finditer(line):
            receiver = normalize_expr(m.group(1))
            for cell, _, gline in guards:
                if cell == receiver and not f.allowed(
                    "rcu-publish-under-guard", lineno
                ):
                    out.append(
                        Violation(
                            f.lint_path,
                            lineno,
                            "rcu-publish-under-guard",
                            f"publish() on '{receiver}' while the ReadGuard "
                            f"declared at line {gline} pins the same cell "
                            "(self-deadlock when the retire list drains: "
                            "scope the guard so it ends before the publish)",
                        )
                    )
        depth = depth_after
        guards = [g for g in guards if depth >= g[1]]
    return out


def body_span(code: str, open_brace: int) -> int:
    """Index one past the matching close brace of code[open_brace] == '{'."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def check_hot_path_heap_alloc(f: SourceFile) -> list[Violation]:
    if not any(f.lint_path.endswith(p) for p in HOT_PATH_FILES):
        return []
    out = []
    code = f.code
    for m in re.finditer(r"\bSolveScratch\s*&", code):
        # A definition's parameter list ends in ')' then '{' before any ';'.
        j = m.end()
        while j < len(code) and code[j] not in ";{":
            j += 1
        if j >= len(code) or code[j] != "{":
            continue  # declaration only
        end = body_span(code, j)
        body = code[j:end]
        body_start_line = code.count("\n", 0, j) + 1
        for lm in HEAP_CONTAINER_RE.finditer(body):
            lineno = body_start_line + body.count("\n", 0, lm.start())
            line = f.code_lines[lineno - 1]
            if is_reference_binding(line, lm.group(0)):
                continue
            if f.allowed("hot-path-heap-alloc", lineno):
                continue
            out.append(
                Violation(
                    f.lint_path,
                    lineno,
                    "hot-path-heap-alloc",
                    f"'{lm.group(0).strip()}' constructed inside a "
                    "SolveScratch-backed solve path (the PR 7 allocation-free "
                    "guarantee): use a scratch arena member instead",
                )
            )
    return out


def is_reference_binding(line: str, token: str) -> bool:
    """True when the std:: container on `line` is used as a reference (or
    pointer) binding rather than constructed: the character after the
    template argument list (or the bare type) is '&' or '*'."""
    pos = line.find(token.strip().rstrip("<").rstrip())
    if pos < 0:
        return False
    i = pos
    # Skip the qualified name.
    while i < len(line) and (line[i].isalnum() or line[i] in ":_"):
        i += 1
    while i < len(line) and line[i].isspace():
        i += 1
    if i < len(line) and line[i] == "<":
        depth = 0
        while i < len(line):
            if line[i] == "<":
                depth += 1
            elif line[i] == ">":
                depth -= 1
                if depth == 0:
                    i += 1
                    break
            i += 1
    while i < len(line) and line[i].isspace():
        i += 1
    return i < len(line) and line[i] in "&*"


def check_naked_mutex(f: SourceFile) -> list[Violation]:
    if f.lint_path.replace("\\", "/").endswith(WRAPPER_HEADER):
        return []
    out = []
    for lineno, line in enumerate(f.code_lines, start=1):
        for m in NAKED_LOCK_TOKENS.finditer(line):
            if f.allowed("naked-mutex", lineno):
                continue
            out.append(
                Violation(
                    f.lint_path,
                    lineno,
                    "naked-mutex",
                    f"'{m.group(0)}' bypasses the annotated wrappers in "
                    "util/thread_annotations.hpp (invisible to "
                    "-Wthread-safety): use util::Mutex / util::MutexLock / "
                    "util::UniqueLock / util::CondVar",
                )
            )
    return out


def check_verify_includes(f: SourceFile) -> list[Violation]:
    path = f.lint_path.replace("\\", "/")
    if "/verify/" not in f"/{path}":
        return []
    out = []
    inc = re.compile(r'#\s*include\s*"((?:core|butterfly)/[^"]+)"')
    # Includes survive in stripped code as blanks; scan the raw lines and
    # require the include to start the line (not inside a comment).
    for lineno, line in enumerate(f.raw_lines, start=1):
        m = inc.search(line)
        if not m or line.lstrip().startswith("//"):
            continue
        if f.allowed("verify-includes-core", lineno):
            continue
        out.append(
            Violation(
                f.lint_path,
                lineno,
                "verify-includes-core",
                f'oracle independence: src/verify must not include '
                f'"{m.group(1)}" (it would inherit the bugs it exists to '
                "catch)",
            )
        )
    return out


def check_bare_analysis_escape(f: SourceFile) -> list[Violation]:
    if f.lint_path.replace("\\", "/").endswith(WRAPPER_HEADER):
        return []
    out = []
    for lineno, line in enumerate(f.code_lines, start=1):
        if "DBR_NO_THREAD_SAFETY_ANALYSIS" not in line:
            continue
        prev = f.raw_lines[lineno - 2].strip() if lineno >= 2 else ""
        same = f.raw_lines[lineno - 1]

        def justifying(comment_text: str) -> bool:
            # Lint directives (expect-violation markers, pretend-path) are
            # test plumbing, not justification.
            return bool(comment_text) and not re.search(
                r"expect-violation|lint:", comment_text
            )

        same_comment = same.split("//", 1)[1] if "//" in same else ""
        prev_comment = (
            prev[2:] if prev.startswith("//")
            else prev[1:] if prev.startswith("*")
            else ""
        )
        has_comment = justifying(same_comment) or justifying(prev_comment)
        if has_comment or f.allowed("bare-analysis-escape", lineno):
            continue
        out.append(
            Violation(
                f.lint_path,
                lineno,
                "bare-analysis-escape",
                "DBR_NO_THREAD_SAFETY_ANALYSIS without a justifying comment "
                "on the same or preceding line",
            )
        )
    return out


CHECKS = [
    check_rcu_publish_under_guard,
    check_hot_path_heap_alloc,
    check_naked_mutex,
    check_verify_includes,
    check_bare_analysis_escape,
]


def lint_file(path: pathlib.Path) -> list[Violation]:
    f = SourceFile(path)
    out = []
    for check in CHECKS:
        out.extend(check(f))
    return out


def collect(roots: list[str]) -> list[pathlib.Path]:
    files = []
    for root in roots:
        p = (REPO / root) if not pathlib.Path(root).is_absolute() else pathlib.Path(root)
        if p.is_file():
            files.append(p)
            continue
        for child in sorted(p.rglob("*")):
            if child.suffix in SOURCE_SUFFIXES and child.is_file():
                files.append(child)
    return files


def run_scan(roots: list[str]) -> int:
    violations = []
    files = collect(roots)
    for path in files:
        violations.extend(lint_file(path))
    for v in violations:
        print(v)
    print(
        f"check_invariants: {len(files)} files scanned, "
        f"{len(violations)} violation(s)"
    )
    return 1 if violations else 0


def run_self_test() -> int:
    """Asserts every fixture produces exactly its expected violations, then
    that the real tree is clean."""
    failed = False
    fixtures = sorted(
        p for p in FIXTURE_DIR.rglob("*") if p.suffix in SOURCE_SUFFIXES
    )
    if not fixtures:
        print(f"self-test: no fixtures under {FIXTURE_DIR}", file=sys.stderr)
        return 1
    for path in fixtures:
        text = path.read_text(encoding="utf-8", errors="replace")
        expected = sorted(EXPECT_RE.findall(text))
        got = sorted(v.rule for v in lint_file(path))
        name = path.relative_to(REPO)
        if expected == got:
            print(f"self-test: {name}: OK ({', '.join(expected) or 'clean'})")
        else:
            failed = True
            print(
                f"self-test: {name}: FAIL — expected {expected}, got {got}",
                file=sys.stderr,
            )
    print("self-test: scanning the real tree (must be clean)")
    if run_scan(DEFAULT_ROOTS) != 0:
        failed = True
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=DEFAULT_ROOTS,
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check tests/lint_fixtures expectations, then the real tree",
    )
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_scan(args.roots)


if __name__ == "__main__":
    sys.exit(main())
