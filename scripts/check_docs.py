#!/usr/bin/env python3
"""Fail when a public header symbol lacks a documentation comment.

Scans every header under the directories given on the command line (default:
src/core src/service src/net src/util src/sim) and requires a
Doxygen-style comment (``///`` or
``/** ... */``) immediately above each namespace-scope declaration: free
functions, structs/classes, enums, and type aliases. The check leans on the
repository's layout convention — namespace-scope declarations start in
column 0, members are indented — which keeps it dependency-free and fast
enough for CI. It complements the Doxyfile build (which renders the same
headers) as the hard gate of the CI ``docs`` job.

Exit status: 0 when everything is documented, 1 otherwise (one line per
undocumented symbol, ``path:line: symbol``).
"""

import re
import sys
from pathlib import Path

# A column-0 line opening one of these is a declaration that needs a doc
# comment on the line(s) directly above it.
DECL_RE = re.compile(
    r"^(?:template\s*<.*>\s*)?"
    r"(?:struct|class|enum\s+class|enum|union)\s+(?P<tag>\w+)"
    r"|^using\s+(?P<alias>\w+)\s*="
    r"|^(?P<func>(?!using\b|namespace\b|template\b|typedef\b|static_assert\b)"
    r"[A-Za-z_][\w:<>,&*\s]*?[\s&*](?P<fname>[A-Za-z_]\w*)\s*\()"
)

DOC_RE = re.compile(r"^\s*(///|/\*\*|\*|\*/|//)")

SKIP_PREFIXES = ("#", "}", "{", ")", "namespace", "extern", "//", "/*", "*")


def undocumented_symbols(path: Path):
    lines = path.read_text().splitlines()
    pending_template = False
    out = []
    for i, line in enumerate(lines):
        stripped = line.rstrip()
        if not stripped or line[0].isspace():
            continue
        if stripped.startswith(SKIP_PREFIXES):
            continue
        # A column-0 "template <...>" introduces the next line's declaration;
        # the doc comment is expected above the template header.
        if stripped.startswith("template"):
            pending_template = True
            template_line = i
            continue
        match = DECL_RE.match(stripped)
        if not match:
            pending_template = False
            continue
        anchor = template_line if pending_template else i
        pending_template = False
        # Find the nearest non-blank line above the declaration (or its
        # template header) and require it to be part of a comment.
        j = anchor - 1
        while j >= 0 and not lines[j].strip():
            j -= 1
        if j < 0 or not DOC_RE.match(lines[j]):
            name = match.group("tag") or match.group("alias") or match.group("fname")
            out.append((i + 1, name or stripped[:40]))
    return out


def main(argv):
    roots = [
        Path(p)
        for p in (
            argv[1:]
            or ["src/core", "src/service", "src/net", "src/util", "src/sim"]
        )
    ]
    failures = []
    checked = 0
    for root in roots:
        for header in sorted(root.rglob("*.hpp")):
            checked += 1
            for line, name in undocumented_symbols(header):
                failures.append(f"{header}:{line}: undocumented public symbol '{name}'")
    for failure in failures:
        print(failure)
    print(f"check_docs: {checked} headers, {len(failures)} undocumented public symbols")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
