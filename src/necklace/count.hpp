#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/word.hpp"

namespace dbr::necklace {

using u64 = std::uint64_t;

/// The generic counting framework of Chapter 4. A family is described by
/// gamma(j) = #Gamma(j), the number of d-ary j-tuples w satisfying
/// f(w) = g(j), for each j dividing n. The pair (f, g) must satisfy the
/// chapter's Conditions A (rotation invariance) and B (restriction
/// compatibility); all instantiations below do.
using GammaFn = std::function<u64(u64 j)>;

/// Proposition 4.1: number of necklaces of length t (t | n) in B(d,n) whose
/// nodes satisfy f(x) = g(n):  (1/t) * sum_{j | t} Gamma(j) mu(t/j).
u64 count_by_length(u64 n, u64 t, const GammaFn& gamma);

/// Proposition 4.2: total number of such necklaces:
/// (1/n) * sum_{j | n} Gamma(j) phi(n/j).
u64 count_total(u64 n, const GammaFn& gamma);

// --- Instantiations (Section 4.3) ---

/// Necklaces of length t in B(d,n) (f == 0): (1/t) sum_{j|t} d^j mu(t/j).
u64 necklaces_by_length(u64 d, u64 n, u64 t);
/// All necklaces of B(d,n): (1/n) sum_{j|n} d^j phi(n/j).
u64 necklaces_total(u64 d, u64 n);

/// Necklaces of length t in B(2,n) made of weight-k nodes
/// (Gamma(j) = C(j, jk/n) when jk/n is integral, else 0).
u64 binary_weight_necklaces_by_length(u64 n, u64 k, u64 t);
u64 binary_weight_necklaces_total(u64 n, u64 k);

/// d-ary generalization using the bounded-composition counts c_d(j, jk/n).
u64 weight_necklaces_by_length(u64 d, u64 n, u64 k, u64 t);
u64 weight_necklaces_total(u64 d, u64 n, u64 k);

/// Counting by type: type[a] = number of occurrences of digit a
/// (sum type[a] == n). Gamma(j) is the multinomial j! / prod (j*type[a]/n)!.
u64 type_necklaces_by_length(u64 d, u64 n, std::span<const u64> type, u64 t);
u64 type_necklaces_total(u64 d, u64 n, std::span<const u64> type);

// --- Brute-force oracles for property tests ---

/// Counts necklaces of length t whose nodes all satisfy pred, by enumerating
/// canonical representatives. pred must be rotation-invariant.
u64 brute_count_by_length(const WordSpace& ws, unsigned t,
                          const std::function<bool(Word)>& pred);
u64 brute_count_total(const WordSpace& ws, const std::function<bool(Word)>& pred);

}  // namespace dbr::necklace
