#include "necklace/count.hpp"

#include "debruijn/necklaces.hpp"
#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::necklace {

namespace {

using i128 = __int128;

u64 checked_pow(u64 d, u64 e) {
  u64 r = 1;
  for (u64 i = 0; i < e; ++i) {
    require(r <= UINT64_MAX / d, "d^j overflows 64 bits");
    r *= d;
  }
  return r;
}

// Factorial as 128-bit; small arguments only (multinomials of Chapter 4).
i128 factorial128(u64 n) {
  i128 r = 1;
  for (u64 i = 2; i <= n; ++i) {
    r *= static_cast<i128>(i);
    require(r > 0, "factorial overflows 128 bits");
  }
  return r;
}

}  // namespace

u64 count_by_length(u64 n, u64 t, const GammaFn& gamma) {
  require(n >= 1 && t >= 1, "count_by_length requires n, t >= 1");
  require(n % t == 0, "necklace length t must divide n");
  i128 total = 0;
  for (u64 j : nt::divisors(t)) {
    total += static_cast<i128>(gamma(j)) * nt::mobius(t / j);
  }
  ensure(total >= 0 && total % static_cast<i128>(t) == 0,
         "Moebius sum must be a non-negative multiple of t");
  const i128 result = total / static_cast<i128>(t);
  require(result <= static_cast<i128>(UINT64_MAX), "count overflows 64 bits");
  return static_cast<u64>(result);
}

u64 count_total(u64 n, const GammaFn& gamma) {
  require(n >= 1, "count_total requires n >= 1");
  i128 total = 0;
  for (u64 j : nt::divisors(n)) {
    total += static_cast<i128>(gamma(j)) * static_cast<i128>(nt::euler_phi(n / j));
  }
  ensure(total >= 0 && total % static_cast<i128>(n) == 0,
         "phi-weighted sum must be a non-negative multiple of n");
  const i128 result = total / static_cast<i128>(n);
  require(result <= static_cast<i128>(UINT64_MAX), "count overflows 64 bits");
  return static_cast<u64>(result);
}

u64 necklaces_by_length(u64 d, u64 n, u64 t) {
  return count_by_length(n, t, [d](u64 j) { return checked_pow(d, j); });
}

u64 necklaces_total(u64 d, u64 n) {
  return count_total(n, [d](u64 j) { return checked_pow(d, j); });
}

namespace {

// Gamma(j) for weight counting: number of d-ary j-tuples of weight jk/n,
// zero when jk/n is not an integer (Condition B's restriction).
GammaFn weight_gamma(u64 d, u64 n, u64 k) {
  return [d, n, k](u64 j) -> u64 {
    if ((j * k) % n != 0) return 0;
    return nt::bounded_compositions(d, j, j * k / n);
  };
}

}  // namespace

u64 binary_weight_necklaces_by_length(u64 n, u64 k, u64 t) {
  return count_by_length(n, t, weight_gamma(2, n, k));
}

u64 binary_weight_necklaces_total(u64 n, u64 k) {
  return count_total(n, weight_gamma(2, n, k));
}

u64 weight_necklaces_by_length(u64 d, u64 n, u64 k, u64 t) {
  return count_by_length(n, t, weight_gamma(d, n, k));
}

u64 weight_necklaces_total(u64 d, u64 n, u64 k) {
  return count_total(n, weight_gamma(d, n, k));
}

namespace {

GammaFn type_gamma(u64 n, std::vector<u64> type) {
  return [n, type = std::move(type)](u64 j) -> u64 {
    i128 denom = 1;
    for (u64 ka : type) {
      if ((j * ka) % n != 0) return 0;
      denom *= factorial128(j * ka / n);
    }
    const i128 value = factorial128(j) / denom;
    require(value <= static_cast<i128>(UINT64_MAX), "multinomial overflows");
    return static_cast<u64>(value);
  };
}

}  // namespace

u64 type_necklaces_by_length(u64 d, u64 n, std::span<const u64> type, u64 t) {
  require(type.size() == d, "type vector must have d entries");
  u64 sum = 0;
  for (u64 ka : type) sum += ka;
  require(sum == n, "type entries must sum to n");
  return count_by_length(n, t, type_gamma(n, {type.begin(), type.end()}));
}

u64 type_necklaces_total(u64 d, u64 n, std::span<const u64> type) {
  require(type.size() == d, "type vector must have d entries");
  u64 sum = 0;
  for (u64 ka : type) sum += ka;
  require(sum == n, "type entries must sum to n");
  return count_total(n, type_gamma(n, {type.begin(), type.end()}));
}

u64 brute_count_by_length(const WordSpace& ws, unsigned t,
                          const std::function<bool(Word)>& pred) {
  u64 count = 0;
  for (Word x = 0; x < ws.size(); ++x) {
    if (ws.min_rotation(x) == x && ws.period(x) == t && pred(x)) ++count;
  }
  return count;
}

u64 brute_count_total(const WordSpace& ws, const std::function<bool(Word)>& pred) {
  u64 count = 0;
  for (Word x = 0; x < ws.size(); ++x) {
    if (ws.min_rotation(x) == x && pred(x)) ++count;
  }
  return count;
}

}  // namespace dbr::necklace
