#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/word.hpp"

namespace dbr {

/// A closed walk in B(d,n) given by its node sequence v0, v1, ..., v(k-1)
/// (the edge v(k-1) -> v0 closes it). A *cycle* additionally has all nodes
/// distinct.
struct NodeCycle {
  std::vector<Word> nodes;

  std::size_t length() const { return nodes.size(); }
  bool operator==(const NodeCycle&) const = default;
};

/// The circular sequence representation of Section 3.1: C = [c0, ..., c(k-1)]
/// denotes the closed path whose i'th node is the window c_i c_(i+1) ...
/// c_(i+n-1) (indices mod k). n-tuples are nodes; (n+1)-tuples are edges.
struct SymbolCycle {
  std::vector<Digit> symbols;

  std::size_t length() const { return symbols.size(); }
  bool operator==(const SymbolCycle&) const = default;
};

/// Node at position i of the symbol cycle: the length-n window starting at i.
Word window_at(const WordSpace& ws, const SymbolCycle& c, std::size_t i);

/// Expands a symbol cycle to its node sequence.
NodeCycle to_node_cycle(const WordSpace& ws, const SymbolCycle& c);

/// Collapses a node cycle to symbols (c_i = first digit of v_i).
SymbolCycle to_symbol_cycle(const WordSpace& ws, const NodeCycle& c);

/// True if the node sequence is a closed walk (consecutive nodes adjacent
/// in B(d,n), wrap included).
bool is_closed_walk(const WordSpace& ws, const NodeCycle& c);

/// True if the node sequence is a cycle: a closed walk with distinct nodes.
bool is_cycle(const WordSpace& ws, const NodeCycle& c);

/// True if the symbol cycle is a cycle (all length-n windows distinct).
bool is_cycle(const WordSpace& ws, const SymbolCycle& c);

/// True if the cycle visits every node of B(d,n).
bool is_hamiltonian(const WordSpace& ws, const NodeCycle& c);
bool is_hamiltonian(const WordSpace& ws, const SymbolCycle& c);

/// The k edge words ((n+1)-windows) of the cycle, in traversal order.
std::vector<Word> edge_words(const WordSpace& ws, const SymbolCycle& c);
std::vector<Word> edge_words(const WordSpace& ws, const NodeCycle& c);

/// True if two cycles share no edge (the paper's "edge-disjoint"; for
/// Hamiltonian cycles simply "disjoint", Section 3.1).
bool edges_disjoint(const WordSpace& ws, const SymbolCycle& a, const SymbolCycle& b);

/// True if the cycle uses none of the given faulty edge words.
bool avoids_edges(const WordSpace& ws, const SymbolCycle& c,
                  std::span<const Word> faulty_edge_words);

/// Rotates the cycle so that it starts at its minimal node; two equal cycles
/// then compare equal regardless of starting point.
NodeCycle canonical_rotation(const WordSpace& ws, NodeCycle c);

/// Human-readable rendering "(v0, v1, ...)".
std::string to_string(const WordSpace& ws, const NodeCycle& c);

}  // namespace dbr
