#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/word.hpp"

namespace dbr {

/// The Kautz digraph K(d,n), the De Bruijn relative named in Chapter 5's
/// future-work list ("other bounded degree graphs, such as butterfly graphs
/// and Kautz graphs [BP89]"): nodes are words of length n over a (d+1)-ary
/// alphabet whose consecutive digits differ; edges shift left and append
/// any digit different from the new last one. (d+1) d^(n-1) nodes, in- and
/// out-degree d, no loops, diameter n, and K(d,n+1) is the line graph of
/// K(d,n).
///
/// Nodes are encoded as WordSpace(d+1, n) words; only valid (proper) words
/// are Kautz nodes - use is_node() / nodes() to enumerate them. Invalid ids
/// have no successors, so graph algorithms over the full id range treat
/// them as isolated.
class KautzDigraph {
 public:
  KautzDigraph(Digit d, unsigned n) : degree_(d), ws_(d + 1, n) {}

  Digit degree() const { return degree_; }
  const WordSpace& words() const { return ws_; }

  /// Number of ids in the encoding space ((d+1)^n); only num_kautz_nodes()
  /// of them are valid Kautz nodes.
  NodeId num_nodes() const { return ws_.size(); }
  std::uint64_t num_kautz_nodes() const;
  std::uint64_t num_kautz_edges() const { return num_kautz_nodes() * degree_; }

  /// True if the word has no equal consecutive digits.
  bool is_node(Word v) const;
  /// All valid Kautz nodes, ascending.
  std::vector<Word> nodes() const;

  std::vector<Word> successors(Word v) const;
  bool has_edge(Word u, Word v) const;

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    if (!is_node(v)) return;
    for (Digit a = 0; a <= degree_; ++a) {
      if (a == ws_.tail(v)) continue;
      fn(ws_.shift_append(v, a));
    }
  }

  /// Explicit CSR copy over the full id space (invalid ids isolated).
  Digraph materialize() const;

 private:
  Digit degree_;
  WordSpace ws_;
};

static_assert(DirectedGraph<KautzDigraph>);

}  // namespace dbr
