#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/word.hpp"

namespace dbr {

/// The binary shuffle-exchange graph SE(n) whose necklace structure Chapter
/// 4 counts alongside B(2,n)'s ([LMR88], [LHC89], [PI92], [RB90]): nodes are
/// binary n-tuples; each node has a *shuffle* edge to its left rotation, an
/// *unshuffle* edge to its right rotation, and an *exchange* edge to the
/// node with the last bit flipped. Viewed as a symmetric digraph.
///
/// Necklaces (rotation classes) play the role of the butterfly's levels in
/// the [LMR88] routing scheme: shuffle edges move around a necklace,
/// exchange edges hop between necklaces.
class ShuffleExchange {
 public:
  explicit ShuffleExchange(unsigned n) : ws_(2, n) {}

  const WordSpace& words() const { return ws_; }
  NodeId num_nodes() const { return ws_.size(); }

  Word shuffle(Word v) const { return ws_.rotate_left(v, 1); }
  Word unshuffle(Word v) const { return ws_.rotate_left(v, ws_.length() - 1); }
  Word exchange(Word v) const { return v ^ 1u; }

  /// Distinct neighbors (self-loops from 0^n / 1^n shuffles removed).
  std::vector<Word> neighbors(Word v) const;
  unsigned degree(Word v) const;

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    for (Word w : neighbors(v)) fn(w);
  }

 private:
  WordSpace ws_;
};

static_assert(DirectedGraph<ShuffleExchange>);

}  // namespace dbr
