#include "debruijn/kautz.hpp"

#include "util/require.hpp"

namespace dbr {

std::uint64_t KautzDigraph::num_kautz_nodes() const {
  std::uint64_t count = degree_ + 1ull;
  for (unsigned i = 1; i < ws_.length(); ++i) count *= degree_;
  return count;
}

bool KautzDigraph::is_node(Word v) const {
  if (v >= ws_.size()) return false;
  for (unsigned i = 0; i + 1 < ws_.length(); ++i) {
    if (ws_.digit(v, i) == ws_.digit(v, i + 1)) return false;
  }
  return true;
}

std::vector<Word> KautzDigraph::nodes() const {
  std::vector<Word> out;
  out.reserve(num_kautz_nodes());
  for (Word v = 0; v < ws_.size(); ++v) {
    if (is_node(v)) out.push_back(v);
  }
  ensure(out.size() == num_kautz_nodes(), "Kautz node count formula");
  return out;
}

std::vector<Word> KautzDigraph::successors(Word v) const {
  require(is_node(v), "not a Kautz node");
  std::vector<Word> out;
  out.reserve(degree_);
  for_each_successor(v, [&](NodeId w) { out.push_back(w); });
  return out;
}

bool KautzDigraph::has_edge(Word u, Word v) const {
  if (!is_node(u) || !is_node(v)) return false;
  return ws_.suffix(u) == ws_.prefix(v) && ws_.tail(u) != ws_.tail(v);
}

Digraph KautzDigraph::materialize() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_kautz_edges());
  for (Word v = 0; v < ws_.size(); ++v) {
    for_each_successor(v, [&](NodeId w) { edges.emplace_back(v, w); });
  }
  return Digraph::from_edges(ws_.size(), edges);
}

}  // namespace dbr
