#include "debruijn/debruijn.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dbr {

std::vector<Word> DeBruijnDigraph::successors(Word v) const {
  std::vector<Word> out;
  out.reserve(ws_.radix());
  for (Digit a = 0; a < ws_.radix(); ++a) out.push_back(ws_.shift_append(v, a));
  return out;
}

std::vector<Word> DeBruijnDigraph::predecessors(Word v) const {
  std::vector<Word> out;
  out.reserve(ws_.radix());
  for (Digit a = 0; a < ws_.radix(); ++a) out.push_back(ws_.shift_prepend(v, a));
  return out;
}

bool DeBruijnDigraph::is_loop_node(Word v) const {
  return v == ws_.repeated(ws_.tail(v));
}

Digraph DeBruijnDigraph::materialize() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  for (Word v = 0; v < num_nodes(); ++v) {
    for (Digit a = 0; a < ws_.radix(); ++a) {
      edges.emplace_back(v, ws_.shift_append(v, a));
    }
  }
  return Digraph::from_edges(num_nodes(), edges);
}

std::vector<Word> UndirectedDeBruijn::neighbors(Word v) const {
  std::vector<Word> out = graph_.successors(v);
  const std::vector<Word> preds = graph_.predecessors(v);
  out.insert(out.end(), preds.begin(), preds.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), v), out.end());
  return out;
}

unsigned UndirectedDeBruijn::degree(Word v) const {
  return static_cast<unsigned>(neighbors(v).size());
}

std::uint64_t UndirectedDeBruijn::num_edges() const {
  std::uint64_t twice = 0;
  for (Word v = 0; v < num_nodes(); ++v) twice += degree(v);
  ensure(twice % 2 == 0, "handshake parity violated");
  return twice / 2;
}

bool UndirectedDeBruijn::has_edge(Word u, Word v) const {
  if (u == v) return false;
  return graph_.has_edge(u, v) || graph_.has_edge(v, u);
}

}  // namespace dbr
