#include "debruijn/cycle.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/require.hpp"

namespace dbr {

Word window_at(const WordSpace& ws, const SymbolCycle& c, std::size_t i) {
  const std::size_t k = c.symbols.size();
  require(k > 0, "empty symbol cycle has no windows");
  Word x = 0;
  for (unsigned j = 0; j < ws.length(); ++j) {
    x = x * ws.radix() + c.symbols[(i + j) % k];
  }
  return x;
}

NodeCycle to_node_cycle(const WordSpace& ws, const SymbolCycle& c) {
  NodeCycle out;
  out.nodes.reserve(c.symbols.size());
  for (std::size_t i = 0; i < c.symbols.size(); ++i) {
    out.nodes.push_back(window_at(ws, c, i));
  }
  return out;
}

SymbolCycle to_symbol_cycle(const WordSpace& ws, const NodeCycle& c) {
  SymbolCycle out;
  out.symbols.reserve(c.nodes.size());
  for (Word v : c.nodes) out.symbols.push_back(ws.head(v));
  return out;
}

bool is_closed_walk(const WordSpace& ws, const NodeCycle& c) {
  const std::size_t k = c.nodes.size();
  if (k == 0) return false;
  for (std::size_t i = 0; i < k; ++i) {
    const Word u = c.nodes[i];
    const Word v = c.nodes[(i + 1) % k];
    if (u >= ws.size() || ws.suffix(u) != ws.prefix(v)) return false;
  }
  return true;
}

bool is_cycle(const WordSpace& ws, const NodeCycle& c) {
  if (!is_closed_walk(ws, c)) return false;
  std::vector<Word> sorted = c.nodes;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

bool is_cycle(const WordSpace& ws, const SymbolCycle& c) {
  if (c.symbols.empty()) return false;
  for (Digit s : c.symbols) {
    if (s >= ws.radix()) return false;
  }
  return is_cycle(ws, to_node_cycle(ws, c));
}

bool is_hamiltonian(const WordSpace& ws, const NodeCycle& c) {
  return c.nodes.size() == ws.size() && is_cycle(ws, c);
}

bool is_hamiltonian(const WordSpace& ws, const SymbolCycle& c) {
  return c.symbols.size() == ws.size() && is_cycle(ws, c);
}

std::vector<Word> edge_words(const WordSpace& ws, const SymbolCycle& c) {
  const std::size_t k = c.symbols.size();
  std::vector<Word> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Word u = window_at(ws, c, i);
    out.push_back(ws.edge_word(u, c.symbols[(i + ws.length()) % k]));
  }
  return out;
}

std::vector<Word> edge_words(const WordSpace& ws, const NodeCycle& c) {
  const std::size_t k = c.nodes.size();
  std::vector<Word> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(ws.edge_word(c.nodes[i], ws.tail(c.nodes[(i + 1) % k])));
  }
  return out;
}

bool edges_disjoint(const WordSpace& ws, const SymbolCycle& a, const SymbolCycle& b) {
  const auto ea = edge_words(ws, a);
  std::unordered_set<Word> seen(ea.begin(), ea.end());
  for (Word e : edge_words(ws, b)) {
    if (seen.contains(e)) return false;
  }
  return true;
}

bool avoids_edges(const WordSpace& ws, const SymbolCycle& c,
                  std::span<const Word> faulty_edge_words) {
  const std::unordered_set<Word> faulty(faulty_edge_words.begin(),
                                        faulty_edge_words.end());
  for (Word e : edge_words(ws, c)) {
    if (faulty.contains(e)) return false;
  }
  return true;
}

NodeCycle canonical_rotation(const WordSpace& ws, NodeCycle c) {
  (void)ws;
  if (c.nodes.empty()) return c;
  const auto it = std::min_element(c.nodes.begin(), c.nodes.end());
  std::rotate(c.nodes.begin(), it, c.nodes.end());
  return c;
}

std::string to_string(const WordSpace& ws, const NodeCycle& c) {
  std::string out = "(";
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += ws.to_string(c.nodes[i]);
  }
  out += ")";
  return out;
}

}  // namespace dbr
