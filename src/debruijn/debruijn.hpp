#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/word.hpp"

namespace dbr {

/// The d-ary directed De Bruijn graph B(d,n): nodes are d-ary n-tuples,
/// with edges x1...xn -> x2...xn a for every digit a. Nodes of the form a^n
/// carry loops. Adjacency is computed arithmetically in O(1) per edge; the
/// graph is never materialized unless materialize() is called.
class DeBruijnDigraph {
 public:
  DeBruijnDigraph(Digit d, unsigned n) : ws_(d, n) {}
  explicit DeBruijnDigraph(const WordSpace& ws) : ws_(ws) {}

  const WordSpace& words() const { return ws_; }
  Digit radix() const { return ws_.radix(); }
  unsigned tuple_length() const { return ws_.length(); }

  NodeId num_nodes() const { return ws_.size(); }
  /// d^(n+1) directed edges including the d loops.
  std::uint64_t num_edges() const { return ws_.size() * ws_.radix(); }
  /// Non-loop directed edges: d^(n+1) - d (Section 3.2 counts these).
  std::uint64_t num_nonloop_edges() const { return num_edges() - ws_.radix(); }

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    for (Digit a = 0; a < ws_.radix(); ++a) fn(ws_.shift_append(v, a));
  }

  std::vector<Word> successors(Word v) const;
  std::vector<Word> predecessors(Word v) const;
  bool has_edge(Word u, Word v) const { return ws_.suffix(u) == ws_.prefix(v); }
  bool is_loop_node(Word v) const;

  /// Explicit CSR copy (loops included).
  Digraph materialize() const;

 private:
  WordSpace ws_;
};

static_assert(DirectedGraph<DeBruijnDigraph>);

/// The undirected De Bruijn graph UB(d,n): B(d,n) with loops deleted,
/// orientation removed and parallel edges merged. Degree structure
/// (Pradhan-Reddy 1982, quoted in Section 1.2): d nodes of degree 2d-2,
/// d(d-1) nodes of degree 2d-1, and d^n - d^2 nodes of degree 2d (n >= 2).
class UndirectedDeBruijn {
 public:
  UndirectedDeBruijn(Digit d, unsigned n) : graph_(d, n) {}

  const WordSpace& words() const { return graph_.words(); }
  NodeId num_nodes() const { return graph_.num_nodes(); }

  /// Distinct neighbors (no self, parallel edges merged), ascending.
  std::vector<Word> neighbors(Word v) const;
  unsigned degree(Word v) const;
  /// Total undirected edges.
  std::uint64_t num_edges() const;
  bool has_edge(Word u, Word v) const;

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    for (Word w : neighbors(v)) fn(w);
  }

 private:
  DeBruijnDigraph graph_;
};

static_assert(DirectedGraph<UndirectedDeBruijn>);

}  // namespace dbr
