#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/word.hpp"

namespace dbr {

/// A necklace N(x): the cyclic rotation class of a word, which forms a
/// cycle of length period(x) in B(d,n) (Section 2.1). The representative is
/// the minimal rotation, written [y] in the paper.
struct Necklace {
  Word rep;
  unsigned length;

  bool operator==(const Necklace&) const = default;
};

/// Representative of the necklace containing x.
Word necklace_rep(const WordSpace& ws, Word x);

/// The distinct nodes of N(x) in cycle order starting from the
/// representative: rep, pi(rep), pi^2(rep), ...
std::vector<Word> necklace_nodes(const WordSpace& ws, Word x);

/// Successor of x along its necklace cycle: x2...xn x1.
Word necklace_successor(const WordSpace& ws, Word x);

/// All necklaces of B(d,n), ordered by representative.
std::vector<Necklace> all_necklaces(const WordSpace& ws);

/// Canonical representatives of the necklaces containing the given nodes
/// (deduplicated, sorted) - the paper's "faulty necklaces" for a fault set.
std::vector<Word> necklace_reps_of(const WordSpace& ws, std::span<const Word> nodes);

/// Total number of nodes covered by the necklaces of the given
/// representatives (the paper's N_F for a faulty set).
std::uint64_t necklace_node_count(const WordSpace& ws, std::span<const Word> reps);

}  // namespace dbr
