#include "debruijn/necklaces.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dbr {

Word necklace_rep(const WordSpace& ws, Word x) { return ws.min_rotation(x); }

std::vector<Word> necklace_nodes(const WordSpace& ws, Word x) {
  const Word rep = ws.min_rotation(x);
  const unsigned len = ws.period(x);
  std::vector<Word> out;
  out.reserve(len);
  Word cur = rep;
  for (unsigned i = 0; i < len; ++i) {
    out.push_back(cur);
    cur = ws.rotate_left(cur, 1);
  }
  ensure(cur == rep, "necklace traversal did not close");
  return out;
}

Word necklace_successor(const WordSpace& ws, Word x) { return ws.rotate_left(x, 1); }

std::vector<Necklace> all_necklaces(const WordSpace& ws) {
  std::vector<Necklace> out;
  for (Word x = 0; x < ws.size(); ++x) {
    if (ws.min_rotation(x) == x) out.push_back({x, ws.period(x)});
  }
  return out;
}

std::vector<Word> necklace_reps_of(const WordSpace& ws, std::span<const Word> nodes) {
  std::vector<Word> reps;
  reps.reserve(nodes.size());
  for (Word x : nodes) {
    require(x < ws.size(), "node out of range");
    reps.push_back(ws.min_rotation(x));
  }
  std::sort(reps.begin(), reps.end());
  reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
  return reps;
}

std::uint64_t necklace_node_count(const WordSpace& ws, std::span<const Word> reps) {
  std::uint64_t total = 0;
  for (Word rep : reps) total += ws.period(rep);
  return total;
}

}  // namespace dbr
