#include "debruijn/shuffle_exchange.hpp"

#include <algorithm>

namespace dbr {

std::vector<Word> ShuffleExchange::neighbors(Word v) const {
  std::vector<Word> out{shuffle(v), unshuffle(v), exchange(v)};
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), v), out.end());
  return out;
}

unsigned ShuffleExchange::degree(Word v) const {
  return static_cast<unsigned>(neighbors(v).size());
}

}  // namespace dbr
