#include "graph/euler.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/require.hpp"

namespace dbr {

bool has_eulerian_circuit(const Digraph& g) {
  const auto in = g.in_degrees();
  const auto out = g.out_degrees();
  NodeId support = kNoParent;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in[v] != out[v]) return false;
    if (out[v] > 0 && support == kNoParent) support = v;
  }
  if (support == kNoParent) return true;  // no edges
  const auto label = weak_components(
      g, [&](NodeId v) { return in[v] + out[v] > 0; });
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (out[v] > 0 && label[v] != label[support]) return false;
  }
  return true;
}

std::vector<NodeId> eulerian_circuit(const Digraph& g) {
  require(has_eulerian_circuit(g), "graph is not Eulerian");
  NodeId start = kNoParent;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.successors(v).empty()) {
      start = v;
      break;
    }
  }
  if (start == kNoParent) return {};

  // Hierholzer with an explicit stack; `cursor[v]` walks v's successor list.
  std::vector<std::size_t> cursor(g.num_nodes(), 0);
  std::vector<NodeId> stack{start};
  std::vector<NodeId> circuit;
  circuit.reserve(g.num_edges() + 1);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    const auto succ = g.successors(v);
    if (cursor[v] < succ.size()) {
      stack.push_back(succ[cursor[v]++]);
    } else {
      circuit.push_back(v);
      stack.pop_back();
    }
  }
  ensure(circuit.size() == g.num_edges() + 1, "Eulerian circuit missed edges");
  std::reverse(circuit.begin(), circuit.end());
  circuit.pop_back();  // drop the duplicated endpoint
  return circuit;
}

}  // namespace dbr
