#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace dbr {

/// Exhaustive longest simple cycle in a small directed graph, optionally
/// restricted to an active node mask. Exponential-time DFS with branch
/// pruning; intended for graphs of at most a few dozen nodes, where it
/// serves as an optimality oracle for the worst-case fault-placement claims
/// of Section 2.5 (no fault-free cycle longer than d^n - nf exists for the
/// adversarial fault set {a^(n-1)(d-1)}).
///
/// Returns the length of the longest cycle (0 if the graph is acyclic on the
/// active set). Loops count as cycles of length 1.
std::uint64_t longest_cycle_bruteforce(const Digraph& g,
                                       const std::vector<bool>& active);

/// Convenience overload over all nodes.
std::uint64_t longest_cycle_bruteforce(const Digraph& g);

}  // namespace dbr
