#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace dbr {

/// Computes an Eulerian circuit of a directed multigraph using Hierholzer's
/// algorithm. The circuit is returned as the visited node sequence
/// v0, v1, ..., vm with vm == v0 omitted (m == number of edges).
///
/// Preconditions: the multigraph restricted to nodes with degree > 0 is
/// connected and every node is balanced (indegree == outdegree); throws
/// precondition_error otherwise. An empty graph yields an empty circuit.
///
/// The De Bruijn line-graph identity (Section 2.5) maps Eulerian circuits of
/// B(d,n-1) to Hamiltonian cycles of B(d,n); tests use this as an
/// independent generator of De Bruijn sequences.
std::vector<NodeId> eulerian_circuit(const Digraph& g);

/// True if g admits an Eulerian circuit (balanced and connected on its
/// support).
bool has_eulerian_circuit(const Digraph& g);

}  // namespace dbr
