#include "graph/union_find.hpp"

#include "util/require.hpp"

namespace dbr {

UnionFind::UnionFind(std::uint64_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  for (std::uint64_t i = 0; i < n; ++i) parent_[i] = i;
}

std::uint64_t UnionFind::find(std::uint64_t x) {
  require(x < parent_.size(), "element out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint64_t a, std::uint64_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

std::uint64_t UnionFind::set_size(std::uint64_t x) { return size_[find(x)]; }

}  // namespace dbr
