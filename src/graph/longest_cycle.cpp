#include "graph/longest_cycle.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/require.hpp"

namespace dbr {

namespace {

struct Search {
  const Digraph* g;
  std::vector<bool> eligible;  // nodes allowed in the current anchor's search
  std::vector<bool> visited;
  NodeId anchor = 0;  // cycles are enumerated with their minimum node first
  std::uint64_t best = 0;
  std::uint64_t remaining = 0;  // unvisited eligible nodes

  void dfs(NodeId v, std::uint64_t length) {
    // Bound: even using every remaining node cannot beat the incumbent.
    if (length + remaining <= best) return;
    for (NodeId w : g->successors(v)) {
      if (w == anchor) {
        best = std::max(best, length);
        continue;
      }
      if (!eligible[w] || visited[w]) continue;
      visited[w] = true;
      --remaining;
      dfs(w, length + 1);
      ++remaining;
      visited[w] = false;
    }
  }
};

}  // namespace

std::uint64_t longest_cycle_bruteforce(const Digraph& g,
                                       const std::vector<bool>& active) {
  require(active.size() == g.num_nodes(), "active mask size mismatch");
  require(g.num_nodes() <= 64, "brute-force longest cycle limited to 64 nodes");
  const Digraph rev = g.reversed();
  Search s;
  s.g = &g;
  s.visited.assign(g.num_nodes(), false);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (!active[start]) continue;
    // Loops are 1-cycles.
    for (NodeId w : g.successors(start)) {
      if (w == start) s.best = std::max<std::uint64_t>(s.best, 1);
    }
    // Any cycle whose minimum node is `start` lives inside the strongly
    // connected component of `start` within {v >= start, active}; restrict
    // the search (and its pruning bound) to that set.
    std::vector<bool> mask(g.num_nodes(), false);
    for (NodeId v = start; v < g.num_nodes(); ++v) mask[v] = active[v];
    const SubgraphView<Digraph> fview(g, mask);
    const auto fwd = bfs(fview, start, [&](NodeId v) { return mask[v]; });
    const SubgraphView<Digraph> rview(rev, mask);
    const auto bwd = bfs(rview, start, [&](NodeId v) { return mask[v]; });
    s.eligible.assign(g.num_nodes(), false);
    std::uint64_t comp_size = 0;
    for (NodeId v = start; v < g.num_nodes(); ++v) {
      if (fwd.dist[v] != kUnreached && bwd.dist[v] != kUnreached) {
        s.eligible[v] = true;
        ++comp_size;
      }
    }
    if (comp_size <= s.best) continue;  // component too small to improve
    s.anchor = start;
    s.remaining = comp_size - 1;
    std::fill(s.visited.begin(), s.visited.end(), false);
    s.visited[start] = true;
    s.dfs(start, 1);
  }
  return s.best;
}

std::uint64_t longest_cycle_bruteforce(const Digraph& g) {
  return longest_cycle_bruteforce(g, std::vector<bool>(g.num_nodes(), true));
}

}  // namespace dbr
