#pragma once

#include <cstdint>
#include <vector>

namespace dbr {

/// Disjoint-set forest with union by size and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::uint64_t n);

  std::uint64_t find(std::uint64_t x);
  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(std::uint64_t a, std::uint64_t b);
  /// Size of the set containing x.
  std::uint64_t set_size(std::uint64_t x);
  /// Number of disjoint sets.
  std::uint64_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::uint64_t> parent_;
  std::vector<std::uint64_t> size_;
  std::uint64_t num_sets_;
};

}  // namespace dbr
