#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dbr {

/// Node identifier in a graph (graphs here are at most a few million nodes).
using NodeId = std::uint64_t;

namespace detail {
struct SuccessorSink {
  void operator()(NodeId) const {}
};
}  // namespace detail

/// A directed graph exposed through successor enumeration. Models include
/// the explicit CSR Digraph below and the implicit De Bruijn / butterfly /
/// hypercube graphs, which compute successors arithmetically.
template <typename G>
concept DirectedGraph = requires(const G& g, NodeId v, detail::SuccessorSink sink) {
  { g.num_nodes() } -> std::convertible_to<NodeId>;
  g.for_each_successor(v, sink);
};

/// Explicit directed multigraph in compressed sparse row form.
class Digraph {
 public:
  Digraph() = default;

  /// Builds from an edge list; parallel edges and loops are kept.
  static Digraph from_edges(NodeId num_nodes,
                            std::span<const std::pair<NodeId, NodeId>> edges);

  NodeId num_nodes() const { return num_nodes_; }
  std::uint64_t num_edges() const { return heads_.size(); }

  std::span<const NodeId> successors(NodeId v) const;

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    for (NodeId w : successors(v)) fn(w);
  }

  /// In-degree of every node (parallel edges counted).
  std::vector<std::uint64_t> in_degrees() const;
  /// Out-degree of every node.
  std::vector<std::uint64_t> out_degrees() const;
  /// The graph with every edge reversed.
  Digraph reversed() const;
  /// All edges in CSR order.
  std::vector<std::pair<NodeId, NodeId>> edge_list() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<std::uint64_t> offsets_;  // size num_nodes_+1
  std::vector<NodeId> heads_;
};

static_assert(DirectedGraph<Digraph>);

/// The line graph L(G): one node per edge of g, an edge (a,b) -> (b,c)
/// whenever the head of one edge is the tail of the next. Used to validate
/// the De Bruijn identity B(d,n) = L(B(d,n-1)) (Section 2.5).
Digraph line_graph(const Digraph& g);

}  // namespace dbr
