#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/union_find.hpp"
#include "util/require.hpp"

namespace dbr {

/// Distance value for nodes not reached by a traversal.
inline constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
/// Parent value for roots / unreached nodes.
inline constexpr NodeId kNoParent = std::numeric_limits<NodeId>::max();

struct BfsResult {
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> parent;

  /// Maximum finite distance (the eccentricity of the source within its
  /// reachable set). Zero for an isolated source.
  std::uint32_t eccentricity() const {
    std::uint32_t e = 0;
    for (std::uint32_t d : dist) {
      if (d != kUnreached && d > e) e = d;
    }
    return e;
  }

  /// Number of reached nodes (including the source).
  std::uint64_t reached() const {
    std::uint64_t c = 0;
    for (std::uint32_t d : dist) c += (d != kUnreached) ? 1 : 0;
    return c;
  }
};

/// Breadth-first search over the subgraph induced by `active`, following
/// directed edges forward from src. Implements the paper's broadcast-tree
/// rule (Section 2.4, Step 1.1): the parent of a node is the *minimum-id*
/// predecessor among those at distance dist-1, i.e. the first processor the
/// message was received from, with ties broken toward the smallest id.
template <DirectedGraph G, typename ActivePred>
BfsResult bfs(const G& g, NodeId src, ActivePred&& active) {
  const NodeId n = g.num_nodes();
  require(src < n, "BFS source out of range");
  require(active(src), "BFS source must be active");
  BfsResult r;
  r.dist.assign(n, kUnreached);
  r.parent.assign(n, kNoParent);
  std::vector<NodeId> frontier{src};
  r.dist[src] = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (NodeId u : frontier) {
      const std::uint32_t du = r.dist[u];
      g.for_each_successor(u, [&](NodeId v) {
        if (v == u) return;  // loops carry no information for the broadcast
        if (!active(v)) return;
        if (r.dist[v] == kUnreached) {
          r.dist[v] = du + 1;
          r.parent[v] = u;
          next.push_back(v);
        } else if (r.dist[v] == du + 1 && u < r.parent[v]) {
          r.parent[v] = u;  // same round, smaller sender id wins
        }
      });
    }
    frontier.swap(next);
  }
  return r;
}

/// BFS over all nodes (no fault mask).
template <DirectedGraph G>
BfsResult bfs(const G& g, NodeId src) {
  return bfs(g, src, [](NodeId) { return true; });
}

/// Weakly-connected components of the subgraph induced by `active`.
/// Returns the component label of each node (kNoParent for inactive nodes);
/// labels are the minimum node id in the component.
template <DirectedGraph G, typename ActivePred>
std::vector<NodeId> weak_components(const G& g, ActivePred&& active) {
  const NodeId n = g.num_nodes();
  UnionFind uf(n);
  for (NodeId u = 0; u < n; ++u) {
    if (!active(u)) continue;
    g.for_each_successor(u, [&](NodeId v) {
      if (v < n && active(v)) uf.unite(u, v);
    });
  }
  std::vector<NodeId> label(n, kNoParent);
  std::vector<NodeId> root_min(n, kNoParent);
  for (NodeId u = 0; u < n; ++u) {
    if (!active(u)) continue;
    const NodeId r = uf.find(u);
    if (root_min[r] == kNoParent) root_min[r] = u;  // ids scanned ascending
  }
  for (NodeId u = 0; u < n; ++u) {
    if (active(u)) label[u] = root_min[uf.find(u)];
  }
  return label;
}

/// True if every active node has equal in- and out-degree within the active
/// subgraph (loops count once on each side).
template <DirectedGraph G, typename ActivePred>
bool is_balanced(const G& g, ActivePred&& active) {
  const NodeId n = g.num_nodes();
  std::vector<std::int64_t> balance(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (!active(u)) continue;
    g.for_each_successor(u, [&](NodeId v) {
      if (v < n && active(v)) {
        ++balance[u];
        --balance[v];
      }
    });
  }
  for (NodeId u = 0; u < n; ++u) {
    if (active(u) && balance[u] != 0) return false;
  }
  return true;
}

/// Lightweight fault-masked view of a graph: inactive nodes lose all
/// incident edges (they become isolated singletons). Models DirectedGraph,
/// so every algorithm in this header runs on it unchanged.
template <DirectedGraph G>
class SubgraphView {
 public:
  SubgraphView(const G& g, const std::vector<bool>& active)
      : g_(&g), active_(&active) {
    require(active.size() == g.num_nodes(), "active mask size mismatch");
  }

  NodeId num_nodes() const { return g_->num_nodes(); }

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    if (!(*active_)[v]) return;
    g_->for_each_successor(v, [&](NodeId w) {
      if ((*active_)[w]) fn(w);
    });
  }

  bool active(NodeId v) const { return (*active_)[v]; }

 private:
  const G* g_;
  const std::vector<bool>* active_;
};

/// Strongly connected components (iterative Tarjan). Returns component ids
/// in [0, count); nodes in the same SCC share an id.
struct SccResult {
  std::vector<std::uint64_t> component;
  std::uint64_t count = 0;
};

template <DirectedGraph G>
SccResult strongly_connected_components(const G& g) {
  const NodeId n = g.num_nodes();
  constexpr std::uint64_t kUndef = std::numeric_limits<std::uint64_t>::max();
  SccResult r;
  r.component.assign(n, kUndef);
  std::vector<std::uint64_t> index(n, kUndef), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::uint64_t next_index = 0;

  // Iterative DFS frames: (node, iterator position over materialized succs).
  struct Frame {
    NodeId node;
    std::vector<NodeId> succs;
    std::size_t pos = 0;
  };
  std::vector<Frame> frames;
  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != kUndef) continue;
    frames.push_back({start, {}, 0});
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    g.for_each_successor(start, [&](NodeId w) { frames.back().succs.push_back(w); });
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.pos < f.succs.size()) {
        const NodeId w = f.succs[f.pos++];
        if (index[w] == kUndef) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, {}, 0});
          g.for_each_successor(w, [&](NodeId x) { frames.back().succs.push_back(x); });
        } else if (on_stack[w]) {
          low[f.node] = std::min(low[f.node], index[w]);
        }
      } else {
        const NodeId v = f.node;
        if (low[v] == index[v]) {
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            r.component[w] = r.count;
            if (w == v) break;
          }
          ++r.count;
        }
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node], low[v]);
        }
      }
    }
  }
  return r;
}

}  // namespace dbr
