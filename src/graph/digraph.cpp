#include "graph/digraph.hpp"

#include "util/require.hpp"

namespace dbr {

Digraph Digraph::from_edges(NodeId num_nodes,
                            std::span<const std::pair<NodeId, NodeId>> edges) {
  Digraph g;
  g.num_nodes_ = num_nodes;
  g.offsets_.assign(num_nodes + 1, 0);
  for (const auto& [u, v] : edges) {
    require(u < num_nodes && v < num_nodes, "edge endpoint out of range");
    ++g.offsets_[u + 1];
  }
  for (NodeId v = 0; v < num_nodes; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.heads_.resize(edges.size());
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) g.heads_[cursor[u]++] = v;
  return g;
}

std::span<const NodeId> Digraph::successors(NodeId v) const {
  require(v < num_nodes_, "node out of range");
  return {heads_.data() + offsets_[v], heads_.data() + offsets_[v + 1]};
}

std::vector<std::uint64_t> Digraph::in_degrees() const {
  std::vector<std::uint64_t> deg(num_nodes_, 0);
  for (NodeId h : heads_) ++deg[h];
  return deg;
}

std::vector<std::uint64_t> Digraph::out_degrees() const {
  std::vector<std::uint64_t> deg(num_nodes_, 0);
  for (NodeId v = 0; v < num_nodes_; ++v) deg[v] = offsets_[v + 1] - offsets_[v];
  return deg;
}

Digraph Digraph::reversed() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(heads_.size());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (NodeId w : successors(v)) edges.emplace_back(w, v);
  }
  return from_edges(num_nodes_, edges);
}

std::vector<std::pair<NodeId, NodeId>> Digraph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(heads_.size());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (NodeId w : successors(v)) edges.emplace_back(v, w);
  }
  return edges;
}

Digraph line_graph(const Digraph& g) {
  // Edge k of g (in CSR order) becomes node k of L(g).
  const auto edges = g.edge_list();
  // first_edge[v] = index of first CSR edge with tail v.
  std::vector<std::uint64_t> first_edge(g.num_nodes() + 1, 0);
  for (const auto& [u, v] : edges) ++first_edge[u + 1];
  for (NodeId v = 0; v < g.num_nodes(); ++v) first_edge[v + 1] += first_edge[v];

  std::vector<std::pair<NodeId, NodeId>> line_edges;
  for (std::uint64_t k = 0; k < edges.size(); ++k) {
    const NodeId head = edges[k].second;
    for (std::uint64_t j = first_edge[head]; j < first_edge[head + 1]; ++j) {
      line_edges.emplace_back(k, j);
    }
  }
  return Digraph::from_edges(edges.size(), line_edges);
}

}  // namespace dbr
