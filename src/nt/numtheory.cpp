#include "nt/numtheory.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dbr::nt {

u64 mul_mod(u64 a, u64 b, u64 m) {
  return static_cast<u64>(static_cast<u128>(a) * b % m);
}

u64 pow_mod(u64 a, u64 e, u64 m) {
  require(m > 0, "pow_mod: modulus must be positive");
  u64 result = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1) result = mul_mod(result, a, m);
    a = mul_mod(a, a, m);
    e >>= 1;
  }
  return result;
}

u64 gcd(u64 a, u64 b) {
  while (b != 0) {
    a %= b;
    std::swap(a, b);
  }
  return a;
}

u64 lcm(u64 a, u64 b) {
  require(a > 0 && b > 0, "lcm of zero is undefined here");
  const u64 g = gcd(a, b);
  const u64 q = a / g;
  require(q <= UINT64_MAX / b, "lcm overflows 64 bits");
  return q * b;
}

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller-Rabin witness set for 64-bit integers.
  u64 d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (u64 a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    u64 x = pow_mod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (unsigned i = 1; i < r; ++i) {
      x = mul_mod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

u64 PrimePower::value() const {
  u64 v = 1;
  for (unsigned i = 0; i < exponent; ++i) v *= prime;
  return v;
}

namespace {

// Pollard rho (Brent variant) returning a nontrivial factor of composite n.
u64 pollard_rho(u64 n) {
  if (n % 2 == 0) return 2;
  for (u64 c = 1;; ++c) {
    auto step = [&](u64 x) { return (mul_mod(x, x, n) + c) % n; };
    u64 x = 2, y = 2, d = 1;
    while (d == 1) {
      x = step(x);
      y = step(step(y));
      d = gcd(x > y ? x - y : y - x, n);
    }
    if (d != n) return d;
  }
}

void factor_rec(u64 n, std::vector<u64>& primes) {
  if (n == 1) return;
  if (is_prime(n)) {
    primes.push_back(n);
    return;
  }
  const u64 d = pollard_rho(n);
  factor_rec(d, primes);
  factor_rec(n / d, primes);
}

}  // namespace

std::vector<PrimePower> factor(u64 n) {
  require(n >= 1, "factor requires n >= 1");
  std::vector<u64> primes;
  // Strip small primes first; rho handles the rest.
  for (u64 p = 2; p <= 61 && p * p <= n; ++p) {
    while (n % p == 0) {
      primes.push_back(p);
      n /= p;
    }
  }
  factor_rec(n, primes);
  std::sort(primes.begin(), primes.end());
  std::vector<PrimePower> out;
  for (std::size_t i = 0; i < primes.size();) {
    std::size_t j = i;
    while (j < primes.size() && primes[j] == primes[i]) ++j;
    out.push_back({primes[i], static_cast<unsigned>(j - i)});
    i = j;
  }
  return out;
}

std::vector<u64> divisors(u64 n) {
  const auto pf = factor(n);
  std::vector<u64> out{1};
  for (const auto& pp : pf) {
    const std::size_t base = out.size();
    u64 mult = 1;
    for (unsigned e = 1; e <= pp.exponent; ++e) {
      mult *= pp.prime;
      for (std::size_t i = 0; i < base; ++i) out.push_back(out[i] * mult);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int mobius(u64 n) {
  require(n >= 1, "mobius requires n >= 1");
  const auto pf = factor(n);
  for (const auto& pp : pf) {
    if (pp.exponent > 1) return 0;
  }
  return pf.size() % 2 == 0 ? 1 : -1;
}

u64 euler_phi(u64 n) {
  require(n >= 1, "euler_phi requires n >= 1");
  u64 result = n;
  for (const auto& pp : factor(n)) {
    result -= result / pp.prime;
  }
  return result;
}

bool is_prime_power(u64 n, u64* prime, unsigned* exponent) {
  if (n < 2) return false;
  const auto pf = factor(n);
  if (pf.size() != 1) return false;
  if (prime) *prime = pf[0].prime;
  if (exponent) *exponent = pf[0].exponent;
  return true;
}

u64 primitive_root(u64 p) {
  require(is_prime(p), "primitive_root requires a prime modulus");
  if (p == 2) return 1;
  const auto pf = factor(p - 1);
  for (u64 g = 2; g < p; ++g) {
    bool ok = true;
    for (const auto& pp : pf) {
      if (pow_mod(g, (p - 1) / pp.prime, p) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  ensure(false, "primitive root must exist for a prime modulus");
  return 0;
}

u64 multiplicative_order(u64 a, u64 m) {
  require(m >= 2, "multiplicative_order requires modulus >= 2");
  a %= m;
  require(gcd(a, m) == 1, "multiplicative_order requires gcd(a, m) == 1");
  u64 order = euler_phi(m);
  for (const auto& pp : factor(order)) {
    for (unsigned i = 0; i < pp.exponent; ++i) {
      if (pow_mod(a, order / pp.prime, m) == 1) {
        order /= pp.prime;
      } else {
        break;
      }
    }
  }
  return order;
}

u64 binomial(u64 n, u64 k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  u128 result = 1;
  for (u64 i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;  // exact: divides a product of i consecutive ints
    require(result <= static_cast<u128>(UINT64_MAX), "binomial overflows 64 bits");
  }
  return static_cast<u64>(result);
}

u64 bounded_compositions(u64 d, u64 n, u64 k) {
  require(d >= 1, "bounded_compositions requires d >= 1");
  if (k > n * (d - 1)) return 0;
  // c_d(n,k) = sum_i (-1)^i C(n,i) C(n-1+k-d*i, n-1)   [Knuth, via Section 4.3]
  using i128 = __int128;
  i128 total = 0;
  for (u64 i = 0; i <= k / d && i <= n; ++i) {
    const u64 top = n - 1 + k - d * i;
    const i128 term = static_cast<i128>(binomial(n, i)) *
                      static_cast<i128>(binomial(top, n - 1));
    total += (i % 2 == 0) ? term : -term;
  }
  ensure(total >= 0, "bounded_compositions: negative count");
  require(total <= static_cast<i128>(UINT64_MAX), "bounded_compositions overflows 64 bits");
  return static_cast<u64>(total);
}

}  // namespace dbr::nt
