#pragma once

#include <cstdint>
#include <vector>

namespace dbr::nt {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// a*b mod m without overflow (128-bit intermediate).
u64 mul_mod(u64 a, u64 b, u64 m);
/// a^e mod m.
u64 pow_mod(u64 a, u64 e, u64 m);
/// Greatest common divisor.
u64 gcd(u64 a, u64 b);
/// Least common multiple; throws on 64-bit overflow.
u64 lcm(u64 a, u64 b);

/// Deterministic Miller-Rabin, valid for all 64-bit inputs.
bool is_prime(u64 n);

/// A prime factor entry p^e.
struct PrimePower {
  u64 prime;
  unsigned exponent;
  /// The value prime^exponent.
  u64 value() const;
};

/// Prime factorization via trial division + Pollard rho, sorted by prime.
std::vector<PrimePower> factor(u64 n);

/// All divisors of n in ascending order.
std::vector<u64> divisors(u64 n);

/// Moebius function mu(n) in {-1, 0, 1}.
int mobius(u64 n);

/// Euler totient phi(n).
u64 euler_phi(u64 n);

/// True if n == p^e for a prime p (e >= 1); outputs p and e when so.
bool is_prime_power(u64 n, u64* prime = nullptr, unsigned* exponent = nullptr);

/// Smallest primitive root modulo an odd prime p (also handles p = 2).
u64 primitive_root(u64 p);

/// Multiplicative order of a modulo m (requires gcd(a, m) == 1).
u64 multiplicative_order(u64 a, u64 m);

/// Binomial coefficient C(n, k); throws on 64-bit overflow.
u64 binomial(u64 n, u64 k);

/// Exact count of d-ary n-tuples of weight k: the coefficient c_d(n,k) of
/// z^k in (1 + z + ... + z^(d-1))^n, via the alternating-binomial formula
/// used in Section 4.3. Throws on 64-bit overflow.
u64 bounded_compositions(u64 d, u64 n, u64 k);

}  // namespace dbr::nt
