#pragma once

#include <vector>

#include "butterfly/butterfly.hpp"
#include "debruijn/cycle.hpp"

namespace dbr::butterfly {

/// The partition map of [ABR90] quoted in Section 3.4: De Bruijn node x is
/// associated with the butterfly node set S_x = {(i, pi^{-i}(x))}; this
/// returns S_x^i = (i mod n, pi^{-i}(x)).
NodeId partition_node(const ButterflyDigraph& bf, Word x, unsigned i);

/// Lemma 3.9's cycle lift Phi: a k-cycle (v_0, ..., v_{k-1}) in B(d,n) maps
/// to the LCM(k,n)-cycle (S_{v_0}^0, S_{v_1}^1, ...) in F(d,n).
std::vector<NodeId> lift_cycle(const ButterflyDigraph& bf, const NodeCycle& c);

/// Pulls a butterfly edge back to the De Bruijn edge it implements
/// (Lemma 3.8): the butterfly edge S_U^j -> S_V^{j+1} corresponds to the
/// De Bruijn edge U -> V; returns the (n+1)-edge-word of B(d,n).
/// Throws precondition_error if (u, v) is not a butterfly edge.
Word pull_back_edge(const ButterflyDigraph& bf, NodeId u, NodeId v);

/// True if the node sequence is a cycle of F(d,n) (distinct nodes, every
/// consecutive pair a butterfly edge, wrap included).
bool is_butterfly_cycle(const ButterflyDigraph& bf, const std::vector<NodeId>& nodes);

}  // namespace dbr::butterfly
