#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/word.hpp"

namespace dbr {

/// The d-ary butterfly digraph F(d,n) (Section 3.4): nodes are pairs
/// (level k in Z_n, column x in Z_d^n); each node (k, x) has d edges to
/// (k+1 mod n, x with digit k replaced by any a in Z_d). Digit k is the
/// k'th most significant digit of the column word (matching WordSpace).
class ButterflyDigraph {
 public:
  ButterflyDigraph(Digit d, unsigned n);

  Digit radix() const { return columns_.radix(); }
  unsigned levels() const { return columns_.length(); }
  const WordSpace& columns() const { return columns_; }

  NodeId num_nodes() const { return levels() * columns_.size(); }
  std::uint64_t num_edges() const { return num_nodes() * radix(); }

  NodeId encode(unsigned level, Word column) const;
  unsigned level_of(NodeId v) const;
  Word column_of(NodeId v) const;

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    const unsigned k = level_of(v);
    const Word x = column_of(v);
    const unsigned next = (k + 1) % levels();
    for (Digit a = 0; a < radix(); ++a) {
      fn(encode(next, columns_.with_digit(x, k, a)));
    }
  }

  bool has_edge(NodeId u, NodeId v) const;

  /// Explicit CSR copy.
  Digraph materialize() const;

 private:
  WordSpace columns_;
};

static_assert(DirectedGraph<ButterflyDigraph>);

}  // namespace dbr
