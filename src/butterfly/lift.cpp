#include "butterfly/lift.hpp"

#include <algorithm>

#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::butterfly {

NodeId partition_node(const ButterflyDigraph& bf, Word x, unsigned i) {
  const WordSpace& ws = bf.columns();
  require(x < ws.size(), "word out of range");
  const unsigned n = ws.length();
  const unsigned level = i % n;
  // pi^{-i}(x) = pi^{n - (i mod n)}(x).
  const Word column = ws.rotate_left(x, (n - level) % n);
  return bf.encode(level, column);
}

std::vector<NodeId> lift_cycle(const ButterflyDigraph& bf, const NodeCycle& c) {
  require(!c.nodes.empty(), "cannot lift an empty cycle");
  const unsigned n = bf.levels();
  const std::uint64_t k = c.nodes.size();
  const std::uint64_t len = nt::lcm(k, n);
  std::vector<NodeId> out;
  out.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    out.push_back(partition_node(bf, c.nodes[i % k], static_cast<unsigned>(i % n)));
  }
  return out;
}

Word pull_back_edge(const ButterflyDigraph& bf, NodeId u, NodeId v) {
  require(bf.has_edge(u, v), "not a butterfly edge");
  const WordSpace& ws = bf.columns();
  const unsigned j = bf.level_of(u);
  const Word U = ws.rotate_left(bf.column_of(u), j);
  const Word V = ws.rotate_left(bf.column_of(v), (j + 1) % ws.length());
  ensure(ws.suffix(U) == ws.prefix(V),
         "butterfly edges project to De Bruijn edges (Lemma 3.8)");
  return ws.edge_word(U, ws.tail(V));
}

bool is_butterfly_cycle(const ButterflyDigraph& bf, const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return false;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!bf.has_edge(nodes[i], nodes[(i + 1) % nodes.size()])) return false;
  }
  std::vector<NodeId> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

}  // namespace dbr::butterfly
