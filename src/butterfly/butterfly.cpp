#include "butterfly/butterfly.hpp"

#include "util/require.hpp"

namespace dbr {

ButterflyDigraph::ButterflyDigraph(Digit d, unsigned n) : columns_(d, n) {}

NodeId ButterflyDigraph::encode(unsigned level, Word column) const {
  require(level < levels(), "level out of range");
  require(column < columns_.size(), "column out of range");
  return static_cast<NodeId>(level) * columns_.size() + column;
}

unsigned ButterflyDigraph::level_of(NodeId v) const {
  require(v < num_nodes(), "node out of range");
  return static_cast<unsigned>(v / columns_.size());
}

Word ButterflyDigraph::column_of(NodeId v) const {
  require(v < num_nodes(), "node out of range");
  return v % columns_.size();
}

bool ButterflyDigraph::has_edge(NodeId u, NodeId v) const {
  const unsigned ku = level_of(u);
  const unsigned kv = level_of(v);
  if (kv != (ku + 1) % levels()) return false;
  const Word xu = column_of(u);
  const Word xv = column_of(v);
  // Columns may differ only in digit ku.
  return columns_.with_digit(xu, ku, columns_.digit(xv, ku)) == xv;
}

Digraph ButterflyDigraph::materialize() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for_each_successor(v, [&](NodeId w) { edges.emplace_back(v, w); });
  }
  return Digraph::from_edges(num_nodes(), edges);
}

}  // namespace dbr
