#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dbr::net {

namespace {

/// Reads the leading WireStatus byte and, for non-kOk, the error string.
/// Returns false when even that prologue is malformed.
bool read_status(WireReader& r, WireStatus* status, std::string* message) {
  const std::uint8_t raw = r.u8();
  if (!r.ok() || raw > static_cast<std::uint8_t>(WireStatus::kInternal))
    return false;
  *status = static_cast<WireStatus>(raw);
  if (*status != WireStatus::kOk) {
    *message = r.str();
    return r.exhausted();
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      parser_(std::move(other.parser_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    parser_ = std::move(other.parser_);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port,
                     double timeout_ms) {
  close();
  const std::string addr_str = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr_str.c_str(), &addr.sin_addr) != 1)
    throw TransportError("bad address: " + host);
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    throw TransportError(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    close();
    throw TransportError("connect " + host + ":" + std::to_string(port) +
                         ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  parser_ = FrameParser();
}

void Client::send_bytes(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t w = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw TransportError(std::string("send: ") + std::strerror(errno));
  }
}

void Client::send_frame(Op op, std::uint32_t request_id,
                        std::span<const std::uint8_t> payload) {
  if (fd_ < 0) throw TransportError("client is not connected");
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  encode_header(frame, static_cast<std::uint8_t>(op), request_id,
                static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  send_bytes(frame.data(), frame.size());
}

Frame Client::recv_reply(Op op, std::uint32_t request_id) {
  Frame frame;
  for (;;) {
    const FrameParser::Result res = parser_.next(&frame);
    if (res == FrameParser::Result::kFrame) break;
    if (res == FrameParser::Result::kError)
      throw TransportError("unparseable reply stream from server");
    std::uint8_t buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) {
      parser_.feed(std::span<const std::uint8_t>(
          buf, static_cast<std::size_t>(r)));
      continue;
    }
    if (r == 0) throw TransportError("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw TransportError("receive timed out");
    throw TransportError(std::string("recv: ") + std::strerror(errno));
  }
  const std::uint8_t expect =
      static_cast<std::uint8_t>(op) | kReplyBit;
  if (frame.header.opcode != expect || frame.header.request_id != request_id)
    throw TransportError("reply frame does not match the request");
  return frame;
}

Client::SolveReply Client::parse_solve_reply(const Frame& frame) {
  SolveReply reply;
  WireReader r(frame.payload);
  if (!read_status(r, &reply.status, &reply.message))
    throw TransportError("malformed reply payload");
  if (reply.status == WireStatus::kOk && !decode_embed(r, &reply.embed))
    throw TransportError("malformed solve reply payload");
  return reply;
}

Client::SolveReply Client::solve(const service::EmbedRequest& request,
                                 bool want_ring) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> payload;
  encode_request(payload, request, want_ring);
  send_frame(Op::kSolve, id, payload);
  return parse_solve_reply(recv_reply(Op::kSolve, id));
}

std::vector<Client::SolveReply> Client::solve_pipeline(
    std::span<const service::EmbedRequest> requests, bool want_ring) {
  if (fd_ < 0) throw TransportError("client is not connected");
  std::vector<std::uint32_t> ids;
  ids.reserve(requests.size());
  std::vector<std::uint8_t> burst;
  std::vector<std::uint8_t> payload;
  for (const service::EmbedRequest& request : requests) {
    payload.clear();
    encode_request(payload, request, want_ring);
    const std::uint32_t id = next_id_++;
    ids.push_back(id);
    encode_header(burst, static_cast<std::uint8_t>(Op::kSolve), id,
                  static_cast<std::uint32_t>(payload.size()));
    burst.insert(burst.end(), payload.begin(), payload.end());
  }
  send_bytes(burst.data(), burst.size());
  std::vector<SolveReply> replies;
  replies.reserve(requests.size());
  for (const std::uint32_t id : ids)
    replies.push_back(parse_solve_reply(recv_reply(Op::kSolve, id)));
  return replies;
}

Client::Reply Client::configure_session(Digit base, unsigned n,
                                        service::FaultKind kind,
                                        service::Strategy strategy) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.u32(base);
  w.u32(n);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(strategy));
  w.u16(0);  // reserved
  send_frame(Op::kSessionConfig, id, payload);
  const Frame frame = recv_reply(Op::kSessionConfig, id);
  Reply reply;
  WireReader r(frame.payload);
  if (!read_status(r, &reply.status, &reply.message))
    throw TransportError("malformed reply payload");
  return reply;
}

Client::FaultReply Client::add_fault(service::FaultKind kind, Word fault) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(fault);
  send_frame(Op::kFaultAdd, id, payload);
  const Frame frame = recv_reply(Op::kFaultAdd, id);
  FaultReply reply;
  WireReader r(frame.payload);
  if (!read_status(r, &reply.status, &reply.message))
    throw TransportError("malformed reply payload");
  if (reply.status == WireStatus::kOk) {
    reply.changed = r.u8() != 0;
    if (!r.exhausted()) throw TransportError("malformed fault reply payload");
  }
  return reply;
}

Client::FaultReply Client::clear_fault(service::FaultKind kind, Word fault) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(fault);
  send_frame(Op::kFaultRemove, id, payload);
  const Frame frame = recv_reply(Op::kFaultRemove, id);
  FaultReply reply;
  WireReader r(frame.payload);
  if (!read_status(r, &reply.status, &reply.message))
    throw TransportError("malformed reply payload");
  if (reply.status == WireStatus::kOk) {
    reply.changed = r.u8() != 0;
    if (!r.exhausted()) throw TransportError("malformed fault reply payload");
  }
  return reply;
}

Client::Reply Client::reset_faults() {
  const std::uint32_t id = next_id_++;
  send_frame(Op::kFaultReset, id, {});
  const Frame frame = recv_reply(Op::kFaultReset, id);
  Reply reply;
  WireReader r(frame.payload);
  if (!read_status(r, &reply.status, &reply.message))
    throw TransportError("malformed reply payload");
  return reply;
}

Client::SolveReply Client::session_solve(bool want_ring) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.u8(want_ring ? 1 : 0);
  send_frame(Op::kSessionSolve, id, payload);
  return parse_solve_reply(recv_reply(Op::kSessionSolve, id));
}

Client::StatsReply Client::stats() {
  const std::uint32_t id = next_id_++;
  send_frame(Op::kStats, id, {});
  const Frame frame = recv_reply(Op::kStats, id);
  StatsReply reply;
  WireReader r(frame.payload);
  if (!read_status(r, &reply.status, &reply.message))
    throw TransportError("malformed reply payload");
  if (reply.status == WireStatus::kOk && !decode_stats(r, &reply.stats))
    throw TransportError("malformed stats reply payload");
  return reply;
}

}  // namespace dbr::net
