#pragma once

/// \file
/// net::Client — a small blocking client for the wire protocol. One client
/// drives one connection; requests are synchronous round-trips except
/// solve_pipeline(), which writes a whole batch of kSolve frames before
/// reading any reply (the load generator's high-throughput mode — the
/// server batches a pipelined burst into one worker task). Not thread-safe;
/// use one Client per thread.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "service/types.hpp"

namespace dbr::net {

/// Socket-level failure (connect/read/write error, peer hangup, receive
/// timeout, or an unparseable reply stream). Wire-level rejections (e.g.
/// kOverloaded) are *statuses*, not exceptions — load tests count them.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Blocking wire-protocol client. See the file comment for the model.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad or "localhost"). The timeout
  /// bounds every subsequent receive, so a stuck server surfaces as a
  /// TransportError instead of a hang.
  void connect(const std::string& host, std::uint16_t port,
               double timeout_ms = 10000.0);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Status-plus-message reply of an op with no result body.
  struct Reply {
    WireStatus status = WireStatus::kInternal;
    std::string message;
  };
  /// Reply of a solve op; `embed` is valid only when status == kOk.
  struct SolveReply : Reply {
    WireEmbed embed;
  };
  /// Reply of a fault add/remove; `changed` mirrors the session bool.
  struct FaultReply : Reply {
    bool changed = false;
  };
  /// Reply of the STATS op; `stats` is valid only when status == kOk.
  struct StatsReply : Reply {
    WireStats stats;
  };

  /// One stateless solve round-trip.
  SolveReply solve(const service::EmbedRequest& request, bool want_ring = true);

  /// Writes every request frame back-to-back, then reads the replies in
  /// order. Replies come back in request order (the server serializes ops
  /// per connection).
  std::vector<SolveReply> solve_pipeline(
      std::span<const service::EmbedRequest> requests, bool want_ring);

  /// Binds this connection's session instance; resets any prior session.
  Reply configure_session(Digit base, unsigned n, service::FaultKind kind,
                          service::Strategy strategy = service::Strategy::kAuto);
  FaultReply add_fault(service::FaultKind kind, Word fault);
  FaultReply clear_fault(service::FaultKind kind, Word fault);
  Reply reset_faults();
  /// current_ring() of the connection's session.
  SolveReply session_solve(bool want_ring = true);
  /// Coherent engine + server (+ this connection's session) stats snapshot.
  /// Against a fabric-mode server the reply additionally carries the
  /// per-shard/aggregate fabric counters (WireStats::has_fabric / fabric);
  /// a pre-fabric server's shorter payload still decodes (has_fabric stays
  /// false).
  StatsReply stats();

 private:
  void send_bytes(const std::uint8_t* data, std::size_t size);
  void send_frame(Op op, std::uint32_t request_id,
                  std::span<const std::uint8_t> payload);
  /// Reads until one complete frame is available; validates the reply bit
  /// and the echoed request id.
  Frame recv_reply(Op op, std::uint32_t request_id);
  SolveReply parse_solve_reply(const Frame& frame);

  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  FrameParser parser_;
};

}  // namespace dbr::net
