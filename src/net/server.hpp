#pragma once

/// \file
/// net::Server — the TCP front-end of the embedding query engine.
///
/// Layering (the DAOS client/cart/engine split, scaled to one process):
///
///   net::Client ── TCP ──> epoll event loop ──> worker pool ──> EmbedEngine
///        (wire.hpp frames)   (frame I/O only)    (decode+solve)   (service/)
///
/// One nonblocking epoll loop thread owns the listener and every
/// connection's socket, read buffer and write buffer; it parses frames
/// (net/wire.hpp) and enqueues decoded-but-unparsed ops per connection.
/// Ops execute on a small worker pool, strictly in order within one
/// connection (an EmbedSession is single-threaded state) and concurrently
/// across connections: while one connection's task is in flight its later
/// ops queue up and ship as the next task, so a pipelining client amortizes
/// the loop<->pool handoff over whole bursts. Workers never touch sockets;
/// they post encoded reply bytes back through a completion queue and an
/// eventfd wake.
///
/// Production concerns are first-class states of the loop, not add-ons:
///  * admission control — solve ops beyond `max_pending` are answered
///    kOverloaded immediately (decided at admission, delivered in FIFO
///    order, so replies never reorder within a connection);
///  * per-request timeouts — an op past its deadline answers kTimeout, both
///    when it expires while queued and when the solve itself overruns;
///  * graceful drain — drain() (or SIGTERM via the embed_server binary)
///    closes the listener, answers new work kShuttingDown, finishes every
///    admitted op, flushes every write buffer, then stops the loop and
///    workers; wait() returns once the drain is complete;
///  * observability — the STATS op serves EmbedEngine::stats_snapshot()
///    (one seqlock-coherent snapshot), the server's own counters, and the
///    connection's session/repair stats.
///
/// Each connection lazily owns at most one service::EmbedSession, created
/// on the first session op after kSessionConfig; stateless kSolve ops share
/// the same engine (and thus result/context caches) without a session.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "service/engine.hpp"
#include "util/thread_annotations.hpp"

namespace dbr::service {
/// Sharded fabric (service/fabric.hpp); forward-declared so a Server can
/// be constructed over one without the net layer including the fabric.
class ShardRouter;
}  // namespace dbr::service

namespace dbr::net {

/// Tuning knobs of net::Server.
struct ServerOptions {
  /// Listen address (the load harness and tests use loopback).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, readable via Server::port().
  std::uint16_t port = 0;
  /// Worker threads executing ops; 0 means dbr::worker_count(), matching
  /// the in-process query_batch pool so server-vs-engine saturation is an
  /// apples-to-apples comparison.
  std::size_t workers = 0;
  /// Admission bound: solve ops admitted (queued or executing) beyond this
  /// are rejected with WireStatus::kOverloaded. Fault/stats ops bypass the
  /// bound (they are O(1) and keep sessions inspectable under overload).
  std::size_t max_pending = 1024;
  /// Per-request deadline in milliseconds, measured from frame arrival.
  /// An op at or past its deadline answers kTimeout — checked when a
  /// worker dequeues it (expired in queue) and again when the encoded
  /// reply is enqueued (solve or encoding overran), so a reply never
  /// leaves after its budget. 0 disables timeouts.
  double request_timeout_ms = 0.0;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 4096;
  /// Test hook: every solve op sleeps this long before executing, making
  /// queue buildup (backpressure, queue-expiry timeouts, drain-in-flight)
  /// deterministic in tests and CI. 0 in production.
  double debug_solve_delay_ms = 0.0;
};

/// Monotonic counters of the server itself (the engine keeps its own; the
/// STATS op returns both). Mirrors wire.hpp's WireServerStats.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t connections = 0;  ///< currently open
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t solves = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bad_frames = 0;
  std::uint64_t shutdown_rejects = 0;
  bool draining = false;
};

/// The epoll-driven TCP server fronting one EmbedEngine — or, in fabric
/// mode, a whole service::ShardRouter. Not copyable; start() may be called
/// once. The engine (or fabric) must outlive the server.
///
/// Fabric mode changes only the dispatch layer: kSolve routes through
/// ShardRouter::query (consistent-hash placement, hot-key replicas),
/// sessions bind to the engine owning their configured instance, and the
/// STATS op reports the per-shard engine snapshots summed plus the
/// versioned fabric section (per-shard counters, remap cost).
class Server {
 public:
  explicit Server(service::EmbedEngine& engine, ServerOptions options = {});

  /// Fabric mode: front `fabric` instead of a single engine. The fabric's
  /// own per-shard pools serve query_batch traffic; server workers call the
  /// router inline, so the worker count still bounds server concurrency.
  explicit Server(service::ShardRouter& fabric, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop and worker threads. Throws
  /// std::runtime_error when the socket setup fails (e.g. port in use).
  void start();

  /// The bound TCP port (resolves option port 0 to the ephemeral choice).
  /// Valid after start().
  std::uint16_t port() const { return port_; }

  /// Begins a graceful drain: stop accepting, answer new frames
  /// kShuttingDown, finish every admitted op, flush every write buffer,
  /// then stop. Callable from any thread (this is what the SIGTERM handler
  /// of examples/embed_server.cpp calls); idempotent.
  void drain();

  /// Blocks until the server has fully stopped (drain complete or stop()).
  /// start() must have been called.
  void wait();

  /// drain() and wait() in one call; the destructor runs this if needed.
  void stop();

  /// True once the loop has exited and every thread is joined.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Snapshot of the server's own counters (relaxed reads; each counter is
  /// individually accurate, the set is not a seqlock snapshot — the engine
  /// side of STATS is the coherent one).
  ServerStats stats() const;

 private:
  struct Connection;
  struct OpItem;
  struct Task;
  struct Completion;

  void loop();
  void worker_main();
  void accept_ready();
  void connection_readable(Connection& conn);
  void connection_writable(Connection& conn);
  void enqueue_frame(Connection& conn, Frame frame);
  void schedule(Connection& conn);
  void flush(Connection& conn);
  void close_connection(std::uint64_t id);
  void handle_completions();
  void update_epoll(Connection& conn);

  /// Executes one op batch on a worker; returns the encoded reply bytes.
  std::vector<std::uint8_t> execute(Task& task);
  void execute_op(Connection& conn, OpItem& op, std::vector<std::uint8_t>& out);
  /// The engine a session for instance (base, n) binds to: the fabric's
  /// owning shard in fabric mode, the single engine otherwise.
  service::EmbedEngine& session_engine(Digit base, unsigned n);

  service::EmbedEngine* engine_;  ///< null in fabric mode
  service::ShardRouter* fabric_ = nullptr;  ///< null in single-engine mode
  ServerOptions options_;
  std::uint16_t port_ = 0;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completions and drain requests

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Connections are owned by the loop thread; workers only ever touch the
  // session and op fields of a connection whose task is in flight (the loop
  // leaves those alone until the completion arrives).
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  /// Connection ids double as epoll user data; 0 and 1 tag the listener and
  /// the eventfd, so connections start at 2.
  std::uint64_t next_conn_id_ = 2;

  util::Mutex pool_mu_;
  util::CondVar pool_cv_;
  std::deque<Task> task_queue_ DBR_GUARDED_BY(pool_mu_);
  bool pool_stop_ DBR_GUARDED_BY(pool_mu_) = false;

  util::Mutex completion_mu_;
  std::vector<Completion> completions_ DBR_GUARDED_BY(completion_mu_);

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::size_t> pending_solves_{0};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_conns_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> solves_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> shutdown_rejects_{0};
};

}  // namespace dbr::net
