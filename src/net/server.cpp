#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "service/fabric.hpp"
#include "service/session.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"

namespace dbr::net {

namespace {

using Clock = std::chrono::steady_clock;

// epoll user-data ids for the two non-connection fds.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

/// How admission control classified an op the moment its frame arrived.
/// The classification is decided on the loop thread (so the queue bound is
/// exact) but the reply is emitted by the worker in FIFO position, so
/// responses never reorder within a connection.
enum class Admission : std::uint8_t {
  kAdmitted,    ///< execute normally
  kOverloaded,  ///< reply kOverloaded (queue bound reached on arrival)
  kShutdown,    ///< reply kShuttingDown (arrived while draining)
  kBadOp,       ///< reply kBadFrame (unknown opcode)
};

struct Server::OpItem {
  std::uint8_t opcode = 0;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> payload;
  Admission admission = Admission::kAdmitted;
  bool is_solve = false;
  bool has_deadline = false;
  Clock::time_point deadline{};
};

struct Server::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  FrameParser parser;
  /// Ops decoded but not yet shipped to a worker. Loop-owned.
  std::deque<OpItem> ops;
  bool task_in_flight = false;
  /// Pending reply bytes; woff_ is the flushed prefix.
  std::vector<std::uint8_t> wbuf;
  std::size_t woff = 0;
  bool epollout = false;   ///< EPOLLOUT currently armed
  bool read_closed = false;  ///< EOF, read error, or unframeable stream
  bool broken = false;       ///< socket unusable; discard pending writes

  // --- worker-owned while a task is in flight -----------------------------
  bool session_configured = false;
  Digit cfg_base = 0;
  unsigned cfg_n = 0;
  service::FaultKind cfg_kind = service::FaultKind::kNode;
  service::Strategy cfg_strategy = service::Strategy::kAuto;
  std::unique_ptr<service::EmbedSession> session;
};

struct Server::Task {
  Connection* conn = nullptr;
  std::vector<OpItem> ops;
};

struct Server::Completion {
  std::uint64_t conn_id = 0;
  std::vector<std::uint8_t> bytes;
};

Server::Server(service::EmbedEngine& engine, ServerOptions options)
    : engine_(&engine), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = worker_count();
}

Server::Server(service::ShardRouter& fabric, ServerOptions options)
    : engine_(nullptr), fabric_(&fabric), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = worker_count();
}

service::EmbedEngine& Server::session_engine(Digit base, unsigned n) {
  return fabric_ ? fabric_->engine_for(base, n) : *engine_;
}

Server::~Server() {
  if (started_.load(std::memory_order_acquire) && !stopped()) stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  require(!started_.exchange(true), "Server::start may be called once");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("bad bind address: " + options_.bind_address);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    throw_errno("bind " + options_.bind_address + ":" +
                std::to_string(options_.port));
  if (::listen(listen_fd_, 512) < 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    throw_errno("getsockname");
  port_ = ntohs(bound.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0)
    throw_errno("epoll_ctl(listener)");
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0)
    throw_errno("epoll_ctl(eventfd)");

  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_main(); });
  loop_thread_ = std::thread([this] { loop(); });
}

void Server::drain() {
  draining_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Server::wait() {
  require(started_.load(std::memory_order_acquire),
          "Server::wait before start");
  if (loop_thread_.joinable()) loop_thread_.join();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  stopped_.store(true, std::memory_order_release);
}

void Server::stop() {
  drain();
  wait();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.connections = open_conns_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.solves = solves_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.shutdown_rejects = shutdown_rejects_.load(std::memory_order_relaxed);
  s.draining = draining_.load(std::memory_order_relaxed);
  return s;
}

// --- event loop -------------------------------------------------------------

void Server::loop() {
  bool listener_open = true;
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; fall through to shutdown
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        accept_ready();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t drainv = 0;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        handle_completions();
        continue;
      }
      const auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed while events were pending
      Connection& conn = *it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        conn.broken = true;
        conn.read_closed = true;
        conn.wbuf.clear();
        conn.woff = 0;
      } else {
        if (events[i].events & EPOLLOUT) connection_writable(conn);
        if (events[i].events & EPOLLIN) connection_readable(conn);
      }
      // The connection may now be closable (EOF + nothing pending).
      if ((conn.read_closed || conn.broken) && !conn.task_in_flight &&
          conn.ops.empty() && conn.woff >= conn.wbuf.size()) {
        close_connection(conn.id);
      }
    }
    if (draining_.load(std::memory_order_acquire)) {
      if (listener_open) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
        listener_open = false;
      }
      bool busy = false;
      for (const auto& [id, conn] : conns_) {
        if (conn->task_in_flight || !conn->ops.empty() ||
            conn->woff < conn->wbuf.size()) {
          busy = true;
          break;
        }
      }
      if (!busy) break;  // drained: every admitted op finished and flushed
    }
  }

  // Shutdown: close every connection, then stop the worker pool.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (std::uint64_t id : ids) close_connection(id);
  {
    const util::MutexLock lock(pool_mu_);
    pool_stop_ = true;
  }
  pool_cv_.notify_all();
}

void Server::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays armed
    }
    if (draining_.load(std::memory_order_relaxed) ||
        conns_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::connection_readable(Connection& conn) {
  if (conn.read_closed) return;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t r = ::read(conn.fd, buf, sizeof(buf));
    if (r > 0) {
      conn.parser.feed(std::span<const std::uint8_t>(
          buf, static_cast<std::size_t>(r)));
      Frame frame;
      for (;;) {
        const FrameParser::Result res = conn.parser.next(&frame);
        if (res == FrameParser::Result::kFrame) {
          frames_in_.fetch_add(1, std::memory_order_relaxed);
          enqueue_frame(conn, std::move(frame));
          continue;
        }
        if (res == FrameParser::Result::kError) {
          // The stream can no longer be framed (bad magic / version / flags
          // / absurd length): stop reading, flush what we owe, then close.
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
          conn.read_closed = true;
        }
        break;
      }
      if (conn.read_closed) break;
      continue;
    }
    if (r == 0) {  // EOF: the client is done sending; flush and close
      conn.read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.broken = true;
    conn.read_closed = true;
    conn.wbuf.clear();
    conn.woff = 0;
    break;
  }
}

void Server::enqueue_frame(Connection& conn, Frame frame) {
  OpItem op;
  op.opcode = frame.header.opcode;
  op.request_id = frame.header.request_id;
  op.payload = std::move(frame.payload);
  if (!valid_op(op.opcode)) {
    bad_frames_.fetch_add(1, std::memory_order_relaxed);
    op.admission = Admission::kBadOp;
  } else {
    const Op opcode = static_cast<Op>(op.opcode);
    op.is_solve = opcode == Op::kSolve || opcode == Op::kSessionSolve;
    if (draining_.load(std::memory_order_relaxed)) {
      shutdown_rejects_.fetch_add(1, std::memory_order_relaxed);
      op.admission = Admission::kShutdown;
    } else if (op.is_solve) {
      // Admission control: the bound counts admitted solves not yet
      // finished, so a burst beyond `max_pending` bounces immediately
      // instead of growing an unbounded queue.
      if (pending_solves_.load(std::memory_order_relaxed) >=
          options_.max_pending) {
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        op.admission = Admission::kOverloaded;
      } else {
        pending_solves_.fetch_add(1, std::memory_order_relaxed);
        if (options_.request_timeout_ms > 0) {
          op.has_deadline = true;
          op.deadline = Clock::now() + std::chrono::duration_cast<
                                           Clock::duration>(
                                           std::chrono::duration<double,
                                                                 std::milli>(
                                               options_.request_timeout_ms));
        }
      }
    }
  }
  conn.ops.push_back(std::move(op));
  schedule(conn);
}

void Server::schedule(Connection& conn) {
  if (conn.task_in_flight || conn.ops.empty()) return;
  Task task;
  task.conn = &conn;
  task.ops.assign(std::make_move_iterator(conn.ops.begin()),
                  std::make_move_iterator(conn.ops.end()));
  conn.ops.clear();
  conn.task_in_flight = true;
  {
    const util::MutexLock lock(pool_mu_);
    task_queue_.push_back(std::move(task));
  }
  pool_cv_.notify_one();
}

void Server::connection_writable(Connection& conn) { flush(conn); }

void Server::flush(Connection& conn) {
  if (conn.broken) {
    conn.wbuf.clear();
    conn.woff = 0;
    return;
  }
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t w = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (w > 0) {
      conn.woff += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    conn.broken = true;
    conn.read_closed = true;
    conn.wbuf.clear();
    conn.woff = 0;
    break;
  }
  if (conn.woff >= conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.woff = 0;
  }
  update_epoll(conn);
}

void Server::update_epoll(Connection& conn) {
  if (conn.broken || conn.fd < 0) return;
  const bool want_out = conn.woff < conn.wbuf.size();
  if (want_out == conn.epollout) return;
  conn.epollout = want_out;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::close_connection(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (conn.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
  conn.broken = true;
  // Dropped ops must release their admission slots.
  for (OpItem& op : conn.ops) {
    if (op.is_solve && op.admission == Admission::kAdmitted)
      pending_solves_.fetch_sub(1, std::memory_order_relaxed);
  }
  conn.ops.clear();
  conn.wbuf.clear();
  conn.woff = 0;
  // A worker may still hold a pointer to this connection; defer the erase
  // to the completion handler.
  if (!conn.task_in_flight) conns_.erase(it);
}

void Server::handle_completions() {
  std::vector<Completion> done;
  {
    const util::MutexLock lock(completion_mu_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    const auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;
    Connection& conn = *it->second;
    conn.task_in_flight = false;
    if (conn.broken) {
      if (conn.fd < 0) {
        conns_.erase(it);
        continue;
      }
    } else {
      if (conn.wbuf.empty()) {
        conn.wbuf = std::move(c.bytes);
        conn.woff = 0;
      } else {
        conn.wbuf.insert(conn.wbuf.end(), c.bytes.begin(), c.bytes.end());
      }
      flush(conn);
    }
    if (!conn.ops.empty()) schedule(conn);
    if ((conn.read_closed || conn.broken) && !conn.task_in_flight &&
        conn.ops.empty() && conn.woff >= conn.wbuf.size()) {
      close_connection(conn.id);
    }
  }
}

// --- worker side ------------------------------------------------------------

void Server::worker_main() {
  for (;;) {
    Task task;
    {
      util::UniqueLock lock(pool_mu_);
      // While-loop (not a wait predicate): the condition reads then happen
      // directly under the held capability, where the analysis checks them.
      while (!pool_stop_ && task_queue_.empty()) pool_cv_.wait(lock);
      if (task_queue_.empty()) {
        if (pool_stop_) return;
        continue;
      }
      task = std::move(task_queue_.front());
      task_queue_.pop_front();
    }
    Completion completion;
    completion.conn_id = task.conn->id;
    completion.bytes = execute(task);
    {
      const util::MutexLock lock(completion_mu_);
      completions_.push_back(std::move(completion));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

std::vector<std::uint8_t> Server::execute(Task& task) {
  std::vector<std::uint8_t> out;
  for (OpItem& op : task.ops) execute_op(*task.conn, op, out);
  return out;
}

void Server::execute_op(Connection& conn, OpItem& op,
                        std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> payload;
  const auto finish = [&] {
    encode_header(out, op.opcode | kReplyBit, op.request_id,
                  static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    frames_out_.fetch_add(1, std::memory_order_relaxed);
  };
  const auto error_reply = [&](WireStatus status, std::string_view message) {
    payload.clear();
    WireWriter w(payload);
    w.u8(static_cast<std::uint8_t>(status));
    w.str(message);
    finish();
  };

  switch (op.admission) {
    case Admission::kBadOp:
      error_reply(WireStatus::kBadFrame, "unknown opcode");
      return;
    case Admission::kShutdown:
      error_reply(WireStatus::kShuttingDown, "server is draining");
      return;
    case Admission::kOverloaded:
      error_reply(WireStatus::kOverloaded, "pending solve queue is full");
      return;
    case Admission::kAdmitted:
      break;
  }

  // Admitted: release the admission slot once this op is done, whatever
  // the outcome (executed, timed out, malformed).
  struct SlotGuard {
    Server* server;
    bool active;
    ~SlotGuard() {
      if (active)
        server->pending_solves_.fetch_sub(1, std::memory_order_relaxed);
    }
  } slot{this, op.is_solve};

  const auto expired = [&] {
    // >= : a reply landing exactly at the deadline is already late, and a
    // coarse clock tick would otherwise let a 1 ms budget never expire.
    return op.has_deadline && Clock::now() >= op.deadline;
  };
  // Solve replies enforce the deadline at reply-enqueue time: encoding a
  // large ring can itself overrun a tight budget, and what the client
  // observes is when the reply is enqueued, not when the solve finished.
  // An expired kOk payload is replaced by kTimeout and counted.
  const auto finish_solve = [&] {
    if (expired()) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      error_reply(WireStatus::kTimeout, "solve exceeded the deadline");
      return;
    }
    finish();
  };
  if (op.is_solve) {
    if (options_.debug_solve_delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.debug_solve_delay_ms));
    }
    if (expired()) {  // spent its deadline waiting in the queue
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      error_reply(WireStatus::kTimeout, "request expired in queue");
      return;
    }
  }

  WireReader r(op.payload);
  try {
    switch (static_cast<Op>(op.opcode)) {
      case Op::kSolve: {
        service::EmbedRequest request;
        bool want_ring = true;
        if (!decode_request(op.payload, &request, &want_ring)) {
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
          error_reply(WireStatus::kBadFrame, "malformed solve payload");
          return;
        }
        const service::EmbedResponse response =
            fabric_ ? fabric_->query(request) : engine_->query(request);
        solves_.fetch_add(1, std::memory_order_relaxed);
        WireWriter w(payload);
        w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
        encode_embed(w, response, want_ring);
        finish_solve();  // deadline enforced as the reply is enqueued
        return;
      }
      case Op::kSessionConfig: {
        const std::uint32_t base = r.u32();
        const std::uint32_t n = r.u32();
        const std::uint8_t kind = r.u8();
        const std::uint8_t strategy = r.u8();
        r.u16();  // reserved
        if (!r.exhausted() ||
            kind > static_cast<std::uint8_t>(service::FaultKind::kMixed) ||
            strategy > static_cast<std::uint8_t>(service::Strategy::kMixed)) {
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
          error_reply(WireStatus::kBadFrame, "malformed session config");
          return;
        }
        // Reconfiguring drops the old session (its fault timeline ends);
        // the new one is created lazily by the next session op.
        conn.session.reset();
        conn.cfg_base = static_cast<Digit>(base);
        conn.cfg_n = n;
        conn.cfg_kind = static_cast<service::FaultKind>(kind);
        conn.cfg_strategy = static_cast<service::Strategy>(strategy);
        conn.session_configured = true;
        WireWriter w(payload);
        w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
        finish();
        return;
      }
      case Op::kFaultAdd:
      case Op::kFaultRemove: {
        const std::uint8_t kind = r.u8();
        const Word word = r.u64();
        if (!r.exhausted() ||
            kind > static_cast<std::uint8_t>(service::FaultKind::kEdge)) {
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
          error_reply(WireStatus::kBadFrame, "malformed fault op");
          return;
        }
        if (!conn.session_configured) {
          error_reply(WireStatus::kNoSession,
                      "session op before session config");
          return;
        }
        if (!conn.session) {
          conn.session = std::make_unique<service::EmbedSession>(
              session_engine(conn.cfg_base, conn.cfg_n), conn.cfg_base,
              conn.cfg_n, conn.cfg_kind, conn.cfg_strategy);
        }
        const service::FaultKind fk = static_cast<service::FaultKind>(kind);
        const bool changed = static_cast<Op>(op.opcode) == Op::kFaultAdd
                                 ? conn.session->add_fault(fk, word)
                                 : conn.session->clear_fault(fk, word);
        WireWriter w(payload);
        w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
        w.u8(changed ? 1 : 0);
        finish();
        return;
      }
      case Op::kFaultReset: {
        if (!r.exhausted()) {
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
          error_reply(WireStatus::kBadFrame, "fault reset takes no payload");
          return;
        }
        if (!conn.session_configured) {
          error_reply(WireStatus::kNoSession,
                      "session op before session config");
          return;
        }
        if (conn.session) conn.session->reset_faults();
        WireWriter w(payload);
        w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
        finish();
        return;
      }
      case Op::kSessionSolve: {
        const std::uint8_t ring = r.u8();
        if (!r.exhausted() || ring > 1) {
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
          error_reply(WireStatus::kBadFrame, "malformed session solve");
          return;
        }
        if (!conn.session_configured) {
          error_reply(WireStatus::kNoSession,
                      "session op before session config");
          return;
        }
        if (!conn.session) {
          conn.session = std::make_unique<service::EmbedSession>(
              session_engine(conn.cfg_base, conn.cfg_n), conn.cfg_base,
              conn.cfg_n, conn.cfg_kind, conn.cfg_strategy);
        }
        const service::EmbedResponse response = conn.session->current_ring();
        solves_.fetch_add(1, std::memory_order_relaxed);
        WireWriter w(payload);
        w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
        encode_embed(w, response, ring != 0);
        finish_solve();  // deadline enforced as the reply is enqueued
        return;
      }
      case Op::kStats: {
        if (!r.exhausted()) {
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
          error_reply(WireStatus::kBadFrame, "stats takes no payload");
          return;
        }
        WireStats stats;
        stats.engine = fabric_ ? fabric_->aggregate_engine_stats()
                               : engine_->stats_snapshot();
        const ServerStats s = this->stats();
        stats.server.accepted = s.accepted;
        stats.server.connections = s.connections;
        stats.server.frames_in = s.frames_in;
        stats.server.frames_out = s.frames_out;
        stats.server.solves = s.solves;
        stats.server.overloaded = s.overloaded;
        stats.server.timeouts = s.timeouts;
        stats.server.bad_frames = s.bad_frames;
        stats.server.shutdown_rejects = s.shutdown_rejects;
        stats.server.draining = s.draining;
        if (conn.session) {
          stats.has_session = true;
          stats.session = conn.session->stats();
          stats.repair = conn.session->repair_stats();
        }
        if (fabric_) {
          const service::FabricStats f = fabric_->stats();
          stats.has_fabric = true;
          stats.fabric.queries = f.queries;
          stats.fabric.hot_keys = f.hot_keys;
          stats.fabric.replica_reads = f.replica_reads;
          stats.fabric.remap_events = f.remap_events;
          stats.fabric.remapped_keys = f.remapped_keys;
          stats.fabric.remap_rounds = f.remap_cost.total_rounds();
          stats.fabric.remap_messages = f.remap_cost.messages;
          stats.fabric.shards.reserve(f.shards.size());
          for (const service::FabricShardStats& shard : f.shards) {
            WireFabricShard ws;
            ws.shard = shard.shard;
            ws.alive = shard.alive;
            ws.keys_owned = shard.keys_owned;
            ws.queries = shard.queries;
            ws.replica_reads = shard.replica_reads;
            ws.context_builds = shard.engine.contexts.misses;
            stats.fabric.shards.push_back(ws);
          }
        }
        WireWriter w(payload);
        w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
        encode_stats(w, stats);
        finish();
        return;
      }
    }
    error_reply(WireStatus::kBadFrame, "unknown opcode");
  } catch (const precondition_error& e) {
    error_reply(WireStatus::kBadRequest, e.what());
  } catch (const std::exception& e) {
    error_reply(WireStatus::kInternal, e.what());
  }
}

}  // namespace dbr::net
