#include "net/wire.hpp"

#include <cstring>

namespace dbr::net {

namespace {

constexpr std::uint8_t kMaxFaultKind =
    static_cast<std::uint8_t>(service::FaultKind::kMixed);
constexpr std::uint8_t kMaxStrategy =
    static_cast<std::uint8_t>(service::Strategy::kMixed);
constexpr std::uint8_t kMaxEmbedStatus =
    static_cast<std::uint8_t>(service::EmbedStatus::kInternalError);

}  // namespace

bool valid_op(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(Op::kSolve) &&
         raw <= static_cast<std::uint8_t>(Op::kStats);
}

const char* to_string(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kBadFrame: return "bad_frame";
    case WireStatus::kBadRequest: return "bad_request";
    case WireStatus::kNoSession: return "no_session";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kTimeout: return "timeout";
    case WireStatus::kShuttingDown: return "shutting_down";
    case WireStatus::kInternal: return "internal";
  }
  return "unknown";
}

// --- header -----------------------------------------------------------------

std::optional<FrameHeader> decode_header(std::span<const std::uint8_t> bytes,
                                         FrameError* err) {
  if (err != nullptr) *err = FrameError::kNone;
  if (bytes.size() < kHeaderSize) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    if (err != nullptr) *err = FrameError::kBadMagic;
    return std::nullopt;
  }
  FrameHeader h;
  h.version = bytes[4];
  h.opcode = bytes[5];
  h.flags = static_cast<std::uint16_t>(bytes[6]) |
            static_cast<std::uint16_t>(bytes[7]) << 8;
  h.request_id = static_cast<std::uint32_t>(bytes[8]) |
                 static_cast<std::uint32_t>(bytes[9]) << 8 |
                 static_cast<std::uint32_t>(bytes[10]) << 16 |
                 static_cast<std::uint32_t>(bytes[11]) << 24;
  h.payload_len = static_cast<std::uint32_t>(bytes[12]) |
                  static_cast<std::uint32_t>(bytes[13]) << 8 |
                  static_cast<std::uint32_t>(bytes[14]) << 16 |
                  static_cast<std::uint32_t>(bytes[15]) << 24;
  if (h.version != kWireVersion) {
    if (err != nullptr) *err = FrameError::kBadVersion;
    return std::nullopt;
  }
  if (h.flags != 0) {
    if (err != nullptr) *err = FrameError::kBadFlags;
    return std::nullopt;
  }
  if (h.payload_len > kMaxPayload) {
    if (err != nullptr) *err = FrameError::kOversized;
    return std::nullopt;
  }
  return h;
}

void encode_header(std::vector<std::uint8_t>& out, std::uint8_t opcode,
                   std::uint32_t request_id, std::uint32_t payload_len) {
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  out.push_back(kWireVersion);
  out.push_back(opcode);
  out.push_back(0);  // flags lo
  out.push_back(0);  // flags hi
  WireWriter w(out);
  w.u32(request_id);
  w.u32(payload_len);
}

// --- reader / writer --------------------------------------------------------

bool WireReader::take(std::size_t count, const std::uint8_t** p) {
  if (!ok_ || bytes_.size() - pos_ < count) {
    ok_ = false;
    return false;
  }
  *p = bytes_.data() + pos_;
  pos_ += count;
  return true;
}

std::uint8_t WireReader::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return 0;
  return p[0];
}

std::uint16_t WireReader::u16() {
  const std::uint8_t* p = nullptr;
  if (!take(2, &p)) return 0;
  return static_cast<std::uint16_t>(p[0]) |
         static_cast<std::uint16_t>(p[1]) << 8;
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  const std::uint8_t* p = nullptr;
  if (!take(len, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), len);
}

std::vector<Word> WireReader::words() {
  const std::uint32_t count = u32();
  // Validate against the remaining payload *before* reserving: a hostile
  // count must not drive an allocation it cannot back with bytes.
  if (!ok_ || bytes_.size() - pos_ < static_cast<std::size_t>(count) * 8) {
    ok_ = false;
    return {};
  }
  std::vector<Word> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(u64());
  return out;
}

void WireWriter::u16(std::uint16_t v) {
  out_->push_back(static_cast<std::uint8_t>(v));
  out_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_->insert(out_->end(), s.begin(), s.end());
}

void WireWriter::words(std::span<const Word> ws) {
  u32(static_cast<std::uint32_t>(ws.size()));
  for (Word w : ws) u64(w);
}

// --- FaultSet ---------------------------------------------------------------

void encode_fault_set(WireWriter& w, const service::FaultSet& set) {
  w.words(set.nodes);
  w.words(set.edges);
}

bool decode_fault_set(WireReader& r, service::FaultSet* set) {
  set->nodes = r.words();
  set->edges = r.words();
  return r.ok();
}

// --- EmbedRequest -----------------------------------------------------------

void encode_request(std::vector<std::uint8_t>& out,
                    const service::EmbedRequest& request, bool want_ring) {
  WireWriter w(out);
  w.u32(request.base);
  w.u32(request.n);
  w.u8(static_cast<std::uint8_t>(request.fault_kind));
  w.u8(static_cast<std::uint8_t>(request.strategy));
  w.u8(want_ring ? 1 : 0);
  w.u8(0);  // reserved
  service::FaultSet set;
  set.nodes = request.faults;
  set.edges = request.edge_faults;
  encode_fault_set(w, set);
}

bool decode_request(std::span<const std::uint8_t> payload,
                    service::EmbedRequest* request, bool* want_ring) {
  WireReader r(payload);
  service::EmbedRequest req;
  req.base = r.u32();
  req.n = r.u32();
  const std::uint8_t kind = r.u8();
  const std::uint8_t strategy = r.u8();
  const std::uint8_t ring = r.u8();
  r.u8();  // reserved
  if (!r.ok() || kind > kMaxFaultKind || strategy > kMaxStrategy || ring > 1)
    return false;
  req.fault_kind = static_cast<service::FaultKind>(kind);
  req.strategy = static_cast<service::Strategy>(strategy);
  service::FaultSet set;
  if (!decode_fault_set(r, &set) || !r.exhausted()) return false;
  req.faults = std::move(set.nodes);
  req.edge_faults = std::move(set.edges);
  *request = std::move(req);
  if (want_ring != nullptr) *want_ring = ring != 0;
  return true;
}

// --- EmbedResponse ----------------------------------------------------------

void encode_embed(WireWriter& w, const service::EmbedResponse& response,
                  bool want_ring) {
  const service::EmbedResult& result = *response.result;
  w.u8(static_cast<std::uint8_t>(result.status));
  w.u8(static_cast<std::uint8_t>(result.strategy_used));
  w.u8(response.cache_hit ? 1 : 0);
  w.u8(response.context_cache_hit ? 1 : 0);
  w.u8(response.repaired ? 1 : 0);
  w.u8(result.quarantined ? 1 : 0);
  w.u16(0);  // reserved
  w.u64(result.ring_length);
  w.u64(result.lower_bound);
  w.u64(result.upper_bound);
  w.f64(result.compute_micros);
  w.f64(response.latency_micros);
  w.str(result.error);
  w.u8(want_ring ? 1 : 0);
  if (want_ring) w.words(result.ring.nodes);
}

bool decode_embed(WireReader& r, WireEmbed* out) {
  WireEmbed e;
  const std::uint8_t status = r.u8();
  const std::uint8_t strategy = r.u8();
  const std::uint8_t cache_hit = r.u8();
  const std::uint8_t context_hit = r.u8();
  const std::uint8_t repaired = r.u8();
  const std::uint8_t quarantined = r.u8();
  r.u16();  // reserved
  if (!r.ok() || status > kMaxEmbedStatus || strategy > kMaxStrategy ||
      cache_hit > 1 || context_hit > 1 || repaired > 1 || quarantined > 1)
    return false;
  e.status = static_cast<service::EmbedStatus>(status);
  e.strategy_used = static_cast<service::Strategy>(strategy);
  e.cache_hit = cache_hit != 0;
  e.context_cache_hit = context_hit != 0;
  e.repaired = repaired != 0;
  e.quarantined = quarantined != 0;
  e.ring_length = r.u64();
  e.lower_bound = r.u64();
  e.upper_bound = r.u64();
  e.compute_micros = r.f64();
  e.latency_micros = r.f64();
  e.error = r.str();
  const std::uint8_t has_ring = r.u8();
  if (!r.ok() || has_ring > 1) return false;
  e.has_ring = has_ring != 0;
  if (e.has_ring) e.ring = r.words();
  if (!r.ok()) return false;
  *out = std::move(e);
  return true;
}

// --- STATS ------------------------------------------------------------------

namespace {

/// Appends the versioned fabric extension (u8 has_fabric, then the
/// aggregate counters and per-shard entries). Always the last section of
/// the payload, so a pre-fabric decoder simply never reads it.
void encode_fabric_section(WireWriter& w, const WireStats& stats) {
  w.u8(stats.has_fabric ? 1 : 0);
  if (!stats.has_fabric) return;
  const WireFabricStats& f = stats.fabric;
  w.u64(f.queries);
  w.u64(f.hot_keys);
  w.u64(f.replica_reads);
  w.u64(f.remap_events);
  w.u64(f.remapped_keys);
  w.u64(f.remap_rounds);
  w.u64(f.remap_messages);
  w.u32(static_cast<std::uint32_t>(f.shards.size()));
  for (const WireFabricShard& s : f.shards) {
    w.u32(s.shard);
    w.u8(s.alive ? 1 : 0);
    w.u64(s.keys_owned);
    w.u64(s.queries);
    w.u64(s.replica_reads);
    w.u64(s.context_builds);
  }
}

/// Reads the fabric extension, tolerating its complete absence (a payload
/// from a pre-fabric peer ends right after the session block).
bool decode_fabric_section(WireReader& r, WireStats* s) {
  if (r.remaining() == 0) {
    s->has_fabric = false;  // pre-fabric peer: nothing more on the wire
    return true;
  }
  const std::uint8_t has_fabric = r.u8();
  if (!r.ok() || has_fabric > 1) return false;
  s->has_fabric = has_fabric != 0;
  if (!s->has_fabric) return true;
  WireFabricStats& f = s->fabric;
  f.queries = r.u64();
  f.hot_keys = r.u64();
  f.replica_reads = r.u64();
  f.remap_events = r.u64();
  f.remapped_keys = r.u64();
  f.remap_rounds = r.u64();
  f.remap_messages = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok()) return false;
  // Each shard entry is at least 37 payload bytes; reject counts the
  // remaining payload cannot possibly hold before allocating.
  constexpr std::size_t kShardBytes = 4 + 1 + 4 * 8;
  if (count > r.remaining() / kShardBytes) return false;
  f.shards.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WireFabricShard shard;
    shard.shard = r.u32();
    const std::uint8_t alive = r.u8();
    if (alive > 1) return false;
    shard.alive = alive != 0;
    shard.keys_owned = r.u64();
    shard.queries = r.u64();
    shard.replica_reads = r.u64();
    shard.context_builds = r.u64();
    f.shards.push_back(shard);
  }
  return r.ok();
}

}  // namespace

void encode_stats(WireWriter& w, const WireStats& stats) {
  const service::EngineStatsSnapshot& e = stats.engine;
  w.u64(e.serve.queries);
  w.u64(e.serve.result_hits);
  w.u64(e.serve.context_hits);
  w.u64(e.serve.context_misses);
  w.u64(e.cache.hits);
  w.u64(e.cache.misses);
  w.u64(e.cache.evictions);
  w.u64(e.cache.entries);
  w.u64(e.contexts.hits);
  w.u64(e.contexts.misses);
  w.u64(e.contexts.entries);
  w.u64(e.validation.checked);
  w.u64(e.validation.violations);
  const WireServerStats& s = stats.server;
  w.u64(s.accepted);
  w.u64(s.connections);
  w.u64(s.frames_in);
  w.u64(s.frames_out);
  w.u64(s.solves);
  w.u64(s.overloaded);
  w.u64(s.timeouts);
  w.u64(s.bad_frames);
  w.u64(s.shutdown_rejects);
  w.u8(s.draining ? 1 : 0);
  w.u8(stats.has_session ? 1 : 0);
  if (stats.has_session) {
    w.u64(stats.session.adds);
    w.u64(stats.session.removes);
    w.u64(stats.session.noop_mutations);
    w.u64(stats.session.solves);
    w.u64(stats.session.memoized);
    w.u64(stats.session.result_cache_hits);
    w.f64(stats.session.solve_micros_total);
    w.u64(stats.repair.spliced);
    w.u64(stats.repair.fell_back);
    w.u64(stats.repair.oracle_rejections);
    w.f64(stats.repair.repair_micros_total);
  }
  encode_fabric_section(w, stats);
}

bool decode_stats(WireReader& r, WireStats* out) {
  WireStats s;
  s.engine.serve.queries = r.u64();
  s.engine.serve.result_hits = r.u64();
  s.engine.serve.context_hits = r.u64();
  s.engine.serve.context_misses = r.u64();
  s.engine.cache.hits = r.u64();
  s.engine.cache.misses = r.u64();
  s.engine.cache.evictions = r.u64();
  s.engine.cache.entries = r.u64();
  s.engine.contexts.hits = r.u64();
  s.engine.contexts.misses = r.u64();
  s.engine.contexts.entries = r.u64();
  s.engine.validation.checked = r.u64();
  s.engine.validation.violations = r.u64();
  s.server.accepted = r.u64();
  s.server.connections = r.u64();
  s.server.frames_in = r.u64();
  s.server.frames_out = r.u64();
  s.server.solves = r.u64();
  s.server.overloaded = r.u64();
  s.server.timeouts = r.u64();
  s.server.bad_frames = r.u64();
  s.server.shutdown_rejects = r.u64();
  const std::uint8_t draining = r.u8();
  const std::uint8_t has_session = r.u8();
  if (!r.ok() || draining > 1 || has_session > 1) return false;
  s.server.draining = draining != 0;
  s.has_session = has_session != 0;
  if (s.has_session) {
    s.session.adds = r.u64();
    s.session.removes = r.u64();
    s.session.noop_mutations = r.u64();
    s.session.solves = r.u64();
    s.session.memoized = r.u64();
    s.session.result_cache_hits = r.u64();
    s.session.solve_micros_total = r.f64();
    s.repair.spliced = r.u64();
    s.repair.fell_back = r.u64();
    s.repair.oracle_rejections = r.u64();
    s.repair.repair_micros_total = r.f64();
  }
  if (!r.ok()) return false;
  if (!decode_fabric_section(r, &s)) return false;
  *out = s;
  return true;
}

// --- FrameParser ------------------------------------------------------------

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  // Compact the consumed prefix before it dominates the buffer.
  if (off_ > 0 && (off_ >= buf_.size() || off_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameParser::Result FrameParser::next(Frame* frame) {
  if (error_ != FrameError::kNone) return Result::kError;
  const std::span<const std::uint8_t> view(buf_.data() + off_,
                                           buf_.size() - off_);
  FrameError err = FrameError::kNone;
  const std::optional<FrameHeader> header = decode_header(view, &err);
  if (!header) {
    if (err != FrameError::kNone) {
      error_ = err;
      return Result::kError;
    }
    return Result::kNeedMore;
  }
  if (view.size() - kHeaderSize < header->payload_len) return Result::kNeedMore;
  frame->header = *header;
  frame->payload.assign(view.begin() + kHeaderSize,
                        view.begin() + kHeaderSize + header->payload_len);
  off_ += kHeaderSize + header->payload_len;
  return Result::kFrame;
}

}  // namespace dbr::net
