#pragma once

/// \file
/// Binary wire protocol of the networked embed service: a compact
/// length-prefixed framing (versioned 16-byte header, explicit little-endian
/// field encoding) plus payload codecs for EmbedRequest / EmbedResponse /
/// FaultSet and the STATS snapshot. Decoding is hardened: every read is
/// bounds-checked, counts are validated against the remaining payload, and
/// malformed input (truncated frames, bad magic, absurd lengths, garbage
/// bytes) decodes to a clean error — never UB. The codec is shared verbatim
/// by net::Server, net::Client and the wire fuzz tests.
///
/// Frame layout (all integers little-endian):
///
///   offset 0   u8[4]  magic  'D' 'B' 'R' '1'
///   offset 4   u8     protocol version (kWireVersion)
///   offset 5   u8     opcode (Op; replies set kReplyBit)
///   offset 6   u16    flags (reserved, must be zero)
///   offset 8   u32    request id (client-chosen, echoed on the reply)
///   offset 12  u32    payload length (<= kMaxPayload)
///   offset 16  u8[payload length] payload
///
/// Every reply payload leads with a WireStatus byte; a non-kOk status is
/// followed only by an error-message string. Payload encodings are
/// documented on the encode_* functions below.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "service/engine.hpp"
#include "service/session.hpp"
#include "service/types.hpp"

namespace dbr::net {

/// Protocol version carried by every frame header.
inline constexpr std::uint8_t kWireVersion = 1;
/// Frame header size in bytes.
inline constexpr std::size_t kHeaderSize = 16;
/// Upper bound on a frame payload; larger lengths are rejected at the
/// header, before any allocation, so a hostile length cannot OOM the peer.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;
/// Frame magic bytes "DBR1".
inline constexpr std::uint8_t kMagic[4] = {'D', 'B', 'R', '1'};
/// Set on the opcode of every reply frame.
inline constexpr std::uint8_t kReplyBit = 0x80;

/// Operation selector of a request frame. Session ops act on the
/// connection's lazily created EmbedSession; kSolve is stateless.
enum class Op : std::uint8_t {
  kSolve = 1,          ///< stateless one-shot solve (EmbedRequest payload)
  kSessionConfig = 2,  ///< bind the connection session's instance/strategy
  kFaultAdd = 3,       ///< kinded add_fault on the session
  kFaultRemove = 4,    ///< kinded clear_fault on the session
  kFaultReset = 5,     ///< reset_faults on the session
  kSessionSolve = 6,   ///< current_ring of the session
  kStats = 7,          ///< coherent engine/server/session stats snapshot
};

/// True for opcodes a request frame may carry.
bool valid_op(std::uint8_t raw);

/// Wire-level outcome of one request, orthogonal to service::EmbedStatus
/// (which classifies the *embedding* answer inside a kOk reply).
enum class WireStatus : std::uint8_t {
  kOk = 0,            ///< request executed; payload follows
  kBadFrame = 1,      ///< payload did not decode / unknown opcode
  kBadRequest = 2,    ///< a documented precondition was violated
  kNoSession = 3,     ///< session op before kSessionConfig
  kOverloaded = 4,    ///< admission control rejected (queue bound reached)
  kTimeout = 5,       ///< request exceeded the server's per-request deadline
  kShuttingDown = 6,  ///< server is draining; no new work accepted
  kInternal = 7,      ///< unexpected server-side failure
};

/// Short lower-case name of a wire status (e.g. "ok", "overloaded").
const char* to_string(WireStatus s);

/// Decoded frame header (magic stripped, fields validated).
struct FrameHeader {
  std::uint8_t version = kWireVersion;
  std::uint8_t opcode = 0;       ///< raw opcode byte (may carry kReplyBit)
  std::uint16_t flags = 0;       ///< reserved; must be zero
  std::uint32_t request_id = 0;  ///< echoed on the reply
  std::uint32_t payload_len = 0;
};

/// Why a header (or stream) failed to parse. Errors at this level poison
/// the whole byte stream — the connection must be closed, since frame
/// boundaries can no longer be trusted.
enum class FrameError : std::uint8_t {
  kNone = 0,
  kBadMagic,    ///< first four bytes are not "DBR1"
  kBadVersion,  ///< unknown protocol version
  kBadFlags,    ///< reserved flags set
  kOversized,   ///< payload length exceeds kMaxPayload
};

/// Parses a frame header from the first kHeaderSize bytes of `bytes`.
/// Returns nullopt with *err = kNone when fewer bytes are available (read
/// more), nullopt with *err != kNone on a malformed header.
std::optional<FrameHeader> decode_header(std::span<const std::uint8_t> bytes,
                                         FrameError* err);

/// Appends a frame header for `payload_len` payload bytes to `out`.
void encode_header(std::vector<std::uint8_t>& out, std::uint8_t opcode,
                   std::uint32_t request_id, std::uint32_t payload_len);

/// Bounds-checked little-endian reader over one payload. All accessors
/// return zero values once the reader has failed; check ok() (and
/// exhausted() for trailing garbage) after the last field.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// Length-prefixed (u32) byte string; fails if the length exceeds the
  /// remaining payload.
  std::string str();
  /// Length-prefixed (u32 count) vector of u64 words; the count is
  /// validated against the remaining bytes before any allocation.
  std::vector<Word> words();

  /// True while every read so far stayed in bounds.
  bool ok() const { return ok_; }
  /// True when the payload was consumed exactly (no trailing bytes).
  bool exhausted() const { return ok_ && pos_ == bytes_.size(); }
  std::size_t remaining() const { return ok_ ? bytes_.size() - pos_ : 0; }

 private:
  bool take(std::size_t count, const std::uint8_t** p);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Little-endian appender building one payload (or whole frame) in a
/// caller-owned buffer.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(std::string_view s);
  void words(std::span<const Word> ws);

 private:
  std::vector<std::uint8_t>* out_;
};

// --- FaultSet ---------------------------------------------------------------

/// Appends a FaultSet: u32 node count, node words, u32 edge count, edge
/// words.
void encode_fault_set(WireWriter& w, const service::FaultSet& set);

/// Reads a FaultSet written by encode_fault_set; false on malformed input.
bool decode_fault_set(WireReader& r, service::FaultSet* set);

// --- EmbedRequest (kSolve payload) ------------------------------------------

/// Appends a kSolve payload: u32 base, u32 n, u8 fault kind, u8 strategy,
/// u8 want_ring, u8 reserved, then the FaultSet (request.faults as nodes,
/// request.edge_faults as edges). `want_ring` false asks the server to omit
/// the ring words from the reply (bounds/lengths still included) — the load
/// generator's bandwidth mode.
void encode_request(std::vector<std::uint8_t>& out,
                    const service::EmbedRequest& request, bool want_ring);

/// Decodes a kSolve payload. Enum bytes outside the declared ranges and
/// counts that overrun the payload fail cleanly (returns false, outputs
/// untouched or partially filled but always valid vectors).
bool decode_request(std::span<const std::uint8_t> payload,
                    service::EmbedRequest* request, bool* want_ring);

// --- EmbedResponse (solve reply payload) ------------------------------------

/// A decoded solve reply: the embedding answer plus serve provenance. The
/// wire mirror of service::EmbedResponse (with the shared_ptr flattened).
struct WireEmbed {
  service::EmbedStatus status = service::EmbedStatus::kOk;
  service::Strategy strategy_used = service::Strategy::kAuto;
  bool cache_hit = false;
  bool context_cache_hit = false;
  bool repaired = false;
  bool quarantined = false;
  std::uint64_t ring_length = 0;
  std::uint64_t lower_bound = 0;
  std::uint64_t upper_bound = 0;
  double compute_micros = 0.0;
  double latency_micros = 0.0;  ///< server-side serve latency
  std::string error;
  bool has_ring = false;  ///< ring words present (want_ring was set)
  std::vector<Word> ring;
};

/// Appends a solve reply payload (after the caller's WireStatus byte):
/// fixed fields, error string, u8 has_ring, and the ring words when
/// `want_ring`. The encoding is a pure function of the response, so
/// encode/decode round-trips bit-identically.
void encode_embed(WireWriter& w, const service::EmbedResponse& response,
                  bool want_ring);

/// Reads a solve reply payload written by encode_embed.
bool decode_embed(WireReader& r, WireEmbed* out);

// --- STATS reply ------------------------------------------------------------

/// Server-side counters returned by the STATS op (net::Server internals).
struct WireServerStats {
  std::uint64_t accepted = 0;     ///< connections accepted since start
  std::uint64_t connections = 0;  ///< currently open connections
  std::uint64_t frames_in = 0;    ///< request frames parsed
  std::uint64_t frames_out = 0;   ///< reply frames written
  std::uint64_t solves = 0;       ///< solve ops executed (kSolve + kSessionSolve)
  std::uint64_t overloaded = 0;   ///< ops rejected by admission control
  std::uint64_t timeouts = 0;     ///< ops past their deadline
  std::uint64_t bad_frames = 0;   ///< malformed frames / unknown opcodes
  std::uint64_t shutdown_rejects = 0;  ///< ops rejected while draining
  bool draining = false;          ///< graceful drain in progress
};

/// Per-shard slice of the fabric STATS extension: placement and
/// read-balancing counters of one engine shard (service::FabricShardStats
/// flattened; the shard's own engine counters fold into the aggregate
/// engine snapshot rather than riding the wire per shard).
struct WireFabricShard {
  std::uint32_t shard = 0;            ///< dense shard id
  bool alive = true;                  ///< false between kill and revive
  std::uint64_t keys_owned = 0;       ///< observed instance keys owned
  std::uint64_t queries = 0;          ///< requests routed to this shard
  std::uint64_t replica_reads = 0;    ///< requests served as a replica
  std::uint64_t context_builds = 0;   ///< this shard's context-cache misses

  bool operator==(const WireFabricShard&) const = default;
};

/// Fabric-aggregate counters of a fabric-mode server's STATS reply,
/// including the Section-2.4 remap cost estimate (total rounds + messages
/// of the distributed rebuilds the remaps so far are priced at).
struct WireFabricStats {
  std::uint64_t queries = 0;        ///< total requests routed
  std::uint64_t hot_keys = 0;       ///< keys promoted to hot
  std::uint64_t replica_reads = 0;  ///< reads load-balanced off the owner
  std::uint64_t remap_events = 0;   ///< kill/revive transitions
  std::uint64_t remapped_keys = 0;  ///< keys whose owner changed
  std::uint64_t remap_rounds = 0;   ///< Section-2.4 rebuild rounds charged
  std::uint64_t remap_messages = 0; ///< Section-2.4 rebuild message envelope
  std::vector<WireFabricShard> shards;

  bool operator==(const WireFabricStats&) const = default;
};

/// Everything the STATS op reports: one coherent engine snapshot
/// (EmbedEngine::stats_snapshot; in fabric mode the per-shard snapshots
/// summed), the server's own counters, when the connection has a configured
/// session its SessionStats/RepairStats, and — from fabric-mode servers —
/// the per-shard/aggregate fabric section. The fabric section is an
/// append-only protocol extension: peers speaking the original payload
/// (without even the has_fabric byte) still interoperate, see decode_stats.
struct WireStats {
  service::EngineStatsSnapshot engine;
  WireServerStats server;
  bool has_session = false;
  service::SessionStats session;
  service::RepairStats repair;
  bool has_fabric = false;
  WireFabricStats fabric;
};

/// Appends a STATS reply payload (after the caller's WireStatus byte).
void encode_stats(WireWriter& w, const WireStats& stats);

/// Reads a STATS reply payload written by encode_stats. Versioned: a
/// payload that ends after the session block (the pre-fabric encoding) is
/// accepted with has_fabric = false, so stats from an older peer still
/// decode.
bool decode_stats(WireReader& r, WireStats* out);

// --- Stream framing ---------------------------------------------------------

/// One complete frame extracted from a byte stream.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Incremental frame extractor over a TCP byte stream. Feed arbitrary
/// chunks; next() yields complete frames in order. A header-level error
/// (bad magic/version/flags/length) is sticky: the stream can no longer be
/// framed and the connection must be dropped.
class FrameParser {
 public:
  enum class Result : std::uint8_t {
    kFrame,     ///< *frame was filled
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< unframeable stream; see error()
  };

  /// Appends raw bytes from the socket.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete frame, if any.
  Result next(Frame* frame);

  FrameError error() const { return error_; }
  /// Bytes buffered but not yet consumed (for tests / introspection).
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  ///< consumed prefix; compacted lazily
  FrameError error_ = FrameError::kNone;
};

}  // namespace dbr::net
