#include "sim/traffic.hpp"

#include <algorithm>
#include <utility>

#include "core/distributed_ffc.hpp"
#include "util/require.hpp"
#include "util/word.hpp"
#include "verify/oracle.hpp"

namespace dbr::sim {

namespace {

// Trace event kinds folded into the replay hash. The numeric values are
// part of the trace identity: two runs hash equal iff they interleave the
// same events with the same operands in the same rounds.
enum : std::uint64_t {
  kTraceInject = 1,
  kTraceHop,
  kTraceDeliver,
  kTraceDrop,
  kTraceInstall,
  kTraceChurn,
  kTraceEpoch,
};

/// The physical De Bruijn topology u -> v iff suffix(u) == prefix(v),
/// captured by value so the predicate owns its word algebra.
std::function<bool(NodeId, NodeId)> debruijn_links(Digit base, unsigned n) {
  return [ws = WordSpace(base, n)](NodeId u, NodeId v) {
    return ws.suffix(u) == ws.prefix(v);
  };
}

}  // namespace

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kDeadNode: return "dead_node";
    case DropReason::kCutLink: return "cut_link";
    case DropReason::kQueueOverflow: return "queue_overflow";
    case DropReason::kNoRoute: return "no_route";
  }
  return "unknown";
}

std::uint64_t FaultImpact::drops_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t d : drops) total += d;
  return total;
}

std::uint64_t TrafficStats::dropped_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t d : dropped) total += d;
  return total;
}

TrafficSim::TrafficSim(SessionDriver& driver, TrafficConfig config)
    : driver_(&driver),
      config_(config),
      queues_(driver.net().num_nodes()),
      trace_hash_(0xcbf29ce484222325ULL) {
  require(config_.queue_capacity > 0, "queue capacity must be positive");
  require(config_.egress_rate > 0, "egress rate must be positive");
  const Digit base = driver.session().base();
  const unsigned n = driver.session().n();
  // Section 2.4 prices: a cold distributed re-solve runs the full probe /
  // dossier / reroute / announce / broadcast pipeline (~4n+2 rounds); an
  // incremental splice only circulates the faulty necklace locally and
  // handshakes the patch (n+2 rounds).
  cold_rounds_ = config_.cold_rebuild_rounds != 0
                     ? config_.cold_rebuild_rounds
                     : core::predict_rebuild_rounds(base, n).total_rounds();
  repair_rounds_ = config_.repair_rebuild_rounds != 0
                       ? config_.repair_rebuild_rounds
                       : static_cast<std::uint64_t>(n) + 2;
}

void TrafficSim::add_flow(const Flow& flow) {
  require(!ran_, "flows must be registered before run()");
  const NodeId nodes = driver_->net().num_nodes();
  require(flow.src < nodes && flow.dst < nodes, "flow endpoint out of range");
  require(flow.src != flow.dst, "flow source and destination must differ");
  require(flow.packets > 0, "flow must carry at least one packet");
  flows_.push_back({flow, 0});
}

void TrafficSim::add_flows(const std::vector<Flow>& flows) {
  for (const Flow& f : flows) add_flow(f);
}

std::uint64_t TrafficSim::queued() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

void TrafficSim::trace(std::uint64_t kind, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (std::uint64_t v : {kind, round_, a, b, c}) {
    trace_hash_ = (trace_hash_ ^ v) * kPrime;
  }
}

void TrafficSim::drop(const Packet& p, DropReason reason, NodeId where) {
  ++stats_.dropped[static_cast<std::size_t>(reason)];
  if (attribute_) {
    ++stats_.faults[open_impact_].drops[static_cast<std::size_t>(reason)];
  }
  trace(kTraceDrop, p.id, static_cast<std::uint64_t>(reason), where);
}

void TrafficSim::refresh_ring(std::size_t prev_impact, bool prev_attribute) {
  const service::EmbedResponse response = driver_->current_ring();
  const std::uint64_t epoch = driver_->session().ring_epoch();
  FaultImpact& impact = stats_.faults.back();
  impact.repaired = response.repaired;
  impact.no_embedding = !response.ok();

  if (config_.validate_rings && response.ok()) {
    // Every installed ring must survive the independent oracle against the
    // session's live fault set — the bench's "0 oracle violations" gate.
    service::EmbedRequest request;
    request.base = driver_->session().base();
    request.n = driver_->session().n();
    request.fault_kind = driver_->session().fault_kind();
    request.strategy = driver_->session().strategy();
    request.faults = driver_->session().faults();
    request.edge_faults = driver_->session().edge_faults();
    if (!verify::check_response(request, *response.result).ok()) {
      ++stats_.oracle_violations;
    }
  }

  if (epoch == last_epoch_) {
    // The served ring is the very object already routed (a no-op splice, a
    // memoized answer or a cache round-trip): the tables stay valid and
    // routing never stalls. Drops fall back to whatever window was already
    // open, if any.
    impact.ring_changed = false;
    impact.recovery_rounds = 0;
    open_impact_ = prev_impact;
    attribute_ = prev_attribute;
    trace(kTraceEpoch, 0, response.repaired ? 1 : 0, 0);
    return;
  }

  last_epoch_ = epoch;
  const std::uint64_t price = response.repaired ? repair_rounds_ : cold_rounds_;
  impact.ring_changed = true;
  impact.recovery_rounds = price;
  pending_ = response;
  rebuilding_ = true;
  install_round_ = round_ + price;
  // Window drops (stale-table bleed, stall overflow, install stranding)
  // attribute to this epoch from here on.
  trace(kTraceEpoch, 1, response.repaired ? 1 : 0, price);
}

void TrafficSim::install_fib() {
  static const NodeCycle kEmptyRing{};
  const NodeCycle& ring =
      pending_.ok() ? pending_.result->ring : kEmptyRing;
  fib_ = build_ring_fib(ring, driver_->net().num_nodes(), fib_.version + 1);
  // Strand everything the new ring no longer routes: packets held by
  // excised nodes and packets whose destination left the ring.
  for (NodeId v = 0; v < queues_.size(); ++v) {
    std::deque<Packet>& q = queues_[v];
    if (q.empty()) continue;
    if (!fib_.on_ring(v)) {
      for (const Packet& p : q) drop(p, DropReason::kNoRoute, v);
      q.clear();
      continue;
    }
    std::deque<Packet> kept;
    for (const Packet& p : q) {
      if (fib_.on_ring(p.dst)) {
        kept.push_back(p);
      } else {
        drop(p, DropReason::kNoRoute, v);
      }
    }
    q = std::move(kept);
  }
  rebuilding_ = false;
  attribute_ = false;
  ++stats_.fib_installs;
  trace(kTraceInstall, fib_.version, fib_.ring_length, 0);
}

void TrafficSim::apply_churn(const verify::ChurnEvent& event) {
  if (event.kind == service::FaultKind::kEdge) {
    if (event.add) {
      driver_->cut_link(event.fault);
    } else {
      driver_->restore_link(event.fault);
    }
  } else if (event.add) {
    const NodeId victim = event.fault;
    driver_->kill(victim);
    // A fail-stop death takes the router's buffered packets with it.
    for (const Packet& p : queues_[victim]) {
      drop(p, DropReason::kDeadNode, victim);
    }
    queues_[victim].clear();
  } else {
    driver_->repair(event.fault);
  }
  trace(kTraceChurn, event.add ? 1 : 0,
        static_cast<std::uint64_t>(event.kind), event.fault);
}

void TrafficSim::inject() {
  for (FlowState& fs : flows_) {
    if (round_ < fs.flow.start_round || fs.sent >= fs.flow.packets) continue;
    ++fs.sent;
    Packet p{next_packet_id_++, fs.flow.dst, fs.flow.tag};
    ++stats_.injected;
    trace(kTraceInject, p.id, fs.flow.src, fs.flow.dst);
    const NodeId src = fs.flow.src;
    if (!driver_->net().alive(src)) {
      drop(p, DropReason::kDeadNode, src);
    } else if (fib_.ring_length == 0 || !fib_.on_ring(src) ||
               !fib_.on_ring(p.dst)) {
      drop(p, DropReason::kNoRoute, src);
    } else if (queues_[src].size() >= config_.queue_capacity) {
      drop(p, DropReason::kQueueOverflow, src);
    } else {
      queues_[src].push_back(p);
    }
  }
}

void TrafficSim::forward() {
  Engine& net = driver_->net();
  for (NodeId v = 0; v < queues_.size(); ++v) {
    std::deque<Packet>& q = queues_[v];
    if (q.empty() || !net.alive(v)) continue;
    // During a rebuild window fib_ is the *stale* table: the data plane
    // keeps forwarding and bleeds packets into whatever the fault broke,
    // at line rate, until the new table installs. Each head-of-line drop
    // consumes egress budget exactly like a successful send.
    std::uint32_t budget = config_.egress_rate;
    while (budget > 0 && !q.empty()) {
      --budget;
      const Packet p = q.front();
      q.pop_front();
      const NodeId next = fib_.next_hop[v];
      if (next == kNoRoute) {
        drop(p, DropReason::kNoRoute, v);
      } else if (!net.alive(next)) {
        drop(p, DropReason::kDeadNode, v);
      } else if (!net.link_alive(v, next)) {
        drop(p, DropReason::kCutLink, v);
      } else {
        Message msg;
        msg.tag = p.tag;
        msg.payload = {p.id, p.dst};
        net.post(v, next, std::move(msg));
        ++stats_.hops;
        trace(kTraceHop, p.id, v, next);
      }
    }
  }
}

void TrafficSim::deliver() {
  Engine& net = driver_->net();
  net.step([&](NodeId dest, std::vector<Message>& batch) {
    for (Message& msg : batch) {
      const Packet p{msg.payload[0], msg.payload[1], msg.tag};
      if (!net.alive(dest)) {
        // Defensive: forwarding pre-checks liveness and churn applies at
        // round starts, so wire packets cannot outlive their receiver —
        // but a future reordering must surface as drops, not lost packets.
        drop(p, DropReason::kDeadNode, dest);
      } else if (p.dst == dest) {
        ++stats_.delivered;
        if (!saw_fault_) {
          ++stats_.delivered_before;
        } else if (rebuilding_) {
          ++stats_.delivered_during;
        } else {
          ++stats_.delivered_after;
        }
        trace(kTraceDeliver, p.id, dest, 0);
      } else if (queues_[dest].size() >= config_.queue_capacity) {
        drop(p, DropReason::kQueueOverflow, dest);
      } else {
        queues_[dest].push_back(p);
      }
    }
  });
}

TrafficStats TrafficSim::run(const std::vector<verify::TimedChurnEvent>& churn,
                             std::uint64_t horizon,
                             const RoundObserver& on_round) {
  require(!ran_, "TrafficSim::run is one-shot");
  ran_ = true;
  require(horizon > 0, "horizon must be positive");
  for (std::size_t i = 0; i + 1 < churn.size(); ++i) {
    require(churn[i].round <= churn[i + 1].round,
            "churn rounds must be ascending");
  }
  require(churn.empty() || churn.back().round < horizon,
          "churn event past the horizon");

  // The initial ring pre-exists the traffic: install its table at once (no
  // rebuild window) and baseline the epoch counter.
  {
    const service::EmbedResponse first = driver_->current_ring();
    last_epoch_ = driver_->session().ring_epoch();
    if (config_.validate_rings && first.ok()) {
      service::EmbedRequest request;
      request.base = driver_->session().base();
      request.n = driver_->session().n();
      request.fault_kind = driver_->session().fault_kind();
      request.strategy = driver_->session().strategy();
      request.faults = driver_->session().faults();
      request.edge_faults = driver_->session().edge_faults();
      if (!verify::check_response(request, *first.result).ok()) {
        ++stats_.oracle_violations;
      }
    }
    static const NodeCycle kEmptyRing{};
    fib_ = build_ring_fib(first.ok() ? first.result->ring : kEmptyRing,
                          driver_->net().num_nodes(), 1);
    ++stats_.fib_installs;
    trace(kTraceInstall, fib_.version, fib_.ring_length, 0);
  }

  std::size_t next_event = 0;
  for (round_ = 0; round_ < horizon; ++round_) {
    if (rebuilding_ && round_ == install_round_) install_fib();

    if (next_event < churn.size() && churn[next_event].round == round_) {
      saw_fault_ = true;
      ++stats_.fault_epochs;
      // The epoch's impact entry opens before the events apply, so a kill's
      // queue purge lands on it; refresh_ring rolls attribution back to the
      // previous window when the ring turns out not to have moved.
      const std::size_t prev_impact = open_impact_;
      const bool prev_attribute = attribute_;
      FaultImpact impact;
      impact.round = round_;
      stats_.faults.push_back(impact);
      open_impact_ = stats_.faults.size() - 1;
      attribute_ = true;
      std::uint64_t events = 0;
      while (next_event < churn.size() && churn[next_event].round == round_) {
        apply_churn(churn[next_event].event);
        ++next_event;
        ++events;
      }
      stats_.faults.back().events = events;
      refresh_ring(prev_impact, prev_attribute);
    }

    inject();
    forward();
    deliver();

    if (!saw_fault_) {
      ++stats_.rounds_before;
    } else if (rebuilding_) {
      ++stats_.rounds_during;
      ++stats_.rebuild_rounds;
    } else {
      ++stats_.rounds_after;
    }
    stats_.rounds = round_ + 1;
    stats_.in_flight = queued();
    if (on_round) on_round(round_, stats_);
  }

  stats_.in_flight = queued();
  return stats_;
}

TrafficHarness::TrafficHarness(const service::EmbedRequest& shape,
                               const service::EngineOptions& options)
    : engine(options),
      net(WordSpace(shape.base, shape.n).size(),
          debruijn_links(shape.base, shape.n)),
      session(engine, shape.base, shape.n, shape.fault_kind, shape.strategy),
      driver(net, session) {}

ScenarioTrafficResult run_traffic_scenario(
    const verify::TrafficScenario& scenario,
    const service::EngineOptions& options, const TrafficConfig& config,
    const std::function<std::vector<Flow>(const NodeCycle& ring)>& make_flows,
    const TrafficSim::RoundObserver& on_round) {
  require(static_cast<bool>(make_flows), "flow factory required");
  TrafficHarness harness(scenario.base_request, options);
  const service::EmbedResponse first = harness.driver.current_ring();
  require(first.ok(), "traffic scenarios start fault-free and embeddable");
  TrafficConfig effective = config;
  effective.queue_capacity = scenario.queue_capacity;
  TrafficSim sim(harness.driver, effective);
  sim.add_flows(make_flows(first.result->ring));
  ScenarioTrafficResult out;
  out.stats = sim.run(scenario.churn, scenario.horizon, on_round);
  out.trace_hash = sim.trace_hash();
  out.drive = harness.driver.stats();
  out.ring_epochs = harness.session.ring_epoch();
  return out;
}

}  // namespace dbr::sim
