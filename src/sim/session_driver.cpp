#include "sim/session_driver.hpp"

#include "util/require.hpp"
#include "verify/oracle.hpp"

namespace dbr::sim {

namespace {

using service::FaultKind;
// Loop words a^(n+1) encode a^n -> a^n, which is not a physical link of
// the simulator topology; the shared predicate lives in verify/oracle.hpp.
using verify::is_loop_edge_word;

}  // namespace

SessionDriver::SessionDriver(Engine& net, service::EmbedSession& session)
    : net_(&net), session_(&session) {
  require(session.fault_kind() == FaultKind::kNode ||
              session.fault_kind() == FaultKind::kMixed,
          "fail-stop kills are node faults; the session must take node or "
          "mixed faults");
  require(net.num_nodes() == session.context()->words().size(),
          "network size must match B(d,n) of the session's instance");
}

void SessionDriver::kill(NodeId v) {
  net_->kill(v);
  if (session_->add_fault(FaultKind::kNode, v)) ++stats_.kills;
}

void SessionDriver::repair(NodeId v) {
  net_->revive(v);
  if (session_->clear_fault(FaultKind::kNode, v)) ++stats_.repairs;
}

void SessionDriver::cut_link(Word edge_word) {
  require(session_->fault_kind() == FaultKind::kMixed,
          "link cuts need a mixed session (edge faults beside kills)");
  const WordSpace& ws = session_->context()->words();
  if (!is_loop_edge_word(ws, edge_word)) {
    const auto [u, v] = ws.edge_endpoints(edge_word);
    net_->cut_link(u, v);
  }
  if (session_->add_fault(FaultKind::kEdge, edge_word)) ++stats_.link_cuts;
}

void SessionDriver::restore_link(Word edge_word) {
  require(session_->fault_kind() == FaultKind::kMixed,
          "link cuts need a mixed session (edge faults beside kills)");
  const WordSpace& ws = session_->context()->words();
  if (!is_loop_edge_word(ws, edge_word)) {
    const auto [u, v] = ws.edge_endpoints(edge_word);
    net_->restore_link(u, v);
  }
  if (session_->clear_fault(FaultKind::kEdge, edge_word)) ++stats_.link_restores;
}

void SessionDriver::kill_shard(service::ShardId shard) {
  require(fabric_ != nullptr, "shard events need an attached fabric");
  fabric_->kill_shard(shard);
  ++stats_.shard_kills;
}

void SessionDriver::revive_shard(service::ShardId shard) {
  require(fabric_ != nullptr, "shard events need an attached fabric");
  fabric_->revive_shard(shard);
  ++stats_.shard_revives;
}

service::EmbedResponse SessionDriver::current_ring() {
  service::EmbedResponse response = session_->current_ring();
  if (response.ok()) {
    ++stats_.rings_embedded;
  } else {
    ++stats_.no_embeddings;
  }
  if (response.repaired) ++stats_.repaired_rings;
  return response;
}

ChurnDriveStats drive_script(SessionDriver& driver,
                             const verify::ChurnScript& script) {
  const FaultKind script_kind = script.base_request.fault_kind;
  require(script_kind == FaultKind::kNode || script_kind == FaultKind::kMixed,
          "drive_script replays node-fault (fail-stop) or mixed scripts");
  // Fail fast, before any event mutates the network or the session: a
  // mixed script's edge events need a mixed session.
  require(script_kind == FaultKind::kNode ||
              driver.session().fault_kind() == FaultKind::kMixed,
          "a mixed churn script requires a mixed session");
  for (const verify::ChurnEvent& event : script.events) {
    if (event.kind == FaultKind::kEdge) {
      if (event.add) {
        driver.cut_link(event.fault);
      } else {
        driver.restore_link(event.fault);
      }
    } else if (event.add) {
      driver.kill(event.fault);
    } else {
      driver.repair(event.fault);
    }
    driver.current_ring();
  }
  return driver.stats();
}

}  // namespace dbr::sim
