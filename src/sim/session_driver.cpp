#include "sim/session_driver.hpp"

#include "util/require.hpp"

namespace dbr::sim {

SessionDriver::SessionDriver(Engine& net, service::EmbedSession& session)
    : net_(&net), session_(&session) {
  require(session.fault_kind() == service::FaultKind::kNode,
          "fail-stop kills are node faults; the session must take node faults");
  require(net.num_nodes() == session.context()->words().size(),
          "network size must match B(d,n) of the session's instance");
}

void SessionDriver::kill(NodeId v) {
  net_->kill(v);
  if (session_->add_fault(v)) ++stats_.kills;
}

void SessionDriver::repair(NodeId v) {
  net_->revive(v);
  if (session_->clear_fault(v)) ++stats_.repairs;
}

service::EmbedResponse SessionDriver::current_ring() {
  service::EmbedResponse response = session_->current_ring();
  if (response.ok()) {
    ++stats_.rings_embedded;
  } else {
    ++stats_.no_embeddings;
  }
  return response;
}

ChurnDriveStats drive_script(SessionDriver& driver,
                             const verify::ChurnScript& script) {
  require(script.base_request.fault_kind == service::FaultKind::kNode,
          "drive_script replays node-fault (fail-stop) scripts");
  for (const verify::ChurnEvent& event : script.events) {
    if (event.add) {
      driver.kill(event.fault);
    } else {
      driver.repair(event.fault);
    }
    driver.current_ring();
  }
  return driver.stats();
}

}  // namespace dbr::sim
