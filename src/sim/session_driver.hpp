#pragma once

/// \file
/// Bridges simulator fault events (fail-stop processor kills and link cuts)
/// into a stateful service::EmbedSession over the same B(d,n).

#include <cstdint>

#include "service/fabric.hpp"
#include "service/session.hpp"
#include "sim/engine.hpp"
#include "verify/scenario.hpp"

namespace dbr::sim {

/// Outcome counters for a driven fault-churn run.
struct ChurnDriveStats {
  std::uint64_t kills = 0;           ///< fail-stop processor deaths applied
  std::uint64_t repairs = 0;         ///< processor revivals applied
  std::uint64_t link_cuts = 0;       ///< link cuts applied (mixed sessions)
  std::uint64_t link_restores = 0;   ///< link restorations applied
  std::uint64_t rings_embedded = 0;  ///< events after which a ring existed
  std::uint64_t no_embeddings = 0;   ///< events leaving a beyond-guarantee state
  /// Rings served by locally splicing the previous ring instead of a full
  /// re-solve (EngineOptions::incremental_repair; EmbedResponse::repaired).
  std::uint64_t repaired_rings = 0;
  /// Fabric shard losses applied through an attached ShardRouter.
  std::uint64_t shard_kills = 0;
  /// Fabric shard revivals applied through an attached ShardRouter.
  std::uint64_t shard_revives = 0;
};

/// Bridges faults of a sim::Engine into a stateful service::EmbedSession
/// over the same B(d,n), composing the three layers: the simulator decides
/// who dies (and recovers) and which links are cut (and restored), the
/// session re-solves the surviving ring incrementally against its pinned
/// context, and the ring is by construction usable by any protocol running
/// on the live network — it avoids every dead processor and every cut link.
class SessionDriver {
 public:
  /// The session must take node faults (fail-stop kills only) or mixed
  /// faults (kills plus link cuts), and the network must have one processor
  /// per B(d,n) node. Throws precondition_error otherwise.
  SessionDriver(Engine& net, service::EmbedSession& session);

  /// Fail-stop kill: the processor dies in the network and its node joins
  /// the session's fault set.
  void kill(NodeId v);

  /// Repair: the processor rejoins the network and its fault clears.
  void repair(NodeId v);

  /// Link cut: the De Bruijn edge u -> v encoded by the (n+1)-digit edge
  /// word dies in the network and the word joins the session's edge-fault
  /// set. Requires a kMixed session. Loop words a^(n+1) only touch the
  /// session (the simulator topology has no self-links to cut).
  void cut_link(Word edge_word);

  /// Restores a cut link and clears its edge fault.
  void restore_link(Word edge_word);

  /// Attaches the serving fabric, enabling the shard-level fault events
  /// below: the churn timeline can then lose whole engine shards beside
  /// processors and links — the same fail-stop story one layer up. The
  /// fabric must outlive the driver.
  void attach_fabric(service::ShardRouter& fabric) { fabric_ = &fabric; }

  /// Fail-stop loss of a serving shard: ShardRouter::kill_shard (arc remap
  /// plus eager context rebuild on the successors). The embedded ring is
  /// unaffected — answers are bit-identical from any shard — which is
  /// precisely what the fabric tests drive through this event. Requires an
  /// attached fabric.
  void kill_shard(service::ShardId shard);

  /// Revives a lost shard (ShardRouter::revive_shard). Requires an
  /// attached fabric.
  void revive_shard(service::ShardId shard);

  /// The ring avoiding every dead processor and cut link (re-solved only
  /// after churn).
  service::EmbedResponse current_ring();

  /// The simulated network.
  Engine& net() { return *net_; }
  /// The driven embedding session.
  service::EmbedSession& session() { return *session_; }
  /// Outcome counters accumulated so far.
  const ChurnDriveStats& stats() const { return stats_; }

 private:
  Engine* net_;
  service::EmbedSession* session_;
  service::ShardRouter* fabric_ = nullptr;  ///< set by attach_fabric
  ChurnDriveStats stats_;
};

/// Replays a ChurnScript (verify/scenario's churn regime) through the
/// driver, re-solving after every event: node adds become fail-stop kills
/// and node clears repairs; in a mixed script, edge adds become link cuts
/// and edge clears link restorations. Node scripts drive kNode or kMixed
/// sessions; mixed scripts require a kMixed session. Returns the
/// aggregated outcome counters.
ChurnDriveStats drive_script(SessionDriver& driver,
                             const verify::ChurnScript& script);

}  // namespace dbr::sim
