#pragma once

#include <cstdint>

#include "service/session.hpp"
#include "sim/engine.hpp"
#include "verify/scenario.hpp"

namespace dbr::sim {

/// Outcome counters for a driven fault-churn run.
struct ChurnDriveStats {
  std::uint64_t kills = 0;
  std::uint64_t repairs = 0;
  std::uint64_t rings_embedded = 0;  ///< events after which a ring existed
  std::uint64_t no_embeddings = 0;   ///< events leaving a beyond-guarantee state
};

/// Bridges fail-stop processor faults of a sim::Engine into a stateful
/// service::EmbedSession over the same B(d,n), composing the three layers:
/// the simulator decides who dies (and recovers), the session re-solves the
/// surviving ring incrementally against its pinned context, and the ring is
/// by construction usable by any protocol running on the live network (it
/// avoids every dead processor).
class SessionDriver {
 public:
  /// The session must take node faults (the fail-stop model kills
  /// processors, not links) and the network must have one processor per
  /// B(d,n) node. Throws precondition_error otherwise.
  SessionDriver(Engine& net, service::EmbedSession& session);

  /// Fail-stop kill: the processor dies in the network and its node joins
  /// the session's fault set.
  void kill(NodeId v);

  /// Repair: the processor rejoins the network and its fault clears.
  void repair(NodeId v);

  /// The ring avoiding every dead processor (re-solved only after churn).
  service::EmbedResponse current_ring();

  Engine& net() { return *net_; }
  service::EmbedSession& session() { return *session_; }
  const ChurnDriveStats& stats() const { return stats_; }

 private:
  Engine* net_;
  service::EmbedSession* session_;
  ChurnDriveStats stats_;
};

/// Replays a node-fault ChurnScript (verify/scenario's churn regime) through
/// the driver, re-solving after every event: adds become fail-stop kills,
/// clears become repairs. Returns the aggregated outcome counters.
ChurnDriveStats drive_script(SessionDriver& driver,
                             const verify::ChurnScript& script);

}  // namespace dbr::sim
