#pragma once

/// \file
/// Packet-level traffic simulation over embedded rings (ROADMAP item 4).
///
/// The layers below decide *which* ring survives a fault set; this layer
/// measures what that costs the application. Every node of the simulated
/// B(d,n) gets a forwarding table (sim/fib.hpp) derived from the session's
/// current ring, application flows stream packets along it through bounded
/// drop-tail egress queues on the round-based sim::Engine, and SessionDriver
/// churn events re-route traffic mid-flight: a fault epoch that moves the
/// ring opens a *rebuild window* — priced in Section 2.4 rounds, short for an
/// incremental repair splice, long for a cold distributed re-solve — during
/// which the data plane keeps forwarding along the stale table (bleeding
/// packets into dead routers and cut links) until the new table installs and
/// strands everything the new ring no longer covers. The resulting metrics —
/// packets dropped per fault by reason, time-to-recovery in rounds, goodput
/// before/during/after repair — are the application-visible currency of the
/// paper's multi-port round model, reported by bench/traffic_recovery.cpp.
///
/// Everything is deterministic: identical (flows, churn, horizon, config)
/// inputs replay bit-identically, witnessed by a running trace hash over
/// every injection, hop, delivery, drop and table install.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "service/session.hpp"
#include "sim/engine.hpp"
#include "sim/fib.hpp"
#include "sim/session_driver.hpp"
#include "verify/scenario.hpp"

namespace dbr::sim {

/// Why a packet left the simulation without reaching its destination.
enum class DropReason : std::uint8_t {
  kDeadNode = 0,   ///< holder, source or next hop is fail-stop dead
  kCutLink,        ///< the next ring hop's physical link is cut
  kQueueOverflow,  ///< bounded egress queue full (drop-tail)
  kNoRoute,        ///< no embedded ring covers the packet (kNoEmbedding, or
                   ///< the re-embedded ring excised its holder/destination)
};

/// Number of DropReason values (sizes per-reason counter arrays).
inline constexpr std::size_t kDropReasonCount = 4;

/// Short snake_case name of the reason (e.g. "queue_overflow").
const char* to_string(DropReason r);

/// One application flow: `packets` packets from src to dst, the first
/// injected at start_round and one more every round after (a stream, so a
/// stalled or re-routed ring backs packets up into the bounded queues
/// instead of pausing the application).
struct Flow {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t packets = 1;
  std::uint64_t start_round = 0;
  std::uint32_t tag = 0;  ///< application label, carried per packet
};

/// Traffic-simulation knobs. The rebuild prices default to the Section 2.4
/// round model of the instance being driven (see TrafficSim).
struct TrafficConfig {
  std::uint32_t queue_capacity = 8;  ///< bounded egress queue per node
  std::uint32_t egress_rate = 1;     ///< packets a node forwards per round
                                     ///< (the ring uses one out-link per node)
  /// Rounds a cold distributed re-solve stalls the control plane before the
  /// new table installs; 0 derives predict_rebuild_rounds(d, n) ~ 4n+2.
  std::uint64_t cold_rebuild_rounds = 0;
  /// Rounds an incremental repair splice stalls; 0 derives n + 2 (local
  /// necklace circulation plus the splice handshake).
  std::uint64_t repair_rebuild_rounds = 0;
  /// Run the independent verify/ oracle on every installed kOk ring (the
  /// bench's "0 oracle violations" gate).
  bool validate_rings = true;
};

/// Application-visible impact of one fault epoch (all churn events sharing
/// one simulation round): what the ring did and what it cost.
struct FaultImpact {
  std::uint64_t round = 0;   ///< the epoch's simulation round
  std::uint64_t events = 0;  ///< churn events applied in the epoch
  bool ring_changed = false; ///< the served ring moved (epoch bump)
  bool repaired = false;     ///< served by the incremental splice
  bool no_embedding = false; ///< the epoch left a beyond-guarantee state
  /// Rounds until the new table installed (0: the ring did not move, so
  /// routing never stalled — e.g. an off-ring link cut under repair).
  std::uint64_t recovery_rounds = 0;
  /// Packets dropped during this epoch's rebuild window, by reason.
  std::array<std::uint64_t, kDropReasonCount> drops{};

  /// Total packets dropped during the window.
  std::uint64_t drops_total() const;
};

/// Aggregate outcome of one traffic run. Conservation is the core
/// invariant: every injected packet is exactly one of delivered,
/// dropped-with-reason, or still queued at the horizon.
struct TrafficStats {
  std::uint64_t injected = 0;   ///< packets handed to the network
  std::uint64_t delivered = 0;  ///< packets that reached their destination
  std::array<std::uint64_t, kDropReasonCount> dropped{};  ///< by reason
  std::uint64_t in_flight = 0;  ///< still queued when the run ended
  std::uint64_t rounds = 0;     ///< simulation rounds executed
  std::uint64_t hops = 0;       ///< physical link traversals
  std::uint64_t fib_installs = 0;      ///< forwarding tables installed
  std::uint64_t fault_epochs = 0;      ///< distinct churn rounds applied
  std::uint64_t rebuild_rounds = 0;    ///< rounds spent inside rebuild windows
  std::uint64_t oracle_violations = 0; ///< installed rings the oracle rejected
  /// Deliveries and round counts split into before the first fault epoch /
  /// inside rebuild windows / the remainder — the goodput phases.
  std::uint64_t delivered_before = 0, delivered_during = 0, delivered_after = 0;
  std::uint64_t rounds_before = 0, rounds_during = 0, rounds_after = 0;
  std::vector<FaultImpact> faults;  ///< one entry per fault epoch, in order

  /// Total packets dropped across all reasons.
  std::uint64_t dropped_total() const;
  /// The conservation invariant: injected == delivered + dropped + in_flight.
  bool conserved() const {
    return injected == delivered + dropped_total() + in_flight;
  }
};

/// Drives packet flows over the rings a SessionDriver serves. One-shot: add
/// flows, then run() the churn timeline to its horizon. The run is a pure
/// function of (initial session state, flows, churn, horizon, config);
/// trace_hash() witnesses bit-identical replay.
class TrafficSim {
 public:
  /// Called after every simulated round with the stats so far (the
  /// per-round conservation hook of tests/test_traffic.cpp).
  using RoundObserver =
      std::function<void(std::uint64_t round, const TrafficStats& stats)>;

  /// The driver's session prices the rebuild windows (base, n). The driver
  /// must outlive the simulation.
  TrafficSim(SessionDriver& driver, TrafficConfig config = {});

  /// Registers a flow before run(). Throws precondition_error on src == dst
  /// or out-of-range endpoints.
  void add_flow(const Flow& flow);

  /// Registers every flow in order.
  void add_flows(const std::vector<Flow>& flows);

  /// Runs `horizon` rounds, applying each timed churn event at its round
  /// (rounds must be ascending and events inside the horizon). One-shot:
  /// throws precondition_error on a second call. Returns the final stats.
  TrafficStats run(const std::vector<verify::TimedChurnEvent>& churn,
                   std::uint64_t horizon, const RoundObserver& on_round = {});

  /// FNV-1a hash over the full event trace (injections, hops, deliveries,
  /// drops, installs, churn). Equal hashes across runs mean bit-identical
  /// behavior; the deterministic-replay tests compare exactly this.
  std::uint64_t trace_hash() const { return trace_hash_; }

  /// The currently installed forwarding table.
  const RingFib& fib() const { return fib_; }

  /// Packets currently sitting in egress queues.
  std::uint64_t queued() const;

 private:
  struct Packet {
    std::uint64_t id = 0;
    NodeId dst = 0;
    std::uint32_t tag = 0;
  };
  struct FlowState {
    Flow flow;
    std::uint64_t sent = 0;
  };

  /// Folds one trace event (plus the current round) into the FNV-1a hash.
  void trace(std::uint64_t kind, std::uint64_t a, std::uint64_t b,
             std::uint64_t c);
  /// Counts one drop, attributing it to the open fault epoch while a
  /// rebuild window (or the epoch's own round) is active.
  void drop(const Packet& p, DropReason reason, NodeId where);
  /// Serves the session's current ring, oracle-checks it, and opens a
  /// rebuild window when the served ring moved; otherwise restores the
  /// attribution state the epoch block saved.
  void refresh_ring(std::size_t prev_impact, bool prev_attribute);
  /// Installs `pending_` as the live table and strands every queued packet
  /// the new ring no longer routes.
  void install_fib();
  void apply_churn(const verify::ChurnEvent& event);
  void inject();
  void forward();
  void deliver();

  SessionDriver* driver_;
  TrafficConfig config_;
  std::uint64_t cold_rounds_;    ///< resolved cold rebuild price
  std::uint64_t repair_rounds_;  ///< resolved repair splice price
  std::vector<FlowState> flows_;
  std::vector<std::deque<Packet>> queues_;  ///< per-node egress FIFO
  RingFib fib_;
  service::EmbedResponse pending_;      ///< ring awaiting install
  bool rebuilding_ = false;             ///< a rebuild window is open
  std::uint64_t install_round_ = 0;     ///< when pending_ installs
  std::uint64_t last_epoch_ = 0;        ///< session ring_epoch() last seen
  std::uint64_t round_ = 0;             ///< current simulation round
  std::uint64_t next_packet_id_ = 0;
  std::uint64_t trace_hash_;
  bool ran_ = false;
  bool saw_fault_ = false;   ///< first fault epoch reached (goodput phases)
  bool attribute_ = false;   ///< drops currently attribute to open_impact_
  std::size_t open_impact_ = 0;  ///< faults index drops attribute to
  TrafficStats stats_;
};

/// The standard four-layer stack under a traffic run: a simulated B(d,n)
/// network, an embedding engine, the stateful session for the instance and
/// the churn driver bridging them. `shape` names the instance (its fault
/// lists are ignored; churn is the fault history). Members declare in
/// dependency order; the struct is immovable (members hold references).
struct TrafficHarness {
  service::EmbedEngine engine;
  Engine net;
  service::EmbedSession session;
  SessionDriver driver;

  TrafficHarness(const service::EmbedRequest& shape,
                 const service::EngineOptions& options);
  TrafficHarness(const TrafficHarness&) = delete;
  TrafficHarness& operator=(const TrafficHarness&) = delete;
};

/// Outcome of a scenario run: the traffic stats, the replay witness and the
/// churn counters of the underlying driver.
struct ScenarioTrafficResult {
  TrafficStats stats;
  std::uint64_t trace_hash = 0;
  ChurnDriveStats drive;
  std::uint64_t ring_epochs = 0;  ///< session ring_epoch() at the end
};

/// Runs one generated traffic scenario end to end: builds a TrafficHarness
/// for the scenario's instance, solves the initial ring, asks `make_flows`
/// for the packet flows against it (bench/workload's TrafficMatrix in the
/// benches and tests), and runs the timed churn to the horizon. The
/// scenario's queue bound overrides the config's; everything else in
/// `config` applies as given.
ScenarioTrafficResult run_traffic_scenario(
    const verify::TrafficScenario& scenario,
    const service::EngineOptions& options, const TrafficConfig& config,
    const std::function<std::vector<Flow>(const NodeCycle& ring)>& make_flows,
    const TrafficSim::RoundObserver& on_round = {});

}  // namespace dbr::sim
