#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "graph/digraph.hpp"

namespace dbr::sim {

/// A message in flight. Payload semantics are protocol-defined; `tag`
/// distinguishes message kinds within one protocol.
struct Message {
  NodeId from = 0;
  std::uint32_t tag = 0;
  std::vector<std::uint64_t> payload;
};

/// Synchronous round-based message-passing engine (the multi-port model of
/// Section 2.4: in one time step a processor may send along all of its
/// outgoing links and receive along all incoming ones).
///
/// Faults are fail-stop processors and cut links: a dead node neither sends
/// nor receives, and traffic posted on a cut link vanishes — which is
/// exactly how the necklace probe detects faulty necklaces, and how a
/// mixed-fault session observes link loss. Links are validated against the
/// supplied topology predicate so protocols cannot cheat with non-local
/// hops.
class Engine {
 public:
  /// edge_ok(u, v) must return true iff the network has a physical link
  /// u -> v that messages may traverse.
  Engine(NodeId num_nodes, std::function<bool(NodeId, NodeId)> edge_ok);

  NodeId num_nodes() const { return num_nodes_; }

  /// Marks a processor fail-stop dead.
  void kill(NodeId v);
  /// Repairs a dead processor: it rejoins the network with empty state and
  /// may send/receive from the next round on (the fault-churn regime).
  void revive(NodeId v);
  /// True when the processor is not fail-stop dead.
  bool alive(NodeId v) const;

  /// Cuts the physical link u -> v: traffic posted on it is dropped (and
  /// counted) until restore_link. The link must exist in the topology.
  /// Cutting an already-cut link is a no-op. The directed-link model
  /// matches the De Bruijn edge words a mixed-fault session tracks.
  void cut_link(NodeId u, NodeId v);
  /// Restores a cut link; restoring an intact link is a no-op.
  void restore_link(NodeId u, NodeId v);
  /// True when the topology has the link and it is not currently cut.
  bool link_alive(NodeId u, NodeId v) const;

  /// Queues a message for delivery in the next round. Silently dropped when
  /// either endpoint is dead or the link is cut (a dead sender models a
  /// node that failed before the protocol started; callers normally skip
  /// dead senders anyway). Throws precondition_error if the topology lacks
  /// the link.
  void post(NodeId from, NodeId to, Message msg);

  /// Delivers every queued message: invokes on_deliver(dest, batch) once per
  /// destination with a nonempty inbox (batch unordered within the round).
  /// Advances the round counter; returns the number of delivered messages.
  std::uint64_t step(
      const std::function<void(NodeId dest, std::vector<Message>& batch)>& on_deliver);

  /// Runs step() until no messages are in flight or max_rounds is exhausted
  /// (throws invariant_error on exhaustion). Returns rounds consumed.
  std::uint64_t run_until_idle(
      const std::function<void(NodeId dest, std::vector<Message>& batch)>& on_deliver,
      std::uint64_t max_rounds);

  bool idle() const { return outbox_.empty(); }
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_dropped() const { return dropped_; }

 private:
  NodeId num_nodes_;
  std::function<bool(NodeId, NodeId)> edge_ok_;
  std::vector<bool> dead_;
  std::unordered_set<std::uint64_t> cut_links_;  // keyed u * num_nodes_ + v
  std::vector<std::pair<NodeId, Message>> outbox_;  // (dest, message)
  std::uint64_t rounds_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dbr::sim
