#pragma once

/// \file
/// Per-node forwarding tables (FIBs) derived from an embedded ring.
///
/// The embedded ring has unit dilation: every consecutive pair of ring
/// nodes is a physical De Bruijn link (Section 1.1), so "forward to your
/// ring successor" is a legal per-hop routing rule on the real machine.
/// A RingFib freezes that rule into an O(1)-lookup table: packets travel
/// the ring in the forward direction until they reach their destination.
/// When churn re-embeds the ring, the traffic simulator installs a fresh
/// FIB with a bumped version; packets stranded on excised nodes are
/// dropped with a no-route reason (sim/traffic.hpp).

#include <cstdint>
#include <vector>

#include "debruijn/cycle.hpp"
#include "graph/digraph.hpp"
#include "util/require.hpp"

namespace dbr::sim {

/// Sentinel next-hop: the node has no forwarding entry (it is not on the
/// currently embedded ring, or no ring is embedded at all).
inline constexpr NodeId kNoRoute = ~NodeId{0};

/// Forwarding table of one embedded ring over a network of `num_nodes`
/// processors: next_hop[v] is v's ring successor (kNoRoute off-ring) and
/// position[v] its index along the ring. Immutable once built; the traffic
/// simulator replaces the whole table on every re-embedding (the version
/// counter tells consumers which installation produced a packet's route).
struct RingFib {
  /// position[] value for nodes that are not on the ring.
  static constexpr std::uint32_t kNoPosition = ~std::uint32_t{0};

  std::vector<NodeId> next_hop;         ///< ring successor, kNoRoute off-ring
  std::vector<std::uint32_t> position;  ///< ring index, kNoPosition off-ring
  std::uint64_t ring_length = 0;        ///< nodes on the ring (0: no ring)
  std::uint64_t version = 0;            ///< bumped per installation

  /// True when v has a forwarding entry (it lies on the embedded ring).
  bool on_ring(NodeId v) const { return next_hop[v] != kNoRoute; }

  /// Forward-direction ring hops from src to dst; both must be on the ring.
  std::uint64_t hop_distance(NodeId src, NodeId dst) const {
    require(on_ring(src) && on_ring(dst), "hop_distance needs on-ring endpoints");
    const std::uint64_t a = position[src];
    const std::uint64_t b = position[dst];
    return b >= a ? b - a : ring_length - (a - b);
  }
};

/// Builds the forwarding table of `ring` over `num_nodes` processors. An
/// empty ring yields an empty (all-kNoRoute) table — the "no embedding"
/// state in which every packet is unroutable. Ring nodes must be distinct
/// and in range (the verify/ oracle guarantees both for served rings).
inline RingFib build_ring_fib(const NodeCycle& ring, NodeId num_nodes,
                              std::uint64_t version) {
  RingFib fib;
  fib.next_hop.assign(num_nodes, kNoRoute);
  fib.position.assign(num_nodes, RingFib::kNoPosition);
  fib.ring_length = ring.nodes.size();
  fib.version = version;
  const std::size_t k = ring.nodes.size();
  for (std::size_t i = 0; i < k; ++i) {
    const Word v = ring.nodes[i];
    require(v < num_nodes, "ring node out of range for the network");
    require(fib.next_hop[v] == kNoRoute, "ring visits a node twice");
    fib.next_hop[v] = ring.nodes[(i + 1) % k];
    fib.position[v] = static_cast<std::uint32_t>(i);
  }
  return fib;
}

}  // namespace dbr::sim
