#include "sim/engine.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dbr::sim {

Engine::Engine(NodeId num_nodes, std::function<bool(NodeId, NodeId)> edge_ok)
    : num_nodes_(num_nodes), edge_ok_(std::move(edge_ok)), dead_(num_nodes, false) {
  require(num_nodes > 0, "engine needs at least one node");
  require(static_cast<bool>(edge_ok_), "topology predicate required");
}

void Engine::kill(NodeId v) {
  require(v < num_nodes_, "node out of range");
  dead_[v] = true;
}

void Engine::revive(NodeId v) {
  require(v < num_nodes_, "node out of range");
  dead_[v] = false;
}

bool Engine::alive(NodeId v) const {
  require(v < num_nodes_, "node out of range");
  return !dead_[v];
}

void Engine::cut_link(NodeId u, NodeId v) {
  require(u < num_nodes_ && v < num_nodes_, "endpoint out of range");
  require(edge_ok_(u, v), "no physical link between endpoints");
  cut_links_.insert(u * num_nodes_ + v);
}

void Engine::restore_link(NodeId u, NodeId v) {
  require(u < num_nodes_ && v < num_nodes_, "endpoint out of range");
  cut_links_.erase(u * num_nodes_ + v);
}

bool Engine::link_alive(NodeId u, NodeId v) const {
  require(u < num_nodes_ && v < num_nodes_, "endpoint out of range");
  return edge_ok_(u, v) && !cut_links_.contains(u * num_nodes_ + v);
}

void Engine::post(NodeId from, NodeId to, Message msg) {
  require(from < num_nodes_ && to < num_nodes_, "endpoint out of range");
  require(edge_ok_(from, to), "no physical link between endpoints");
  if (dead_[from] || dead_[to] || cut_links_.contains(from * num_nodes_ + to)) {
    ++dropped_;
    return;
  }
  msg.from = from;
  outbox_.emplace_back(to, std::move(msg));
}

std::uint64_t Engine::step(
    const std::function<void(NodeId, std::vector<Message>&)>& on_deliver) {
  ++rounds_;
  if (outbox_.empty()) return 0;
  // Stable-group the round's traffic by destination.
  std::vector<std::pair<NodeId, Message>> in_flight;
  in_flight.swap(outbox_);
  std::stable_sort(in_flight.begin(), in_flight.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::uint64_t count = in_flight.size();
  std::vector<Message> batch;
  std::size_t i = 0;
  while (i < in_flight.size()) {
    const NodeId dest = in_flight[i].first;
    batch.clear();
    while (i < in_flight.size() && in_flight[i].first == dest) {
      batch.push_back(std::move(in_flight[i].second));
      ++i;
    }
    on_deliver(dest, batch);
  }
  delivered_ += count;
  return count;
}

std::uint64_t Engine::run_until_idle(
    const std::function<void(NodeId, std::vector<Message>&)>& on_deliver,
    std::uint64_t max_rounds) {
  std::uint64_t used = 0;
  while (!idle()) {
    ensure(used < max_rounds, "protocol failed to quiesce within the round budget");
    step(on_deliver);
    ++used;
  }
  return used;
}

}  // namespace dbr::sim
