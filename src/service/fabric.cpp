#include "service/fabric.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/require.hpp"

namespace dbr::service {

namespace {

/// SplitMix64 finalizer: the deterministic, platform-independent mix every
/// ring point derives from.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void accumulate(core::DistributedFfcStats& into,
                const core::DistributedFfcStats& from) {
  into.probe_rounds += from.probe_rounds;
  into.broadcast_rounds += from.broadcast_rounds;
  into.dossier_rounds += from.dossier_rounds;
  into.announce_rounds += from.announce_rounds;
  into.reroute_rounds += from.reroute_rounds;
  into.messages += from.messages;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashRing

HashRing::HashRing(std::size_t vnodes_per_shard) : vnodes_(vnodes_per_shard) {
  require(vnodes_ >= 1, "HashRing: vnodes_per_shard must be >= 1");
}

std::uint64_t HashRing::vnode_point(ShardId shard, std::uint32_t vnode) {
  return mix64((static_cast<std::uint64_t>(shard) << 32) | vnode);
}

std::uint64_t HashRing::instance_point(Digit base, unsigned n) {
  return mix64(0xfabfabfabfabfab0ull ^
               ((static_cast<std::uint64_t>(base) << 32) | n));
}

bool HashRing::contains(ShardId shard) const {
  return std::binary_search(shards_.begin(), shards_.end(), shard);
}

void HashRing::add(ShardId shard) {
  require(!contains(shard), "HashRing::add: shard already on the ring");
  shards_.insert(std::lower_bound(shards_.begin(), shards_.end(), shard),
                 shard);
  ring_.reserve(ring_.size() + vnodes_);
  for (std::uint32_t v = 0; v < vnodes_; ++v) {
    ring_.emplace_back(vnode_point(shard, v), shard);
  }
  // Ties (two shards hashing a vnode to the same point) break by shard id,
  // so placement stays deterministic no matter the insertion order.
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::remove(ShardId shard) {
  require(contains(shard), "HashRing::remove: shard not on the ring");
  shards_.erase(std::lower_bound(shards_.begin(), shards_.end(), shard));
  std::erase_if(ring_, [shard](const auto& p) { return p.second == shard; });
}

ShardId HashRing::owner(std::uint64_t point) const {
  require(!empty(), "HashRing::owner: empty ring");
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<ShardId> HashRing::successors(std::uint64_t point,
                                          std::size_t count) const {
  require(!empty(), "HashRing::successors: empty ring");
  std::vector<ShardId> out;
  if (count == 0) return out;
  out.reserve(std::min(count, shards_.size()));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  for (std::size_t step = 0; step < ring_.size() && out.size() < count;
       ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// ShardRouter

/// Completion latch of one query_batch call: workers credit it as items
/// finish; the issuing thread waits for the count to drain.
struct ShardRouter::BatchState {
  std::atomic<std::size_t> remaining{0};
  util::Mutex mu;
  util::CondVar cv;
};

ShardRouter::ShardRouter(FabricOptions options) : options_(std::move(options)) {
  require(options_.shards >= 1, "ShardRouter: need at least one shard");
  require(options_.vnodes >= 1, "ShardRouter: need at least one vnode");
  auto ring = std::make_shared<HashRing>(options_.vnodes);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = static_cast<ShardId>(i);
    shard->engine = std::make_unique<EmbedEngine>(options_.engine);
    start_pool(*shard);
    ring->add(shard->id);
    shards_.push_back(std::move(shard));
  }
  {
    const util::MutexLock lk(ring_mu_);
    ring_.publish(std::move(ring));
  }
  {
    const util::MutexLock lk(keys_mu_);
    keys_.publish(std::make_shared<KeyMap>());
  }
}

ShardRouter::~ShardRouter() {
  for (auto& shard : shards_) stop_pool(*shard);
}

void ShardRouter::start_pool(Shard& shard) {
  {
    const util::MutexLock lk(shard.mu);
    shard.accepting = true;
    shard.stopping = false;
  }
  for (std::size_t w = 0; w < options_.workers_per_shard; ++w) {
    shard.workers.emplace_back([this, &shard] { worker_loop(shard); });
  }
}

void ShardRouter::stop_pool(Shard& shard) {
  {
    const util::MutexLock lk(shard.mu);
    shard.accepting = false;
    shard.stopping = true;
  }
  shard.cv.notify_all();
  for (std::thread& t : shard.workers) {
    if (t.joinable()) t.join();
  }
  shard.workers.clear();
}

void ShardRouter::worker_loop(Shard& shard) {
  for (;;) {
    BatchItem item;
    {
      util::UniqueLock lk(shard.mu);
      // While-loop (not a wait predicate): the condition reads then happen
      // directly under the held capability, where the analysis checks them.
      while (!shard.stopping && shard.queue.empty()) shard.cv.wait(lk);
      if (shard.queue.empty()) return;  // stopping and drained
      item = shard.queue.front();
      shard.queue.pop_front();
    }
    try {
      *item.response = shard.engine->query(*item.request);
    } catch (const std::exception& e) {
      auto failed = std::make_shared<EmbedResult>();
      failed->status = EmbedStatus::kInternalError;
      failed->error = e.what();
      item.response->result = std::move(failed);
    }
    {
      // Decrement under the latch mutex: the issuing thread can then only
      // observe zero (and destroy the latch) after this critical section,
      // so no worker ever touches a dead BatchState.
      const util::MutexLock lk(item.batch->mu);
      if (item.batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        item.batch->cv.notify_all();
      }
    }
  }
}

std::shared_ptr<ShardRouter::KeyState> ShardRouter::key_state(Digit base,
                                                              unsigned n) {
  const std::uint64_t key = key_of(base, n);
  {
    util::RcuSnapshot<KeyMap>::ReadGuard guard(keys_);
    if (guard) {
      auto it = guard->find(key);
      if (it != guard->end()) return it->second;
    }
  }
  const util::MutexLock lk(keys_mu_);
  // Writers are serialized, so re-reading the snapshot under the lock sees
  // the authoritative map (a racing writer may have inserted our key). The
  // guard is scoped: publish() may wait for in-flight readers to drain, so
  // it must never run under this thread's own ReadGuard.
  std::shared_ptr<KeyMap> next;
  {
    util::RcuSnapshot<KeyMap>::ReadGuard guard(keys_);
    auto it = guard->find(key);
    if (it != guard->end()) return it->second;
    next = std::make_shared<KeyMap>(*guard);
  }
  auto state = std::make_shared<KeyState>(base, n);
  next->emplace(key, state);
  keys_.publish(std::move(next));
  return state;
}

ShardRouter::Shard& ShardRouter::route(const EmbedRequest& request) {
  const std::shared_ptr<KeyState> state = key_state(request.base, request.n);
  const std::uint64_t point = HashRing::instance_point(request.base, request.n);
  const std::uint64_t serves =
      state->serves.fetch_add(1, std::memory_order_relaxed) + 1;
  bool hot = state->hot.load(std::memory_order_relaxed);
  if (!hot && options_.hot_threshold > 0 && options_.hot_replicas > 0 &&
      serves >= options_.hot_threshold) {
    if (!state->hot.exchange(true, std::memory_order_relaxed)) {
      hot_keys_.fetch_add(1, std::memory_order_relaxed);
    }
    hot = true;
  }
  util::RcuSnapshot<HashRing>::ReadGuard ring(ring_);
  const ShardId primary = ring->owner(point);
  ShardId target = primary;
  if (hot) {
    const std::vector<ShardId> chain =
        ring->successors(point, 1 + options_.hot_replicas);
    target = chain[state->next_read.fetch_add(1, std::memory_order_relaxed) %
                   chain.size()];
  }
  Shard& shard = *shards_[target];
  shard.queries.fetch_add(1, std::memory_order_relaxed);
  if (target != primary) {
    shard.replica_reads.fetch_add(1, std::memory_order_relaxed);
  }
  return shard;
}

EmbedResponse ShardRouter::query(const EmbedRequest& request) {
  return route(request).engine->query(request);
}

void ShardRouter::submit(const BatchItem& item) {
  for (;;) {
    Shard& shard = route(*item.request);
    {
      const util::MutexLock lk(shard.mu);
      if (shard.accepting) {
        shard.queue.push_back(item);
        shard.cv.notify_one();
        return;
      }
    }
    // Routed onto a shard that is draining. kill_shard publishes the
    // victim-free ring *before* it stops accepting, so the re-route below
    // cannot pick this shard again.
    std::this_thread::yield();
  }
}

std::vector<EmbedResponse> ShardRouter::query_batch(
    std::span<const EmbedRequest> requests) {
  std::vector<EmbedResponse> responses(requests.size());
  if (requests.empty()) return responses;
  if (options_.workers_per_shard == 0) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      responses[i] = query(requests[i]);
    }
    return responses;
  }
  BatchState batch;
  batch.remaining.store(requests.size(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    submit(BatchItem{&requests[i], &responses[i], &batch});
  }
  {
    util::UniqueLock lk(batch.mu);
    while (batch.remaining.load(std::memory_order_acquire) != 0) {
      batch.cv.wait(lk);
    }
  }
  return responses;
}

void ShardRouter::warm_context(Shard& shard, Digit base, unsigned n) {
  try {
    shard.engine->context_cache().get_or_build(base, n);
  } catch (const precondition_error&) {
    // An invalid instance was observed in traffic (its queries fail fast
    // with kBadRequest); there is nothing to rebuild for it.
  }
}

void ShardRouter::kill_shard(ShardId shard) {
  const util::MutexLock admin(admin_mu_);
  require(shard < shards_.size(), "kill_shard: shard id out of range");
  Shard& victim = *shards_[shard];
  require(victim.alive.load(std::memory_order_acquire),
          "kill_shard: shard is already dead");
  // Republish the victim-free ring first: from here no route() picks the
  // victim, and the minimal arc (the victim's own points) falls to its
  // successors.
  HashRing old_ring(options_.vnodes);
  std::shared_ptr<const HashRing> next;
  {
    const util::MutexLock lk(ring_mu_);
    std::shared_ptr<HashRing> copy;
    {
      // Scoped: publish() below may wait for readers to drain, so it must
      // not run under this thread's own ReadGuard.
      util::RcuSnapshot<HashRing>::ReadGuard guard(ring_);
      require(guard->shard_count() > 1,
              "kill_shard: cannot kill the last shard");
      old_ring = *guard;
      copy = std::make_shared<HashRing>(*guard);
    }
    copy->remove(shard);
    next = copy;
    ring_.publish(std::move(copy));
  }
  // Stop accepting and push the victim's queued work back through the
  // router; it re-routes against the already-published ring.
  std::deque<BatchItem> orphans;
  {
    const util::MutexLock lk(victim.mu);
    victim.accepting = false;
    orphans.swap(victim.queue);
  }
  for (const BatchItem& item : orphans) submit(item);
  // Eagerly rebuild the migrated arc on its new owners, charging each
  // migrated instance the Section-2.4 price of one distributed rebuild.
  ++remap_events_;
  {
    util::RcuSnapshot<KeyMap>::ReadGuard keys(keys_);
    if (keys) {
      for (const auto& [key, state] : *keys) {
        const std::uint64_t point =
            HashRing::instance_point(state->base, state->n);
        if (old_ring.owner(point) != shard) continue;  // not on the arc
        ++remapped_keys_;
        accumulate(remap_cost_,
                   core::predict_rebuild_rounds(state->base, state->n));
        warm_context(*shards_[next->owner(point)], state->base, state->n);
        if (state->hot.load(std::memory_order_relaxed)) {
          for (ShardId replica :
               next->successors(point, 1 + options_.hot_replicas)) {
            warm_context(*shards_[replica], state->base, state->n);
          }
        }
      }
    }
  }
  stop_pool(victim);
  victim.alive.store(false, std::memory_order_release);
}

void ShardRouter::revive_shard(ShardId shard) {
  const util::MutexLock admin(admin_mu_);
  require(shard < shards_.size(), "revive_shard: shard id out of range");
  Shard& revived = *shards_[shard];
  require(!revived.alive.load(std::memory_order_acquire),
          "revive_shard: shard is already alive");
  start_pool(revived);
  ++remap_events_;
  {
    const util::MutexLock lk(ring_mu_);
    std::shared_ptr<HashRing> copy;
    {
      // Scoped for the same reason as in kill_shard: never publish under
      // this thread's own ring_ ReadGuard.
      util::RcuSnapshot<HashRing>::ReadGuard guard(ring_);
      copy = std::make_shared<HashRing>(*guard);
    }
    copy->add(shard);
    // Warm the arc that is about to return to the revived shard *before*
    // publishing, so routed reads never miss a context the old owner had.
    util::RcuSnapshot<KeyMap>::ReadGuard keys(keys_);
    if (keys) {
      for (const auto& [key, state] : *keys) {
        const std::uint64_t point =
            HashRing::instance_point(state->base, state->n);
        if (copy->owner(point) != shard) continue;
        ++remapped_keys_;
        accumulate(remap_cost_,
                   core::predict_rebuild_rounds(state->base, state->n));
        warm_context(revived, state->base, state->n);
      }
    }
    ring_.publish(std::move(copy));
  }
  revived.alive.store(true, std::memory_order_release);
}

bool ShardRouter::shard_alive(ShardId shard) const {
  require(shard < shards_.size(), "shard_alive: shard id out of range");
  return shards_[shard]->alive.load(std::memory_order_acquire);
}

std::size_t ShardRouter::alive_count() const {
  util::RcuSnapshot<HashRing>::ReadGuard ring(ring_);
  return ring->shard_count();
}

ShardId ShardRouter::owner_of(Digit base, unsigned n) const {
  util::RcuSnapshot<HashRing>::ReadGuard ring(ring_);
  return ring->owner(HashRing::instance_point(base, n));
}

std::vector<ShardId> ShardRouter::replica_chain(Digit base, unsigned n) const {
  util::RcuSnapshot<HashRing>::ReadGuard ring(ring_);
  return ring->successors(HashRing::instance_point(base, n),
                          1 + options_.hot_replicas);
}

EmbedEngine& ShardRouter::engine_for(Digit base, unsigned n) {
  return *shards_[owner_of(base, n)]->engine;
}

EmbedEngine& ShardRouter::shard_engine(ShardId shard) {
  require(shard < shards_.size(), "shard_engine: shard id out of range");
  return *shards_[shard]->engine;
}

FabricStats ShardRouter::stats() const {
  FabricStats out;
  const util::MutexLock admin(admin_mu_);
  out.hot_keys = hot_keys_.load(std::memory_order_relaxed);
  out.remap_events = remap_events_;
  out.remapped_keys = remapped_keys_;
  out.remap_cost = remap_cost_;
  std::vector<std::uint64_t> owned(shards_.size(), 0);
  {
    util::RcuSnapshot<HashRing>::ReadGuard ring(ring_);
    util::RcuSnapshot<KeyMap>::ReadGuard keys(keys_);
    if (keys) {
      for (const auto& [key, state] : *keys) {
        owned[ring->owner(HashRing::instance_point(state->base, state->n))]++;
      }
    }
  }
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    FabricShardStats s;
    s.shard = shard->id;
    s.alive = shard->alive.load(std::memory_order_acquire);
    s.keys_owned = owned[shard->id];
    s.queries = shard->queries.load(std::memory_order_relaxed);
    s.replica_reads = shard->replica_reads.load(std::memory_order_relaxed);
    s.engine = shard->engine->stats_snapshot();
    out.queries += s.queries;
    out.replica_reads += s.replica_reads;
    out.shards.push_back(std::move(s));
  }
  return out;
}

EngineStatsSnapshot ShardRouter::aggregate_engine_stats() const {
  EngineStatsSnapshot total;
  for (const auto& shard : shards_) {
    const EngineStatsSnapshot s = shard->engine->stats_snapshot();
    total.serve.queries += s.serve.queries;
    total.serve.result_hits += s.serve.result_hits;
    total.serve.context_hits += s.serve.context_hits;
    total.serve.context_misses += s.serve.context_misses;
    total.cache.hits += s.cache.hits;
    total.cache.misses += s.cache.misses;
    total.cache.evictions += s.cache.evictions;
    total.cache.entries += s.cache.entries;
    total.contexts.hits += s.contexts.hits;
    total.contexts.misses += s.contexts.misses;
    total.contexts.entries += s.contexts.entries;
    total.validation.checked += s.validation.checked;
    total.validation.violations += s.validation.violations;
  }
  return total;
}

}  // namespace dbr::service
