#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "service/cache.hpp"
#include "service/stats.hpp"
#include "service/types.hpp"

namespace dbr::service {

struct EngineOptions {
  bool enable_cache = true;
  std::size_t cache_capacity = 4096;  ///< total entries across shards
  std::size_t cache_shards = 16;
  /// Debug mode: run the independent verify/ oracle on every computed
  /// answer (cache misses and compute_uncached). A violation is quarantined
  /// as kInternalError carrying the oracle's findings, so it is never cached
  /// or mistaken for a correct embedding. Cache hits are not re-checked:
  /// they are bit-identical copies of an already-validated computation.
  bool validate_responses = false;
};

/// Counters for the validate_responses debug mode.
struct ValidationStats {
  std::uint64_t checked = 0;     ///< oracle runs (== cache misses validated)
  std::uint64_t violations = 0;  ///< answers the oracle rejected
};

/// Thread-safe ring-embedding query engine over the paper's constructions.
///
/// A query names an instance (base, n, fault set, strategy); the engine
/// canonicalizes the fault set (sort + dedup, so answers are independent of
/// presentation order), serves repeats from a sharded LRU result cache, and
/// otherwise dispatches to the matching core construction:
///
///   kFfc        node faults   -> core::FfcSolver (Chapter 2)
///   kEdgeAuto   edge faults   -> core::fault_free_hamiltonian_cycle
///   kEdgeScan   edge faults   -> core::fault_free_hc_family_scan
///   kEdgePhi    edge faults   -> core::fault_free_hc_phi_construction
///   kButterfly  edge faults   -> edge-fault-free HC lifted to F(d,n)
///                                (requires gcd(d, n) = 1, Proposition 3.5)
///
/// Results are immutable and shared with the cache, so a hit returns the
/// exact bytes of the original computation. Two threads missing on the same
/// key may both compute (last put wins); the computation is deterministic,
/// so they produce identical results.
class EmbedEngine {
 public:
  explicit EmbedEngine(EngineOptions options = {});

  /// Serves one query. Thread-safe; the hot (hit) path is one hash plus one
  /// shard lock.
  EmbedResponse query(const EmbedRequest& request);

  /// Serves a batch concurrently on util/parallel workers. Responses come
  /// back in request order. When `stats` is non-null it receives per-worker
  /// counters and the batch wall clock.
  std::vector<EmbedResponse> query_batch(std::span<const EmbedRequest> requests,
                                         BatchStats* stats = nullptr);

  /// Computes an answer without consulting or filling the cache; the
  /// baseline the cache path must be bit-identical to.
  std::shared_ptr<const EmbedResult> compute_uncached(const EmbedRequest& request) const;

  const EngineOptions& options() const { return options_; }
  CacheStats cache_stats() const { return cache_->stats(); }
  ValidationStats validation_stats() const;
  void clear_cache() { cache_->clear(); }

 private:
  std::shared_ptr<const EmbedResult> compute(const CacheKey& key) const;

  EngineOptions options_;
  std::unique_ptr<ShardedLruCache> cache_;
  mutable std::atomic<std::uint64_t> validations_{0};
  mutable std::atomic<std::uint64_t> violations_{0};
};

}  // namespace dbr::service
