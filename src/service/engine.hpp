#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "service/cache.hpp"
#include "service/context_cache.hpp"
#include "service/stats.hpp"
#include "service/types.hpp"

namespace dbr::service {

/// Tuning knobs of the EmbedEngine (caching, context reuse, validation).
struct EngineOptions {
  bool enable_cache = true;
  std::size_t cache_capacity = 4096;  ///< total entries across shards
  std::size_t cache_shards = 16;
  /// Reuse the fault-independent per-(base, n) InstanceContext across
  /// queries via the engine's ContextCache. When false, every computed query
  /// rebuilds its context from scratch (the pre-context behavior, kept as
  /// the cold baseline for the fault-churn bench).
  bool reuse_contexts = true;
  /// Bound on distinct (base, n) contexts held at once (LRU beyond it), so
  /// instance-diverse traffic cannot grow memory without limit.
  std::size_t context_cache_capacity = ContextCache::kDefaultCapacity;
  /// Debug mode: run the independent verify/ oracle on every computed
  /// answer (cache misses and compute_uncached). A violation is quarantined
  /// as kInternalError carrying the oracle's findings (EmbedResult::
  /// quarantined), so it is never cached or mistaken for a correct
  /// embedding. Cache hits are not re-checked: they are bit-identical
  /// copies of an already-validated computation.
  bool validate_responses = false;
  /// Opt-in churn fast path: stateful EmbedSessions on this engine serve
  /// fault-set deltas by locally splicing their previous ring (core/repair
  /// — necklace excision/reinsertion and pull-back detours) instead of a
  /// full re-solve, falling back to the solve path whenever the delta
  /// crosses a construction/family boundary or the spliced ring escapes
  /// the paper's length envelope. Repaired answers are marked
  /// EmbedResponse::repaired, are validity- and envelope-equivalent to a
  /// cold solve (and oracle-checked when validate_responses is on), but
  /// may be a different valid ring; they never enter the result cache.
  /// Stateless query()/query_batch() traffic is unaffected.
  bool incremental_repair = false;
};

/// Counters for the validate_responses debug mode.
struct ValidationStats {
  std::uint64_t checked = 0;     ///< oracle runs (== cache misses validated)
  std::uint64_t violations = 0;  ///< answers the oracle rejected
};

/// Every engine counter family captured as one coherent snapshot (see
/// EmbedEngine::stats_snapshot). The STATS wire op of the networked service
/// serializes exactly this struct.
struct EngineStatsSnapshot {
  ServeStats serve;          ///< engine-lifetime query/hit counters
  CacheStats cache;          ///< result-cache hit/miss/eviction counters
  ContextCacheStats contexts;  ///< per-(base, n) context cache counters
  ValidationStats validation;  ///< validate_responses oracle counters
};

/// Thread-safe ring-embedding query engine over the paper's constructions.
///
/// A query names an instance (base, n, fault set, strategy); the engine
/// canonicalizes the fault set (sort + dedup, so answers are independent of
/// presentation order), serves repeats from a sharded LRU result cache, and
/// otherwise dispatches the fault-dependent solve phase against the shared
/// per-(base, n) InstanceContext:
///
///   kFfc        node faults   -> core::solve_ffc (Chapter 2)
///   kEdgeAuto   edge faults   -> core::solve_edge_auto
///   kEdgeScan   edge faults   -> core::solve_edge_scan
///   kEdgePhi    edge faults   -> core::solve_edge_phi
///   kButterfly  edge faults   -> solve_edge_auto lifted to F(d,n)
///                                (requires gcd(d, n) = 1, Proposition 3.5)
///   kMixed      node + edge   -> core::solve_mixed (Hamiltonian route for
///                                node-free sets, FFC pull-back otherwise)
///
/// Results are immutable and shared with the cache, so a hit returns the
/// exact bytes of the original computation. Two threads missing on the same
/// key may both compute (last put wins); the computation is deterministic,
/// so they produce identical results.
///
/// Concurrency contract (docs/CONCURRENCY.md): the engine itself is
/// mutexless — every counter is an atomic and stats_snapshot() is a seqlock
/// over stats_epoch_ — so there is no capability to annotate here; the
/// locking lives in the member caches (service/cache, service/context_cache),
/// whose contracts are compile-time checked.
class EmbedEngine {
 public:
  explicit EmbedEngine(EngineOptions options = {});

  /// Serves one query. Thread-safe; the hot (hit) path is one hash plus one
  /// shard lock.
  EmbedResponse query(const EmbedRequest& request);

  /// Serves one canonical query against a caller-pinned context, bypassing
  /// the context cache but still consulting/filling the result cache. The
  /// EmbedSession solve path: the session pins its instance's context once
  /// and re-solves against it as its fault set churns. `key` must be
  /// canonical (resolved strategy, sorted distinct faults) and `context`
  /// must match (key.base, key.n).
  EmbedResponse query_with_context(
      const CacheKey& key, std::shared_ptr<const core::InstanceContext> context);

  /// Serves a batch concurrently on util/parallel workers. Responses come
  /// back in request order. When `stats` is non-null it receives per-worker
  /// counters and the batch wall clock.
  std::vector<EmbedResponse> query_batch(std::span<const EmbedRequest> requests,
                                         BatchStats* stats = nullptr);

  /// Computes an answer without consulting or filling the result cache; the
  /// baseline the cache path must be bit-identical to. Context reuse still
  /// follows options().reuse_contexts.
  std::shared_ptr<const EmbedResult> compute_uncached(const EmbedRequest& request) const;

  const EngineOptions& options() const { return options_; }
  CacheStats cache_stats() const { return cache_->stats(); }
  ContextCacheStats context_cache_stats() const { return contexts_->stats(); }
  ValidationStats validation_stats() const;
  /// Engine-lifetime query/result-hit/context-hit counters (see ServeStats).
  ServeStats serve_stats() const;
  /// One *coherent* snapshot of every counter family, safe against a
  /// concurrent clear_cache(): a seqlock around the clear guarantees the
  /// snapshot never mixes pre-clear hit counters with post-clear query
  /// counts (a torn read that would report hit rates above 1). Queries in
  /// flight during the clear may still contribute a hit whose query count
  /// was wiped, so per-counter skew is bounded by the number of concurrently
  /// serving threads — never by the discarded history. This is what the
  /// networked service's STATS op serves.
  EngineStatsSnapshot stats_snapshot() const;
  /// Drops cached results and resets the result-cache observability
  /// counters *coherently*: CacheStats and the engine-lifetime ServeStats
  /// (queries/result_hits/context_hits/context_misses) restart together,
  /// so no post-clear report can mix fresh denominators with stale hit
  /// counters (a hit_rate artificially above 1). Cached contexts and
  /// ValidationStats are unaffected.
  void clear_cache();

  /// The engine's context cache. Sessions pin individual contexts (the
  /// shared_ptr values it hands out), not the cache itself.
  ContextCache& context_cache() { return *contexts_; }

 private:
  std::shared_ptr<const EmbedResult> compute(
      const CacheKey& key, bool* context_hit,
      const core::InstanceContext* pinned = nullptr) const;
  EmbedResponse serve_computed(const CacheKey& key, bool* context_hit,
                               const core::InstanceContext* pinned);

  EngineOptions options_;
  std::unique_ptr<ShardedLruCache> cache_;
  std::unique_ptr<ContextCache> contexts_;
  mutable std::atomic<std::uint64_t> validations_{0};
  mutable std::atomic<std::uint64_t> violations_{0};
  /// Seqlock guarding clear_cache() against stats_snapshot(): odd while a
  /// clear is resetting the counter families below, bumped to even when the
  /// reset is complete. Snapshot readers retry across any overlap.
  mutable std::atomic<std::uint64_t> stats_epoch_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> result_hits_{0};
  std::atomic<std::uint64_t> context_hits_{0};
  std::atomic<std::uint64_t> context_misses_{0};
};

}  // namespace dbr::service
