#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "service/types.hpp"
#include "util/rcu_snapshot.hpp"
#include "util/thread_annotations.hpp"

namespace dbr::service {

/// Canonical cache identity of an EmbedRequest. Fault words are sorted and
/// deduplicated, so the same fault set presented in any order (with or
/// without repeats) maps to the same key. kAuto is resolved to the concrete
/// strategy before keying, so `{kAuto}` and the strategy it resolves to share
/// cache entries. Mixed keys additionally collapse every edge fault
/// dominated by a node fault (FaultSet::canonicalize), so "dead router" and
/// "dead router plus its incident links" are one cache entry.
struct CacheKey {
  Digit base = 0;   ///< radix d of the instance.
  unsigned n = 0;   ///< tuple length of the instance.
  FaultKind fault_kind = FaultKind::kNode;  ///< request fault interpretation.
  Strategy strategy = Strategy::kAuto;      ///< resolved (never kAuto when canonical).
  std::vector<Word> faults;       ///< sorted, unique; node words for kNode/kMixed, edge words for kEdge.
  std::vector<Word> edge_faults;  ///< sorted, unique, undominated; kMixed only.

  bool operator==(const CacheKey&) const = default;
};

/// Resolves kAuto to the concrete strategy implied by the fault kind.
Strategy resolve_strategy(const EmbedRequest& request);

/// Builds the canonical key: resolved strategy + sorted/deduplicated faults.
CacheKey canonical_key(const EmbedRequest& request);

/// Hash functor for CacheKey (SplitMix64 mixing over every field).
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// Aggregate hit/miss/eviction counters of the result cache.
struct CacheStats {
  std::uint64_t hits = 0;       ///< gets served from the cache.
  std::uint64_t misses = 0;     ///< gets that found nothing.
  std::uint64_t evictions = 0;  ///< LRU evictions under capacity pressure.
  std::uint64_t entries = 0;    ///< entries currently resident.

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded LRU map from canonical request keys to computed embeddings.
/// Keys are distributed across shards by hash. Values are immutable
/// shared_ptrs: a get() returns the exact object a put() stored, so cached
/// answers are bit-identical to the original computation.
///
/// The hit path is read-side lock-free (RCU): each shard publishes an
/// immutable snapshot of its map through a util::RcuSnapshot cell, and
/// get() resolves keys against the snapshot without ever taking the shard
/// mutex (wait-free: two counter bumps and one pointer load).
/// LRU recency is kept *exact* without a mutex either — every entry carries
/// an atomic last-used tick that the hit stores into, and eviction (under
/// the writer mutex) scans for the minimum tick, which names the same
/// victim a recency list would. Writers (put/clear) serialize on the shard
/// mutex, mutate the authoritative map, and publish a fresh snapshot;
/// in-flight readers keep the old snapshot alive until they drop it.
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards
  /// (at least one entry per shard). `shard_count` >= 1.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shard_count = 16);

  /// Returns the cached value and refreshes its LRU recency, or nullptr.
  /// Lock-free: touches only the shard's published snapshot and atomics.
  std::shared_ptr<const EmbedResult> get(const CacheKey& key);

  /// Inserts or refreshes `key`, evicting the shard's least-recently-used
  /// entry if full, and publishes the shard's next read snapshot.
  void put(const CacheKey& key, std::shared_ptr<const EmbedResult> value);

  void clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t size() const;

  /// Aggregated over shards from the atomic counters; counters may be
  /// mid-update, so totals are approximate under concurrent traffic.
  CacheStats stats() const;

 private:
  /// One cached value plus its recency tick. Shared between the
  /// authoritative map and every published snapshot, so a lock-free hit
  /// can refresh recency in place; `value` is immutable after construction
  /// (a put-refresh installs a *new* Entry rather than mutating this one).
  struct Entry {
    Entry(std::shared_ptr<const EmbedResult> v, std::uint64_t t)
        : value(std::move(v)), last_used(t) {}

    std::shared_ptr<const EmbedResult> value;
    std::atomic<std::uint64_t> last_used;
  };

  struct Shard {
    using Map =
        std::unordered_map<CacheKey, std::shared_ptr<Entry>, CacheKeyHash>;

    /// The read path: an immutable map published by the last writer.
    /// Readers pin it with a ReadGuard; retired snapshots are reclaimed
    /// by later writers once the guards drain (see util/rcu_snapshot.hpp).
    util::RcuSnapshot<Map> snapshot;
    mutable util::Mutex mu;  ///< writers only (put/clear)
    /// Authoritative map; the annotation makes every unlocked touch a
    /// compile error under -Wthread-safety.
    Map index DBR_GUARDED_BY(mu);
    std::size_t capacity = 0;  ///< set once at construction, then read-only
    std::atomic<std::uint64_t> tick{0};  ///< recency clock, one per touch
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  Shard& shard_for(const CacheKey& key);

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dbr::service
