#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/types.hpp"

namespace dbr::service {

/// Canonical cache identity of an EmbedRequest. Fault words are sorted and
/// deduplicated, so the same fault set presented in any order (with or
/// without repeats) maps to the same key. kAuto is resolved to the concrete
/// strategy before keying, so `{kAuto}` and the strategy it resolves to share
/// cache entries. Mixed keys additionally collapse every edge fault
/// dominated by a node fault (FaultSet::canonicalize), so "dead router" and
/// "dead router plus its incident links" are one cache entry.
struct CacheKey {
  Digit base = 0;   ///< radix d of the instance.
  unsigned n = 0;   ///< tuple length of the instance.
  FaultKind fault_kind = FaultKind::kNode;  ///< request fault interpretation.
  Strategy strategy = Strategy::kAuto;      ///< resolved (never kAuto when canonical).
  std::vector<Word> faults;       ///< sorted, unique; node words for kNode/kMixed, edge words for kEdge.
  std::vector<Word> edge_faults;  ///< sorted, unique, undominated; kMixed only.

  bool operator==(const CacheKey&) const = default;
};

/// Resolves kAuto to the concrete strategy implied by the fault kind.
Strategy resolve_strategy(const EmbedRequest& request);

/// Builds the canonical key: resolved strategy + sorted/deduplicated faults.
CacheKey canonical_key(const EmbedRequest& request);

/// Hash functor for CacheKey (SplitMix64 mixing over every field).
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// Aggregate hit/miss/eviction counters of the result cache.
struct CacheStats {
  std::uint64_t hits = 0;       ///< gets served from the cache.
  std::uint64_t misses = 0;     ///< gets that found nothing.
  std::uint64_t evictions = 0;  ///< LRU evictions under capacity pressure.
  std::uint64_t entries = 0;    ///< entries currently resident.

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded LRU map from canonical request keys to computed embeddings.
/// Keys are distributed across shards by hash; each shard owns its mutex,
/// LRU list and index, so concurrent workers contend only when they land on
/// the same shard. Values are immutable shared_ptrs: a get() returns the
/// exact object a put() stored, so cached answers are bit-identical to the
/// original computation.
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards
  /// (at least one entry per shard). `shard_count` >= 1.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shard_count = 16);

  /// Returns the cached value and refreshes its LRU position, or nullptr.
  std::shared_ptr<const EmbedResult> get(const CacheKey& key);

  /// Inserts or refreshes `key`, evicting the shard's LRU tail if full.
  void put(const CacheKey& key, std::shared_ptr<const EmbedResult> value);

  void clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t size() const;

  /// Aggregated over shards; a consistent snapshot per shard, not globally.
  CacheStats stats() const;

 private:
  struct Shard {
    using LruList = std::list<std::pair<CacheKey, std::shared_ptr<const EmbedResult>>>;

    mutable std::mutex mu;
    LruList lru;  // front = most recently used
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const CacheKey& key);

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dbr::service
