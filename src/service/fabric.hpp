#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/distributed_ffc.hpp"
#include "service/engine.hpp"
#include "service/types.hpp"
#include "util/rcu_snapshot.hpp"
#include "util/thread_annotations.hpp"

namespace dbr::service {

/// Identity of one engine shard inside the fabric; dense, assigned at
/// construction in [0, shard_count).
using ShardId = std::uint32_t;

/// Consistent-hashing ring over engine shards, the DAOS-style placement map
/// of the fabric: every shard contributes `vnodes` virtual points (derived
/// from a deterministic SplitMix64 mix of the shard id and vnode index, so
/// two processes always agree on placement) and a key is owned by the first
/// virtual point at or clockwise after its hash. Adding or removing one
/// shard therefore remaps only the arcs adjacent to that shard's virtual
/// points — the minimal set — and with enough virtual points the arc mass
/// balances across shards to within a few percent.
///
/// The ring is an immutable-after-build value type: the ShardRouter mutates
/// a copy and republishes it through an RCU cell, so lookups never lock.
class HashRing {
 public:
  /// Default virtual points per shard; 64 keeps the max/mean arc imbalance
  /// under ~1.3x for small fleets while keeping rebuild cost trivial.
  static constexpr std::size_t kDefaultVnodes = 64;

  explicit HashRing(std::size_t vnodes_per_shard = kDefaultVnodes);

  /// Adds `shard`'s virtual points to the ring. Requires it absent.
  void add(ShardId shard);

  /// Removes `shard`'s virtual points; keys on its arcs fall to the next
  /// point clockwise (their first successor). Requires it present.
  void remove(ShardId shard);

  /// True when `shard` currently contributes points to the ring.
  bool contains(ShardId shard) const;

  /// Number of shards on the ring.
  std::size_t shard_count() const { return shards_.size(); }

  /// True when no shard is on the ring (owner() is then unanswerable).
  bool empty() const { return shards_.empty(); }

  /// Shards currently on the ring, ascending.
  const std::vector<ShardId>& shards() const { return shards_; }

  /// The shard owning hash point `point`. Requires a nonempty ring.
  ShardId owner(std::uint64_t point) const;

  /// The first `count` *distinct* shards at or clockwise after `point`
  /// (owner first) — the replication target chain of DAOS's successor rule.
  /// Returns fewer when the ring has fewer distinct shards.
  std::vector<ShardId> successors(std::uint64_t point, std::size_t count) const;

  /// Deterministic hash point of instance (base, n); the same mix on every
  /// process, so placement is reproducible across machines.
  static std::uint64_t instance_point(Digit base, unsigned n);

 private:
  static std::uint64_t vnode_point(ShardId shard, std::uint32_t vnode);

  std::size_t vnodes_;
  /// (point, shard), sorted by point; lookups binary-search it.
  std::vector<std::pair<std::uint64_t, ShardId>> ring_;
  std::vector<ShardId> shards_;  ///< sorted member list
};

/// Construction-time knobs of the shard fabric.
struct FabricOptions {
  /// Number of engine shards (>= 1). Shard ids are [0, shards).
  std::size_t shards = 4;
  /// Virtual points per shard on the placement ring.
  std::size_t vnodes = HashRing::kDefaultVnodes;
  /// Extra successor shards a *hot* instance is replicated to (reads then
  /// round-robin across the 1 + hot_replicas chain). 0 disables replication.
  std::size_t hot_replicas = 1;
  /// Serve count at which an instance key is promoted to hot; 0 disables
  /// promotion entirely.
  std::uint64_t hot_threshold = 64;
  /// Worker threads per shard pool serving query_batch traffic. 0 means
  /// batch items run inline on the caller (queries always may).
  std::size_t workers_per_shard = 2;
  /// Options every shard's EmbedEngine is built with. Note that
  /// engine.context_cache_capacity is *per shard* — the fabric's aggregate
  /// context residency scales with the shard count, which is precisely its
  /// scale-out story.
  EngineOptions engine;
};

/// Per-shard slice of FabricStats.
struct FabricShardStats {
  ShardId shard = 0;
  bool alive = true;             ///< false after kill_shard until revived
  std::uint64_t keys_owned = 0;  ///< observed instance keys this shard owns
  std::uint64_t queries = 0;     ///< requests routed here (primary + replica)
  std::uint64_t replica_reads = 0;  ///< requests served here as a replica
  EngineStatsSnapshot engine;    ///< the shard engine's own counter families
};

/// Fabric-aggregate counters plus the per-shard breakdown.
struct FabricStats {
  std::uint64_t queries = 0;        ///< total requests routed
  std::uint64_t hot_keys = 0;       ///< keys promoted past hot_threshold
  std::uint64_t replica_reads = 0;  ///< reads load-balanced off the owner
  std::uint64_t remap_events = 0;   ///< kill_shard + revive_shard transitions
  std::uint64_t remapped_keys = 0;  ///< keys whose owner changed across remaps
  /// Section-2.4 cost model of every remap so far: each migrated instance is
  /// priced as one distributed FFC rebuild of its B(base, n)
  /// (core::predict_rebuild_rounds), accumulated per phase. This is the
  /// fabric's cross-shard message-cost estimator.
  core::DistributedFfcStats remap_cost;
  std::vector<FabricShardStats> shards;
};

/// Sharded multi-engine fabric: partitions the (base, n) instance keyspace
/// across independent EmbedEngine shards (each with its own context cache,
/// result cache, and worker pool) by consistent hashing, so no
/// InstanceContext is ever built twice fabric-wide and aggregate context
/// residency scales with the shard count.
///
/// Placement: requests hash their (base, n) to a point on a HashRing
/// published through an RCU cell — routing reads never lock. Instances
/// promoted to *hot* (per-key serve counters crossing hot_threshold)
/// replicate to their hot_replicas ring successors and round-robin reads
/// across the chain, echoing the paper's fault-tolerance theme one level
/// up: rings placed on rings.
///
/// Shard loss (kill_shard) republishes a ring without the victim — only its
/// arc remaps, to its successors — drains the victim's queued work back
/// through the router, and eagerly rebuilds the migrated instances'
/// contexts on their new owners; the Section-2.4 round accounting of each
/// rebuild accumulates into FabricStats::remap_cost. Because every engine
/// computes the same deterministic function of the canonical request,
/// answers stay bit-identical to a single-engine baseline before, during,
/// and after any remap; with EngineOptions::validate_responses on, every
/// computed answer is additionally oracle-checked on whichever shard serves
/// it.
class ShardRouter {
 public:
  explicit ShardRouter(FabricOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Serves one request inline on its owning shard's engine (replica chain
  /// for hot keys). Thread-safe; routing is wait-free.
  EmbedResponse query(const EmbedRequest& request);

  /// Serves a batch through the per-shard worker pools: each request is
  /// routed independently and enqueued on its shard, so a batch spanning
  /// instances fans out across the fabric. Responses come back in request
  /// order. With workers_per_shard == 0 the batch runs inline.
  std::vector<EmbedResponse> query_batch(std::span<const EmbedRequest> requests);

  /// Fail-stop removal of `shard`: republishes the ring without it (routing
  /// moves instantly), re-routes its queued work, joins its pool, and
  /// eagerly rebuilds every remapped instance's context on its new owner
  /// (hot keys warm their whole replica chain). Returns when the fabric is
  /// fully recovered — the caller's wall clock around this call *is* the
  /// time-to-recovery. Requires `shard` alive and not the last one.
  void kill_shard(ShardId shard);

  /// Brings a killed shard back: restarts its pool, warms the contexts of
  /// the arc that will return to it, then republishes the ring with it.
  /// Requires `shard` dead.
  void revive_shard(ShardId shard);

  /// True while `shard` is on the ring.
  bool shard_alive(ShardId shard) const;

  /// Total shards the fabric was built with (dead ones included).
  std::size_t shard_count() const { return shards_.size(); }

  /// Shards currently on the ring.
  std::size_t alive_count() const;

  /// The shard currently owning instance (base, n).
  ShardId owner_of(Digit base, unsigned n) const;

  /// The owner-first distinct replica chain of (base, n), as routed for hot
  /// keys: 1 + hot_replicas shards (fewer when the ring is smaller).
  std::vector<ShardId> replica_chain(Digit base, unsigned n) const;

  /// The engine of the shard currently owning (base, n) — what a stateful
  /// session binds to. The engine outlives kill_shard (sessions may pin it);
  /// it simply stops receiving routed traffic while dead.
  EmbedEngine& engine_for(Digit base, unsigned n);

  /// Direct access to a shard's engine (tests, stats). Requires a valid id.
  EmbedEngine& shard_engine(ShardId shard);

  /// Coherent fabric snapshot: aggregate counters, the Section-2.4 remap
  /// cost, and every shard's own EngineStatsSnapshot.
  FabricStats stats() const;

  /// Every shard's engine counters summed into one EngineStatsSnapshot —
  /// what the networked STATS op reports as "the engine" in fabric mode.
  EngineStatsSnapshot aggregate_engine_stats() const;

  const FabricOptions& options() const { return options_; }

 private:
  /// Routing-visible per-instance state. `serves` drives hot promotion;
  /// `next_read` round-robins a hot key's replica chain.
  struct KeyState {
    KeyState(Digit b, unsigned len) : base(b), n(len) {}
    const Digit base;
    const unsigned n;
    std::atomic<std::uint64_t> serves{0};
    std::atomic<bool> hot{false};
    std::atomic<std::uint32_t> next_read{0};
  };
  using KeyMap = std::unordered_map<std::uint64_t, std::shared_ptr<KeyState>>;

  struct BatchState;
  /// One unit of pool work: fill `*response` from `*request`, then credit
  /// the batch's completion latch.
  struct BatchItem {
    const EmbedRequest* request = nullptr;
    EmbedResponse* response = nullptr;
    BatchState* batch = nullptr;
  };

  /// One engine shard plus its worker pool.
  struct Shard {
    ShardId id = 0;
    std::unique_ptr<EmbedEngine> engine;
    std::atomic<bool> alive{true};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> replica_reads{0};
    util::Mutex mu;
    util::CondVar cv;
    std::deque<BatchItem> queue DBR_GUARDED_BY(mu);  ///< pending pool work
    /// False while draining (kill_shard); submit() then re-routes.
    bool accepting DBR_GUARDED_BY(mu) = true;
    bool stopping DBR_GUARDED_BY(mu) = false;  ///< pool exit flag
    std::vector<std::thread> workers;
  };

  static std::uint64_t key_of(Digit base, unsigned n) {
    return (static_cast<std::uint64_t>(base) << 32) | n;
  }

  std::shared_ptr<KeyState> key_state(Digit base, unsigned n);
  /// Routes one request: bumps serve counters, promotes to hot, picks the
  /// target shard (replica round-robin for hot keys) off the current ring.
  Shard& route(const EmbedRequest& request);
  /// Enqueues a batch item on its routed shard, re-routing if that shard
  /// stopped accepting (its ring departure is already published).
  void submit(const BatchItem& item);
  void start_pool(Shard& shard);
  void stop_pool(Shard& shard);
  void worker_loop(Shard& shard);
  /// Builds (base, n)'s context on `shard`, charging the Section-2.4 rebuild
  /// price into remap_cost_; the annotation makes the "callers hold
  /// admin_mu_" convention a compile-time requirement.
  void warm_context(Shard& shard, Digit base, unsigned n)
      DBR_REQUIRES(admin_mu_);

  FabricOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  util::RcuSnapshot<HashRing> ring_;  ///< alive shards only; never null
  mutable util::Mutex ring_mu_;       ///< serializes ring_ writers
  util::RcuSnapshot<KeyMap> keys_;    ///< observed instance keys
  util::Mutex keys_mu_;               ///< serializes keys_ writers
  /// Serializes kill/revive and guards the remap accounting below.
  mutable util::Mutex admin_mu_;
  std::uint64_t remap_events_ DBR_GUARDED_BY(admin_mu_) = 0;
  std::uint64_t remapped_keys_ DBR_GUARDED_BY(admin_mu_) = 0;
  core::DistributedFfcStats remap_cost_ DBR_GUARDED_BY(admin_mu_);
  std::atomic<std::uint64_t> hot_keys_{0};
};

}  // namespace dbr::service
