#include "service/context_cache.hpp"

#include "util/require.hpp"

namespace dbr::service {

ContextCache::ContextCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "ContextCache requires capacity >= 1");
}

void ContextCache::publish() {
  snapshot_.publish(std::make_shared<const Map>(map_));
}

std::shared_ptr<const core::InstanceContext> ContextCache::get_or_build(
    Digit base, unsigned n, bool* hit) {
  const std::uint64_t key = key_of(base, n);
  // Lock-free fast path: a built context found in the published snapshot is
  // returned after one atomic recency store. An entry whose build is still
  // in flight (ready unset) falls through to the future protocol below.
  if (const util::RcuSnapshot<Map>::ReadGuard snap{snapshot_}) {
    const auto it = snap->find(key);
    if (it != snap->end()) {
      if (it->second->ready.load(std::memory_order_acquire) != nullptr) {
        // The acquire load above makes the builder's one-time write of
        // ready_owner visible; copying it extends ownership past the guard.
        ContextPtr ctx = it->second->ready_owner;
        it->second->last_used.store(
            tick_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (hit != nullptr) *hit = true;
        return ctx;
      }
    }
  }

  std::promise<ContextPtr> promise;
  Future future;
  std::shared_ptr<Entry> entry;
  bool builder = false;
  {
    const util::MutexLock lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = true;
      it->second->last_used.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      future = it->second->future;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = false;
      future = promise.get_future().share();
      entry = std::make_shared<Entry>(
          future, tick_.fetch_add(1, std::memory_order_relaxed) + 1);
      map_.emplace(key, entry);
      builder = true;
      if (map_.size() > capacity_) {
        // Evict the least recently used entry (never the one just
        // inserted: it carries the newest tick). Pinned contexts stay
        // alive through their shared_ptrs; only the cache forgets.
        auto victim = map_.end();
        for (auto e = map_.begin(); e != map_.end(); ++e) {
          if (e->first == key) continue;
          if (victim == map_.end() ||
              e->second->last_used.load(std::memory_order_relaxed) <
                  victim->second->last_used.load(std::memory_order_relaxed)) {
            victim = e;
          }
        }
        map_.erase(victim);
      }
      publish();
    }
  }
  if (builder) {
    try {
      ContextPtr built = core::InstanceContext::make(base, n);
      // Open the lock-free path first, then wake the future's waiters; the
      // shared Entry makes the stored context visible through every
      // snapshot that contains it. Ownership lands in ready_owner *before*
      // the release-store of the raw pointer readers gate on.
      entry->ready_owner = built;
      entry->ready.store(built.get(), std::memory_order_release);
      promise.set_value(std::move(built));
    } catch (...) {
      {
        // Drop the entry before waking waiters so lookups racing the wake
        // never find a dead future; invalid instances are never cached.
        const util::MutexLock lock(mu_);
        map_.erase(key);
        publish();
      }
      promise.set_exception(std::current_exception());
    }
  }
  try {
    return future.get();  // rethrows a build failure for every waiter
  } catch (...) {
    if (!builder) {
      // A waiter that joined a build which then failed did not reuse
      // anything: reclassify its lookup as a miss ("wait failed"). The
      // decrement saturates so a concurrent clear() cannot underflow it.
      std::uint64_t h = hits_.load(std::memory_order_relaxed);
      while (h > 0 && !hits_.compare_exchange_weak(h, h - 1,
                                                   std::memory_order_relaxed)) {
      }
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = false;
    }
    throw;
  }
}

void ContextCache::clear() {
  const util::MutexLock lock(mu_);
  map_.clear();
  snapshot_.publish(nullptr);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

std::size_t ContextCache::size() const {
  const util::MutexLock lock(mu_);
  return map_.size();
}

ContextCacheStats ContextCache::stats() const {
  ContextCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  const util::MutexLock lock(mu_);
  out.entries = map_.size();
  return out;
}

}  // namespace dbr::service
