#include "service/context_cache.hpp"

#include "util/require.hpp"

namespace dbr::service {

ContextCache::ContextCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "ContextCache requires capacity >= 1");
}

std::shared_ptr<const core::InstanceContext> ContextCache::get_or_build(
    Digit base, unsigned n, bool* hit) {
  const std::uint64_t key = key_of(base, n);
  std::promise<ContextPtr> promise;
  Future future;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      if (hit != nullptr) *hit = true;
      it->second.last_used = ++tick_;
      future = it->second.future;
    } else {
      ++misses_;
      if (hit != nullptr) *hit = false;
      future = promise.get_future().share();
      map_.emplace(key, Entry{future, ++tick_});
      builder = true;
      if (map_.size() > capacity_) {
        // Evict the least recently used entry (never the one just
        // inserted: it carries the newest tick). Pinned contexts stay
        // alive through their shared_ptrs; only the cache forgets.
        auto victim = map_.end();
        for (auto e = map_.begin(); e != map_.end(); ++e) {
          if (e->first == key) continue;
          if (victim == map_.end() ||
              e->second.last_used < victim->second.last_used) {
            victim = e;
          }
        }
        map_.erase(victim);
      }
    }
  }
  if (builder) {
    try {
      promise.set_value(core::InstanceContext::make(base, n));
    } catch (...) {
      {
        // Drop the entry before waking waiters so lookups racing the wake
        // never find a dead future; invalid instances are never cached.
        const std::lock_guard<std::mutex> lock(mu_);
        map_.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  try {
    return future.get();  // rethrows a build failure for every waiter
  } catch (...) {
    if (!builder) {
      // A waiter that joined a build which then failed did not reuse
      // anything: reclassify its lookup as a miss ("wait failed"). The
      // decrement saturates so a concurrent clear() cannot underflow it.
      const std::lock_guard<std::mutex> lock(mu_);
      if (hits_ > 0) --hits_;
      ++misses_;
      if (hit != nullptr) *hit = false;
    }
    throw;
  }
}

void ContextCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::size_t ContextCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

ContextCacheStats ContextCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {hits_, misses_, map_.size()};
}

}  // namespace dbr::service
