#include "service/cache.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dbr::service {

Strategy resolve_strategy(const EmbedRequest& request) {
  if (request.strategy != Strategy::kAuto) return request.strategy;
  switch (request.fault_kind) {
    case FaultKind::kNode: return Strategy::kFfc;
    case FaultKind::kEdge: return Strategy::kEdgeAuto;
    case FaultKind::kMixed: return Strategy::kMixed;
  }
  return Strategy::kFfc;
}

CacheKey canonical_key(const EmbedRequest& request) {
  CacheKey key;
  key.base = request.base;
  key.n = request.n;
  key.fault_kind = request.fault_kind;
  key.strategy = resolve_strategy(request);
  // FaultSet::canonicalize is the one canonicalization: sort + dedup each
  // kind, then (kMixed) drop edge faults dominated by a node fault. For the
  // homogeneous kinds edge_faults is passed through untouched, so a request
  // that illegally populates it stays distinguishable and gets rejected.
  FaultSet set;
  set.nodes = request.faults;
  set.edges = request.edge_faults;
  if (request.fault_kind == FaultKind::kMixed) {
    set.canonicalize(request.base, request.n);
  } else {
    std::sort(set.nodes.begin(), set.nodes.end());
    set.nodes.erase(std::unique(set.nodes.begin(), set.nodes.end()),
                    set.nodes.end());
  }
  key.faults = std::move(set.nodes);
  key.edge_faults = std::move(set.edges);
  return key;
}

namespace {

// SplitMix64 finalizer; strong enough to spread sequential words across
// shards and hash buckets.
inline std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t combine(std::uint64_t seed, std::uint64_t v) {
  return mix(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

}  // namespace

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = combine(0x8f1bbcdcu, key.base);
  h = combine(h, key.n);
  h = combine(h, static_cast<std::uint64_t>(key.fault_kind));
  h = combine(h, static_cast<std::uint64_t>(key.strategy));
  // The list length separates the two word streams: without it, a mixed key
  // with nodes [a, b] and no edges would collide with nodes [a], edges [b].
  h = combine(h, key.faults.size());
  for (Word w : key.faults) h = combine(h, w);
  for (Word w : key.edge_faults) h = combine(h, w);
  return static_cast<std::size_t>(h);
}

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shard_count)
    : capacity_(capacity) {
  require(shard_count >= 1, "ShardedLruCache requires at least one shard");
  require(capacity >= 1, "ShardedLruCache requires capacity >= 1");
  shard_count = std::min(shard_count, capacity);
  shards_.reserve(shard_count);
  // Distribute the budget exactly: the first (capacity % shard_count) shards
  // take one extra entry, so shard capacities sum to `capacity`.
  const std::size_t per_shard = capacity / shard_count;
  const std::size_t remainder = capacity % shard_count;
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard + (i < remainder ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

ShardedLruCache::Shard& ShardedLruCache::shard_for(const CacheKey& key) {
  return *shards_[CacheKeyHash()(key) % shards_.size()];
}

std::shared_ptr<const EmbedResult> ShardedLruCache::get(const CacheKey& key) {
  Shard& shard = shard_for(key);
  // Read side: resolve against the published snapshot only. The shared
  // Entry lets the hit refresh recency with one relaxed atomic store — the
  // eviction scan under the writer mutex reads the same atomic, so exact
  // LRU order survives without the reader ever taking that mutex.
  if (const util::RcuSnapshot<Shard::Map>::ReadGuard snap{shard.snapshot}) {
    const auto it = snap->find(key);
    if (it != snap->end()) {
      it->second->last_used.store(
          shard.tick.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second->value;
    }
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ShardedLruCache::put(const CacheKey& key,
                          std::shared_ptr<const EmbedResult> value) {
  Shard& shard = shard_for(key);
  const util::MutexLock lock(shard.mu);
  // Insert or refresh with a *new* Entry (RCU: readers of the displaced
  // entry — still reachable through older snapshots — are undisturbed).
  shard.index[key] = std::make_shared<Entry>(
      std::move(value), shard.tick.fetch_add(1, std::memory_order_relaxed) + 1);
  if (shard.index.size() > shard.capacity) {
    // Evict the minimum recency tick: ticks are unique per shard, so this
    // is exactly the victim a recency list would name, and the entry just
    // written holds the maximum tick — never its own victim.
    auto victim = shard.index.begin();
    std::uint64_t oldest = ~std::uint64_t{0};
    for (auto it = shard.index.begin(); it != shard.index.end(); ++it) {
      const std::uint64_t t = it->second->last_used.load(std::memory_order_relaxed);
      if (t < oldest) {
        oldest = t;
        victim = it;
      }
    }
    shard.index.erase(victim);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  shard.snapshot.publish(std::make_shared<const Shard::Map>(shard.index));
}

void ShardedLruCache::clear() {
  // A cleared cache starts a fresh observation window: entries AND the
  // hit/miss/eviction counters reset, so post-clear stats are attributable
  // to post-clear traffic.
  for (auto& shard : shards_) {
    const util::MutexLock lock(shard->mu);
    shard->index.clear();
    shard->snapshot.publish(nullptr);
    shard->hits.store(0, std::memory_order_relaxed);
    shard->misses.store(0, std::memory_order_relaxed);
    shard->evictions.store(0, std::memory_order_relaxed);
  }
}

std::size_t ShardedLruCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mu);
    total += shard->index.size();
  }
  return total;
}

CacheStats ShardedLruCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    out.hits += shard->hits.load(std::memory_order_relaxed);
    out.misses += shard->misses.load(std::memory_order_relaxed);
    out.evictions += shard->evictions.load(std::memory_order_relaxed);
    const util::MutexLock lock(shard->mu);
    out.entries += shard->index.size();
  }
  return out;
}

}  // namespace dbr::service
