#include "service/cache.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dbr::service {

Strategy resolve_strategy(const EmbedRequest& request) {
  if (request.strategy != Strategy::kAuto) return request.strategy;
  switch (request.fault_kind) {
    case FaultKind::kNode: return Strategy::kFfc;
    case FaultKind::kEdge: return Strategy::kEdgeAuto;
    case FaultKind::kMixed: return Strategy::kMixed;
  }
  return Strategy::kFfc;
}

CacheKey canonical_key(const EmbedRequest& request) {
  CacheKey key;
  key.base = request.base;
  key.n = request.n;
  key.fault_kind = request.fault_kind;
  key.strategy = resolve_strategy(request);
  // FaultSet::canonicalize is the one canonicalization: sort + dedup each
  // kind, then (kMixed) drop edge faults dominated by a node fault. For the
  // homogeneous kinds edge_faults is passed through untouched, so a request
  // that illegally populates it stays distinguishable and gets rejected.
  FaultSet set;
  set.nodes = request.faults;
  set.edges = request.edge_faults;
  if (request.fault_kind == FaultKind::kMixed) {
    set.canonicalize(request.base, request.n);
  } else {
    std::sort(set.nodes.begin(), set.nodes.end());
    set.nodes.erase(std::unique(set.nodes.begin(), set.nodes.end()),
                    set.nodes.end());
  }
  key.faults = std::move(set.nodes);
  key.edge_faults = std::move(set.edges);
  return key;
}

namespace {

// SplitMix64 finalizer; strong enough to spread sequential words across
// shards and hash buckets.
inline std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t combine(std::uint64_t seed, std::uint64_t v) {
  return mix(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

}  // namespace

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = combine(0x8f1bbcdcu, key.base);
  h = combine(h, key.n);
  h = combine(h, static_cast<std::uint64_t>(key.fault_kind));
  h = combine(h, static_cast<std::uint64_t>(key.strategy));
  // The list length separates the two word streams: without it, a mixed key
  // with nodes [a, b] and no edges would collide with nodes [a], edges [b].
  h = combine(h, key.faults.size());
  for (Word w : key.faults) h = combine(h, w);
  for (Word w : key.edge_faults) h = combine(h, w);
  return static_cast<std::size_t>(h);
}

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shard_count)
    : capacity_(capacity) {
  require(shard_count >= 1, "ShardedLruCache requires at least one shard");
  require(capacity >= 1, "ShardedLruCache requires capacity >= 1");
  shard_count = std::min(shard_count, capacity);
  shards_.reserve(shard_count);
  // Distribute the budget exactly: the first (capacity % shard_count) shards
  // take one extra entry, so shard capacities sum to `capacity`.
  const std::size_t per_shard = capacity / shard_count;
  const std::size_t remainder = capacity % shard_count;
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard + (i < remainder ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

ShardedLruCache::Shard& ShardedLruCache::shard_for(const CacheKey& key) {
  return *shards_[CacheKeyHash()(key) % shards_.size()];
}

std::shared_ptr<const EmbedResult> ShardedLruCache::get(const CacheKey& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ShardedLruCache::put(const CacheKey& key,
                          std::shared_ptr<const EmbedResult> value) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  if (shard.index.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ShardedLruCache::clear() {
  // A cleared cache starts a fresh observation window: entries AND the
  // hit/miss/eviction counters reset, so post-clear stats are attributable
  // to post-clear traffic.
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->hits = 0;
    shard->misses = 0;
    shard->evictions = 0;
  }
}

std::size_t ShardedLruCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->index.size();
  }
  return total;
}

CacheStats ShardedLruCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->index.size();
  }
  return out;
}

}  // namespace dbr::service
