#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/instance_context.hpp"

namespace dbr::service {

/// Hit/miss counters of the shared per-(base, n) context cache.
struct ContextCacheStats {
  std::uint64_t hits = 0;    ///< lookups served by an existing context
  std::uint64_t misses = 0;  ///< lookups that had to build (or wait failed)
  std::uint64_t entries = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Concurrent cache of immutable InstanceContexts keyed by (base, n).
///
/// Exactly one context is constructed per key: the first thread to miss
/// installs a shared future and builds outside the lock; concurrent misses
/// on the same key block on that future instead of building their own, so
/// there are no duplicate builds and no torn reads. Contexts are shared_ptr
/// values, so callers (sessions, in-flight queries) may pin one beyond an
/// eviction or clear(). A failed build (invalid (base, n)) propagates its
/// exception to every waiter and leaves no entry behind.
///
/// Entries are bounded: beyond `capacity` distinct keys the least recently
/// used entry is dropped (its context stays alive for whoever pinned it),
/// so a workload spanning many instances cannot grow memory without limit.
class ContextCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit ContextCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the shared context for (base, n), building it if absent. When
  /// `hit` is non-null it is set to true iff an existing (possibly still
  /// in-flight) context was reused. Throws precondition_error for instances
  /// WordSpace rejects.
  std::shared_ptr<const core::InstanceContext> get_or_build(Digit base,
                                                            unsigned n,
                                                            bool* hit = nullptr);

  /// Drops all entries and resets the hit/miss counters. Pinned contexts
  /// stay valid; the next lookup per key rebuilds.
  void clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  ContextCacheStats stats() const;

 private:
  using ContextPtr = std::shared_ptr<const core::InstanceContext>;
  using Future = std::shared_future<ContextPtr>;

  struct Entry {
    Future future;
    std::uint64_t last_used = 0;
  };

  static std::uint64_t key_of(Digit base, unsigned n) {
    return (static_cast<std::uint64_t>(base) << 32) | n;
  }

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::uint64_t tick_ = 0;  ///< LRU clock; bumped on every touch
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dbr::service
