#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <unordered_map>

#include "core/instance_context.hpp"
#include "util/rcu_snapshot.hpp"
#include "util/thread_annotations.hpp"

namespace dbr::service {

/// Hit/miss counters of the shared per-(base, n) context cache.
struct ContextCacheStats {
  std::uint64_t hits = 0;    ///< lookups served by an existing context
  std::uint64_t misses = 0;  ///< lookups that had to build (or wait failed)
  std::uint64_t entries = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Concurrent cache of immutable InstanceContexts keyed by (base, n).
///
/// Exactly one context is constructed per key: the first thread to miss
/// installs a shared future and builds outside the lock; concurrent misses
/// on the same key block on that future instead of building their own, so
/// there are no duplicate builds and no torn reads. Contexts are shared_ptr
/// values, so callers (sessions, in-flight queries) may pin one beyond an
/// eviction or clear(). A failed build (invalid (base, n)) propagates its
/// exception to every waiter and leaves no entry behind.
///
/// Entries are bounded: beyond `capacity` distinct keys the least recently
/// used entry is dropped (its context stays alive for whoever pinned it),
/// so a workload spanning many instances cannot grow memory without limit.
///
/// Hits on a *built* context are read-side lock-free (RCU): the cache
/// publishes an immutable snapshot of its entries through a
/// util::RcuSnapshot cell, and an entry exposes its context through an
/// atomic raw pointer the builder sets on completion — so the steady-state
/// lookup (the one every request pays) touches no mutex. Recency stays
/// exact: each entry's
/// last-used tick is atomic and shared with the authoritative map, where
/// the eviction scan reads it under the writer mutex. Misses and waits on
/// an in-flight build keep the original mutex + shared-future protocol.
class ContextCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit ContextCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the shared context for (base, n), building it if absent. When
  /// `hit` is non-null it is set to true iff an existing (possibly still
  /// in-flight) context was reused. Throws precondition_error for instances
  /// WordSpace rejects. Lock-free when the context is built and published.
  std::shared_ptr<const core::InstanceContext> get_or_build(Digit base,
                                                            unsigned n,
                                                            bool* hit = nullptr);

  /// Drops all entries and resets the hit/miss counters. Pinned contexts
  /// stay valid; the next lookup per key rebuilds.
  void clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  ContextCacheStats stats() const;

 private:
  using ContextPtr = std::shared_ptr<const core::InstanceContext>;
  using Future = std::shared_future<ContextPtr>;

  /// Shared between the authoritative map and every published snapshot.
  /// The builder writes `ready_owner` exactly once, then release-stores the
  /// raw pointer into `ready`; a reader that acquire-loads `ready` non-null
  /// may therefore copy `ready_owner` without synchronization (it is
  /// immutable from that point on). `last_used` is the shared recency tick
  /// lock-free hits store into.
  struct Entry {
    Entry(Future f, std::uint64_t t) : future(std::move(f)), last_used(t) {}

    Future future;
    ContextPtr ready_owner;  ///< written once by the builder, then frozen
    std::atomic<const core::InstanceContext*> ready{nullptr};
    std::atomic<std::uint64_t> last_used;
  };

  using Map = std::unordered_map<std::uint64_t, std::shared_ptr<Entry>>;

  static std::uint64_t key_of(Digit base, unsigned n) {
    return (static_cast<std::uint64_t>(base) << 32) | n;
  }

  /// Re-publishes the read snapshot from map_; the annotation makes the
  /// "callers hold mu_" convention a compile-time requirement.
  void publish() DBR_REQUIRES(mu_);

  std::size_t capacity_;
  mutable util::Mutex mu_;
  Map map_ DBR_GUARDED_BY(mu_);      ///< authoritative entries
  util::RcuSnapshot<Map> snapshot_;  ///< lock-free read view
  std::atomic<std::uint64_t> tick_{0};  ///< LRU clock; bumped on every touch
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace dbr::service
