#pragma once

/// \file
/// Request/response data types of the embedding query service: strategies,
/// fault kinds, the heterogeneous FaultSet, and the EmbedRequest /
/// EmbedResult / EmbedResponse triple shared by every service layer.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "debruijn/cycle.hpp"
#include "util/word.hpp"

namespace dbr::service {

/// Which of the paper's constructions answers the query.
enum class Strategy : std::uint8_t {
  kAuto = 0,   ///< node faults -> kFfc; edge faults -> kEdgeAuto; mixed -> kMixed.
  kFfc,        ///< necklace FFC construction (Chapter 2, node faults).
  kEdgeAuto,   ///< psi-family scan then phi-construction (Proposition 3.4).
  kEdgeScan,   ///< psi(d)-family scan only (Proposition 3.2).
  kEdgePhi,    ///< recursive phi(d)-construction only (Proposition 3.3).
  kButterfly,  ///< edge-fault-free HC lifted to F(d,n) (Proposition 3.5).
  kMixed,      ///< node+edge fault composition (core/mixed_fault.hpp): the
               ///< Section 3.3 Hamiltonian route for node-free sets, the
               ///< FFC pull-back of Chapter 2 otherwise.
};

/// How the request's fault words are interpreted.
enum class FaultKind : std::uint8_t {
  kNode = 0,  ///< n-digit node words of B(d,n).
  kEdge = 1,  ///< (n+1)-digit edge words (WordSpace::edge_word).
  kMixed = 2, ///< both at once: node words in EmbedRequest::faults, edge
              ///< words in EmbedRequest::edge_faults (one fault epoch may
              ///< lose routers and links together).
};

/// One fault tagged with its kind; the element type of the heterogeneous
/// FaultSet. `kind` is kNode or kEdge (never kMixed: a single fault is
/// always one or the other).
struct FaultSpec {
  FaultKind kind = FaultKind::kNode;  ///< kNode or kEdge.
  Word word = 0;                      ///< n-digit node word or (n+1)-digit edge word.

  /// Orders node faults before edge faults, then by word: the canonical
  /// mixed-kind ordering of FaultSet::canonicalize.
  auto operator<=>(const FaultSpec&) const = default;
};

/// A heterogeneous fault set on B(d,n): faulty node words and faulty edge
/// words held side by side. This is the presentation-independent identity
/// of a mixed-fault request; canonicalize() is the single place where
/// cross-kind redundancy collapses, shared by the engine's cache keying and
/// the stateful session.
struct FaultSet {
  std::vector<Word> nodes;  ///< faulty n-digit node words.
  std::vector<Word> edges;  ///< faulty (n+1)-digit edge words.

  /// Splits kind-tagged faults into the two lists (presentation order kept).
  static FaultSet from_specs(std::span<const FaultSpec> specs);

  /// The kind-tagged view in canonical mixed-kind order: all node faults
  /// (ascending), then all edge faults (ascending). Call canonicalize()
  /// first if the lists may be unsorted.
  std::vector<FaultSpec> specs() const;

  /// Canonical form for the instance B(base, n): each list sorted and
  /// deduplicated, then every edge fault *dominated* by a node fault
  /// dropped — an edge whose head or tail endpoint is itself a faulty node
  /// is redundant, since any ring avoiding the node can never traverse the
  /// edge (the "dead router implies its incident links" collapse). Words
  /// out of range for the instance are kept verbatim: range checking is
  /// the request validator's job, and an invalid request must not
  /// canonicalize into a valid one.
  void canonicalize(Digit base, unsigned n);

  bool empty() const { return nodes.empty() && edges.empty(); }
  /// Total faults across both kinds.
  std::uint64_t size() const { return nodes.size() + edges.size(); }

  bool operator==(const FaultSet&) const = default;
};

/// Outcome classification of one embedding query.
enum class EmbedStatus : std::uint8_t {
  kOk = 0,       ///< a fault-avoiding ring was embedded.
  kNoEmbedding,  ///< the strategy ran out of candidates (beyond-guarantee fault set).
  kBadRequest,   ///< the request violates a documented precondition.
  kInternalError,  ///< a library invariant failed; possibly transient, never cached.
};

/// Short lower-case name of the strategy (e.g. "ffc", "mixed").
const char* to_string(Strategy s);
/// Short lower-case name of the fault kind ("node", "edge", "mixed").
const char* to_string(FaultKind k);
/// Short lower-case name of the status (e.g. "ok", "no_embedding").
const char* to_string(EmbedStatus s);

/// One embedding query: find a fault-avoiding ring in B(base, n) (or, for
/// kButterfly, in F(base, n) by lifting) given a set of faulty nodes,
/// edges, or — for FaultKind::kMixed — both at once.
struct EmbedRequest {
  Digit base = 2;              ///< radix d of B(d,n).
  unsigned n = 3;              ///< tuple length n of B(d,n).
  FaultKind fault_kind = FaultKind::kNode;  ///< interpretation of the fault words.
  /// Faulty node words (kNode, kMixed) or edge words (kEdge); order and
  /// repeats are irrelevant (the engine canonicalizes before dispatch and
  /// caching).
  std::vector<Word> faults;
  /// Faulty (n+1)-digit edge words of a kMixed request; must be empty for
  /// the homogeneous fault kinds. Order/repeats irrelevant, and edge words
  /// dominated by a faulty node collapse away (FaultSet::canonicalize).
  std::vector<Word> edge_faults;
  Strategy strategy = Strategy::kAuto;  ///< construction choice; kAuto dispatches by kind.

  /// Installs a heterogeneous fault set: nodes into `faults`, edges into
  /// `edge_faults`, and fault_kind to kMixed.
  void set_faults(FaultSet set) {
    fault_kind = FaultKind::kMixed;
    faults = std::move(set.nodes);
    edge_faults = std::move(set.edges);
  }
};

/// The cacheable payload of an answer: a pure function of the canonicalized
/// request, so cached copies are bit-identical to fresh computations.
/// Serve-time fields (cache status, serve latency) live on EmbedResponse.
struct EmbedResult {
  EmbedStatus status = EmbedStatus::kOk;     ///< outcome of the construction.
  Strategy strategy_used = Strategy::kAuto;  ///< concrete strategy dispatched.
  /// The ring: node words of B(d,n), or butterfly node ids for kButterfly.
  NodeCycle ring;
  std::uint64_t ring_length = 0;
  /// The paper's guarantee envelope on |ring| for this instance (see
  /// ffc_cycle_length_bounds and the dispatch notes in engine.hpp).
  std::uint64_t lower_bound = 0;
  std::uint64_t upper_bound = 0;
  /// Wall time of the original (uncached) construction.
  double compute_micros = 0.0;
  std::string error;  ///< set when status != kOk
  /// The validate_responses oracle rejected the computed answer and this
  /// result is its kInternalError quarantine wrapper (engine.hpp). Never
  /// cached; batch latency percentiles exclude quarantined responses (they
  /// measure the oracle's veto path, not serving).
  bool quarantined = false;

  /// Equality of everything deterministic, ignoring compute_micros.
  bool same_embedding(const EmbedResult& o) const {
    return status == o.status && strategy_used == o.strategy_used &&
           ring == o.ring && ring_length == o.ring_length &&
           lower_bound == o.lower_bound && upper_bound == o.upper_bound &&
           error == o.error;
  }
};

/// One served answer. `result` is shared with the cache, never mutated.
struct EmbedResponse {
  std::shared_ptr<const EmbedResult> result;
  bool cache_hit = false;  ///< served whole from the result cache
  /// The miss path reused a shared per-(base, n) InstanceContext instead of
  /// rebuilding the fault-independent precompute. Always false on a result
  /// cache hit (the context was never consulted).
  bool context_cache_hit = false;
  /// Provenance: this answer was produced by locally splicing the previous
  /// ring across a fault-set delta (core/repair via EmbedSession under
  /// EngineOptions::incremental_repair), not by a full solve. Repaired
  /// results are validity- and envelope-equivalent to a cold solve but may
  /// be a different valid ring; they never enter the result cache.
  bool repaired = false;
  double latency_micros = 0.0;  ///< end-to-end serve time of this query

  bool ok() const { return result && result->status == EmbedStatus::kOk; }
};

}  // namespace dbr::service
