#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "debruijn/cycle.hpp"
#include "util/word.hpp"

namespace dbr::service {

/// Which of the paper's constructions answers the query.
enum class Strategy : std::uint8_t {
  kAuto = 0,   ///< node faults -> kFfc; edge faults -> kEdgeAuto.
  kFfc,        ///< necklace FFC construction (Chapter 2, node faults).
  kEdgeAuto,   ///< psi-family scan then phi-construction (Proposition 3.4).
  kEdgeScan,   ///< psi(d)-family scan only (Proposition 3.2).
  kEdgePhi,    ///< recursive phi(d)-construction only (Proposition 3.3).
  kButterfly,  ///< edge-fault-free HC lifted to F(d,n) (Proposition 3.5).
};

/// How the request's fault words are interpreted.
enum class FaultKind : std::uint8_t {
  kNode = 0,  ///< n-digit node words of B(d,n).
  kEdge = 1,  ///< (n+1)-digit edge words (WordSpace::edge_word).
};

enum class EmbedStatus : std::uint8_t {
  kOk = 0,
  kNoEmbedding,  ///< the strategy ran out of candidates (beyond-guarantee fault set).
  kBadRequest,   ///< the request violates a documented precondition.
  kInternalError,  ///< a library invariant failed; possibly transient, never cached.
};

const char* to_string(Strategy s);
const char* to_string(FaultKind k);
const char* to_string(EmbedStatus s);

/// One embedding query: find a fault-avoiding ring in B(base, n) (or, for
/// kButterfly, in F(base, n) by lifting) given a set of faulty nodes or edges.
struct EmbedRequest {
  Digit base = 2;
  unsigned n = 3;
  FaultKind fault_kind = FaultKind::kNode;
  /// Faulty node words or edge words; order and repeats are irrelevant
  /// (the engine canonicalizes before dispatch and caching).
  std::vector<Word> faults;
  Strategy strategy = Strategy::kAuto;
};

/// The cacheable payload of an answer: a pure function of the canonicalized
/// request, so cached copies are bit-identical to fresh computations.
/// Serve-time fields (cache status, serve latency) live on EmbedResponse.
struct EmbedResult {
  EmbedStatus status = EmbedStatus::kOk;
  Strategy strategy_used = Strategy::kAuto;
  /// The ring: node words of B(d,n), or butterfly node ids for kButterfly.
  NodeCycle ring;
  std::uint64_t ring_length = 0;
  /// The paper's guarantee envelope on |ring| for this instance (see
  /// ffc_cycle_length_bounds and the dispatch notes in engine.hpp).
  std::uint64_t lower_bound = 0;
  std::uint64_t upper_bound = 0;
  /// Wall time of the original (uncached) construction.
  double compute_micros = 0.0;
  std::string error;  ///< set when status != kOk

  /// Equality of everything deterministic, ignoring compute_micros.
  bool same_embedding(const EmbedResult& o) const {
    return status == o.status && strategy_used == o.strategy_used &&
           ring == o.ring && ring_length == o.ring_length &&
           lower_bound == o.lower_bound && upper_bound == o.upper_bound &&
           error == o.error;
  }
};

/// One served answer. `result` is shared with the cache, never mutated.
struct EmbedResponse {
  std::shared_ptr<const EmbedResult> result;
  bool cache_hit = false;  ///< served whole from the result cache
  /// The miss path reused a shared per-(base, n) InstanceContext instead of
  /// rebuilding the fault-independent precompute. Always false on a result
  /// cache hit (the context was never consulted).
  bool context_cache_hit = false;
  double latency_micros = 0.0;  ///< end-to-end serve time of this query

  bool ok() const { return result && result->status == EmbedStatus::kOk; }
};

}  // namespace dbr::service
