#include "service/engine.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <numeric>
#include <optional>
#include <thread>
#include <utility>

#include "butterfly/lift.hpp"
#include "core/butterfly_embedding.hpp"
#include "core/edge_fault.hpp"
#include "core/ffc.hpp"
#include "core/instance_context.hpp"
#include "core/mixed_fault.hpp"
#include "debruijn/cycle.hpp"
#include "debruijn/debruijn.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"
#include "verify/oracle.hpp"

namespace dbr::service {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// Fails fast on every documented precondition before any construction
/// runs: strategy/fault-kind mismatch, n < 2 for the edge-fault
/// constructions, gcd(d, n) != 1 for the butterfly lift, and fault words
/// out of range for (base, n). Each message names the precondition so a
/// kBadRequest response tells the caller exactly what to fix.
void require_preconditions(const CacheKey& key, const WordSpace& ws) {
  require(key.fault_kind == FaultKind::kMixed || key.edge_faults.empty(),
          "edge_faults requires the mixed fault kind");
  switch (key.strategy) {
    case Strategy::kFfc:
      require(key.fault_kind == FaultKind::kNode,
              "ffc strategy requires node faults");
      break;
    case Strategy::kEdgeAuto:
    case Strategy::kEdgeScan:
    case Strategy::kEdgePhi:
      require(key.fault_kind == FaultKind::kEdge,
              "edge strategies require edge faults");
      require(key.n >= 2, "edge-fault strategies require n >= 2");
      break;
    case Strategy::kButterfly:
      require(key.fault_kind == FaultKind::kEdge,
              "butterfly strategy takes De Bruijn edge-word faults");
      require(key.n >= 2, "edge-fault strategies require n >= 2");
      require(std::gcd<std::uint64_t, std::uint64_t>(key.base, key.n) == 1,
              "butterfly lift requires gcd(d, n) = 1");
      break;
    case Strategy::kMixed:
      require(key.fault_kind == FaultKind::kMixed,
              "mixed strategy requires the mixed fault kind");
      require(key.n >= 2, "mixed-fault strategy requires n >= 2");
      break;
    case Strategy::kAuto:
      ensure(false, "kAuto must be resolved before dispatch");
  }
  const bool node_words = key.fault_kind != FaultKind::kEdge;
  const Word limit = node_words ? ws.size() : ws.edge_word_count();
  for (Word f : key.faults) {
    require(f < limit, "fault word " + std::to_string(f) +
                           " out of range for B(" + std::to_string(key.base) +
                           "," + std::to_string(key.n) + ")");
  }
  for (Word f : key.edge_faults) {
    require(f < ws.edge_word_count(),
            "fault word " + std::to_string(f) + " out of range for B(" +
                std::to_string(key.base) + "," + std::to_string(key.n) + ")");
  }
}

/// The fault-dependent solve phase: acquires the instance's shared context
/// (which may throw for invalid (base, n)) and dispatches the matching
/// core solve. `acquire` is deferred into the try block so context-build
/// failures map to the same statuses as before the context/solve split.
EmbedResult compute_result(
    const CacheKey& key,
    const std::function<const core::InstanceContext&()>& acquire) {
  EmbedResult out;
  out.strategy_used = key.strategy;
  const Clock::time_point start = Clock::now();
  try {
    const core::InstanceContext& ctx = acquire();
    require_preconditions(key, ctx.words());

    switch (key.strategy) {
      case Strategy::kFfc: {
        core::FfcResult r = core::solve_ffc(ctx, key.faults);
        out.ring = std::move(r.cycle);
        out.ring_length = out.ring.length();
        const auto [lo, hi] =
            core::ffc_cycle_length_bounds(key.base, key.n, key.faults.size());
        out.lower_bound = lo;
        out.upper_bound = hi;
        break;
      }
      case Strategy::kEdgeAuto:
      case Strategy::kEdgeScan:
      case Strategy::kEdgePhi: {
        std::optional<SymbolCycle> hc;
        if (key.strategy == Strategy::kEdgeScan) {
          hc = core::solve_edge_scan(ctx, key.faults);
        } else if (key.strategy == Strategy::kEdgePhi) {
          hc = core::solve_edge_phi(ctx, key.faults);
        } else {
          hc = core::solve_edge_auto(ctx, key.faults);
        }
        if (!hc) {
          out.status = EmbedStatus::kNoEmbedding;
          out.error = "no fault-free Hamiltonian cycle found (fault set beyond "
                      "the strategy's guarantee)";
          break;
        }
        out.ring = to_node_cycle(ctx.words(), *hc);
        out.ring_length = out.ring.length();
        out.lower_bound = ctx.words().size();
        out.upper_bound = ctx.words().size();
        break;
      }
      case Strategy::kButterfly: {
        const std::optional<SymbolCycle> hc = core::solve_edge_auto(ctx, key.faults);
        if (!hc) {
          out.status = EmbedStatus::kNoEmbedding;
          out.error = "no fault-free Hamiltonian cycle found (fault set beyond "
                      "the strategy's guarantee)";
          break;
        }
        out.ring.nodes =
            butterfly::lift_cycle(ctx.butterfly(), to_node_cycle(ctx.words(), *hc));
        out.ring_length = out.ring.length();
        out.lower_bound = static_cast<std::uint64_t>(key.n) * ctx.words().size();
        out.upper_bound = out.lower_bound;
        break;
      }
      case Strategy::kMixed: {
        core::MixedResult r =
            core::solve_mixed(ctx, key.faults, key.edge_faults);
        if (!r.cycle) {
          out.status = EmbedStatus::kNoEmbedding;
          out.error = "no fault-avoiding ring found (the edge pull-back "
                      "closure of the mixed fault set leaves no surviving "
                      "necklace)";
          break;
        }
        out.ring = std::move(*r.cycle);
        out.ring_length = out.ring.length();
        const auto [lo, hi] = core::mixed_ring_length_bounds(
            key.base, key.n, key.faults.size(),
            core::countable_mixed_edge_faults(ctx.words(), key.faults,
                                              key.edge_faults));
        out.lower_bound = lo;
        out.upper_bound = hi;
        break;
      }
      case Strategy::kAuto:
        ensure(false, "kAuto must be resolved before dispatch");
    }
  } catch (const precondition_error& e) {
    out = EmbedResult{};
    out.strategy_used = key.strategy;
    out.status = EmbedStatus::kBadRequest;
    out.error = e.what();
  } catch (const std::exception& e) {
    // Invariant failures and transient conditions (e.g. bad_alloc) are not
    // deterministic answers; kInternalError keeps them out of the cache.
    out = EmbedResult{};
    out.strategy_used = key.strategy;
    out.status = EmbedStatus::kInternalError;
    out.error = e.what();
  }
  out.compute_micros = micros_since(start);
  return out;
}

}  // namespace

EmbedEngine::EmbedEngine(EngineOptions options)
    : options_(options),
      cache_(std::make_unique<ShardedLruCache>(
          std::max<std::size_t>(1, options.cache_capacity),
          std::max<std::size_t>(1, options.cache_shards))),
      contexts_(std::make_unique<ContextCache>(
          std::max<std::size_t>(1, options.context_cache_capacity))) {}

std::shared_ptr<const EmbedResult> EmbedEngine::compute(
    const CacheKey& key, bool* context_hit,
    const core::InstanceContext* pinned) const {
  std::shared_ptr<const core::InstanceContext> owned;  // outlives the solve
  const auto acquire = [&]() -> const core::InstanceContext& {
    if (pinned != nullptr) {
      if (context_hit != nullptr) *context_hit = true;  // reused by definition
      return *pinned;
    }
    if (options_.reuse_contexts) {
      owned = contexts_->get_or_build(key.base, key.n, context_hit);
    } else {
      if (context_hit != nullptr) *context_hit = false;
      owned = core::InstanceContext::make(key.base, key.n);
    }
    return *owned;
  };
  auto result = std::make_shared<const EmbedResult>(compute_result(key, acquire));
  if (!options_.validate_responses) return result;

  // Debug mode: hand every computed answer to the independent oracle. The
  // canonical key is a complete request, so the oracle sees exactly the
  // instance that was dispatched.
  EmbedRequest request;
  request.base = key.base;
  request.n = key.n;
  request.fault_kind = key.fault_kind;
  request.faults = key.faults;
  request.edge_faults = key.edge_faults;
  request.strategy = key.strategy;
  const verify::OracleReport report = verify::check_response(request, *result);
  validations_.fetch_add(1, std::memory_order_relaxed);
  if (report.ok()) return result;

  violations_.fetch_add(1, std::memory_order_relaxed);
  EmbedResult quarantined;
  quarantined.status = EmbedStatus::kInternalError;  // never cached
  quarantined.strategy_used = result->strategy_used;
  quarantined.compute_micros = result->compute_micros;
  quarantined.error = "oracle: " + report.to_string();
  quarantined.quarantined = true;  // batch stats count, never time, these
  return std::make_shared<const EmbedResult>(std::move(quarantined));
}

ValidationStats EmbedEngine::validation_stats() const {
  return {validations_.load(std::memory_order_relaxed),
          violations_.load(std::memory_order_relaxed)};
}

void EmbedEngine::clear_cache() {
  // Seqlock write side: hold the epoch odd across the cache clear and the
  // counter resets so a concurrent stats_snapshot() retries instead of
  // observing half-reset state (e.g. fresh queries with stale result_hits).
  stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  // The ServeStats layer must restart with the cache it describes: stale
  // result_hits over a fresh query count would let a post-clear hit_rate
  // exceed 1.0 in throughput reports. Reset order matters even inside the
  // odd-epoch window, because queries keep flowing during the clear:
  // denominators (queries) reset first, hit counters after, and the shard
  // counters of the cache itself last. Traffic interleaving with the clear
  // then regrows every numerator only *alongside* an already-reset
  // denominator, so the post-clear state keeps hit counts within an
  // in-flight-thread bound of the query count — the reverse order would let
  // a preempted clear strand thousands of regrown cache hits against a
  // zeroed query count.
  queries_.store(0, std::memory_order_relaxed);
  result_hits_.store(0, std::memory_order_relaxed);
  context_hits_.store(0, std::memory_order_relaxed);
  context_misses_.store(0, std::memory_order_relaxed);
  cache_->clear();
  stats_epoch_.fetch_add(1, std::memory_order_release);
}

EngineStatsSnapshot EmbedEngine::stats_snapshot() const {
  for (;;) {
    const std::uint64_t before = stats_epoch_.load(std::memory_order_acquire);
    if (before & 1) {  // a clear is mid-flight; wait it out
      std::this_thread::yield();
      continue;
    }
    EngineStatsSnapshot snap;
    // Read counters in *reverse* increment order (a query bumps queries_
    // first, then its hit counters): numerators are captured before their
    // denominator, so concurrent traffic between the loads can only make
    // the later-read query count larger — hit counts never overshoot it,
    // even when the reader is preempted mid-snapshot.
    snap.cache = cache_->stats();
    snap.contexts = contexts_->stats();
    snap.validation = validation_stats();
    snap.serve.result_hits = result_hits_.load(std::memory_order_relaxed);
    snap.serve.context_hits = context_hits_.load(std::memory_order_relaxed);
    snap.serve.context_misses = context_misses_.load(std::memory_order_relaxed);
    snap.serve.queries = queries_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (stats_epoch_.load(std::memory_order_relaxed) == before) return snap;
  }
}

ServeStats EmbedEngine::serve_stats() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.result_hits = result_hits_.load(std::memory_order_relaxed);
  s.context_hits = context_hits_.load(std::memory_order_relaxed);
  s.context_misses = context_misses_.load(std::memory_order_relaxed);
  return s;
}

std::shared_ptr<const EmbedResult> EmbedEngine::compute_uncached(
    const EmbedRequest& request) const {
  return compute(canonical_key(request), nullptr);
}

EmbedResponse EmbedEngine::serve_computed(const CacheKey& key,
                                          bool* context_hit,
                                          const core::InstanceContext* pinned) {
  const Clock::time_point start = Clock::now();
  queries_.fetch_add(1, std::memory_order_relaxed);
  EmbedResponse response;
  if (options_.enable_cache) {
    if (std::shared_ptr<const EmbedResult> hit = cache_->get(key)) {
      result_hits_.fetch_add(1, std::memory_order_relaxed);
      response.result = std::move(hit);
      response.cache_hit = true;
      response.latency_micros = micros_since(start);
      return response;
    }
  }
  bool ctx_hit = false;
  std::shared_ptr<const EmbedResult> computed = compute(key, &ctx_hit, pinned);
  (ctx_hit ? context_hits_ : context_misses_)
      .fetch_add(1, std::memory_order_relaxed);
  response.context_cache_hit = ctx_hit;
  if (context_hit != nullptr) *context_hit = ctx_hit;
  // Only deterministic answers are cacheable: bad requests fail fast and
  // internal errors may be transient (memory pressure, library bugs).
  if (options_.enable_cache && (computed->status == EmbedStatus::kOk ||
                                computed->status == EmbedStatus::kNoEmbedding)) {
    cache_->put(key, computed);
  }
  response.result = std::move(computed);
  response.latency_micros = micros_since(start);
  return response;
}

EmbedResponse EmbedEngine::query(const EmbedRequest& request) {
  return serve_computed(canonical_key(request), nullptr, nullptr);
}

EmbedResponse EmbedEngine::query_with_context(
    const CacheKey& key, std::shared_ptr<const core::InstanceContext> context) {
  require(context != nullptr, "query_with_context requires a context");
  require(context->base() == key.base && context->words().length() == key.n,
          "pinned context does not match the request instance");
  return serve_computed(key, nullptr, context.get());
}

std::vector<EmbedResponse> EmbedEngine::query_batch(
    std::span<const EmbedRequest> requests, BatchStats* stats) {
  std::vector<EmbedResponse> responses(requests.size());
  const std::size_t worker_slots = std::max<std::size_t>(
      1, std::min<std::size_t>(worker_count(), requests.size()));
  std::vector<WorkerStats> workers(worker_slots);

  const Clock::time_point start = Clock::now();
  parallel_blocks(requests.size(), [&](std::size_t worker, std::size_t begin,
                                       std::size_t end) {
    WorkerStats& w = workers[worker];
    w.worker = worker;
    const Clock::time_point busy_start = Clock::now();
    for (std::size_t i = begin; i < end; ++i) {
      responses[i] = query(requests[i]);
      ++w.processed;
      if (responses[i].cache_hit) ++w.cache_hits;
      if (responses[i].context_cache_hit) ++w.context_hits;
      if (responses[i].result && responses[i].result->quarantined) {
        ++w.quarantined;  // a vetoed answer is not a served query
      } else {
        w.latency.record(responses[i].latency_micros);
      }
    }
    w.busy_micros = micros_since(busy_start);
  });
  const double wall = micros_since(start);

  if (stats != nullptr) {
    stats->workers = std::move(workers);
    stats->wall_micros = wall;
  }
  return responses;
}

}  // namespace dbr::service
