#include "service/types.hpp"

#include <algorithm>
#include <limits>

namespace dbr::service {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kAuto: return "auto";
    case Strategy::kFfc: return "ffc";
    case Strategy::kEdgeAuto: return "edge_auto";
    case Strategy::kEdgeScan: return "edge_scan";
    case Strategy::kEdgePhi: return "edge_phi";
    case Strategy::kButterfly: return "butterfly";
    case Strategy::kMixed: return "mixed";
  }
  return "unknown";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNode: return "node";
    case FaultKind::kEdge: return "edge";
    case FaultKind::kMixed: return "mixed";
  }
  return "unknown";
}

const char* to_string(EmbedStatus s) {
  switch (s) {
    case EmbedStatus::kOk: return "ok";
    case EmbedStatus::kNoEmbedding: return "no_embedding";
    case EmbedStatus::kBadRequest: return "bad_request";
    case EmbedStatus::kInternalError: return "internal_error";
  }
  return "unknown";
}

FaultSet FaultSet::from_specs(std::span<const FaultSpec> specs) {
  FaultSet set;
  for (const FaultSpec& f : specs) {
    (f.kind == FaultKind::kEdge ? set.edges : set.nodes).push_back(f.word);
  }
  return set;
}

std::vector<FaultSpec> FaultSet::specs() const {
  std::vector<FaultSpec> out;
  out.reserve(nodes.size() + edges.size());
  for (Word w : nodes) out.push_back({FaultKind::kNode, w});
  for (Word w : edges) out.push_back({FaultKind::kEdge, w});
  return out;
}

namespace {

void sort_unique(std::vector<Word>& words) {
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
}

/// d^e with overflow detection; false when the power escapes 64 bits. A
/// request whose (base, n) overflows is invalid anyway, so canonicalization
/// simply skips the cross-kind collapse for it.
bool checked_pow(std::uint64_t base, unsigned exp, std::uint64_t* out) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 && r > std::numeric_limits<std::uint64_t>::max() / base)
      return false;
    r *= base;
  }
  *out = r;
  return true;
}

}  // namespace

void FaultSet::canonicalize(Digit base, unsigned n) {
  sort_unique(nodes);
  sort_unique(edges);
  if (nodes.empty() || edges.empty()) return;
  // An instance WordSpace cannot represent would be an invalid request
  // anyway; skip the cross-kind collapse so it stays invalid.
  std::uint64_t edge_space = 0;
  if (base < 2 || n < 1 || !checked_pow(base, n + 1, &edge_space)) return;
  const WordSpace ws(base, n);
  // Drop every in-range edge word with a faulty endpoint. Out-of-range
  // words stay verbatim, so invalid requests stay invalid.
  const auto dominated = [&](Word e) {
    if (e >= edge_space) return false;
    const auto [u, v] = ws.edge_endpoints(e);
    return std::binary_search(nodes.begin(), nodes.end(), u) ||
           std::binary_search(nodes.begin(), nodes.end(), v);
  };
  edges.erase(std::remove_if(edges.begin(), edges.end(), dominated),
              edges.end());
}

}  // namespace dbr::service
