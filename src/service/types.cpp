#include "service/types.hpp"

namespace dbr::service {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kAuto: return "auto";
    case Strategy::kFfc: return "ffc";
    case Strategy::kEdgeAuto: return "edge_auto";
    case Strategy::kEdgeScan: return "edge_scan";
    case Strategy::kEdgePhi: return "edge_phi";
    case Strategy::kButterfly: return "butterfly";
  }
  return "unknown";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNode: return "node";
    case FaultKind::kEdge: return "edge";
  }
  return "unknown";
}

const char* to_string(EmbedStatus s) {
  switch (s) {
    case EmbedStatus::kOk: return "ok";
    case EmbedStatus::kNoEmbedding: return "no_embedding";
    case EmbedStatus::kBadRequest: return "bad_request";
    case EmbedStatus::kInternalError: return "internal_error";
  }
  return "unknown";
}

}  // namespace dbr::service
