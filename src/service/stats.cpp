#include "service/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dbr::service {

LatencySnapshot::LatencySnapshot(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  // Sum in recording order before sorting so mean() is bit-identical to
  // LatencyRecorder::mean() (floating-point addition is order-sensitive).
  if (!sorted_.empty()) {
    mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
            static_cast<double>(sorted_.size());
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double LatencySnapshot::percentile(double p) const {
  if (sorted_.empty()) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-indexed.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

double LatencyRecorder::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyRecorder::percentile(double p) const {
  return snapshot().percentile(p);
}

std::uint64_t BatchStats::processed() const {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.processed;
  return total;
}

std::uint64_t BatchStats::cache_hits() const {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.cache_hits;
  return total;
}

std::uint64_t BatchStats::context_hits() const {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.context_hits;
  return total;
}

std::uint64_t BatchStats::quarantined() const {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.quarantined;
  return total;
}

double BatchStats::hit_rate() const {
  const std::uint64_t total = processed();
  return total == 0 ? 0.0
                    : static_cast<double>(cache_hits()) / static_cast<double>(total);
}

double BatchStats::throughput_qps() const {
  if (wall_micros <= 0.0) return 0.0;
  return static_cast<double>(processed()) / (wall_micros * 1e-6);
}

LatencyRecorder BatchStats::merged_latency() const {
  LatencyRecorder merged;
  for (const WorkerStats& w : workers) merged.merge(w.latency);
  return merged;
}

double ServeStats::result_hit_rate() const {
  return queries == 0
             ? 0.0
             : static_cast<double>(result_hits) / static_cast<double>(queries);
}

double ServeStats::context_reuse_rate() const {
  const std::uint64_t computed = context_hits + context_misses;
  return computed == 0 ? 0.0
                       : static_cast<double>(context_hits) /
                             static_cast<double>(computed);
}

}  // namespace dbr::service
