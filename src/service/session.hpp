#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/solve_scratch.hpp"
#include "service/cache.hpp"
#include "service/engine.hpp"
#include "service/types.hpp"

namespace dbr::service {

/// Counters describing one session's fault churn and solve traffic.
struct SessionStats {
  std::uint64_t adds = 0;              ///< add_fault calls that changed the set
  std::uint64_t removes = 0;           ///< clear_fault calls that changed the set
  std::uint64_t noop_mutations = 0;    ///< adds/clears that were already true
  std::uint64_t solves = 0;            ///< current_ring calls that re-solved
  std::uint64_t memoized = 0;          ///< current_ring calls answered in place
  std::uint64_t result_cache_hits = 0; ///< re-solves served by the result cache
  double solve_micros_total = 0.0;     ///< serve time summed over re-solves
};

/// Counters for the incremental-repair fast path (populated only under
/// EngineOptions::incremental_repair).
struct RepairStats {
  std::uint64_t spliced = 0;    ///< deltas served by splicing the prior ring
  std::uint64_t fell_back = 0;  ///< attempts that declined to a full solve
  /// fell_back attempts vetoed by the validate_responses oracle (always a
  /// subset of fell_back; any nonzero value is a repair bug worth a report).
  std::uint64_t oracle_rejections = 0;
  double repair_micros_total = 0.0;  ///< serve time summed over splices
};

/// A stateful embedding session over one instance of a production network
/// whose fault set evolves over time (the fault-churn regime). A
/// FaultKind::kMixed session tracks dead routers and cut links in one
/// timeline: add/clear take the fault kind, and the solve path serves the
/// combined set through the mixed-fault strategy.
///
/// The session pins its instance's shared InstanceContext at construction,
/// holds a live canonical fault set, and re-solves incrementally:
///  * mutations (add_fault / clear_fault) maintain the sorted distinct set
///    in place - no per-query canonicalization (the one exception: a mixed
///    session drops node-dominated edge faults when keying a solve, so its
///    answers and cache entries match the stateless engine exactly);
///  * current_ring() re-solves only when the *canonical solve set* changed
///    since the last call: an untouched set, or churn that round-trips back
///    to it (a dominated link cut added and removed), is answered from the
///    memoized response without consulting the engine;
///  * under EngineOptions::incremental_repair, a changed set first tries
///    the core/repair splice of the previous ring across the fault delta
///    (necklace excision/reinsertion, pull-back detours) and only falls
///    back to a full engine solve when the repair declines — see
///    RepairStats and EmbedResponse::repaired;
///  * full solves go through the engine's result cache (so revisited fault
///    states - an add undone by a clear - are served from cache), against
///    the pinned context (so no re-solve ever pays per-instance
///    precompute).
///
/// With incremental_repair off (the default), answers are identical to a
/// fresh EmbedEngine::query on the same instance and fault set. With it
/// on, a repaired answer is validity- and envelope-equivalent to that
/// query but may be a different valid ring (the splice preserves the
/// previous ring's shape wherever the delta allows).
///
/// Not thread-safe: a session models one network's fault timeline; use one
/// session per thread (they may share one engine, whose caches are
/// thread-safe). The single-thread contract replaces a lock — there is no
/// capability to annotate (docs/CONCURRENCY.md); the net/ server upholds it
/// by executing one connection's ops strictly in order.
class EmbedSession {
 public:
  /// Validates the instance and strategy preconditions up front (fault-kind
  /// match, n >= 2 for edge strategies, gcd(base, n) = 1 for kButterfly),
  /// throwing precondition_error, so a constructed session can never answer
  /// kBadRequest. kAuto resolves by fault kind, exactly like the engine.
  /// The engine must outlive the session.
  EmbedSession(EmbedEngine& engine, Digit base, unsigned n,
               FaultKind fault_kind, Strategy strategy = Strategy::kAuto);

  Digit base() const { return key_.base; }
  unsigned n() const { return key_.n; }
  FaultKind fault_kind() const { return key_.fault_kind; }
  Strategy strategy() const { return key_.strategy; }

  /// The live fault set, sorted and distinct: node words for kNode and
  /// kMixed sessions, edge words for kEdge sessions.
  const std::vector<Word>& faults() const { return key_.faults; }

  /// The live edge-fault set of a kMixed session (sorted, distinct,
  /// uncollapsed: a link cut stays live even while its router is also
  /// dead, so repairing the router resurfaces the cut). Empty for
  /// homogeneous sessions.
  const std::vector<Word>& edge_faults() const { return key_.edge_faults; }

  /// Marks a word of the session's own kind faulty. Homogeneous sessions
  /// only: a kMixed session must name the kind (two-argument overload).
  /// Returns true if the set changed (false when already faulty). Throws
  /// precondition_error when out of range.
  bool add_fault(Word fault);

  /// Marks a node or edge word faulty. `kind` must be kNode or kEdge and,
  /// for a homogeneous session, must match the session's fault kind; a
  /// kMixed session accepts both. Returns true if the set changed.
  bool add_fault(FaultKind kind, Word fault);

  /// Clears a fault (repair) of the session's own kind; homogeneous only.
  /// Returns true if the set changed.
  bool clear_fault(Word fault);

  /// Clears a node or edge fault (router repair / link restore).
  bool clear_fault(FaultKind kind, Word fault);

  /// Drops every fault (full repair), both kinds. A reset of an already
  /// empty session is a cheap no-op (counted in noop_mutations).
  void reset_faults();

  /// The ring for the current fault set. Re-solves only when the canonical
  /// solve set changed since the last call; otherwise answers from the
  /// memoized response. Returned by value (a shared_ptr plus scalars) so
  /// snapshots taken across churn events stay independent.
  EmbedResponse current_ring();

  /// Monotone counter of distinct served rings: bumped exactly when a
  /// current_ring() answer installs a *different* immutable result object
  /// than the previous one (full solve, effective repair splice, or a flip
  /// to kNoEmbedding). Memoized answers, no-op round trips and no-op
  /// splices that re-serve the same result leave it unchanged — so a
  /// routing layer holding per-node forwarding state derived from the ring
  /// (sim/fib.hpp) can compare epochs instead of rings to decide whether
  /// its tables are stale.
  std::uint64_t ring_epoch() const { return ring_epoch_; }

  const SessionStats& stats() const { return stats_; }

  /// Splice-vs-fallback counters of the incremental-repair fast path.
  const RepairStats& repair_stats() const { return repair_stats_; }

  /// The pinned per-instance context (shared with the engine's cache).
  const std::shared_ptr<const core::InstanceContext>& context() const {
    return context_;
  }

 private:
  /// The live word list for `kind` plus its range limit (d^n node words
  /// resp. d^(n+1) edge words). Throws on kind/session mismatch.
  std::pair<std::vector<Word>*, Word> track(FaultKind kind);

  /// The canonical engine key for the live set: a copy of key_, with the
  /// cross-kind domination collapse applied for mixed sessions (so cache
  /// entries are shared with the equivalent stateless request).
  CacheKey solve_key() const;

  /// Attempts the core/repair splice of last_ across the delta between
  /// solved_key_ and `key`. On success installs the repaired response as
  /// last_ / solved_key_ and returns true; otherwise counts the fallback.
  bool try_repair(const CacheKey& key);

  EmbedEngine* engine_;
  /// Sorted distinct per kind; kMixed sessions keep dominated edge faults
  /// live here and collapse them per-solve (see current_ring).
  CacheKey key_;
  std::shared_ptr<const core::InstanceContext> context_;
  Word node_limit_ = 0;  ///< d^n, for node-word faults
  Word edge_limit_ = 0;  ///< d^(n+1), for edge-word faults
  bool dirty_ = true;
  EmbedResponse last_;
  /// The canonical solve set last_ answers, valid only when have_solved_
  /// (last_ holds a deterministic kOk/kNoEmbedding answer): the delta base
  /// for repair and the no-op round-trip memo guard.
  CacheKey solved_key_;
  bool have_solved_ = false;
  std::uint64_t ring_epoch_ = 0;  ///< bumped per distinct served result
  SessionStats stats_;
  RepairStats repair_stats_;
  /// Session-owned solve/repair arena: the splice fast path reuses these
  /// buffers across the whole churn timeline (sessions are single-threaded,
  /// so no TLS indirection is needed).
  core::SolveScratch scratch_;
};

}  // namespace dbr::service
