#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbr::service {

/// Latency samples in microseconds with percentile extraction. Not
/// thread-safe: each worker records into its own instance; merge afterwards.
class LatencyRecorder {
 public:
  void record(double micros) { samples_.push_back(micros); }
  void merge(const LatencyRecorder& other);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// p in [0, 100]; nearest-rank on the sorted samples. 0 when empty.
  double percentile(double p) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// What one batch worker did: queries served, cache hits among them, and
/// the time it spent serving (busy, excluding thread startup/join).
struct WorkerStats {
  std::size_t worker = 0;
  std::uint64_t processed = 0;
  std::uint64_t cache_hits = 0;
  double busy_micros = 0.0;
  LatencyRecorder latency;
};

/// Aggregate view of one EmbedEngine::query_batch call.
struct BatchStats {
  std::vector<WorkerStats> workers;
  double wall_micros = 0.0;

  std::uint64_t processed() const;
  std::uint64_t cache_hits() const;
  double hit_rate() const;
  /// Queries per second against the batch wall clock.
  double throughput_qps() const;
  LatencyRecorder merged_latency() const;
};

}  // namespace dbr::service
