#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbr::service {

/// An immutable sorted view over one batch of latency samples: the sort is
/// paid once at construction, so extracting a whole percentile ladder
/// (p50/p90/p99/...) costs one O(n log n) pass instead of one per rank.
/// Produced by LatencyRecorder::snapshot(); answers are bit-identical to
/// LatencyRecorder::percentile on the same samples.
class LatencySnapshot {
 public:
  /// Takes (and sorts) a copy of the samples.
  explicit LatencySnapshot(std::vector<double> samples);

  std::size_t count() const { return sorted_.size(); }
  /// Computed in recording order at construction, so it is bit-identical
  /// to LatencyRecorder::mean() on the same samples. 0 when empty.
  double mean() const { return mean_; }
  /// p in [0, 100]; nearest-rank on the presorted samples. 0 when empty.
  double percentile(double p) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Latency samples in microseconds with percentile extraction. Not
/// thread-safe: each worker records into its own instance; merge afterwards
/// — per-owner isolation instead of a lock, so there is no capability to
/// annotate (docs/CONCURRENCY.md).
class LatencyRecorder {
 public:
  void record(double micros) { samples_.push_back(micros); }
  void merge(const LatencyRecorder& other);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// p in [0, 100]; nearest-rank on the sorted samples. 0 when empty.
  /// Convenience for a single rank — it sorts per call; take a snapshot()
  /// when reading several percentiles of the same samples.
  double percentile(double p) const;
  /// The sorted view: sorts once, then every percentile is O(1).
  LatencySnapshot snapshot() const { return LatencySnapshot(samples_); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// What one batch worker did: queries served, cache hits among them, and
/// the time it spent serving (busy, excluding thread startup/join).
struct WorkerStats {
  std::size_t worker = 0;
  std::uint64_t processed = 0;
  std::uint64_t cache_hits = 0;    ///< served whole from the result cache
  std::uint64_t context_hits = 0;  ///< computed, but reusing a shared context
  /// Responses the validate_responses oracle quarantined as kInternalError.
  /// Counted here, but excluded from `latency`: a vetoed answer is not a
  /// served query and must not skew p50/p99 aggregation.
  std::uint64_t quarantined = 0;
  double busy_micros = 0.0;
  LatencyRecorder latency;  ///< serve latencies, quarantined excluded
};

/// Aggregate view of one EmbedEngine::query_batch call.
struct BatchStats {
  std::vector<WorkerStats> workers;
  double wall_micros = 0.0;

  std::uint64_t processed() const;
  std::uint64_t cache_hits() const;
  std::uint64_t context_hits() const;
  /// Oracle-quarantined responses across workers (excluded from latency).
  std::uint64_t quarantined() const;
  double hit_rate() const;
  /// Queries per second against the batch wall clock.
  double throughput_qps() const;
  LatencyRecorder merged_latency() const;
};

/// Engine-lifetime counters separating the two cache layers, so a workload's
/// wins are attributable: a *result* hit serves the finished answer; a
/// *context* hit still solves, but reuses the fault-independent per-(base, n)
/// precompute on the miss path. context_hits + context_misses covers exactly
/// the computed (non-result-hit, non-compute_uncached) queries.
struct ServeStats {
  std::uint64_t queries = 0;
  std::uint64_t result_hits = 0;
  std::uint64_t context_hits = 0;
  std::uint64_t context_misses = 0;

  double result_hit_rate() const;
  /// Context reuse among computed queries.
  double context_reuse_rate() const;
};

}  // namespace dbr::service
