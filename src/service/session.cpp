#include "service/session.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace dbr::service {

EmbedSession::EmbedSession(EmbedEngine& engine, Digit base, unsigned n,
                           FaultKind fault_kind, Strategy strategy)
    : engine_(&engine) {
  key_.base = base;
  key_.n = n;
  key_.fault_kind = fault_kind;
  EmbedRequest probe;
  probe.base = base;
  probe.n = n;
  probe.fault_kind = fault_kind;
  probe.strategy = strategy;
  key_.strategy = resolve_strategy(probe);

  // Pin the shared context first: this validates (base, n) and makes every
  // later re-solve context-build-free.
  context_ = engine.context_cache().get_or_build(base, n);
  const WordSpace& ws = context_->words();

  const bool node_faults = fault_kind == FaultKind::kNode;
  switch (key_.strategy) {
    case Strategy::kFfc:
      require(node_faults, "ffc strategy requires node faults");
      break;
    case Strategy::kEdgeAuto:
    case Strategy::kEdgeScan:
    case Strategy::kEdgePhi:
      require(!node_faults, "edge strategies require edge faults");
      require(n >= 2, "edge-fault strategies require n >= 2");
      break;
    case Strategy::kButterfly:
      require(!node_faults,
              "butterfly strategy takes De Bruijn edge-word faults");
      require(n >= 2, "edge-fault strategies require n >= 2");
      require(context_->supports_butterfly(),
              "butterfly lift requires gcd(d, n) = 1");
      break;
    case Strategy::kAuto:
      ensure(false, "resolve_strategy never returns kAuto");
  }
  fault_limit_ = node_faults ? ws.size() : ws.edge_word_count();
}

bool EmbedSession::add_fault(Word fault) {
  require(fault < fault_limit_,
          "fault word " + std::to_string(fault) + " out of range for B(" +
              std::to_string(key_.base) + "," + std::to_string(key_.n) + ")");
  const auto it =
      std::lower_bound(key_.faults.begin(), key_.faults.end(), fault);
  if (it != key_.faults.end() && *it == fault) {
    ++stats_.noop_mutations;
    return false;
  }
  key_.faults.insert(it, fault);
  ++stats_.adds;
  dirty_ = true;
  return true;
}

bool EmbedSession::clear_fault(Word fault) {
  const auto it =
      std::lower_bound(key_.faults.begin(), key_.faults.end(), fault);
  if (it == key_.faults.end() || *it != fault) {
    ++stats_.noop_mutations;
    return false;
  }
  key_.faults.erase(it);
  ++stats_.removes;
  dirty_ = true;
  return true;
}

void EmbedSession::reset_faults() {
  if (key_.faults.empty()) return;
  stats_.removes += key_.faults.size();
  key_.faults.clear();
  dirty_ = true;
}

EmbedResponse EmbedSession::current_ring() {
  if (!dirty_) {
    ++stats_.memoized;
    return last_;
  }
  last_ = engine_->query_with_context(key_, context_);
  // Deterministic answers memoize; a transient failure (kInternalError,
  // never cached by the engine either) leaves the session dirty so the
  // next current_ring() retries instead of pinning a one-off error.
  const EmbedStatus status =
      last_.result ? last_.result->status : EmbedStatus::kInternalError;
  dirty_ = status != EmbedStatus::kOk && status != EmbedStatus::kNoEmbedding;
  ++stats_.solves;
  if (last_.cache_hit) ++stats_.result_cache_hits;
  stats_.solve_micros_total += last_.latency_micros;
  return last_;
}

}  // namespace dbr::service
