#include "service/session.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "core/repair.hpp"
#include "util/require.hpp"
#include "verify/oracle.hpp"

namespace dbr::service {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

}  // namespace

EmbedSession::EmbedSession(EmbedEngine& engine, Digit base, unsigned n,
                           FaultKind fault_kind, Strategy strategy)
    : engine_(&engine) {
  key_.base = base;
  key_.n = n;
  key_.fault_kind = fault_kind;
  EmbedRequest probe;
  probe.base = base;
  probe.n = n;
  probe.fault_kind = fault_kind;
  probe.strategy = strategy;
  key_.strategy = resolve_strategy(probe);

  // Pin the shared context first: this validates (base, n) and makes every
  // later re-solve context-build-free.
  context_ = engine.context_cache().get_or_build(base, n);
  const WordSpace& ws = context_->words();

  switch (key_.strategy) {
    case Strategy::kFfc:
      require(fault_kind == FaultKind::kNode,
              "ffc strategy requires node faults");
      break;
    case Strategy::kEdgeAuto:
    case Strategy::kEdgeScan:
    case Strategy::kEdgePhi:
      require(fault_kind == FaultKind::kEdge,
              "edge strategies require edge faults");
      require(n >= 2, "edge-fault strategies require n >= 2");
      break;
    case Strategy::kButterfly:
      require(fault_kind == FaultKind::kEdge,
              "butterfly strategy takes De Bruijn edge-word faults");
      require(n >= 2, "edge-fault strategies require n >= 2");
      require(context_->supports_butterfly(),
              "butterfly lift requires gcd(d, n) = 1");
      break;
    case Strategy::kMixed:
      require(fault_kind == FaultKind::kMixed,
              "mixed strategy requires the mixed fault kind");
      require(n >= 2, "mixed-fault strategy requires n >= 2");
      break;
    case Strategy::kAuto:
      ensure(false, "resolve_strategy never returns kAuto");
  }
  node_limit_ = ws.size();
  edge_limit_ = ws.edge_word_count();
}

std::pair<std::vector<Word>*, Word> EmbedSession::track(FaultKind kind) {
  require(kind != FaultKind::kMixed,
          "a single fault is a node or an edge; kMixed names the session, "
          "not a fault");
  if (key_.fault_kind == FaultKind::kMixed) {
    return kind == FaultKind::kNode
               ? std::pair{&key_.faults, node_limit_}
               : std::pair{&key_.edge_faults, edge_limit_};
  }
  require(kind == key_.fault_kind,
          "fault kind does not match this session's fault kind");
  return {&key_.faults,
          kind == FaultKind::kNode ? node_limit_ : edge_limit_};
}

bool EmbedSession::add_fault(Word fault) {
  require(key_.fault_kind != FaultKind::kMixed,
          "mixed sessions must name the fault kind: add_fault(kind, word)");
  return add_fault(key_.fault_kind, fault);
}

bool EmbedSession::add_fault(FaultKind kind, Word fault) {
  const auto [live, limit] = track(kind);
  require(fault < limit,
          "fault word " + std::to_string(fault) + " out of range for B(" +
              std::to_string(key_.base) + "," + std::to_string(key_.n) + ")");
  const auto it = std::lower_bound(live->begin(), live->end(), fault);
  if (it != live->end() && *it == fault) {
    ++stats_.noop_mutations;  // already faulty: nothing changes, no re-solve
    return false;
  }
  live->insert(it, fault);
  ++stats_.adds;
  dirty_ = true;
  return true;
}

bool EmbedSession::clear_fault(Word fault) {
  require(key_.fault_kind != FaultKind::kMixed,
          "mixed sessions must name the fault kind: clear_fault(kind, word)");
  return clear_fault(key_.fault_kind, fault);
}

bool EmbedSession::clear_fault(FaultKind kind, Word fault) {
  const auto [live, limit] = track(kind);
  (void)limit;  // clearing an out-of-range word is a harmless no-op
  const auto it = std::lower_bound(live->begin(), live->end(), fault);
  if (it == live->end() || *it != fault) {
    ++stats_.noop_mutations;  // was never faulty: nothing changes
    return false;
  }
  live->erase(it);
  ++stats_.removes;
  dirty_ = true;
  return true;
}

void EmbedSession::reset_faults() {
  if (key_.faults.empty() && key_.edge_faults.empty()) {
    ++stats_.noop_mutations;  // already fault-free: keep the memoized ring
    return;
  }
  stats_.removes += key_.faults.size() + key_.edge_faults.size();
  key_.faults.clear();
  key_.edge_faults.clear();
  dirty_ = true;
}

CacheKey EmbedSession::solve_key() const {
  CacheKey key = key_;
  if (key_.fault_kind == FaultKind::kMixed) {
    // The session keeps dominated edge faults live (a router repair must
    // resurface the cut link), so the canonical cross-kind collapse happens
    // per solve. The collapsed key is exactly canonical_key of the
    // equivalent stateless request, so cache entries are shared with it.
    FaultSet set;
    set.nodes = std::move(key.faults);
    set.edges = std::move(key.edge_faults);
    set.canonicalize(key_.base, key_.n);
    key.faults = std::move(set.nodes);
    key.edge_faults = std::move(set.edges);
  }
  return key;
}

bool EmbedSession::try_repair(const CacheKey& key) {
  const Clock::time_point start = Clock::now();
  core::RepairOutcome outcome;
  switch (key_.strategy) {
    case Strategy::kFfc:
      outcome = core::repair_node_ring(*context_, last_.result->ring,
                                       solved_key_.faults, key.faults,
                                       scratch_);
      break;
    case Strategy::kEdgeAuto:
    case Strategy::kEdgeScan:
    case Strategy::kEdgePhi:
      outcome = core::repair_edge_ring(*context_, last_.result->ring,
                                       key.faults);
      break;
    case Strategy::kButterfly:
      outcome = core::repair_butterfly_ring(*context_, last_.result->ring,
                                            key.faults);
      break;
    case Strategy::kMixed:
      outcome = core::repair_mixed_ring(*context_, last_.result->ring,
                                        solved_key_.faults,
                                        solved_key_.edge_faults, key.faults,
                                        key.edge_faults, scratch_);
      break;
    case Strategy::kAuto:
      ensure(false, "resolve_strategy never returns kAuto");
  }
  if (!outcome.repaired()) {
    ++repair_stats_.fell_back;
    return false;
  }

  std::shared_ptr<const EmbedResult> result;
  if (outcome.unchanged &&
      last_.result->lower_bound == outcome.lower_bound &&
      last_.result->upper_bound == outcome.upper_bound) {
    // No-op repair with an unmoved envelope: the previous immutable result
    // serves verbatim — no ring copy, no allocation (the psi-scan family's
    // common case: the new cut misses the ring entirely).
    result = last_.result;
  } else {
    EmbedResult repaired;
    repaired.status = EmbedStatus::kOk;
    repaired.strategy_used = key_.strategy;
    repaired.ring = outcome.ring ? std::move(*outcome.ring)
                                 : last_.result->ring;  // no-op, new bounds
    repaired.ring_length = repaired.ring.length();
    repaired.lower_bound = outcome.lower_bound;
    repaired.upper_bound = outcome.upper_bound;
    repaired.compute_micros = micros_since(start);
    result = std::make_shared<const EmbedResult>(std::move(repaired));
  }

  if (engine_->options().validate_responses) {
    // Repaired rings ride the same oracle paths (check_ring /
    // check_mixed_ring) as engine answers; a veto means a repair bug, so
    // decline to the full solve instead of serving it.
    EmbedRequest request;
    request.base = key.base;
    request.n = key.n;
    request.fault_kind = key.fault_kind;
    request.faults = key.faults;
    request.edge_faults = key.edge_faults;
    request.strategy = key.strategy;
    if (!verify::check_response(request, *result).ok()) {
      ++repair_stats_.fell_back;
      ++repair_stats_.oracle_rejections;
      return false;
    }
  }

  EmbedResponse response;
  // A no-op splice re-serves the previous immutable result; only a ring
  // that actually moved advances the routing epoch (see ring_epoch()).
  if (result.get() != last_.result.get()) ++ring_epoch_;
  response.result = std::move(result);
  response.repaired = true;
  response.latency_micros = micros_since(start);
  last_ = std::move(response);
  solved_key_ = key;
  have_solved_ = true;
  dirty_ = false;
  ++repair_stats_.spliced;
  repair_stats_.repair_micros_total += last_.latency_micros;
  return true;
}

EmbedResponse EmbedSession::current_ring() {
  if (!dirty_) {
    ++stats_.memoized;
    return last_;
  }
  CacheKey key = solve_key();
  // No-op round trip: mutations that leave the canonical solve set where
  // it already was (a dominated link cut added and removed, an add undone
  // before any solve ran) keep the memoized answer — no engine traffic.
  if (have_solved_ && key == solved_key_) {
    dirty_ = false;
    ++stats_.memoized;
    return last_;
  }
  if (engine_->options().incremental_repair && have_solved_ && last_.result &&
      last_.result->status == EmbedStatus::kOk && try_repair(key)) {
    return last_;
  }
  // The result cache can hand back the very result object already served
  // (a fault set that round-tripped through churn); only a genuinely
  // different object advances the routing epoch.
  const EmbedResult* previous_result = last_.result.get();
  last_ = engine_->query_with_context(key, context_);
  if (last_.result.get() != previous_result) ++ring_epoch_;
  // Deterministic answers memoize; a transient failure (kInternalError,
  // never cached by the engine either) leaves the session dirty so the
  // next current_ring() retries instead of pinning a one-off error.
  const EmbedStatus status =
      last_.result ? last_.result->status : EmbedStatus::kInternalError;
  dirty_ = status != EmbedStatus::kOk && status != EmbedStatus::kNoEmbedding;
  have_solved_ = !dirty_;
  if (have_solved_) solved_key_ = std::move(key);
  ++stats_.solves;
  if (last_.cache_hit) ++stats_.result_cache_hits;
  stats_.solve_micros_total += last_.latency_micros;
  return last_;
}

}  // namespace dbr::service
