#include "service/session.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace dbr::service {

EmbedSession::EmbedSession(EmbedEngine& engine, Digit base, unsigned n,
                           FaultKind fault_kind, Strategy strategy)
    : engine_(&engine) {
  key_.base = base;
  key_.n = n;
  key_.fault_kind = fault_kind;
  EmbedRequest probe;
  probe.base = base;
  probe.n = n;
  probe.fault_kind = fault_kind;
  probe.strategy = strategy;
  key_.strategy = resolve_strategy(probe);

  // Pin the shared context first: this validates (base, n) and makes every
  // later re-solve context-build-free.
  context_ = engine.context_cache().get_or_build(base, n);
  const WordSpace& ws = context_->words();

  switch (key_.strategy) {
    case Strategy::kFfc:
      require(fault_kind == FaultKind::kNode,
              "ffc strategy requires node faults");
      break;
    case Strategy::kEdgeAuto:
    case Strategy::kEdgeScan:
    case Strategy::kEdgePhi:
      require(fault_kind == FaultKind::kEdge,
              "edge strategies require edge faults");
      require(n >= 2, "edge-fault strategies require n >= 2");
      break;
    case Strategy::kButterfly:
      require(fault_kind == FaultKind::kEdge,
              "butterfly strategy takes De Bruijn edge-word faults");
      require(n >= 2, "edge-fault strategies require n >= 2");
      require(context_->supports_butterfly(),
              "butterfly lift requires gcd(d, n) = 1");
      break;
    case Strategy::kMixed:
      require(fault_kind == FaultKind::kMixed,
              "mixed strategy requires the mixed fault kind");
      require(n >= 2, "mixed-fault strategy requires n >= 2");
      break;
    case Strategy::kAuto:
      ensure(false, "resolve_strategy never returns kAuto");
  }
  node_limit_ = ws.size();
  edge_limit_ = ws.edge_word_count();
}

std::pair<std::vector<Word>*, Word> EmbedSession::track(FaultKind kind) {
  require(kind != FaultKind::kMixed,
          "a single fault is a node or an edge; kMixed names the session, "
          "not a fault");
  if (key_.fault_kind == FaultKind::kMixed) {
    return kind == FaultKind::kNode
               ? std::pair{&key_.faults, node_limit_}
               : std::pair{&key_.edge_faults, edge_limit_};
  }
  require(kind == key_.fault_kind,
          "fault kind does not match this session's fault kind");
  return {&key_.faults,
          kind == FaultKind::kNode ? node_limit_ : edge_limit_};
}

bool EmbedSession::add_fault(Word fault) {
  require(key_.fault_kind != FaultKind::kMixed,
          "mixed sessions must name the fault kind: add_fault(kind, word)");
  return add_fault(key_.fault_kind, fault);
}

bool EmbedSession::add_fault(FaultKind kind, Word fault) {
  const auto [live, limit] = track(kind);
  require(fault < limit,
          "fault word " + std::to_string(fault) + " out of range for B(" +
              std::to_string(key_.base) + "," + std::to_string(key_.n) + ")");
  const auto it = std::lower_bound(live->begin(), live->end(), fault);
  if (it != live->end() && *it == fault) {
    ++stats_.noop_mutations;
    return false;
  }
  live->insert(it, fault);
  ++stats_.adds;
  dirty_ = true;
  return true;
}

bool EmbedSession::clear_fault(Word fault) {
  require(key_.fault_kind != FaultKind::kMixed,
          "mixed sessions must name the fault kind: clear_fault(kind, word)");
  return clear_fault(key_.fault_kind, fault);
}

bool EmbedSession::clear_fault(FaultKind kind, Word fault) {
  const auto [live, limit] = track(kind);
  (void)limit;  // clearing an out-of-range word is a harmless no-op
  const auto it = std::lower_bound(live->begin(), live->end(), fault);
  if (it == live->end() || *it != fault) {
    ++stats_.noop_mutations;
    return false;
  }
  live->erase(it);
  ++stats_.removes;
  dirty_ = true;
  return true;
}

void EmbedSession::reset_faults() {
  if (key_.faults.empty() && key_.edge_faults.empty()) return;
  stats_.removes += key_.faults.size() + key_.edge_faults.size();
  key_.faults.clear();
  key_.edge_faults.clear();
  dirty_ = true;
}

EmbedResponse EmbedSession::current_ring() {
  if (!dirty_) {
    ++stats_.memoized;
    return last_;
  }
  if (key_.fault_kind == FaultKind::kMixed) {
    // The session keeps dominated edge faults live (a router repair must
    // resurface the cut link), so the canonical cross-kind collapse happens
    // per solve. The collapsed key is exactly canonical_key of the
    // equivalent stateless request, so cache entries are shared with it.
    CacheKey solve_key = key_;
    FaultSet set;
    set.nodes = std::move(solve_key.faults);
    set.edges = std::move(solve_key.edge_faults);
    set.canonicalize(key_.base, key_.n);
    solve_key.faults = std::move(set.nodes);
    solve_key.edge_faults = std::move(set.edges);
    last_ = engine_->query_with_context(solve_key, context_);
  } else {
    last_ = engine_->query_with_context(key_, context_);
  }
  // Deterministic answers memoize; a transient failure (kInternalError,
  // never cached by the engine either) leaves the session dirty so the
  // next current_ring() retries instead of pinning a one-off error.
  const EmbedStatus status =
      last_.result ? last_.result->status : EmbedStatus::kInternalError;
  dirty_ = status != EmbedStatus::kOk && status != EmbedStatus::kNoEmbedding;
  ++stats_.solves;
  if (last_.cache_hit) ++stats_.result_cache_hits;
  stats_.solve_micros_total += last_.latency_micros;
  return last_;
}

}  // namespace dbr::service
