#include "hypercube/fault_free_cycle.hpp"

#include <algorithm>
#include <optional>

#include "util/require.hpp"

namespace dbr::hypercube {

namespace {

HNode drop_bit(HNode x, unsigned j) {
  const HNode low = x & ((1ull << j) - 1);
  const HNode high = x >> (j + 1);
  return (high << j) | low;
}

HNode insert_bit(HNode x, unsigned j, bool value) {
  const HNode low = x & ((1ull << j) - 1);
  const HNode high = x >> j;
  return (high << (j + 1)) | (static_cast<HNode>(value) << j) | low;
}

bool contains(std::span<const HNode> xs, HNode v) {
  return std::find(xs.begin(), xs.end(), v) != xs.end();
}

// ---------------------------------------------------------------------------
// Exhaustive search fallbacks for small subcubes (n <= 4: at most 16 nodes).

struct SmallSearch {
  unsigned n;
  std::vector<bool> blocked;
  std::vector<HNode> current;
  std::vector<HNode> best;
  std::uint64_t expansions = 0;

  static constexpr std::uint64_t kMaxExpansions = 2'000'000;

  bool full() const { return best.size() == (1ull << n) - count_blocked(); }
  std::size_t count_blocked() const {
    return static_cast<std::size_t>(
        std::count(blocked.begin(), blocked.end(), true));
  }

  void dfs_path(HNode v, HNode target) {
    if (++expansions > kMaxExpansions) return;
    current.push_back(v);
    blocked[v] = true;
    if (v == target) {
      if (current.size() > best.size()) best = current;
    } else {
      for (unsigned b = 0; b < n; ++b) {
        const HNode w = v ^ (1ull << b);
        if (!blocked[w]) dfs_path(w, target);
      }
    }
    blocked[v] = false;
    current.pop_back();
  }

  void dfs_cycle(HNode v, HNode anchor) {
    if (++expansions > kMaxExpansions) return;
    current.push_back(v);
    blocked[v] = true;
    for (unsigned b = 0; b < n; ++b) {
      const HNode w = v ^ (1ull << b);
      if (w == anchor && current.size() >= 3) {
        if (current.size() > best.size()) best = current;
      } else if (!blocked[w] && w > anchor) {
        dfs_cycle(w, anchor);
      }
    }
    blocked[v] = false;
    current.pop_back();
  }
};

std::vector<HNode> exhaustive_path(unsigned n, HNode a, HNode b,
                                   std::span<const HNode> faults) {
  SmallSearch s;
  s.n = n;
  s.blocked.assign(1ull << n, false);
  for (HNode f : faults) s.blocked[f] = true;
  s.dfs_path(a, b);
  return s.best;
}

std::vector<HNode> exhaustive_cycle(unsigned n, std::span<const HNode> faults) {
  SmallSearch s;
  s.n = n;
  s.blocked.assign(1ull << n, false);
  for (HNode f : faults) s.blocked[f] = true;
  std::vector<HNode> best;
  for (HNode anchor = 0; anchor < (1ull << n); ++anchor) {
    if (s.blocked[anchor]) continue;
    s.best.clear();
    s.current.clear();
    s.expansions = 0;
    s.dfs_cycle(anchor, anchor);
    if (s.best.size() > best.size()) best = s.best;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Recursive constructions with runtime-verified coverage bounds.

std::vector<HNode> ffp(unsigned n, HNode a, HNode b, std::vector<HNode> faults);

// Splits faults by bit j; returns (side of a, other side), coordinates
// projected through drop_bit.
std::pair<std::vector<HNode>, std::vector<HNode>> split_faults(
    std::span<const HNode> faults, unsigned j, bool a_side) {
  std::vector<HNode> same, other;
  for (HNode f : faults) {
    if (((f >> j) & 1) == static_cast<HNode>(a_side)) {
      same.push_back(drop_bit(f, j));
    } else {
      other.push_back(drop_bit(f, j));
    }
  }
  return {std::move(same), std::move(other)};
}

std::uint64_t path_target(unsigned n, std::size_t f, HNode a, HNode b) {
  const std::uint64_t size = 1ull << n;
  const std::uint64_t penalty = 2 * f + (parity(a) == parity(b) ? 1 : 0);
  return size > penalty ? size - penalty : 2;
}

// Fault-free a->b path meeting the 2^n - 2f (-1 for equal parity) target.
std::vector<HNode> ffp(unsigned n, HNode a, HNode b, std::vector<HNode> faults) {
  require(a != b, "path endpoints must differ");
  require(!contains(faults, a) && !contains(faults, b),
          "path endpoints must be nonfaulty");
  const std::uint64_t target = path_target(n, faults.size(), a, b);
  if (faults.empty()) {
    return parity(a) != parity(b) ? hamiltonian_path(n, a, b)
                                  : near_hamiltonian_path(n, a, b);
  }
  if (n <= 4) {
    auto best = exhaustive_path(n, a, b, faults);
    ensure(best.size() >= target, "small-cube path search missed the bound");
    return best;
  }

  // Try each split dimension; prefer ones separating the faults.
  std::vector<unsigned> dims;
  for (unsigned j = 0; j < n; ++j) dims.push_back(j);
  std::stable_sort(dims.begin(), dims.end(), [&](unsigned x, unsigned y) {
    auto spread = [&](unsigned j) {
      std::size_t ones = 0;
      for (HNode f : faults) ones += (f >> j) & 1;
      return std::min(ones, faults.size() - ones);
    };
    return spread(x) > spread(y);
  });

  for (unsigned j : dims) {
    const bool a_side = (a >> j) & 1;
    auto [fa, fb] = split_faults(faults, j, a_side);
    if (((b >> j) & 1) == static_cast<HNode>(a_side)) {
      // Same-side endpoints: path within, splice the other half through a
      // crossing edge with nonfaulty partners.
      std::vector<HNode> inner;
      try {
        inner = ffp(n - 1, drop_bit(a, j), drop_bit(b, j), fa);
      } catch (const invariant_error&) {
        continue;
      }
      for (std::size_t i = 0; i + 1 < inner.size(); ++i) {
        const HNode u = insert_bit(inner[i], j, a_side);
        const HNode up = u ^ (1ull << j);
        const HNode vp = insert_bit(inner[i + 1], j, a_side) ^ (1ull << j);
        if (contains(faults, up) || contains(faults, vp)) continue;
        std::vector<HNode> cross;
        if (fb.empty() && parity(up) != parity(vp)) {
          cross = hamiltonian_path(n - 1, drop_bit(up, j), drop_bit(vp, j));
        } else {
          try {
            cross = ffp(n - 1, drop_bit(up, j), drop_bit(vp, j), fb);
          } catch (const invariant_error&) {
            continue;
          } catch (const precondition_error&) {
            continue;
          }
        }
        std::vector<HNode> out;
        out.reserve(inner.size() + cross.size());
        for (std::size_t t = 0; t <= i; ++t) out.push_back(insert_bit(inner[t], j, a_side));
        for (HNode v : cross) out.push_back(insert_bit(v, j, !a_side));
        for (std::size_t t = i + 1; t < inner.size(); ++t) {
          out.push_back(insert_bit(inner[t], j, a_side));
        }
        if (out.size() >= target) return out;
      }
    } else {
      // Endpoints in different halves: cross at a candidate c next to a's
      // half whose partner is nonfaulty.
      const std::uint64_t half = 1ull << (n - 1);
      for (HNode c_low = 0; c_low < half; ++c_low) {
        const HNode c = insert_bit(c_low, j, a_side);
        if (c == a || contains(faults, c)) continue;
        const HNode cp = c ^ (1ull << j);
        if (cp == b || contains(faults, cp)) continue;
        std::vector<HNode> left, right;
        try {
          left = ffp(n - 1, drop_bit(a, j), c_low, fa);
          right = ffp(n - 1, drop_bit(cp, j), drop_bit(b, j), fb);
        } catch (const invariant_error&) {
          continue;
        } catch (const precondition_error&) {
          continue;
        }
        std::vector<HNode> out;
        out.reserve(left.size() + right.size());
        for (HNode v : left) out.push_back(insert_bit(v, j, a_side));
        for (HNode v : right) out.push_back(insert_bit(v, j, !a_side));
        if (out.size() >= target) return out;
      }
    }
  }
  throw invariant_error("fault-free path construction missed its bound");
}

}  // namespace

std::vector<HNode> fault_free_path(unsigned n, HNode a, HNode b,
                                   std::span<const HNode> faults) {
  require(n >= 2, "fault_free_path requires n >= 2");
  std::vector<HNode> fs(faults.begin(), faults.end());
  std::sort(fs.begin(), fs.end());
  fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
  return ffp(n, a, b, std::move(fs));
}

std::vector<HNode> fault_free_cycle(unsigned n, std::span<const HNode> faults) {
  require(n >= 3, "fault_free_cycle requires n >= 3");
  std::vector<HNode> fs(faults.begin(), faults.end());
  std::sort(fs.begin(), fs.end());
  fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
  require(fs.size() <= n - 2, "the hypercube bound assumes f <= n-2");
  for (HNode f : fs) require(f < (1ull << n), "fault out of range");
  const std::uint64_t target = (1ull << n) - 2 * fs.size();

  if (fs.empty()) return gray_cycle(n);
  if (n <= 4) {
    auto best = exhaustive_cycle(n, fs);
    ensure(best.size() >= target, "small-cube cycle search missed the bound");
    return best;
  }

  // Prefer a dimension that separates the faults (exists whenever f >= 2;
  // for f == 1 any dimension puts the fault alone in one half).
  std::vector<unsigned> dims;
  for (unsigned j = 0; j < n; ++j) dims.push_back(j);
  std::stable_sort(dims.begin(), dims.end(), [&](unsigned x, unsigned y) {
    auto spread = [&](unsigned j) {
      std::size_t ones = 0;
      for (HNode f : fs) ones += (f >> j) & 1;
      return std::min(ones, fs.size() - ones);
    };
    return spread(x) > spread(y);
  });

  for (unsigned j : dims) {
    // Host the recursive cycle in side 0, splice a path through side 1.
    for (bool host_side : {false, true}) {
      auto [f_host, f_other] = split_faults(fs, j, host_side);
      std::vector<HNode> inner;
      try {
        inner = fault_free_cycle(n - 1, f_host);
      } catch (const precondition_error&) {
        continue;  // too many faults landed in the host half
      } catch (const invariant_error&) {
        continue;
      }
      for (std::size_t i = 0; i < inner.size(); ++i) {
        const HNode u = insert_bit(inner[i], j, host_side);
        const HNode v = insert_bit(inner[(i + 1) % inner.size()], j, host_side);
        const HNode up = u ^ (1ull << j);
        const HNode vp = v ^ (1ull << j);
        if (contains(fs, up) || contains(fs, vp)) continue;
        std::vector<HNode> cross;
        try {
          cross = fault_free_path(n - 1, drop_bit(up, j), drop_bit(vp, j), f_other);
        } catch (const invariant_error&) {
          continue;
        } catch (const precondition_error&) {
          continue;
        }
        std::vector<HNode> out;
        out.reserve(inner.size() + cross.size());
        for (std::size_t t = 0; t <= i; ++t) {
          out.push_back(insert_bit(inner[t], j, host_side));
        }
        for (HNode w : cross) out.push_back(insert_bit(w, j, !host_side));
        for (std::size_t t = i + 1; t < inner.size(); ++t) {
          out.push_back(insert_bit(inner[t], j, host_side));
        }
        if (out.size() >= target) return out;
      }
    }
  }
  throw invariant_error("fault-free cycle construction missed the 2^n - 2f bound");
}

}  // namespace dbr::hypercube
