#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace dbr::hypercube {

/// Node of Q_n: an n-bit integer.
using HNode = std::uint64_t;

/// The hypercube Q_n viewed as a symmetric digraph (each undirected link is
/// a pair of antiparallel edges). This is the baseline network of the
/// Chapter 2 comparison ([WC92, CL91a]: a fault-free cycle of length
/// 2^n - 2f exists under f <= n-2 node faults).
class Hypercube {
 public:
  explicit Hypercube(unsigned dimension);

  unsigned dimension() const { return dim_; }
  NodeId num_nodes() const { return 1ull << dim_; }
  /// Directed edge count n * 2^n (undirected links: n * 2^(n-1)).
  std::uint64_t num_edges() const { return dim_ * num_nodes(); }
  std::uint64_t num_links() const { return num_edges() / 2; }

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    for (unsigned b = 0; b < dim_; ++b) fn(v ^ (1ull << b));
  }

  bool has_edge(HNode u, HNode v) const;

 private:
  unsigned dim_;
};

static_assert(DirectedGraph<Hypercube>);

/// Parity (number of one bits mod 2).
inline unsigned parity(HNode v) {
  return static_cast<unsigned>(__builtin_popcountll(v)) & 1u;
}

/// The reflected-Gray-code Hamiltonian cycle of Q_n (n >= 2).
std::vector<HNode> gray_cycle(unsigned n);

/// Hamiltonian path of Q_n from a to b; requires parity(a) != parity(b)
/// (Q_n is Hamiltonian-laceable). Covers all 2^n nodes.
std::vector<HNode> hamiltonian_path(unsigned n, HNode a, HNode b);

/// Near-Hamiltonian path for same-parity endpoints: covers 2^n - 1 nodes
/// (the maximum possible, since a path between same-parity endpoints has
/// odd node count). Requires a != b.
std::vector<HNode> near_hamiltonian_path(unsigned n, HNode a, HNode b);

/// True if `nodes` is a simple path in Q_n from nodes.front() to
/// nodes.back() (consecutive nodes adjacent, all distinct).
bool is_hypercube_path(unsigned n, const std::vector<HNode>& nodes);

/// True if `nodes` is a simple cycle in Q_n (wrap edge included).
bool is_hypercube_cycle(unsigned n, const std::vector<HNode>& nodes);

}  // namespace dbr::hypercube
