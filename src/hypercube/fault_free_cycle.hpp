#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypercube/hypercube.hpp"

namespace dbr::hypercube {

/// Fault-free ring embedding in the hypercube: given f <= n-2 faulty nodes
/// in Q_n (n >= 3), constructs a fault-free cycle of length at least
/// 2^n - 2f (the bound of [WC92, CL91a] quoted in Chapter 2's comparison).
///
/// The construction is the classical recursion: split along a dimension
/// separating the faults, build a fault-free cycle in one half, then splice
/// in a fault-free path through the other half across a crossing edge whose
/// endpoints are nonfaulty. Small subcubes (n <= 4) fall back to exhaustive
/// search. Throws invariant_error if the bound cannot be met (which the
/// theorem rules out for f <= n-2).
std::vector<HNode> fault_free_cycle(unsigned n, std::span<const HNode> faults);

/// Fault-free path companion: a simple path from a to b avoiding the faults
/// covering at least 2^n - 2f - 1 nodes (2^n - 2f when parity(a) !=
/// parity(b)). Endpoints must be nonfaulty and distinct.
std::vector<HNode> fault_free_path(unsigned n, HNode a, HNode b,
                                   std::span<const HNode> faults);

}  // namespace dbr::hypercube
