#include "hypercube/hypercube.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dbr::hypercube {

Hypercube::Hypercube(unsigned dimension) : dim_(dimension) {
  require(dimension >= 1 && dimension <= 40, "dimension must be in [1, 40]");
}

bool Hypercube::has_edge(HNode u, HNode v) const {
  const HNode x = u ^ v;
  return x != 0 && (x & (x - 1)) == 0 && u < num_nodes() && v < num_nodes();
}

std::vector<HNode> gray_cycle(unsigned n) {
  require(n >= 2, "Q_n is Hamiltonian only for n >= 2");
  const std::uint64_t size = 1ull << n;
  std::vector<HNode> out(size);
  for (std::uint64_t i = 0; i < size; ++i) out[i] = i ^ (i >> 1);
  return out;
}

namespace {

// Removes bit j from x (bits above j shift down): projects a subcube node
// onto Q_(n-1) coordinates.
HNode drop_bit(HNode x, unsigned j) {
  const HNode low = x & ((1ull << j) - 1);
  const HNode high = x >> (j + 1);
  return (high << j) | low;
}

// Inverse of drop_bit: re-inserts bit j with the given value.
HNode insert_bit(HNode x, unsigned j, bool value) {
  const HNode low = x & ((1ull << j) - 1);
  const HNode high = x >> j;
  return (high << (j + 1)) | (static_cast<HNode>(value) << j) | low;
}

}  // namespace

std::vector<HNode> hamiltonian_path(unsigned n, HNode a, HNode b) {
  require(n >= 1, "dimension must be positive");
  require(a < (1ull << n) && b < (1ull << n), "endpoint out of range");
  require(parity(a) != parity(b),
          "Hamiltonian path endpoints must have opposite parity");
  if (n == 1) return {a, b};
  // Split along a dimension where the endpoints differ; cross at a node c
  // of parity opposite to a (so the a-side is fully covered) whose partner
  // c' differs from b.
  unsigned j = 0;
  while (((a ^ b) >> j & 1) == 0) ++j;
  for (HNode c = 0; c < (1ull << n); ++c) {
    if ((c >> j & 1) != (a >> j & 1)) continue;  // same side as a
    if (c == a || parity(c) == parity(a)) continue;
    const HNode cp = c ^ (1ull << j);
    if (cp == b) continue;
    const auto left =
        hamiltonian_path(n - 1, drop_bit(a, j), drop_bit(c, j));
    const auto right =
        hamiltonian_path(n - 1, drop_bit(cp, j), drop_bit(b, j));
    std::vector<HNode> out;
    out.reserve(1ull << n);
    const bool a_side = (a >> j) & 1;
    for (HNode v : left) out.push_back(insert_bit(v, j, a_side));
    for (HNode v : right) out.push_back(insert_bit(v, j, !a_side));
    return out;
  }
  throw invariant_error("hamiltonian_path: no crossing candidate (impossible for n >= 2)");
}

std::vector<HNode> near_hamiltonian_path(unsigned n, HNode a, HNode b) {
  require(n >= 2, "near-Hamiltonian path needs n >= 2");
  require(a < (1ull << n) && b < (1ull << n), "endpoint out of range");
  require(a != b, "endpoints must differ");
  require(parity(a) == parity(b), "use hamiltonian_path for opposite parity");
  if (n == 2) {
    // Same parity in Q_2: endpoints are antipodal; the 3-node path through
    // either shared neighbor covers 2^2 - 1 nodes.
    const HNode mid = a ^ 1;  // differs from a in bit 0; adjacent to b too
    return {a, mid, b};
  }
  // a and b differ in at least two bits; split along one of them.
  unsigned j = 0;
  while (((a ^ b) >> j & 1) == 0) ++j;
  for (HNode c = 0; c < (1ull << n); ++c) {
    if ((c >> j & 1) != (a >> j & 1)) continue;
    if (c == a || parity(c) == parity(a)) continue;
    const HNode cp = c ^ (1ull << j);
    if (cp == b) continue;
    const auto left = hamiltonian_path(n - 1, drop_bit(a, j), drop_bit(c, j));
    const auto right =
        near_hamiltonian_path(n - 1, drop_bit(cp, j), drop_bit(b, j));
    std::vector<HNode> out;
    out.reserve((1ull << n) - 1);
    const bool a_side = (a >> j) & 1;
    for (HNode v : left) out.push_back(insert_bit(v, j, a_side));
    for (HNode v : right) out.push_back(insert_bit(v, j, !a_side));
    return out;
  }
  throw invariant_error("near_hamiltonian_path: no crossing candidate");
}

bool is_hypercube_path(unsigned n, const std::vector<HNode>& nodes) {
  if (nodes.empty()) return false;
  const Hypercube q(n);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (!q.has_edge(nodes[i], nodes[i + 1])) return false;
  }
  std::vector<HNode> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end() &&
         sorted.back() < q.num_nodes();
}

bool is_hypercube_cycle(unsigned n, const std::vector<HNode>& nodes) {
  if (nodes.size() < 3) return false;
  const Hypercube q(n);
  return is_hypercube_path(n, nodes) && q.has_edge(nodes.back(), nodes.front());
}

}  // namespace dbr::hypercube
