#pragma once

#include <cstdint>
#include <vector>

#include "gf/field.hpp"

namespace dbr::gf {

/// A polynomial over GF(q): coeffs[i] is the coefficient of x^i.
/// Invariant: no trailing zero coefficients (the zero polynomial is empty).
struct Poly {
  std::vector<Field::Elem> coeffs;

  bool is_zero() const { return coeffs.empty(); }
  /// Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeffs.size()) - 1; }
  bool operator==(const Poly& other) const = default;
};

/// Removes trailing zeros (restores the representation invariant).
Poly trimmed(std::vector<Field::Elem> coeffs);

/// The monomial x.
Poly poly_x();
/// The constant polynomial c.
Poly poly_const(Field::Elem c);

Poly poly_add(const Field& f, const Poly& a, const Poly& b);
Poly poly_sub(const Field& f, const Poly& a, const Poly& b);
Poly poly_mul(const Field& f, const Poly& a, const Poly& b);
/// Remainder of a modulo b (b monic or not; b != 0).
Poly poly_mod(const Field& f, Poly a, const Poly& b);
/// base^k modulo m.
Poly poly_powmod(const Field& f, Poly base, std::uint64_t k, const Poly& m);
Poly poly_gcd(const Field& f, Poly a, Poly b);
Field::Elem poly_eval(const Field& f, const Poly& a, Field::Elem x);

/// True if the monic polynomial m (degree >= 1) is irreducible over GF(q).
bool is_irreducible(const Field& f, const Poly& m);

/// True if m is primitive over GF(q): irreducible of degree n with
/// ord(x mod m) == q^n - 1 (Section 3.1's definition).
bool is_primitive(const Field& f, const Poly& m);

/// Deterministic smallest-first search for a primitive polynomial of degree
/// n over GF(q). Polynomials are scanned in increasing base-q code of their
/// non-leading coefficients, so the result is stable across runs.
Poly find_primitive_poly(const Field& f, unsigned n);

}  // namespace dbr::gf
