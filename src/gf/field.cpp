#include "gf/field.hpp"

#include <algorithm>

#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::gf {

namespace {

using Elem = Field::Elem;
using ZpPoly = std::vector<Elem>;  // coefficient i = coefficient of x^i, over Z_p

void trim(ZpPoly& f) {
  while (!f.empty() && f.back() == 0) f.pop_back();
}

int deg(const ZpPoly& f) { return static_cast<int>(f.size()) - 1; }

ZpPoly mul(const ZpPoly& a, const ZpPoly& b, std::uint64_t p) {
  if (a.empty() || b.empty()) return {};
  ZpPoly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = static_cast<Elem>((out[i + j] + static_cast<std::uint64_t>(a[i]) * b[j]) % p);
    }
  }
  trim(out);
  return out;
}

// Reduces a modulo monic m in place.
void mod(ZpPoly& a, const ZpPoly& m, std::uint64_t p) {
  const int dm = deg(m);
  while (deg(a) >= dm) {
    const Elem lead = a.back();
    const std::size_t shift = a.size() - m.size();
    for (std::size_t i = 0; i < m.size(); ++i) {
      const std::uint64_t sub = static_cast<std::uint64_t>(lead) * m[i] % p;
      a[shift + i] = static_cast<Elem>((a[shift + i] + p - sub) % p);
    }
    trim(a);
  }
}

ZpPoly mulmod(const ZpPoly& a, const ZpPoly& b, const ZpPoly& m, std::uint64_t p) {
  ZpPoly out = mul(a, b, p);
  mod(out, m, p);
  return out;
}

ZpPoly powmod(ZpPoly base, std::uint64_t k, const ZpPoly& m, std::uint64_t p) {
  ZpPoly result{1};
  mod(base, m, p);
  while (k > 0) {
    if (k & 1) result = mulmod(result, base, m, p);
    base = mulmod(base, base, m, p);
    k >>= 1;
  }
  return result;
}

ZpPoly poly_gcd(ZpPoly a, ZpPoly b, std::uint64_t p) {
  while (!b.empty()) {
    // Make b monic so mod() applies.
    const Elem lead_inv = static_cast<Elem>(nt::pow_mod(b.back(), p - 2, p));
    ZpPoly bm = b;
    for (Elem& c : bm) c = static_cast<Elem>(static_cast<std::uint64_t>(c) * lead_inv % p);
    mod(a, bm, p);
    std::swap(a, b);
  }
  return a;
}

// Irreducibility of a monic polynomial f of degree e over Z_p via the
// standard test: x^(p^e) == x (mod f) and gcd(x^(p^(e/r)) - x, f) == 1 for
// every prime r dividing e.
bool is_irreducible_zp(const ZpPoly& f, std::uint64_t p) {
  const int e = deg(f);
  if (e <= 0) return false;
  if (e == 1) return true;
  auto x_pow_p_to = [&](unsigned k) {
    // x^(p^k) mod f by repeated Frobenius exponentiation.
    ZpPoly acc{0, 1};  // x
    for (unsigned i = 0; i < k; ++i) acc = powmod(acc, p, f, p);
    return acc;
  };
  ZpPoly t = x_pow_p_to(static_cast<unsigned>(e));
  // t must equal x.
  ZpPoly x{0, 1};
  if (t != x) return false;
  for (const auto& pp : nt::factor(static_cast<std::uint64_t>(e))) {
    ZpPoly u = x_pow_p_to(static_cast<unsigned>(e) / static_cast<unsigned>(pp.prime));
    // gcd(u - x, f) must be a unit.
    ZpPoly diff = u;
    if (diff.size() < 2) diff.resize(2, 0);
    diff[1] = static_cast<Elem>((diff[1] + p - 1) % p);
    trim(diff);
    ZpPoly g = poly_gcd(f, diff, p);
    if (deg(g) > 0) return false;
  }
  return true;
}

// Smallest monic irreducible polynomial of degree e over Z_p, ordered by the
// base-p encoding of the non-leading coefficients.
ZpPoly find_field_modulus(std::uint64_t p, unsigned e) {
  std::uint64_t total = 1;
  for (unsigned i = 0; i < e; ++i) total *= p;
  for (std::uint64_t code = 0; code < total; ++code) {
    ZpPoly f(e + 1, 0);
    f[e] = 1;
    std::uint64_t c = code;
    for (unsigned i = 0; i < e; ++i) {
      f[i] = static_cast<Elem>(c % p);
      c /= p;
    }
    if (is_irreducible_zp(f, p)) return f;
  }
  throw invariant_error("no irreducible polynomial found (impossible)");
}

}  // namespace

Field::Field(std::uint64_t q) : q_(q) {
  std::uint64_t p = 0;
  unsigned e = 0;
  require(nt::is_prime_power(q, &p, &e), "GF(q) requires q to be a prime power");
  require(q <= (1u << 20), "field too large: q must be <= 2^20");
  p_ = p;
  e_ = e;

  if (e_ == 1) {
    modulus_ = {0, 1};
  } else {
    modulus_ = find_field_modulus(p_, e_);
  }

  // Element codes <-> Z_p coefficient vectors.
  auto decode = [&](Elem a) {
    ZpPoly f;
    std::uint64_t v = a;
    while (v > 0) {
      f.push_back(static_cast<Elem>(v % p_));
      v /= p_;
    }
    return f;
  };
  auto encode = [&](const ZpPoly& f) {
    std::uint64_t v = 0;
    for (std::size_t i = f.size(); i-- > 0;) v = v * p_ + f[i];
    return static_cast<Elem>(v);
  };
  auto field_mul = [&](Elem a, Elem b) {
    if (e_ == 1) return static_cast<Elem>(static_cast<std::uint64_t>(a) * b % p_);
    return encode(mulmod(decode(a), decode(b), modulus_, p_));
  };

  // Find a multiplicative generator, then build exp/log tables.
  const auto group_factors = nt::factor(q_ - 1);
  auto order_is_maximal = [&](Elem g) {
    for (const auto& pp : group_factors) {
      std::uint64_t k = (q_ - 1) / pp.prime;
      Elem acc = 1, base = g;
      while (k > 0) {
        if (k & 1) acc = field_mul(acc, base);
        base = field_mul(base, base);
        k >>= 1;
      }
      if (acc == 1) return false;
    }
    return true;
  };
  for (Elem g = 2; g < q_; ++g) {
    if (order_is_maximal(g)) {
      generator_ = g;
      break;
    }
  }
  if (generator_ == 0) {
    ensure(q_ == 2, "generator search failed");
    generator_ = 1;
  }

  exp_table_.resize(q_ - 1);
  log_table_.assign(q_, 0);
  Elem cur = 1;
  for (std::uint64_t i = 0; i < q_ - 1; ++i) {
    exp_table_[i] = cur;
    log_table_[cur] = static_cast<std::uint32_t>(i);
    cur = field_mul(cur, generator_);
  }
  ensure(cur == 1, "generator order mismatch");
}

Field::Elem Field::add(Elem a, Elem b) const {
  require(a < q_ && b < q_, "element out of range");
  if (e_ == 1) {
    const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
    return static_cast<Elem>(s >= q_ ? s - q_ : s);
  }
  Elem out = 0;
  std::uint64_t place = 1;
  while (a > 0 || b > 0) {
    const std::uint64_t da = a % p_, db = b % p_;
    out = static_cast<Elem>(out + place * ((da + db) % p_));
    a = static_cast<Elem>(a / p_);
    b = static_cast<Elem>(b / p_);
    place *= p_;
  }
  return out;
}

Field::Elem Field::neg(Elem a) const {
  require(a < q_, "element out of range");
  if (e_ == 1) return a == 0 ? 0 : static_cast<Elem>(q_ - a);
  Elem out = 0;
  std::uint64_t place = 1;
  while (a > 0) {
    const std::uint64_t da = a % p_;
    out = static_cast<Elem>(out + place * ((p_ - da) % p_));
    a = static_cast<Elem>(a / p_);
    place *= p_;
  }
  return out;
}

Field::Elem Field::mul(Elem a, Elem b) const {
  require(a < q_ && b < q_, "element out of range");
  if (a == 0 || b == 0) return 0;
  const std::uint64_t s = log_table_[a] + log_table_[b];
  return exp_table_[s % (q_ - 1)];
}

Field::Elem Field::inv(Elem a) const {
  require(a != 0, "zero has no multiplicative inverse");
  require(a < q_, "element out of range");
  return exp_table_[(q_ - 1 - log_table_[a]) % (q_ - 1)];
}

Field::Elem Field::pow(Elem a, std::uint64_t k) const {
  require(a < q_, "element out of range");
  if (k == 0) return 1;
  if (a == 0) return 0;
  const std::uint64_t l = log_table_[a] % (q_ - 1);
  return exp_table_[static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(l) * k % (q_ - 1))];
}

std::uint64_t Field::element_order(Elem a) const {
  require(a != 0 && a < q_, "element_order requires a nonzero element");
  const std::uint64_t l = log_table_[a];
  return (q_ - 1) / nt::gcd(q_ - 1, l == 0 ? q_ - 1 : l);
}

std::uint64_t Field::log(Elem a) const {
  require(a != 0 && a < q_, "log of zero is undefined");
  return log_table_[a];
}

Field::Elem Field::exp(std::uint64_t k) const { return exp_table_[k % (q_ - 1)]; }

std::vector<Field::Elem> Field::coefficients(Elem a) const {
  require(a < q_, "element out of range");
  std::vector<Elem> out(e_, 0);
  for (unsigned i = 0; i < e_; ++i) {
    out[i] = static_cast<Elem>(a % p_);
    a = static_cast<Elem>(a / p_);
  }
  return out;
}

Field::Elem Field::from_int(std::uint64_t v) const {
  require(v < p_, "from_int requires 0 <= v < characteristic");
  return static_cast<Elem>(v);
}

}  // namespace dbr::gf
