#pragma once

#include <cstdint>
#include <vector>

#include "gf/field.hpp"
#include "gf/poly.hpp"

namespace dbr::gf {

/// Linear-feedback shift register over GF(q) implementing the paper's
/// recurrence (3.1):
///
///     c_(n+i) = a_(n-1) c_(n-1+i) + ... + a_0 c_i + offset,   i >= 0,
///
/// where the affine `offset` term is zero for plain maximal cycles and
/// s(1 - omega) for the shifted cycle s + C (Lemma 3.2).
class Lfsr {
 public:
  /// taps = (a_0, ..., a_(n-1)); requires a_(n-1)... at least a_0 != 0 so the
  /// recurrence has full memory length n.
  Lfsr(const Field& field, std::vector<Field::Elem> taps, Field::Elem offset = 0);

  /// The characteristic polynomial x^n - a_(n-1) x^(n-1) - ... - a_0 (3.2).
  Poly characteristic_polynomial() const;

  /// Generates the sequence from the given initial state (c_0, ..., c_(n-1))
  /// until the state first repeats; returns one full period.
  std::vector<Field::Elem> period_sequence(std::vector<Field::Elem> initial) const;

  /// omega = a_0 + ... + a_(n-1) (the paper's coefficient sum).
  Field::Elem omega() const;

  const Field& field() const { return *field_; }
  const std::vector<Field::Elem>& taps() const { return taps_; }
  Field::Elem offset() const { return offset_; }

 private:
  const Field* field_;
  std::vector<Field::Elem> taps_;
  Field::Elem offset_;
};

/// Taps (a_0 .. a_(n-1)) of the recurrence whose characteristic polynomial is
/// the given monic polynomial: a_i = -m_i.
std::vector<Field::Elem> taps_from_characteristic(const Field& f, const Poly& m);

}  // namespace dbr::gf
