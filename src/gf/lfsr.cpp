#include "gf/lfsr.hpp"

#include "util/require.hpp"

namespace dbr::gf {

Lfsr::Lfsr(const Field& field, std::vector<Field::Elem> taps, Field::Elem offset)
    : field_(&field), taps_(std::move(taps)), offset_(offset) {
  require(!taps_.empty(), "LFSR needs at least one tap");
  require(taps_[0] != 0, "a_0 must be nonzero (full memory length)");
  for (Field::Elem t : taps_) require(t < field.order(), "tap out of field range");
}

Poly Lfsr::characteristic_polynomial() const {
  std::vector<Field::Elem> coeffs(taps_.size() + 1, 0);
  for (std::size_t i = 0; i < taps_.size(); ++i) coeffs[i] = field_->neg(taps_[i]);
  coeffs[taps_.size()] = 1;
  return trimmed(std::move(coeffs));
}

std::vector<Field::Elem> Lfsr::period_sequence(std::vector<Field::Elem> initial) const {
  require(initial.size() == taps_.size(), "initial state must have length n");
  const std::size_t n = taps_.size();
  const std::vector<Field::Elem> start = initial;
  // The state space is finite (q^n states), so the period cannot exceed q^n;
  // anything longer signals a bug.
  std::uint64_t bound = UINT64_MAX;
  {
    std::uint64_t b = 1;
    bool overflow = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (b > UINT64_MAX / field_->order()) {
        overflow = true;
        break;
      }
      b *= field_->order();
    }
    if (!overflow) bound = b;
  }
  std::vector<Field::Elem> out;
  std::vector<Field::Elem> state = std::move(initial);
  for (;;) {
    // Emit the oldest symbol, then advance: next = sum a_j * state[j] + offset.
    Field::Elem next = offset_;
    for (std::size_t j = 0; j < n; ++j) {
      next = field_->add(next, field_->mul(taps_[j], state[j]));
    }
    out.push_back(state[0]);
    for (std::size_t j = 0; j + 1 < n; ++j) state[j] = state[j + 1];
    state[n - 1] = next;
    if (state == start) return out;
    ensure(out.size() <= bound, "LFSR failed to cycle");
  }
}

Field::Elem Lfsr::omega() const {
  Field::Elem w = 0;
  for (Field::Elem t : taps_) w = field_->add(w, t);
  return w;
}

std::vector<Field::Elem> taps_from_characteristic(const Field& f, const Poly& m) {
  require(m.degree() >= 1, "characteristic polynomial must have degree >= 1");
  require(m.coeffs.back() == 1, "characteristic polynomial must be monic");
  std::vector<Field::Elem> taps(static_cast<std::size_t>(m.degree()), 0);
  for (std::size_t i = 0; i < taps.size(); ++i) taps[i] = f.neg(m.coeffs[i]);
  return taps;
}

}  // namespace dbr::gf
