#pragma once

#include <cstdint>
#include <vector>

namespace dbr::gf {

/// The Galois field GF(q), q = p^e a prime power.
///
/// Elements are encoded as integers in [0, q): the element with polynomial
/// representation c_(e-1) x^(e-1) + ... + c_1 x + c_0 over Z_p is encoded as
/// the base-p integer sum c_i p^i. For prime q this is ordinary Z_p
/// arithmetic; 0 and 1 always encode the additive and multiplicative
/// identities. Multiplication and inversion use discrete exp/log tables,
/// so construction is O(q log q) and operations are O(1) (addition is
/// O(e) digit arithmetic).
///
/// The paper's Chapter 3 identifies the d-ary alphabet with GF(d) through
/// "any one-to-one mapping"; this library uses the identity on codes, so a
/// field element is directly usable as a De Bruijn digit.
class Field {
 public:
  using Elem = std::uint32_t;

  /// Builds GF(q). Throws precondition_error unless q is a prime power
  /// with q <= 2^20.
  explicit Field(std::uint64_t q);

  std::uint64_t order() const { return q_; }
  std::uint64_t characteristic() const { return p_; }
  unsigned degree() const { return e_; }

  Elem zero() const { return 0; }
  Elem one() const { return 1; }

  Elem add(Elem a, Elem b) const;
  Elem neg(Elem a) const;
  Elem sub(Elem a, Elem b) const { return add(a, neg(b)); }
  Elem mul(Elem a, Elem b) const;
  /// Multiplicative inverse; requires a != 0.
  Elem inv(Elem a) const;
  Elem div(Elem a, Elem b) const { return mul(a, inv(b)); }
  /// a^k with a^0 == 1 (including a == 0).
  Elem pow(Elem a, std::uint64_t k) const;

  /// A fixed generator of the multiplicative group.
  Elem generator() const { return generator_; }
  /// Multiplicative order of a != 0.
  std::uint64_t element_order(Elem a) const;
  /// Discrete log base generator(); requires a != 0.
  std::uint64_t log(Elem a) const;
  /// generator()^k.
  Elem exp(std::uint64_t k) const;

  /// Coefficients (c_0, ..., c_(e-1)) of the polynomial representation.
  std::vector<Elem> coefficients(Elem a) const;
  /// Modulus polynomial coefficients m_0..m_e over Z_p (monic, m_e == 1);
  /// for prime fields this is the linear polynomial x - 0 placeholder {0, 1}.
  const std::vector<Elem>& modulus() const { return modulus_; }

  /// Embeds an integer 0 <= v < p as the constant polynomial v.
  Elem from_int(std::uint64_t v) const;

 private:
  std::uint64_t q_;
  std::uint64_t p_;
  unsigned e_;
  Elem generator_ = 0;
  std::vector<Elem> modulus_;       // irreducible polynomial defining the field
  std::vector<Elem> exp_table_;     // exp_table_[i] = g^i, i in [0, q-1)
  std::vector<std::uint32_t> log_table_;  // inverse of exp_table_, log_table_[1] = 0
};

}  // namespace dbr::gf
