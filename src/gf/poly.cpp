#include "gf/poly.hpp"

#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::gf {

Poly trimmed(std::vector<Field::Elem> coeffs) {
  while (!coeffs.empty() && coeffs.back() == 0) coeffs.pop_back();
  return Poly{std::move(coeffs)};
}

Poly poly_x() { return Poly{{0, 1}}; }

Poly poly_const(Field::Elem c) { return c == 0 ? Poly{} : Poly{{c}}; }

Poly poly_add(const Field& f, const Poly& a, const Poly& b) {
  std::vector<Field::Elem> out(std::max(a.coeffs.size(), b.coeffs.size()), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Field::Elem ca = i < a.coeffs.size() ? a.coeffs[i] : 0;
    const Field::Elem cb = i < b.coeffs.size() ? b.coeffs[i] : 0;
    out[i] = f.add(ca, cb);
  }
  return trimmed(std::move(out));
}

Poly poly_sub(const Field& f, const Poly& a, const Poly& b) {
  std::vector<Field::Elem> out(std::max(a.coeffs.size(), b.coeffs.size()), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Field::Elem ca = i < a.coeffs.size() ? a.coeffs[i] : 0;
    const Field::Elem cb = i < b.coeffs.size() ? b.coeffs[i] : 0;
    out[i] = f.sub(ca, cb);
  }
  return trimmed(std::move(out));
}

Poly poly_mul(const Field& f, const Poly& a, const Poly& b) {
  if (a.is_zero() || b.is_zero()) return {};
  std::vector<Field::Elem> out(a.coeffs.size() + b.coeffs.size() - 1, 0);
  for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
    if (a.coeffs[i] == 0) continue;
    for (std::size_t j = 0; j < b.coeffs.size(); ++j) {
      out[i + j] = f.add(out[i + j], f.mul(a.coeffs[i], b.coeffs[j]));
    }
  }
  return trimmed(std::move(out));
}

Poly poly_mod(const Field& f, Poly a, const Poly& b) {
  require(!b.is_zero(), "polynomial modulus must be nonzero");
  const Field::Elem lead_inv = f.inv(b.coeffs.back());
  while (a.degree() >= b.degree()) {
    const Field::Elem scale = f.mul(a.coeffs.back(), lead_inv);
    const std::size_t shift = a.coeffs.size() - b.coeffs.size();
    for (std::size_t i = 0; i < b.coeffs.size(); ++i) {
      a.coeffs[shift + i] = f.sub(a.coeffs[shift + i], f.mul(scale, b.coeffs[i]));
    }
    a = trimmed(std::move(a.coeffs));
  }
  return a;
}

Poly poly_powmod(const Field& f, Poly base, std::uint64_t k, const Poly& m) {
  Poly result = poly_const(1);
  base = poly_mod(f, std::move(base), m);
  while (k > 0) {
    if (k & 1) result = poly_mod(f, poly_mul(f, result, base), m);
    base = poly_mod(f, poly_mul(f, base, base), m);
    k >>= 1;
  }
  return result;
}

Poly poly_gcd(const Field& f, Poly a, Poly b) {
  while (!b.is_zero()) {
    Poly r = poly_mod(f, std::move(a), b);
    a = std::move(b);
    b = std::move(r);
  }
  if (!a.is_zero()) {
    // Normalize to monic.
    const Field::Elem inv = f.inv(a.coeffs.back());
    for (auto& c : a.coeffs) c = f.mul(c, inv);
  }
  return a;
}

Field::Elem poly_eval(const Field& f, const Poly& a, Field::Elem x) {
  Field::Elem acc = 0;
  for (std::size_t i = a.coeffs.size(); i-- > 0;) {
    acc = f.add(f.mul(acc, x), a.coeffs[i]);
  }
  return acc;
}

bool is_irreducible(const Field& f, const Poly& m) {
  const int n = m.degree();
  require(n >= 1, "is_irreducible requires degree >= 1");
  require(m.coeffs.back() == 1, "is_irreducible expects a monic polynomial");
  if (n == 1) return true;
  const std::uint64_t q = f.order();
  auto x_pow_q_to = [&](unsigned k) {
    Poly acc = poly_x();
    for (unsigned i = 0; i < k; ++i) acc = poly_powmod(f, acc, q, m);
    return acc;
  };
  if (x_pow_q_to(static_cast<unsigned>(n)) != poly_x()) return false;
  for (const auto& pp : nt::factor(static_cast<std::uint64_t>(n))) {
    const Poly u = x_pow_q_to(static_cast<unsigned>(n) / static_cast<unsigned>(pp.prime));
    const Poly g = poly_gcd(f, m, poly_sub(f, u, poly_x()));
    if (g.degree() > 0) return false;
  }
  return true;
}

bool is_primitive(const Field& f, const Poly& m) {
  const int n = m.degree();
  require(n >= 1, "is_primitive requires degree >= 1");
  if (m.coeffs[0] == 0) return false;  // x | m means x is not invertible mod m
  if (!is_irreducible(f, m)) return false;
  // Irreducible => ord(x) divides q^n - 1; primitive iff no proper divisor works.
  std::uint64_t group = 1;
  for (int i = 0; i < n; ++i) group *= f.order();
  group -= 1;
  for (const auto& pp : nt::factor(group)) {
    const Poly t = poly_powmod(f, poly_x(), group / pp.prime, m);
    if (t == poly_const(1)) return false;
  }
  return true;
}

Poly find_primitive_poly(const Field& f, unsigned n) {
  require(n >= 1, "find_primitive_poly requires degree >= 1");
  const std::uint64_t q = f.order();
  std::uint64_t total = 1;
  for (unsigned i = 0; i < n; ++i) {
    require(total <= UINT64_MAX / q, "search space too large");
    total *= q;
  }
  for (std::uint64_t code = 0; code < total; ++code) {
    std::vector<Field::Elem> coeffs(n + 1, 0);
    coeffs[n] = 1;
    std::uint64_t c = code;
    for (unsigned i = 0; i < n; ++i) {
      coeffs[i] = static_cast<Field::Elem>(c % q);
      c /= q;
    }
    const Poly candidate{std::move(coeffs)};
    if (candidate.coeffs[0] == 0) continue;
    if (is_primitive(f, candidate)) return candidate;
  }
  throw invariant_error("no primitive polynomial found (impossible for a field)");
}

}  // namespace dbr::gf
