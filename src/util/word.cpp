#include "util/word.hpp"

#include <bit>
#include <limits>

#include "util/require.hpp"

namespace dbr {

namespace {

// Returns d^n, throwing if the result (times one extra factor of d) would
// overflow 64 bits; keeps edge words representable alongside node words.
Word checked_pow(Digit d, unsigned n) {
  Word result = 1;
  const Word limit = std::numeric_limits<Word>::max() / d;
  for (unsigned i = 0; i < n + 1; ++i) {  // +1: room for (n+1)-digit edge words
    require(result <= limit, "d^(n+1) does not fit in 64 bits");
    result *= d;
  }
  return result / d;
}

}  // namespace

WordSpace::WordSpace(Digit d, unsigned n) : d_(d), n_(n) {
  require(d >= 2, "WordSpace requires radix d >= 2");
  require(n >= 1, "WordSpace requires length n >= 1");
  size_ = checked_pow(d, n);
  suffix_size_ = size_ / d_;
  place_.resize(n);
  Word p = 1;
  for (unsigned i = 0; i < n; ++i) {
    place_[n - 1 - i] = p;
    p *= d_;
  }
}

Digit WordSpace::digit(Word x, unsigned i) const {
  require(i < n_, "digit index out of range");
  return static_cast<Digit>((x / place_[i]) % d_);
}

Word WordSpace::with_digit(Word x, unsigned i, Digit v) const {
  require(i < n_, "digit index out of range");
  require(v < d_, "digit value out of range");
  const Digit old = static_cast<Digit>((x / place_[i]) % d_);
  return x + (static_cast<Word>(v) - static_cast<Word>(old)) * place_[i];
}

Word WordSpace::from_digits(std::span<const Digit> digits) const {
  require(digits.size() == n_, "from_digits expects exactly n digits");
  Word x = 0;
  for (Digit v : digits) {
    require(v < d_, "digit value out of range");
    x = x * d_ + v;
  }
  return x;
}

std::vector<Digit> WordSpace::digits(Word x) const {
  std::vector<Digit> out(n_);
  for (unsigned i = 0; i < n_; ++i) out[i] = digit(x, i);
  return out;
}

std::string WordSpace::to_string(Word x) const {
  std::string s;
  const bool wide = d_ > 10;
  for (unsigned i = 0; i < n_; ++i) {
    if (wide && i > 0) s += '.';
    s += std::to_string(digit(x, i));
  }
  return s;
}

Word WordSpace::rotate_left(Word x, unsigned k) const {
  k %= n_;
  if (k == 0) return x;
  const Word cut = place_[k - 1];  // d^(n-k)
  return (x % cut) * (size_ / cut) + x / cut;
}

Word WordSpace::min_rotation(Word x) const {
  Word best = x;
  Word cur = x;
  for (unsigned k = 1; k < n_; ++k) {
    cur = rotate_left(cur, 1);
    if (cur < best) best = cur;
  }
  return best;
}

unsigned WordSpace::period(Word x) const {
  // The period divides n, so only divisors need checking.
  for (unsigned t = 1; t <= n_; ++t) {
    if (n_ % t == 0 && rotate_left(x, t) == x) return t;
  }
  ensure(false, "period: rotation by n must fix x");
  return n_;
}

unsigned WordSpace::weight(Word x) const {
  unsigned w = 0;
  for (unsigned i = 0; i < n_; ++i) w += digit(x, i);
  return w;
}

unsigned WordSpace::count_digit(Word x, Digit a) const {
  require(a < d_, "digit value out of range");
  unsigned c = 0;
  for (unsigned i = 0; i < n_; ++i) c += (digit(x, i) == a) ? 1u : 0u;
  return c;
}

Word WordSpace::shift_append(Word x, Digit a) const {
  require(a < d_, "digit value out of range");
  return (x % suffix_size_) * d_ + a;
}

Word WordSpace::shift_prepend(Word x, Digit a) const {
  require(a < d_, "digit value out of range");
  return static_cast<Word>(a) * suffix_size_ + x / d_;
}

Word WordSpace::repeated(Digit a) const {
  require(a < d_, "digit value out of range");
  Word x = 0;
  for (unsigned i = 0; i < n_; ++i) x = x * d_ + a;
  return x;
}

Word WordSpace::alternating(Digit a, Digit b) const {
  require(a < d_ && b < d_, "digit value out of range");
  Word x = 0;
  for (unsigned i = 0; i < n_; ++i) x = x * d_ + (i % 2 == 0 ? a : b);
  return x;
}

std::pair<Word, Word> WordSpace::edge_endpoints(Word e) const {
  require(e < edge_word_count(), "edge word out of range");
  return {e / d_, e % size_};
}

void BitVec::assign(std::size_t n, bool value) {
  size_ = n;
  limbs_.assign((n + 63) / 64, value ? ~std::uint64_t{0} : 0);
  // Keep the unused tail bits clear so count() never sees garbage.
  if (value && (n & 63) != 0) {
    limbs_.back() &= (std::uint64_t{1} << (n & 63)) - 1;
  }
}

std::uint64_t BitVec::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t limb : limbs_) total += std::popcount(limb);
  return total;
}

void BitVec::and_with(const BitVec& other) {
  require(other.size_ == size_, "BitVec size mismatch");
  for (std::size_t i = 0; i < limbs_.size(); ++i) limbs_[i] &= other.limbs_[i];
}

}  // namespace dbr
