#pragma once

#include <cstddef>
#include <functional>

namespace dbr {

/// Number of worker threads used by parallel_for (hardware concurrency,
/// overridable through the DBR_THREADS environment variable).
unsigned worker_count();

/// Runs fn(i) for i in [0, count) on worker_count() threads with static
/// block partitioning. fn must be safe to call concurrently for distinct i.
/// Exceptions thrown by fn are rethrown on the calling thread (first one wins).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

/// Block-partitioned variant handing each worker a contiguous [begin, end)
/// range together with its worker index; useful for per-thread accumulators.
void parallel_blocks(
    std::size_t count,
    const std::function<void(std::size_t worker, std::size_t begin, std::size_t end)>& fn);

}  // namespace dbr
