#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/require.hpp"

namespace dbr {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable needs at least one column");
}

TextTable& TextTable::new_row() {
  ensure(rows_.empty() || rows_.back().size() == headers_.size(),
         "previous row incomplete");
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(const std::string& value) {
  require(!rows_.empty(), "call new_row() before add()");
  require(rows_.back().size() < headers_.size(), "row has too many values");
  rows_.back().push_back(value);
  return *this;
}

TextTable& TextTable::add(std::int64_t value) { return add(std::to_string(value)); }
TextTable& TextTable::add(std::uint64_t value) { return add(std::to_string(value)); }

TextTable& TextTable::add(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return add(std::string(buf));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += "| ";
      out.append(width[c] - cell.size(), ' ');
      out += cell;
      out += ' ';
    }
    out += "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += ',';
      out += cells[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

}  // namespace dbr
