#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dbr {

/// A d-ary n-tuple x1...xn encoded as a radix-d integer with x1 the most
/// significant digit. Words index the nodes of the De Bruijn graph B(d,n).
using Word = std::uint64_t;

/// Digit of a word (an element of Z_d).
using Digit = std::uint32_t;

/// Sentinel for "no word": all bits set, never a valid word of any space.
inline constexpr Word kNoWord = ~Word{0};

/// Algebra of fixed-length d-ary words: digit access, rotations, necklace
/// canonical forms, weights, and the (n+1)-word edge codec used throughout
/// the ring-embedding algorithms.
///
/// Terminology follows the paper: the "necklace" N(x) is the cyclic rotation
/// class of x; its representative [y] is the minimal rotation when words are
/// compared as base-d numbers.
class WordSpace {
 public:
  /// Requires d >= 2, n >= 1, and d^(n+1) representable in 64 bits
  /// (the +1 leaves room for edge words).
  WordSpace(Digit d, unsigned n);

  Digit radix() const { return d_; }
  unsigned length() const { return n_; }
  /// Number of words: d^n.
  Word size() const { return size_; }

  /// Digit i of x, i in [0, n); 0 addresses x1 (most significant).
  Digit digit(Word x, unsigned i) const;
  /// Copy of x with digit i replaced by v.
  Word with_digit(Word x, unsigned i, Digit v) const;
  /// Assembles a word from n digits (digits[0] = x1).
  Word from_digits(std::span<const Digit> digits) const;
  /// All n digits of x, most significant first.
  std::vector<Digit> digits(Word x) const;
  /// Word rendered as a digit string, e.g. "0112" (digits >= 10 separated by '.').
  std::string to_string(Word x) const;

  /// Left rotation by k positions: pi^k(x) in the paper's notation.
  Word rotate_left(Word x, unsigned k) const;
  /// Minimal rotation of x: the representative of necklace N(x).
  Word min_rotation(Word x) const;
  /// Least t > 0 with pi^t(x) == x; always divides n.
  unsigned period(Word x) const;
  /// True if period(x) == n.
  bool aperiodic(Word x) const { return period(x) == length(); }

  /// Sum of digits: wt(x).
  unsigned weight(Word x) const;
  /// Number of occurrences of digit a: wt_a(x).
  unsigned count_digit(Word x, Digit a) const;

  /// The De Bruijn successor x2...xn a.
  Word shift_append(Word x, Digit a) const;
  /// The De Bruijn predecessor a x1...x(n-1).
  Word shift_prepend(Word x, Digit a) const;
  /// First n-1 digits x1...x(n-1), as an (n-1)-digit value.
  Word prefix(Word x) const { return x / d_; }
  /// Last n-1 digits x2...xn, as an (n-1)-digit value.
  Word suffix(Word x) const { return x % suffix_size_; }
  /// First digit x1.
  Digit head(Word x) const { return static_cast<Digit>(x / suffix_size_); }
  /// Last digit xn.
  Digit tail(Word x) const { return static_cast<Digit>(x % d_); }
  /// The word w b where w is an (n-1)-digit value (paper's "enter node" form).
  Word compose_suffix(Word w, Digit b) const { return w * d_ + b; }
  /// The word a w where w is an (n-1)-digit value (paper's "exit node" form).
  Word compose_prefix(Digit a, Word w) const { return a * suffix_size_ + w; }

  /// The constant word a^n.
  Word repeated(Digit a) const;
  /// The alternating word "a b a b ..." of length n (paper's \overline{ab}):
  /// ends with b when n is even, with a when n is odd.
  Word alternating(Digit a, Digit b) const;

  /// Edge (u, shift_append(u, a)) encoded as the (n+1)-word u1...un a.
  Word edge_word(Word u, Digit a) const { return u * d_ + a; }
  /// Endpoints (u, v) of the edge encoded by an (n+1)-word.
  std::pair<Word, Word> edge_endpoints(Word e) const;
  /// Number of distinct (n+1)-words: d^(n+1).
  Word edge_word_count() const { return size_ * d_; }

 private:
  Digit d_;
  unsigned n_;
  Word size_;         // d^n
  Word suffix_size_;  // d^(n-1)
  std::vector<Word> place_;  // place_[i] = d^(n-1-i), weight of digit i
};

/// Bit-packed boolean mask over words (one bit per node) backed by uint64_t
/// limbs. The reusable solve arenas (core::SolveScratch) keep their
/// active/component/visited masks in this form: assign() is a limb fill
/// instead of a per-element vector<bool> walk, count() is a popcount sweep,
/// and and_with() intersects two masks 64 nodes at a time.
class BitVec {
 public:
  /// Resizes to `n` bits, all set to `value`.
  void assign(std::size_t n, bool value);
  /// Number of bits.
  std::size_t size() const { return size_; }
  /// Bit `i`; `i` must be < size() (unchecked).
  bool test(std::size_t i) const {
    return (limbs_[i >> 6] >> (i & 63)) & 1u;
  }
  /// Sets bit `i` (unchecked).
  void set(std::size_t i) { limbs_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  /// Clears bit `i` (unchecked).
  void reset(std::size_t i) { limbs_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  /// Number of set bits.
  std::uint64_t count() const;
  /// In-place intersection with an equally sized mask.
  void and_with(const BitVec& other);

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> limbs_;
};

}  // namespace dbr
