#pragma once

/// \file
/// Clang thread-safety annotation shims and the repo's annotated lock
/// vocabulary.
///
/// Every mutex-bearing component (service/cache, service/context_cache,
/// service/fabric, net/server, util/parallel) declares its locking contract
/// through these macros and wrapper types, so the contract is machine-checked
/// by Clang's `-Wthread-safety` analysis (the CI static-analysis job builds
/// with `-Wthread-safety -Werror=thread-safety`) instead of living only in
/// comments. Under GCC — the tier-1 toolchain — every macro compiles to
/// nothing and the wrappers are zero-cost aliases of the std primitives
/// (static-asserted in tests/test_context_cache.cpp), so annotated code is
/// bit-identical to the unannotated build.
///
/// Vocabulary (mirrors the Clang documentation's canonical mutex.h):
///  * `DBR_CAPABILITY(name)`        — a class is a lockable capability;
///  * `DBR_SCOPED_CAPABILITY`       — an RAII class acquiring in its ctor
///                                    and releasing in its dtor;
///  * `DBR_GUARDED_BY(mu)`          — a field readable/writable only while
///                                    `mu` is held;
///  * `DBR_PT_GUARDED_BY(mu)`       — same, for the pointee of a pointer;
///  * `DBR_REQUIRES(mu)` /
///    `DBR_REQUIRES_SHARED(mu)`     — a function callable only with `mu`
///                                    held (exclusively resp. shared);
///  * `DBR_EXCLUDES(mu)`            — a function callable only with `mu`
///                                    *not* held (deadlock contracts: the
///                                    RcuSnapshot publish rule);
///  * `DBR_ACQUIRE`/`DBR_RELEASE` (+ `_SHARED`, `DBR_RELEASE_GENERIC`,
///    `DBR_TRY_ACQUIRE`)            — lock/unlock primitives;
///  * `DBR_NO_THREAD_SAFETY_ANALYSIS` — opt a function out (used only with a
///                                    justifying comment; the invariant
///                                    linter flags bare escapes).

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// The attributes exist in Clang only; GCC builds compile them away entirely.
#if defined(__clang__) && (!defined(SWIG))
#define DBR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DBR_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define DBR_CAPABILITY(x) DBR_THREAD_ANNOTATION(capability(x))
#define DBR_SCOPED_CAPABILITY DBR_THREAD_ANNOTATION(scoped_lockable)
#define DBR_GUARDED_BY(x) DBR_THREAD_ANNOTATION(guarded_by(x))
#define DBR_PT_GUARDED_BY(x) DBR_THREAD_ANNOTATION(pt_guarded_by(x))
#define DBR_ACQUIRED_BEFORE(...) DBR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DBR_ACQUIRED_AFTER(...) DBR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define DBR_REQUIRES(...) DBR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DBR_REQUIRES_SHARED(...) \
  DBR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define DBR_ACQUIRE(...) DBR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DBR_ACQUIRE_SHARED(...) \
  DBR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DBR_RELEASE(...) DBR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DBR_RELEASE_SHARED(...) \
  DBR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define DBR_RELEASE_GENERIC(...) \
  DBR_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define DBR_TRY_ACQUIRE(...) \
  DBR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define DBR_TRY_ACQUIRE_SHARED(...) \
  DBR_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define DBR_EXCLUDES(...) DBR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define DBR_ASSERT_CAPABILITY(x) DBR_THREAD_ANNOTATION(assert_capability(x))
#define DBR_RETURN_CAPABILITY(x) DBR_THREAD_ANNOTATION(lock_returned(x))
#define DBR_NO_THREAD_SAFETY_ANALYSIS \
  DBR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dbr::util {

/// Annotated std::mutex: the only mutex type the repo uses directly (the
/// invariant linter rejects naked std::mutex members outside this header).
/// Declaring one names a capability Clang can track; pair it with
/// DBR_GUARDED_BY on the fields it protects.
class DBR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Acquires the mutex (blocking).
  void lock() DBR_ACQUIRE() { mu_.lock(); }
  /// Releases the mutex.
  void unlock() DBR_RELEASE() { mu_.unlock(); }
  /// Acquires without blocking; true when the lock was taken.
  bool try_lock() DBR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std::condition_variable
  /// (see CondVar/UniqueLock below). Bypasses the analysis — prefer the
  /// wrappers.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated std::shared_mutex for reader/writer splits: exclusive
/// lock()/unlock() plus shared lock_shared()/unlock_shared(), each visible
/// to the analysis (DBR_REQUIRES_SHARED for read paths).
class DBR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  /// Acquires exclusively (writer side).
  void lock() DBR_ACQUIRE() { mu_.lock(); }
  /// Releases the exclusive hold.
  void unlock() DBR_RELEASE() { mu_.unlock(); }
  /// Acquires exclusively without blocking; true when taken.
  bool try_lock() DBR_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  /// Acquires shared (reader side).
  void lock_shared() DBR_ACQUIRE_SHARED() { mu_.lock_shared(); }
  /// Releases a shared hold.
  void unlock_shared() DBR_RELEASE_SHARED() { mu_.unlock_shared(); }
  /// Acquires shared without blocking; true when taken.
  bool try_lock_shared() DBR_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex — the annotated std::lock_guard. The
/// analysis knows the capability is held from construction to scope exit.
class DBR_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `mu` for the lifetime of the guard.
  explicit MutexLock(Mutex& mu) DBR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DBR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex (writer side).
class DBR_SCOPED_CAPABILITY SharedMutexLock {
 public:
  /// Acquires `mu` exclusively for the lifetime of the guard.
  explicit SharedMutexLock(SharedMutex& mu) DBR_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedMutexLock() DBR_RELEASE() { mu_.unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class DBR_SCOPED_CAPABILITY SharedReaderLock {
 public:
  /// Acquires `mu` shared for the lifetime of the guard.
  explicit SharedReaderLock(SharedMutex& mu) DBR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  // Generic release: the analysis pairs it with the shared acquisition above
  // (the dtor cannot name which mode it releases).
  ~SharedReaderLock() DBR_RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII lock over a Mutex that a CondVar can wait on — the annotated
/// std::unique_lock. To the analysis the capability is held for the guard's
/// whole scope; CondVar::wait's internal unlock/relock is invisible, which
/// is sound because wait() always reacquires before returning. Write wait
/// loops as `while (!cond) cv.wait(lk);` so the condition reads check out
/// against the held capability.
class DBR_SCOPED_CAPABILITY UniqueLock {
 public:
  /// Acquires `mu` for the lifetime of the guard.
  explicit UniqueLock(Mutex& mu) DBR_ACQUIRE(mu) : lk_(mu.native()) {}
  // The std::unique_lock member releases on destruction; the empty body
  // (rather than `= default`) keeps the release annotation attachable.
  ~UniqueLock() DBR_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// The wrapped std::unique_lock a std::condition_variable waits on.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable paired with UniqueLock. wait() carries no annotation:
/// the capability is continuously claimed by the UniqueLock (see above), so
/// guarded condition reads around the wait are still analysis-checked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; `lk` is released while blocked and reacquired
  /// before returning, exactly like std::condition_variable::wait.
  void wait(UniqueLock& lk) { cv_.wait(lk.native()); }

  /// Wakes one waiter.
  void notify_one() { cv_.notify_one(); }
  /// Wakes every waiter.
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dbr::util
