#pragma once

#include <cstdint>
#include <vector>

#include "util/require.hpp"

namespace dbr {

/// Deterministic 64-bit PRNG (SplitMix64). Used for all Monte-Carlo
/// experiments so tables are reproducible from a seed; not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound) without modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    require(bound > 0, "Rng::below requires bound > 0");
    const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// k distinct values sampled uniformly from [0, population) via partial
  /// Floyd sampling; O(k) expected time, result unsorted but deterministic.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t population, std::uint64_t k) {
    require(k <= population, "cannot sample more values than the population");
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(k));
    // Floyd's algorithm: for j in [population-k, population), draw t in [0, j];
    // if t already chosen, take j instead.
    for (std::uint64_t j = population - k; j < population; ++j) {
      const std::uint64_t t = below(j + 1);
      bool seen = false;
      for (std::uint64_t v : out) {
        if (v == t) {
          seen = true;
          break;
        }
      }
      out.push_back(seen ? j : t);
    }
    return out;
  }

  /// Derives an independent stream (for per-thread RNGs in parallel sweeps).
  Rng split(std::uint64_t stream) const {
    Rng r(state_ ^ (0x9e3779b97f4a7c15ull * (stream + 1)));
    r.next_u64();
    return r;
  }

 private:
  std::uint64_t state_;
};

}  // namespace dbr
