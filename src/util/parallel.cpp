#include "util/parallel.hpp"

#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace dbr {

unsigned worker_count() {
  if (const char* env = std::getenv("DBR_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void parallel_blocks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t workers =
      std::min<std::size_t>(worker_count(), count == 0 ? 1 : count);
  if (workers <= 1) {
    fn(0, 0, count);
    return;
  }
  std::exception_ptr first_error;
  util::Mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    threads.emplace_back([&, w, begin, end] {
      try {
        fn(w, begin, end);
      } catch (...) {
        const util::MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  parallel_blocks(count, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace dbr
