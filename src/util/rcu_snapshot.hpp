#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/thread_annotations.hpp"

namespace dbr::util {

/// Read-copy-update publication cell: writers publish immutable snapshots,
/// readers resolve against the latest one without taking any mutex.
///
/// The reader side is wait-free — one counter increment, one pointer load,
/// one counter decrement — and, unlike libstdc++'s atomic<shared_ptr>
/// (whose load() unlocks its embedded spinlock with a relaxed RMW and is
/// therefore formally racy, which ThreadSanitizer rightly reports), every
/// cross-thread edge here is an explicit acquire/release or seq_cst
/// operation on a std::atomic, so the protocol is clean under TSan.
///
/// Protocol. Readers: increment `readers_` (seq_cst), load the raw
/// snapshot pointer (seq_cst), use it, decrement (release). Writers
/// (externally serialized — hold your writer mutex): store the new raw
/// pointer (seq_cst), retire the previous owning shared_ptr, then reclaim
/// retired snapshots once `readers_` is observed 0 (seq_cst/acquire load).
///
/// Safety argument. In the seq_cst total order, a writer's reclaim load
/// that observes 0 precedes any still-unseen reader increment, and the
/// writer's pointer store precedes that load — so such a reader's pointer
/// load returns the *new* snapshot, never a retired one. A reader that
/// was counted has decremented with release order before the writer's
/// acquire observation of 0, so all its reads happen-before the free.
/// Readers that hold shared state *inside* a snapshot beyond the guard's
/// lifetime must copy an owning pointer out while the guard is live.
///
/// Reclamation is deferred, not blocking: when readers are in flight the
/// retired snapshot just joins a retire list that later publishes retry.
/// Only if the list reaches kMaxRetired does the writer spin for the
/// (microsecond-scale) reader sections to drain, bounding memory.
template <typename T>
class DBR_CAPABILITY("rcu_cell") RcuSnapshot {
 public:
  /// Pins the current snapshot for the guard's lifetime. Cheap enough to
  /// construct per lookup; never blocks, never takes a mutex.
  ///
  /// To Clang's thread-safety analysis a live guard holds the cell's
  /// capability *shared*, and publish() below excludes it — so the PR 8
  /// publish-under-own-ReadGuard self-deadlock is a compile error, not a
  /// lucky-schedule TSan find (scripts/check_invariants.py enforces the
  /// same rule for GCC-only builds).
  class DBR_SCOPED_CAPABILITY ReadGuard {
   public:
    explicit ReadGuard(const RcuSnapshot& cell) DBR_ACQUIRE_SHARED(cell)
        : cell_(cell) {
      cell_.readers_.fetch_add(1, std::memory_order_seq_cst);
      ptr_ = cell_.current_.load(std::memory_order_seq_cst);
    }
    // Generic release: the dtor cannot name the shared mode it releases.
    ~ReadGuard() DBR_RELEASE_GENERIC() {
      cell_.readers_.fetch_sub(1, std::memory_order_release);
    }

    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    /// The pinned snapshot; nullptr when nothing has been published.
    const T* get() const { return ptr_; }
    const T* operator->() const { return ptr_; }
    const T& operator*() const { return *ptr_; }
    explicit operator bool() const { return ptr_ != nullptr; }

   private:
    const RcuSnapshot& cell_;
    const T* ptr_;
  };

  RcuSnapshot() = default;
  RcuSnapshot(const RcuSnapshot&) = delete;
  RcuSnapshot& operator=(const RcuSnapshot&) = delete;

  /// Publishes `next` (may be null to publish "empty") and retires the
  /// previous snapshot. Writers must be externally serialized; concurrent
  /// readers keep draining off whichever snapshot they pinned.
  ///
  /// Precondition: the calling thread must not hold a live ReadGuard on
  /// this cell — once the retire list is full, reclaim() waits for
  /// `readers_` to drain, and a guard pinned by the caller itself would
  /// never release (self-deadlock). Scope read guards so they end before
  /// the publish. DBR_EXCLUDES makes Clang reject a call site that provably
  /// holds this cell's guard; the invariant linter carries the same rule.
  void publish(std::shared_ptr<const T> next) DBR_EXCLUDES(this) {
    current_.store(next.get(), std::memory_order_seq_cst);
    if (owner_ != nullptr) retired_.push_back(std::move(owner_));
    owner_ = std::move(next);
    reclaim();
  }

 private:
  /// Frees retired snapshots once no reader can still hold one. Memory
  /// bound: past kMaxRetired deferred snapshots the writer waits out the
  /// in-flight readers instead of deferring again.
  void reclaim() {
    static constexpr std::size_t kMaxRetired = 16;
    if (retired_.empty()) return;
    if (readers_.load(std::memory_order_seq_cst) == 0) {
      retired_.clear();
      return;
    }
    if (retired_.size() < kMaxRetired) return;
    while (readers_.load(std::memory_order_acquire) != 0) {
    }
    retired_.clear();
  }

  std::atomic<const T*> current_{nullptr};  ///< what readers resolve against
  mutable std::atomic<std::size_t> readers_{0};  ///< in-flight ReadGuards
  std::shared_ptr<const T> owner_;  ///< keeps `current_` alive (writer-owned)
  std::vector<std::shared_ptr<const T>> retired_;  ///< awaiting quiescence
};

}  // namespace dbr::util
