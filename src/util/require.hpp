#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dbr {

/// Thrown when a caller violates a documented precondition of a public API.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails; indicates a library bug.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Checks a documented precondition of a public entry point.
/// Throws dbr::precondition_error with the offending location on failure.
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw precondition_error(std::string(loc.file_name()) + ":" +
                             std::to_string(loc.line()) + ": " + message);
  }
}

/// Checks an internal invariant. Failure means the library itself is wrong,
/// so the error type is distinct from precondition violations.
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw invariant_error(std::string(loc.file_name()) + ":" +
                          std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace dbr
