#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dbr {

/// Minimal fixed-column text table used by the benchmark harness to render
/// paper-style tables (right-aligned numeric columns under a header row).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; values are appended with add().
  TextTable& new_row();
  TextTable& add(const std::string& value);
  TextTable& add(std::int64_t value);
  TextTable& add(std::uint64_t value);
  TextTable& add(int value) { return add(static_cast<std::int64_t>(value)); }
  TextTable& add(unsigned value) { return add(static_cast<std::uint64_t>(value)); }
  /// Fixed-point rendering with the given number of decimals.
  TextTable& add(double value, int decimals = 2);

  /// Renders with column separators and a rule under the header.
  std::string to_string() const;
  /// Comma-separated rendering for machine consumption.
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbr
