#pragma once

// Independent re-verification of embedding answers.
//
// The oracle re-checks an EmbedResult against its EmbedRequest using only
// the B(d,n) adjacency arithmetic of debruijn/ and util/ plus nt/ number
// theory. It deliberately never includes the constructions under test
// (core/, butterfly/): every quantity it needs from the paper - the
// Proposition 2.2/2.3 length envelopes, psi(d) and phi(d) edge-fault
// budgets (Lemma 3.5, Propositions 3.2-3.4), butterfly adjacency and the
// Lemma 3.8 edge pull-back, and the combined mixed-fault budget (node
// faults plus undominated non-loop edge faults) - is re-derived here from
// first principles, so a bug in a construction cannot silently agree with
// its own checker.
// service/types.hpp contributes the request/result data types only; it
// contains no construction code.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "service/types.hpp"
#include "util/word.hpp"

namespace dbr::verify {

enum class Violation : std::uint8_t {
  kWrongStrategy = 0,   ///< strategy_used disagrees with the resolved request
  kMissingError,        ///< non-kOk result without a diagnostic message
  kGhostRing,           ///< non-kOk result carrying ring nodes
  kEmptyRing,           ///< kOk result with no nodes
  kLengthMismatch,      ///< ring_length != ring.nodes.size()
  kNodeOutOfRange,      ///< ring node outside B(d,n) resp. F(d,n)
  kNotAnEdge,           ///< consecutive ring nodes are not adjacent
  kRepeatedNode,        ///< ring visits a node twice
  kTouchesFaultyNode,   ///< ring visits a faulty node
  kUsesFaultyEdge,      ///< ring traverses a faulty edge
  kNotHamiltonian,      ///< edge-strategy ring does not cover the graph
  kBoundsMismatch,      ///< claimed [lower, upper] differs from the envelope
  kLengthOutsideBounds, ///< ring_length escapes the guarantee envelope
  kGuaranteeBroken,     ///< kNoEmbedding although faults are within guarantee
  kRequestNotRejected,  ///< invalid request answered with anything but kBadRequest
  kValidRequestRejected ///< valid request answered kBadRequest
};

const char* to_string(Violation v);

struct Finding {
  Violation code;
  std::string detail;
};

/// Outcome of one oracle run; empty findings means the answer checked out.
struct OracleReport {
  std::vector<Finding> findings;

  bool ok() const { return findings.empty(); }
  /// "ok" or a "; "-joined list of "code: detail" entries.
  std::string to_string() const;
};

/// Independently re-checks `result` as an answer to `request`:
///  * request preconditions (fault-kind/strategy match, n >= 2 for edge
///    strategies, gcd(d,n) = 1 for the butterfly lift, fault words in range)
///    must be mirrored by kBadRequest, and only by kBadRequest;
///  * a kOk ring must be a simple cycle whose consecutive words are genuine
///    B(d,n) (resp. F(d,n)) edges, touching no faulty node and traversing no
///    faulty edge word (butterfly edges are pulled back per Lemma 3.8);
///  * ring_length and the claimed [lower_bound, upper_bound] must match the
///    paper's envelope, and the length must sit inside it;
///  * kNoEmbedding is a violation whenever the distinct non-loop fault count
///    is within the strategy's guarantee.
OracleReport check_response(const service::EmbedRequest& request,
                            const service::EmbedResult& result);

// --- Paper guarantees, re-derived (shared with the scenario generator) ---

/// Proposition 2.2/2.3 envelope on |H| for `distinct_faults` faulty nodes:
/// lower = d^n - n*f when f <= d-2, 2^n - (n+1) when d = 2 and f = 1, else
/// 0; upper = d^n - f.
std::pair<std::uint64_t, std::uint64_t> node_ring_length_envelope(
    Digit d, unsigned n, std::uint64_t distinct_faults);

/// psi(d) of Propositions 3.1/3.2, re-derived via discrete-log parity:
/// condition (b) of Lemma 3.5 asks whether 2 = lambda^A + lambda^B for odd
/// A, B, which the oracle answers by tabulating dlog parities instead of
/// core's pairwise power scan.
std::uint64_t psi_disjoint_cycles(std::uint64_t d);

/// phi(d) = sum p_i^{e_i} - 2k over the factorization of d (Section 3.3's
/// edge-fault budget; not Euler's totient).
std::uint64_t phi_fault_budget(std::uint64_t d);

/// Largest distinct non-loop edge-fault count `strategy` is guaranteed to
/// survive: psi(d)-1 for the scan, phi(d) for the phi-construction, and
/// their maximum (Proposition 3.4) for kEdgeAuto and kButterfly. Node
/// strategies have no edge budget; requesting one is a precondition error.
std::uint64_t edge_fault_guarantee(service::Strategy strategy, std::uint64_t d);

/// Edge faults that charge a mixed request's budget: non-loop and not
/// incident to a faulty node (an edge with a faulty endpoint is dominated —
/// any node-avoiding ring already avoids it). Both lists must be sorted and
/// distinct (distinct_faults output). Re-derived here independently of
/// core/mixed_fault's accounting.
std::uint64_t countable_mixed_edges(const WordSpace& ws,
                                    const std::vector<Word>& node_faults,
                                    const std::vector<Word>& edge_faults);

/// The mixed-fault guarantee envelope on |ring|, re-derived from first
/// principles: upper = d^n - distinct node faults; lower is the larger of
/// the Proposition 2.2/2.3 envelope applied to the pull-back closure
/// (node faults + countable edges, one endpoint each) and — for node-free
/// sets within the Proposition 3.4 budget — the Hamiltonian d^n.
std::pair<std::uint64_t, std::uint64_t> mixed_ring_length_envelope(
    Digit d, unsigned n, std::uint64_t distinct_node_faults,
    std::uint64_t countable_edge_faults);

/// True if the (n+1)-word encodes a loop edge a^n -> a^n (i.e. a^(n+1)).
/// Loop faults are harmless: no ring of length >= 2 traverses a loop.
bool is_loop_edge_word(const WordSpace& ws, Word edge_word);

/// Sorted, deduplicated copy of a fault list (the oracle's own
/// canonicalization; intentionally not service::canonical_key).
std::vector<Word> distinct_faults(const std::vector<Word>& faults);

/// Empty string if the request satisfies every documented precondition,
/// otherwise a description naming the violated precondition. A node-fault
/// request whose faulty necklaces cover all of B(d,n) is invalid (the FFC
/// algorithm has no surviving component to embed in).
std::string request_precondition_violation(const service::EmbedRequest& request);

}  // namespace dbr::verify
