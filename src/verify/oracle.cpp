#include "verify/oracle.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::verify {

using service::EmbedRequest;
using service::EmbedResult;
using service::EmbedStatus;
using service::FaultKind;
using service::Strategy;

namespace {

/// d^e with overflow detection; false when the power escapes 64 bits.
bool checked_pow(std::uint64_t base, unsigned exp, std::uint64_t* out) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 && r > std::numeric_limits<std::uint64_t>::max() / base)
      return false;
    r *= base;
  }
  *out = r;
  return true;
}

/// The oracle's own kAuto resolution (mirrors the documented dispatch:
/// node faults -> kFfc, edge faults -> kEdgeAuto, mixed -> kMixed).
Strategy resolved_strategy(const EmbedRequest& request) {
  if (request.strategy != Strategy::kAuto) return request.strategy;
  switch (request.fault_kind) {
    case FaultKind::kNode: return Strategy::kFfc;
    case FaultKind::kEdge: return Strategy::kEdgeAuto;
    case FaultKind::kMixed: return Strategy::kMixed;
  }
  return Strategy::kFfc;
}

bool is_edge_strategy(Strategy s) {
  return s == Strategy::kEdgeAuto || s == Strategy::kEdgeScan ||
         s == Strategy::kEdgePhi || s == Strategy::kButterfly;
}

/// Lemma 3.5 condition (b): 2 = lambda^A + lambda^B for odd A, B. Answered
/// by tabulating discrete-log parities over Z_p^* (core/disjoint_hc.cpp
/// instead enumerates pairs of odd powers; the routes are independent).
bool two_is_sum_of_odd_powers(std::uint64_t p) {
  const std::uint64_t lambda = nt::primitive_root(p);
  std::vector<signed char> parity(p, -1);  // parity[x] = dlog_lambda(x) mod 2
  std::uint64_t v = 1;
  for (std::uint64_t e = 0; e + 1 < p; ++e) {
    parity[v] = static_cast<signed char>(e & 1);
    v = nt::mul_mod(v, lambda, p);
  }
  for (std::uint64_t a = 1; a < p; ++a) {
    if (parity[a] != 1) continue;            // a = lambda^A with A odd
    const std::uint64_t b = (2 + p - a) % p; // need lambda^B = 2 - a, B odd
    if (b != 0 && parity[b] == 1) return true;
  }
  return false;
}

std::uint64_t psi_prime_power(std::uint64_t p, unsigned e) {
  std::uint64_t q = 1;
  for (unsigned i = 0; i < e; ++i) q *= p;
  if (p == 2) return q - 1;
  if ((p - 1) / 2 % 2 == 0 && two_is_sum_of_odd_powers(p)) return (q + 1) / 2;
  return (q - 1) / 2;
}

std::uint64_t count_non_loop(const WordSpace& ws, const std::vector<Word>& faults) {
  std::uint64_t count = 0;
  for (Word f : faults) {
    if (!is_loop_edge_word(ws, f)) ++count;
  }
  return count;
}

}  // namespace

const char* to_string(Violation v) {
  switch (v) {
    case Violation::kWrongStrategy: return "wrong_strategy";
    case Violation::kMissingError: return "missing_error";
    case Violation::kGhostRing: return "ghost_ring";
    case Violation::kEmptyRing: return "empty_ring";
    case Violation::kLengthMismatch: return "length_mismatch";
    case Violation::kNodeOutOfRange: return "node_out_of_range";
    case Violation::kNotAnEdge: return "not_an_edge";
    case Violation::kRepeatedNode: return "repeated_node";
    case Violation::kTouchesFaultyNode: return "touches_faulty_node";
    case Violation::kUsesFaultyEdge: return "uses_faulty_edge";
    case Violation::kNotHamiltonian: return "not_hamiltonian";
    case Violation::kBoundsMismatch: return "bounds_mismatch";
    case Violation::kLengthOutsideBounds: return "length_outside_bounds";
    case Violation::kGuaranteeBroken: return "guarantee_broken";
    case Violation::kRequestNotRejected: return "request_not_rejected";
    case Violation::kValidRequestRejected: return "valid_request_rejected";
  }
  return "unknown";
}

std::string OracleReport::to_string() const {
  if (findings.empty()) return "ok";
  std::string out;
  for (const Finding& f : findings) {
    if (!out.empty()) out += "; ";
    out += verify::to_string(f.code);
    out += ": ";
    out += f.detail;
  }
  return out;
}

std::pair<std::uint64_t, std::uint64_t> node_ring_length_envelope(
    Digit d, unsigned n, std::uint64_t distinct_faults) {
  const std::uint64_t size = WordSpace(d, n).size();
  const std::uint64_t f = distinct_faults;
  const std::uint64_t upper = f >= size ? 0 : size - f;
  std::uint64_t lower = 0;
  if (f <= d - 2) {
    const std::uint64_t removed = static_cast<std::uint64_t>(n) * f;
    lower = removed >= size ? 0 : size - removed;  // Proposition 2.2
  } else if (d == 2 && f == 1) {
    const std::uint64_t removed = static_cast<std::uint64_t>(n) + 1;
    lower = removed >= size ? 0 : size - removed;  // Proposition 2.3
  }
  return {lower, upper};
}

std::uint64_t psi_disjoint_cycles(std::uint64_t d) {
  require(d >= 2, "psi(d) requires d >= 2");
  std::uint64_t result = 1;
  for (const auto& pp : nt::factor(d)) {
    result *= psi_prime_power(pp.prime, pp.exponent);
  }
  return result;
}

std::uint64_t phi_fault_budget(std::uint64_t d) {
  require(d >= 2, "phi(d) requires d >= 2");
  const auto pf = nt::factor(d);
  std::uint64_t sum = 0;
  for (const auto& pp : pf) sum += pp.value();
  return sum - 2 * pf.size();
}

std::uint64_t edge_fault_guarantee(Strategy strategy, std::uint64_t d) {
  switch (strategy) {
    case Strategy::kEdgeScan:
      return psi_disjoint_cycles(d) - 1;
    case Strategy::kEdgePhi:
      return phi_fault_budget(d);
    case Strategy::kEdgeAuto:
    case Strategy::kButterfly:
      return std::max(psi_disjoint_cycles(d) - 1, phi_fault_budget(d));
    default:
      require(false, "edge_fault_guarantee requires an edge strategy");
      return 0;
  }
}

bool is_loop_edge_word(const WordSpace& ws, Word edge_word) {
  const Digit a = static_cast<Digit>(edge_word % ws.radix());
  return edge_word / ws.radix() == ws.repeated(a);
}

std::uint64_t countable_mixed_edges(const WordSpace& ws,
                                    const std::vector<Word>& node_faults,
                                    const std::vector<Word>& edge_faults) {
  std::uint64_t count = 0;
  for (Word e : edge_faults) {
    if (is_loop_edge_word(ws, e)) continue;
    const auto [u, v] = ws.edge_endpoints(e);
    if (std::binary_search(node_faults.begin(), node_faults.end(), u) ||
        std::binary_search(node_faults.begin(), node_faults.end(), v)) {
      continue;  // dominated by a faulty endpoint
    }
    ++count;
  }
  return count;
}

std::pair<std::uint64_t, std::uint64_t> mixed_ring_length_envelope(
    Digit d, unsigned n, std::uint64_t distinct_node_faults,
    std::uint64_t countable_edge_faults) {
  const std::uint64_t size = WordSpace(d, n).size();
  const std::uint64_t upper =
      distinct_node_faults >= size ? 0 : size - distinct_node_faults;
  // Pull-back guarantee: each countable edge fault retires at most one
  // extra necklace, so the Proposition 2.2/2.3 node envelope applies to the
  // combined count.
  std::uint64_t lower =
      node_ring_length_envelope(d, n,
                                distinct_node_faults + countable_edge_faults)
          .first;
  // Node-free sets within the Proposition 3.4 budget are guaranteed a
  // Hamiltonian cycle by the Section 3.3 constructions.
  if (distinct_node_faults == 0 &&
      countable_edge_faults <= edge_fault_guarantee(Strategy::kEdgeAuto, d)) {
    lower = size;
  }
  return {lower, upper};
}

std::vector<Word> distinct_faults(const std::vector<Word>& faults) {
  std::vector<Word> out = faults;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string request_precondition_violation(const EmbedRequest& request) {
  if (request.base < 2) return "base must be >= 2";
  if (request.n < 1) return "n must be >= 1";
  std::uint64_t edge_space = 0;
  if (!checked_pow(request.base, request.n + 1, &edge_space))
    return "d^(n+1) must be representable in 64 bits";
  const std::uint64_t node_space = edge_space / request.base;
  const Strategy strategy = resolved_strategy(request);
  const bool mixed = request.fault_kind == FaultKind::kMixed;
  if (!mixed && !request.edge_faults.empty())
    return "edge_faults requires the mixed fault kind";
  if (strategy == Strategy::kMixed && !mixed)
    return "mixed strategy requires the mixed fault kind";
  if (mixed && strategy != Strategy::kMixed)
    return "mixed fault kind requires the mixed strategy";
  if (strategy == Strategy::kMixed && request.n < 2)
    return "mixed-fault strategy requires n >= 2";
  const bool node_faults = request.fault_kind == FaultKind::kNode;
  if (strategy == Strategy::kFfc && !node_faults)
    return "ffc strategy requires node faults";
  if (is_edge_strategy(strategy) && request.fault_kind != FaultKind::kEdge)
    return "edge strategies require edge faults";
  if (is_edge_strategy(strategy) && request.n < 2)
    return "edge-fault strategies require n >= 2";
  if (strategy == Strategy::kButterfly &&
      nt::gcd(request.base, request.n) != 1)
    return "butterfly lift requires gcd(d, n) = 1";
  const std::uint64_t limit =
      request.fault_kind == FaultKind::kEdge ? edge_space : node_space;
  for (Word f : request.faults) {
    if (f >= limit) {
      return "fault word " + std::to_string(f) + " out of range for B(" +
             std::to_string(request.base) + "," + std::to_string(request.n) +
             ")";
    }
  }
  for (Word f : request.edge_faults) {
    if (f >= edge_space) {
      return "fault word " + std::to_string(f) + " out of range for B(" +
             std::to_string(request.base) + "," + std::to_string(request.n) +
             ")";
    }
  }
  if (node_faults || mixed) {
    // The FFC algorithm removes whole necklaces; if the rotation closure of
    // the fault set covers B(d,n) there is nothing left to embed in. The
    // closure has at most n * |faults| nodes, so smaller sets cannot cover.
    const std::vector<Word> faults = distinct_faults(request.faults);
    if (static_cast<std::uint64_t>(request.n) * faults.size() >= node_space) {
      const WordSpace ws(request.base, request.n);
      std::vector<bool> covered(node_space, false);
      std::uint64_t count = 0;
      for (Word f : faults) {
        for (unsigned k = 0; k < request.n; ++k) {
          const Word r = ws.rotate_left(f, k);
          if (!covered[r]) {
            covered[r] = true;
            ++count;
          }
        }
      }
      if (count == node_space) return "faulty necklaces cover every node of B(d,n)";
    }
  }
  return "";
}

namespace {

/// Shared simple-cycle checks on a De Bruijn node ring: range, adjacency
/// (ws.suffix(u) == ws.prefix(v), the arithmetic definition of a B(d,n)
/// edge), and node distinctness. Reports at most one finding per code.
void check_debruijn_ring(const WordSpace& ws, const std::vector<Word>& nodes,
                         OracleReport& report) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= ws.size()) {
      report.findings.push_back(
          {Violation::kNodeOutOfRange,
           "ring node " + std::to_string(nodes[i]) + " at position " +
               std::to_string(i) + " outside B(d,n)"});
      return;  // adjacency arithmetic below assumes in-range words
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Word u = nodes[i];
    const Word v = nodes[(i + 1) % nodes.size()];
    if (ws.suffix(u) != ws.prefix(v)) {
      report.findings.push_back(
          {Violation::kNotAnEdge, ws.to_string(u) + " -> " + ws.to_string(v) +
                                      " at position " + std::to_string(i) +
                                      " is not a B(d,n) edge"});
      break;
    }
  }
  std::vector<Word> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) {
    report.findings.push_back(
        {Violation::kRepeatedNode,
         "ring visits node " + ws.to_string(*dup) + " more than once"});
  }
}

void check_claimed_bounds(const EmbedResult& result, std::uint64_t lower,
                          std::uint64_t upper, OracleReport& report) {
  if (result.lower_bound != lower || result.upper_bound != upper) {
    report.findings.push_back(
        {Violation::kBoundsMismatch,
         "claimed [" + std::to_string(result.lower_bound) + ", " +
             std::to_string(result.upper_bound) + "], paper envelope [" +
             std::to_string(lower) + ", " + std::to_string(upper) + "]"});
  }
  if (result.ring_length < lower || result.ring_length > upper) {
    report.findings.push_back(
        {Violation::kLengthOutsideBounds,
         "ring_length " + std::to_string(result.ring_length) +
             " outside envelope [" + std::to_string(lower) + ", " +
             std::to_string(upper) + "]"});
  }
}

/// Node-fault (FFC) ring: simple cycle avoiding every faulty node, with the
/// Proposition 2.2/2.3 envelope.
void check_node_ring(const WordSpace& ws, const std::vector<Word>& faults,
                     const EmbedResult& result, OracleReport& report) {
  check_debruijn_ring(ws, result.ring.nodes, report);
  const std::unordered_set<Word> faulty(faults.begin(), faults.end());
  for (Word v : result.ring.nodes) {
    if (faulty.contains(v)) {
      report.findings.push_back(
          {Violation::kTouchesFaultyNode,
           "ring visits faulty node " + ws.to_string(v)});
      break;
    }
  }
  const auto [lower, upper] =
      node_ring_length_envelope(ws.radix(), ws.length(), faults.size());
  check_claimed_bounds(result, lower, upper, report);
}

/// Edge-fault ring: Hamiltonian cycle of B(d,n) traversing no faulty edge
/// word.
void check_edge_ring(const WordSpace& ws, const std::vector<Word>& faults,
                     const EmbedResult& result, OracleReport& report) {
  check_debruijn_ring(ws, result.ring.nodes, report);
  if (result.ring.nodes.size() != ws.size()) {
    report.findings.push_back(
        {Violation::kNotHamiltonian,
         "edge-strategy ring has " + std::to_string(result.ring.nodes.size()) +
             " nodes, B(d,n) has " + std::to_string(ws.size())});
  }
  const std::unordered_set<Word> faulty(faults.begin(), faults.end());
  for (std::size_t i = 0; i < result.ring.nodes.size(); ++i) {
    const Word u = result.ring.nodes[i];
    const Word v = result.ring.nodes[(i + 1) % result.ring.nodes.size()];
    if (u >= ws.size() || v >= ws.size()) break;  // already reported
    const Word e = ws.edge_word(u, ws.tail(v));
    if (faulty.contains(e)) {
      report.findings.push_back(
          {Violation::kUsesFaultyEdge,
           "ring traverses faulty edge word " + std::to_string(e) +
               " at position " + std::to_string(i)});
      break;
    }
  }
  check_claimed_bounds(result, ws.size(), ws.size(), report);
}

/// Mixed-fault ring: a simple cycle of B(d,n) — not necessarily Hamiltonian
/// — that visits no faulty node and traverses no faulty edge word, with the
/// combined pull-back/Hamiltonian envelope.
void check_mixed_ring(const WordSpace& ws, const std::vector<Word>& node_faults,
                      const std::vector<Word>& edge_faults,
                      const EmbedResult& result, OracleReport& report) {
  check_debruijn_ring(ws, result.ring.nodes, report);
  const std::unordered_set<Word> faulty_nodes(node_faults.begin(),
                                              node_faults.end());
  for (Word v : result.ring.nodes) {
    if (faulty_nodes.contains(v)) {
      report.findings.push_back(
          {Violation::kTouchesFaultyNode,
           "ring visits faulty node " + ws.to_string(v)});
      break;
    }
  }
  const std::unordered_set<Word> faulty_edges(edge_faults.begin(),
                                              edge_faults.end());
  for (std::size_t i = 0; i < result.ring.nodes.size(); ++i) {
    const Word u = result.ring.nodes[i];
    const Word v = result.ring.nodes[(i + 1) % result.ring.nodes.size()];
    if (u >= ws.size() || v >= ws.size()) break;  // already reported
    const Word e = ws.edge_word(u, ws.tail(v));
    if (faulty_edges.contains(e)) {
      report.findings.push_back(
          {Violation::kUsesFaultyEdge,
           "ring traverses faulty edge word " + std::to_string(e) +
               " at position " + std::to_string(i)});
      break;
    }
  }
  const auto [lower, upper] = mixed_ring_length_envelope(
      ws.radix(), ws.length(), node_faults.size(),
      countable_mixed_edges(ws, node_faults, edge_faults));
  check_claimed_bounds(result, lower, upper, report);
}

/// Butterfly ring: Hamiltonian cycle of F(d,n) whose edges, pulled back to
/// B(d,n) per Lemma 3.8, avoid every faulty De Bruijn edge word. Butterfly
/// adjacency and the pull-back are re-derived here from the level/column
/// encoding (id = level * d^n + column) and rotation algebra alone.
void check_butterfly_ring(const WordSpace& ws, const std::vector<Word>& faults,
                          const EmbedResult& result, OracleReport& report) {
  const unsigned n = ws.length();
  const Word columns = ws.size();
  const std::uint64_t total = static_cast<std::uint64_t>(n) * columns;
  const std::vector<Word>& nodes = result.ring.nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= total) {
      report.findings.push_back(
          {Violation::kNodeOutOfRange,
           "ring node " + std::to_string(nodes[i]) + " at position " +
               std::to_string(i) + " outside F(d,n)"});
      return;
    }
  }
  const std::unordered_set<Word> faulty(faults.begin(), faults.end());
  bool edge_reported = false;
  bool fault_reported = false;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const unsigned lu = static_cast<unsigned>(nodes[i] / columns);
    const Word cu = nodes[i] % columns;
    const Word next = nodes[(i + 1) % nodes.size()];
    const unsigned lv = static_cast<unsigned>(next / columns);
    const Word cv = next % columns;
    // (lu, cu) -> (lv, cv) is a butterfly edge iff the level advances by one
    // (mod n) and the columns agree outside digit lu.
    const bool adjacent = lv == (lu + 1) % n &&
                          ws.with_digit(cu, lu, ws.digit(cv, lu)) == cv;
    if (!adjacent) {
      if (!edge_reported) {
        report.findings.push_back(
            {Violation::kNotAnEdge,
             "positions " + std::to_string(i) + " -> " +
                 std::to_string((i + 1) % nodes.size()) +
                 " are not a butterfly edge"});
        edge_reported = true;
      }
      continue;
    }
    // Lemma 3.8 pull-back: S_U^j -> S_V^{j+1} implements the De Bruijn edge
    // U -> V where U = pi^{lu}(cu), V = pi^{lv}(cv).
    const Word u = ws.rotate_left(cu, lu);
    const Word v = ws.rotate_left(cv, lv % n);
    if (ws.suffix(u) != ws.prefix(v)) {
      if (!edge_reported) {
        report.findings.push_back(
            {Violation::kNotAnEdge,
             "butterfly edge at position " + std::to_string(i) +
                 " does not project to a B(d,n) edge (Lemma 3.8)"});
        edge_reported = true;
      }
      continue;
    }
    const Word e = ws.edge_word(u, ws.tail(v));
    if (!fault_reported && faulty.contains(e)) {
      report.findings.push_back(
          {Violation::kUsesFaultyEdge,
           "lifted ring implements faulty De Bruijn edge word " +
               std::to_string(e) + " at position " + std::to_string(i)});
      fault_reported = true;
    }
  }
  std::vector<Word> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) {
    report.findings.push_back(
        {Violation::kRepeatedNode, "ring visits butterfly node " +
                                       std::to_string(*dup) +
                                       " more than once"});
  }
  if (nodes.size() != total) {
    report.findings.push_back(
        {Violation::kNotHamiltonian,
         "butterfly ring has " + std::to_string(nodes.size()) +
             " nodes, F(d,n) has " + std::to_string(total)});
  }
  check_claimed_bounds(result, total, total, report);
}

}  // namespace

OracleReport check_response(const EmbedRequest& request,
                            const EmbedResult& result) {
  OracleReport report;
  const auto add = [&report](Violation code, std::string detail) {
    report.findings.push_back({code, std::move(detail)});
  };

  const std::string precondition = request_precondition_violation(request);
  if (!precondition.empty()) {
    if (result.status != EmbedStatus::kBadRequest) {
      add(Violation::kRequestNotRejected,
          precondition + ", but status is " +
              service::to_string(result.status));
    } else {
      if (result.error.empty())
        add(Violation::kMissingError, "kBadRequest without a message");
      if (!result.ring.nodes.empty())
        add(Violation::kGhostRing, "kBadRequest carrying ring nodes");
    }
    return report;
  }

  const Strategy strategy = resolved_strategy(request);
  if (result.strategy_used != strategy) {
    add(Violation::kWrongStrategy,
        std::string("request resolves to ") + service::to_string(strategy) +
            ", result claims " + service::to_string(result.strategy_used));
  }
  const WordSpace ws(request.base, request.n);
  const std::vector<Word> faults = distinct_faults(request.faults);
  const std::vector<Word> efaults = distinct_faults(request.edge_faults);

  switch (result.status) {
    case EmbedStatus::kBadRequest:
      add(Violation::kValidRequestRejected,
          result.error.empty() ? "no reason given" : result.error);
      return report;
    case EmbedStatus::kInternalError:
      // Not a verdict the oracle can falsify, but it must carry a reason
      // and no payload.
      if (result.error.empty())
        add(Violation::kMissingError, "kInternalError without a message");
      if (!result.ring.nodes.empty())
        add(Violation::kGhostRing, "kInternalError carrying ring nodes");
      return report;
    case EmbedStatus::kNoEmbedding: {
      if (result.error.empty())
        add(Violation::kMissingError, "kNoEmbedding without a message");
      if (!result.ring.nodes.empty())
        add(Violation::kGhostRing, "kNoEmbedding carrying ring nodes");
      if (strategy == Strategy::kFfc) {
        // A valid node-fault request leaves a nonfaulty node, and the FFC
        // algorithm always embeds in the surviving component.
        add(Violation::kGuaranteeBroken,
            "FFC must embed whenever a nonfaulty node remains");
      } else if (strategy == Strategy::kMixed) {
        const std::uint64_t countable = countable_mixed_edges(ws, faults, efaults);
        const std::uint64_t lower =
            mixed_ring_length_envelope(request.base, request.n, faults.size(),
                                       countable)
                .first;
        if (lower > 0) {
          add(Violation::kGuaranteeBroken,
              std::to_string(faults.size()) + " node + " +
                  std::to_string(countable) +
                  " countable edge faults within the mixed guarantee (lower "
                  "bound " +
                  std::to_string(lower) + ")");
        }
      } else {
        const std::uint64_t countable = count_non_loop(ws, faults);
        const std::uint64_t budget =
            edge_fault_guarantee(strategy, request.base);
        if (countable <= budget) {
          add(Violation::kGuaranteeBroken,
              std::to_string(countable) + " distinct non-loop faults within " +
                  "the guarantee of " + std::to_string(budget) + " for " +
                  service::to_string(strategy));
        }
      }
      return report;
    }
    case EmbedStatus::kOk:
      break;
  }

  if (result.ring.nodes.empty()) {
    add(Violation::kEmptyRing, "kOk result with no ring nodes");
    return report;
  }
  if (result.ring_length != result.ring.nodes.size()) {
    add(Violation::kLengthMismatch,
        "ring_length " + std::to_string(result.ring_length) + " but ring has " +
            std::to_string(result.ring.nodes.size()) + " nodes");
  }

  switch (strategy) {
    case Strategy::kFfc:
      check_node_ring(ws, faults, result, report);
      break;
    case Strategy::kEdgeAuto:
    case Strategy::kEdgeScan:
    case Strategy::kEdgePhi:
      check_edge_ring(ws, faults, result, report);
      break;
    case Strategy::kButterfly:
      check_butterfly_ring(ws, faults, result, report);
      break;
    case Strategy::kMixed:
      check_mixed_ring(ws, faults, efaults, result, report);
      break;
    case Strategy::kAuto:
      break;  // unreachable: resolved_strategy never returns kAuto
  }
  return report;
}

}  // namespace dbr::verify
