#include "verify/scenario.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/word.hpp"
#include "verify/oracle.hpp"

namespace dbr::verify {

using service::EmbedRequest;
using service::FaultKind;
using service::Strategy;

namespace {

struct GraphShape {
  Digit d;
  unsigned n;
};

// Small enough that a sweep of hundreds of scenarios per strategy stays
// test-sized, large enough that necklace structure and fault budgets are
// nontrivial (64 <= d^n <= 1024).
constexpr GraphShape kNodeGraphs[] = {{2, 6}, {2, 8}, {2, 10}, {3, 4}, {3, 5},
                                      {4, 4}, {5, 3}, {5, 4},  {6, 3}, {7, 3}};
constexpr GraphShape kEdgeGraphs[] = {{2, 6}, {2, 8}, {3, 4}, {3, 5},
                                      {4, 4}, {4, 5}, {5, 3}, {5, 4},
                                      {6, 3}, {7, 3}, {8, 3}, {9, 3}};
// gcd(d, n) = 1 throughout (Proposition 3.5's lift precondition).
constexpr GraphShape kButterflyGraphs[] = {{2, 5}, {2, 7}, {3, 4}, {3, 5},
                                           {4, 5}, {5, 4}, {5, 6}, {7, 3},
                                           {8, 3}, {9, 4}};

constexpr Regime kNodeRegimes[] = {
    Regime::kFaultFree,       Regime::kWithinGuarantee,
    Regime::kBoundary,        Regime::kBeyondGuarantee,
    Regime::kClusteredNecklace, Regime::kShuffledDuplicates};
constexpr Regime kEdgeRegimes[] = {
    Regime::kFaultFree, Regime::kWithinGuarantee,    Regime::kBoundary,
    Regime::kBeyondGuarantee, Regime::kLoopEdges, Regime::kShuffledDuplicates};

/// The loop edge word a^(n+1) of B(d,n), built digit by digit.
Word loop_edge_word(Digit d, unsigned n, Digit a) {
  Word w = 0;
  for (unsigned i = 0; i <= n; ++i) w = w * d + a;
  return w;
}

/// Node-fault boundary: f = d-2 (Proposition 2.2), except d = 2 where the
/// guarantee regime is the single-fault Proposition 2.3.
std::uint64_t node_fault_boundary(Digit d) {
  return d == 2 ? 1 : static_cast<std::uint64_t>(d) - 2;
}

void shuffle(std::vector<Word>& words, Rng& rng) {
  for (std::size_t i = words.size(); i > 1; --i) {
    std::swap(words[i - 1], words[rng.below(i)]);
  }
}

/// Duplicates a few entries and permutes the presentation; the engine's
/// canonicalization must make this indistinguishable from the sorted set.
void duplicate_and_shuffle(std::vector<Word>& faults, Rng& rng) {
  if (faults.empty()) return;
  const std::uint64_t copies = 1 + rng.below(faults.size());
  for (std::uint64_t c = 0; c < copies; ++c) {
    faults.push_back(faults[rng.below(faults.size())]);
  }
  shuffle(faults, rng);
}

}  // namespace

const char* to_string(Regime r) {
  switch (r) {
    case Regime::kFaultFree: return "fault_free";
    case Regime::kWithinGuarantee: return "within_guarantee";
    case Regime::kBoundary: return "boundary";
    case Regime::kBeyondGuarantee: return "beyond_guarantee";
    case Regime::kClusteredNecklace: return "clustered_necklace";
    case Regime::kLoopEdges: return "loop_edges";
    case Regime::kShuffledDuplicates: return "shuffled_duplicates";
  }
  return "unknown";
}

std::string Scenario::describe() const {
  std::string out = "(seed=" + std::to_string(seed) +
                    ", base=" + std::to_string(request.base) +
                    ", n=" + std::to_string(request.n) + ", strategy=" +
                    service::to_string(request.strategy) + ")";
  out += " regime=";
  out += verify::to_string(regime);
  out += " kind=";
  out += service::to_string(request.fault_kind);
  out += " faults=[";
  for (std::size_t i = 0; i < request.faults.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(request.faults[i]);
  }
  out += "]";
  return out;
}

Scenario make_scenario(std::uint64_t seed, Strategy strategy) {
  // split() decorrelates strategies sharing a seed without losing the
  // (seed, strategy) -> scenario purity.
  Rng rng = Rng(seed).split(static_cast<std::uint64_t>(strategy));

  Scenario sc;
  sc.seed = seed;
  EmbedRequest& req = sc.request;
  req.strategy = strategy;

  bool node_faults = false;
  if (strategy == Strategy::kFfc) {
    node_faults = true;
  } else if (strategy == Strategy::kAuto) {
    node_faults = rng.below(2) == 0;
  }
  req.fault_kind = node_faults ? FaultKind::kNode : FaultKind::kEdge;

  GraphShape shape{};
  if (strategy == Strategy::kButterfly) {
    shape = kButterflyGraphs[rng.below(std::size(kButterflyGraphs))];
  } else if (node_faults) {
    shape = kNodeGraphs[rng.below(std::size(kNodeGraphs))];
  } else {
    shape = kEdgeGraphs[rng.below(std::size(kEdgeGraphs))];
  }
  req.base = shape.d;
  req.n = shape.n;

  sc.regime = node_faults ? kNodeRegimes[rng.below(std::size(kNodeRegimes))]
                          : kEdgeRegimes[rng.below(std::size(kEdgeRegimes))];

  // WordSpace validates the shape (overflow-checked powers), so a bad
  // future entry in the graph tables fails loudly instead of wrapping.
  const WordSpace ws(shape.d, shape.n);
  const std::uint64_t space = node_faults ? ws.size() : ws.edge_word_count();
  const std::uint64_t boundary =
      node_faults ? node_fault_boundary(shape.d)
                  : edge_fault_guarantee(strategy == Strategy::kAuto
                                             ? Strategy::kEdgeAuto
                                             : strategy,
                                         shape.d);

  std::uint64_t count = 0;
  switch (sc.regime) {
    case Regime::kFaultFree:
      count = 0;
      break;
    case Regime::kWithinGuarantee:
    case Regime::kShuffledDuplicates:
      count = boundary == 0 ? 0 : 1 + rng.below(boundary);
      break;
    case Regime::kBoundary:
      count = boundary;
      break;
    case Regime::kBeyondGuarantee:
      count = boundary + 1 + rng.below(3);
      break;
    case Regime::kClusteredNecklace: {
      // All rotations of one random word: the whole necklace goes faulty,
      // the FFC removal's worst case per fault "cluster".
      const Word anchor = rng.below(space);
      for (unsigned k = 0; k < shape.n; ++k) {
        req.faults.push_back(ws.rotate_left(anchor, k));
      }
      req.faults = distinct_faults(req.faults);
      shuffle(req.faults, rng);
      return sc;
    }
    case Regime::kLoopEdges: {
      // One or more genuine loop words (harmless by definition) on top of a
      // within-guarantee random set: the guarantee accounting must not
      // charge for them.
      const std::uint64_t loops = 1 + rng.below(shape.d);
      for (std::uint64_t i = 0; i < loops; ++i) {
        req.faults.push_back(loop_edge_word(
            shape.d, shape.n, static_cast<Digit>(rng.below(shape.d))));
      }
      const std::uint64_t extra = boundary == 0 ? 0 : rng.below(boundary + 1);
      for (std::uint64_t v : rng.sample_distinct(space, extra)) {
        req.faults.push_back(v);
      }
      shuffle(req.faults, rng);
      return sc;
    }
  }

  for (std::uint64_t v : rng.sample_distinct(space, count)) {
    req.faults.push_back(v);
  }
  if (sc.regime == Regime::kShuffledDuplicates) {
    duplicate_and_shuffle(req.faults, rng);
  }
  return sc;
}

std::vector<Scenario> make_sweep(std::uint64_t base_seed, Strategy strategy,
                                 std::size_t count) {
  std::vector<Scenario> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_scenario(base_seed + i, strategy));
  }
  return out;
}

}  // namespace dbr::verify
