#include "verify/scenario.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/word.hpp"
#include "verify/oracle.hpp"

namespace dbr::verify {

using service::EmbedRequest;
using service::FaultKind;
using service::Strategy;

namespace {

struct GraphShape {
  Digit d;
  unsigned n;
};

// Small enough that a sweep of hundreds of scenarios per strategy stays
// test-sized, large enough that necklace structure and fault budgets are
// nontrivial (64 <= d^n <= 1024).
constexpr GraphShape kNodeGraphs[] = {{2, 6}, {2, 8}, {2, 10}, {3, 4}, {3, 5},
                                      {4, 4}, {5, 3}, {5, 4},  {6, 3}, {7, 3}};
constexpr GraphShape kEdgeGraphs[] = {{2, 6}, {2, 8}, {3, 4}, {3, 5},
                                      {4, 4}, {4, 5}, {5, 3}, {5, 4},
                                      {6, 3}, {7, 3}, {8, 3}, {9, 3}};
// gcd(d, n) = 1 throughout (Proposition 3.5's lift precondition).
constexpr GraphShape kButterflyGraphs[] = {{2, 5}, {2, 7}, {3, 4}, {3, 5},
                                           {4, 5}, {5, 4}, {5, 6}, {7, 3},
                                           {8, 3}, {9, 4}};

constexpr Regime kNodeRegimes[] = {
    Regime::kFaultFree,       Regime::kWithinGuarantee,
    Regime::kBoundary,        Regime::kBeyondGuarantee,
    Regime::kClusteredNecklace, Regime::kShuffledDuplicates};
constexpr Regime kEdgeRegimes[] = {
    Regime::kFaultFree, Regime::kWithinGuarantee,    Regime::kBoundary,
    Regime::kBeyondGuarantee, Regime::kLoopEdges, Regime::kShuffledDuplicates};
constexpr Regime kMixedRegimes[] = {
    Regime::kFaultFree,      Regime::kMixedNodeHeavy,
    Regime::kMixedEdgeHeavy, Regime::kMixedCorrelated,
    Regime::kBeyondGuarantee, Regime::kShuffledDuplicates};

/// The loop edge word a^(n+1) of B(d,n), built digit by digit.
Word loop_edge_word(Digit d, unsigned n, Digit a) {
  Word w = 0;
  for (unsigned i = 0; i <= n; ++i) w = w * d + a;
  return w;
}

/// Node-fault boundary: f = d-2 (Proposition 2.2), except d = 2 where the
/// guarantee regime is the single-fault Proposition 2.3.
std::uint64_t node_fault_boundary(Digit d) {
  return d == 2 ? 1 : static_cast<std::uint64_t>(d) - 2;
}

void shuffle(std::vector<Word>& words, Rng& rng) {
  for (std::size_t i = words.size(); i > 1; --i) {
    std::swap(words[i - 1], words[rng.below(i)]);
  }
}

/// One kind's live set plus the grammar of a single churn step: adds draw
/// fresh words, removals draw live ones, and the live set never exceeds
/// max_live. Every step mutates the live set.
struct ChurnTrack {
  FaultKind kind = FaultKind::kNode;
  std::uint64_t space = 0;
  std::uint64_t max_live = 0;
  std::vector<Word> live;  // sorted

  ChurnEvent step(Rng& rng) {
    const bool add =
        live.empty() || (live.size() < max_live && rng.below(5) < 3);
    ChurnEvent event;
    event.kind = kind;
    event.add = add;
    if (add) {
      Word w;
      std::vector<Word>::iterator it;
      do {
        w = rng.below(space);
        it = std::lower_bound(live.begin(), live.end(), w);
      } while (it != live.end() && *it == w);
      live.insert(it, w);
      event.fault = w;
    } else {
      const std::size_t pick = rng.below(live.size());
      event.fault = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    return event;
  }
};

/// The homogeneous churn event loop over one word space, tagged `kind`.
std::vector<ChurnEvent> churn_events(Rng& rng, FaultKind kind,
                                     std::uint64_t space,
                                     std::uint64_t max_live,
                                     std::size_t event_count) {
  // A live set can never exceed the word space; without the clamp a
  // caller-chosen max_live > space would make the fresh-word draw spin
  // forever once every word is live.
  ChurnTrack track{kind, space, std::min(max_live, space), {}};
  std::vector<ChurnEvent> events;
  events.reserve(event_count);
  for (std::size_t i = 0; i < event_count; ++i) events.push_back(track.step(rng));
  return events;
}

/// The mixed churn event loop: each event flips a seeded coin between the
/// router track (node words) and the link track (edge words), then churns
/// that track. Both kinds hover around their own budgets.
std::vector<ChurnEvent> churn_events_mixed(
    Rng& rng, std::uint64_t node_space, std::uint64_t edge_space,
    std::uint64_t max_live_nodes, std::uint64_t max_live_edges,
    std::size_t event_count) {
  ChurnTrack nodes{FaultKind::kNode, node_space,
                   std::min(max_live_nodes, node_space), {}};
  ChurnTrack edges{FaultKind::kEdge, edge_space,
                   std::min(max_live_edges, edge_space), {}};
  std::vector<ChurnEvent> events;
  events.reserve(event_count);
  for (std::size_t i = 0; i < event_count; ++i) {
    ChurnTrack* track = rng.below(2) == 0 ? &nodes : &edges;
    // Keep zero-cap tracks out of the stream (their only legal state is
    // empty); the caller guarantees at least one track has a nonzero cap.
    if (track->max_live == 0) track = track == &nodes ? &edges : &nodes;
    events.push_back(track->step(rng));
  }
  return events;
}

/// Duplicates a few entries and permutes the presentation; the engine's
/// canonicalization must make this indistinguishable from the sorted set.
void duplicate_and_shuffle(std::vector<Word>& faults, Rng& rng) {
  if (faults.empty()) return;
  const std::uint64_t copies = 1 + rng.below(faults.size());
  for (std::uint64_t c = 0; c < copies; ++c) {
    faults.push_back(faults[rng.below(faults.size())]);
  }
  shuffle(faults, rng);
}

/// Mixed node+edge scenarios: both fault lists populated per regime. The
/// combined pull-back budget (node faults + charged edge faults within the
/// Proposition 2.2/2.3 envelope) plays the role the node boundary plays for
/// kFfc; node-free edge-heavy draws use the Proposition 3.4 edge budget.
void fill_mixed_scenario(Rng& rng, Scenario& sc) {
  EmbedRequest& req = sc.request;
  req.fault_kind = FaultKind::kMixed;
  const GraphShape shape = kEdgeGraphs[rng.below(std::size(kEdgeGraphs))];
  req.base = shape.d;
  req.n = shape.n;
  sc.regime = kMixedRegimes[rng.below(std::size(kMixedRegimes))];

  const WordSpace ws(shape.d, shape.n);
  const std::uint64_t boundary = node_fault_boundary(shape.d);

  std::uint64_t node_count = 0;
  std::uint64_t edge_count = 0;
  switch (sc.regime) {
    case Regime::kFaultFree:
      break;
    case Regime::kMixedNodeHeavy: {
      // Mostly dead routers, a minority of cut links, total within the
      // pull-back guarantee.
      const std::uint64_t total =
          1 + rng.below(std::max<std::uint64_t>(boundary, 1));
      edge_count = total > 1 ? rng.below(total / 2 + 1) : 0;
      node_count = total - edge_count;
      break;
    }
    case Regime::kMixedEdgeHeavy: {
      // Mostly cut links; at most one dead router. Node-free draws get the
      // full Proposition 3.4 edge budget (the Hamiltonian route).
      node_count = rng.below(2);
      const std::uint64_t budget =
          node_count == 0
              ? edge_fault_guarantee(service::Strategy::kEdgeAuto, shape.d)
              : (boundary > node_count ? boundary - node_count : 0);
      edge_count = 1 + rng.below(std::max<std::uint64_t>(budget, 1));
      break;
    }
    case Regime::kMixedCorrelated: {
      // Correlated router loss: a dead word implies its 2d incident links,
      // all listed explicitly — the cross-kind canonicalization must
      // collapse every one of them onto the node fault.
      const std::uint64_t dead = 1 + rng.below(2);
      for (std::uint64_t u : rng.sample_distinct(ws.size(), dead)) {
        req.faults.push_back(u);
        for (Digit a = 0; a < shape.d; ++a) {
          req.edge_faults.push_back(ws.edge_word(u, a));  // out-links u -> .
          req.edge_faults.push_back(                      // in-links  . -> u
              ws.edge_word(ws.shift_prepend(u, a), ws.tail(u)));
        }
      }
      req.edge_faults = distinct_faults(req.edge_faults);
      shuffle(req.faults, rng);
      shuffle(req.edge_faults, rng);
      return;
    }
    case Regime::kBeyondGuarantee:
      node_count = boundary + 1 + rng.below(2);
      edge_count = 1 + rng.below(3);
      break;
    case Regime::kShuffledDuplicates: {
      const std::uint64_t total = 1 + rng.below(std::max<std::uint64_t>(boundary, 1));
      edge_count = rng.below(total + 1);
      node_count = total - edge_count;
      break;
    }
    default:
      break;  // unreachable: not in the mixed regime table
  }
  for (std::uint64_t v : rng.sample_distinct(ws.size(), node_count)) {
    req.faults.push_back(v);
  }
  for (std::uint64_t v : rng.sample_distinct(ws.edge_word_count(), edge_count)) {
    req.edge_faults.push_back(v);
  }
  if (sc.regime == Regime::kShuffledDuplicates) {
    duplicate_and_shuffle(req.faults, rng);
    duplicate_and_shuffle(req.edge_faults, rng);
  }
}

}  // namespace

const char* to_string(Regime r) {
  switch (r) {
    case Regime::kFaultFree: return "fault_free";
    case Regime::kWithinGuarantee: return "within_guarantee";
    case Regime::kBoundary: return "boundary";
    case Regime::kBeyondGuarantee: return "beyond_guarantee";
    case Regime::kClusteredNecklace: return "clustered_necklace";
    case Regime::kLoopEdges: return "loop_edges";
    case Regime::kShuffledDuplicates: return "shuffled_duplicates";
    case Regime::kMixedNodeHeavy: return "mixed_node_heavy";
    case Regime::kMixedEdgeHeavy: return "mixed_edge_heavy";
    case Regime::kMixedCorrelated: return "mixed_correlated";
  }
  return "unknown";
}

std::string Scenario::describe() const {
  std::string out = "(seed=" + std::to_string(seed) +
                    ", base=" + std::to_string(request.base) +
                    ", n=" + std::to_string(request.n) + ", strategy=" +
                    service::to_string(request.strategy) + ")";
  out += " regime=";
  out += verify::to_string(regime);
  out += " kind=";
  out += service::to_string(request.fault_kind);
  out += " faults=[";
  for (std::size_t i = 0; i < request.faults.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(request.faults[i]);
  }
  out += "]";
  if (!request.edge_faults.empty()) {
    out += " edge_faults=[";
    for (std::size_t i = 0; i < request.edge_faults.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(request.edge_faults[i]);
    }
    out += "]";
  }
  return out;
}

Scenario make_scenario(std::uint64_t seed, Strategy strategy) {
  // split() decorrelates strategies sharing a seed without losing the
  // (seed, strategy) -> scenario purity.
  Rng rng = Rng(seed).split(static_cast<std::uint64_t>(strategy));

  Scenario sc;
  sc.seed = seed;
  EmbedRequest& req = sc.request;
  req.strategy = strategy;

  if (strategy == Strategy::kMixed) {
    fill_mixed_scenario(rng, sc);
    return sc;
  }

  bool node_faults = false;
  if (strategy == Strategy::kFfc) {
    node_faults = true;
  } else if (strategy == Strategy::kAuto) {
    node_faults = rng.below(2) == 0;
  }
  req.fault_kind = node_faults ? FaultKind::kNode : FaultKind::kEdge;

  GraphShape shape{};
  if (strategy == Strategy::kButterfly) {
    shape = kButterflyGraphs[rng.below(std::size(kButterflyGraphs))];
  } else if (node_faults) {
    shape = kNodeGraphs[rng.below(std::size(kNodeGraphs))];
  } else {
    shape = kEdgeGraphs[rng.below(std::size(kEdgeGraphs))];
  }
  req.base = shape.d;
  req.n = shape.n;

  sc.regime = node_faults ? kNodeRegimes[rng.below(std::size(kNodeRegimes))]
                          : kEdgeRegimes[rng.below(std::size(kEdgeRegimes))];

  // WordSpace validates the shape (overflow-checked powers), so a bad
  // future entry in the graph tables fails loudly instead of wrapping.
  const WordSpace ws(shape.d, shape.n);
  const std::uint64_t space = node_faults ? ws.size() : ws.edge_word_count();
  const std::uint64_t boundary =
      node_faults ? node_fault_boundary(shape.d)
                  : edge_fault_guarantee(strategy == Strategy::kAuto
                                             ? Strategy::kEdgeAuto
                                             : strategy,
                                         shape.d);

  std::uint64_t count = 0;
  switch (sc.regime) {
    case Regime::kFaultFree:
      count = 0;
      break;
    case Regime::kWithinGuarantee:
    case Regime::kShuffledDuplicates:
      count = boundary == 0 ? 0 : 1 + rng.below(boundary);
      break;
    case Regime::kBoundary:
      count = boundary;
      break;
    case Regime::kBeyondGuarantee:
      count = boundary + 1 + rng.below(3);
      break;
    case Regime::kClusteredNecklace: {
      // All rotations of one random word: the whole necklace goes faulty,
      // the FFC removal's worst case per fault "cluster".
      const Word anchor = rng.below(space);
      for (unsigned k = 0; k < shape.n; ++k) {
        req.faults.push_back(ws.rotate_left(anchor, k));
      }
      req.faults = distinct_faults(req.faults);
      shuffle(req.faults, rng);
      return sc;
    }
    case Regime::kMixedNodeHeavy:
    case Regime::kMixedEdgeHeavy:
    case Regime::kMixedCorrelated:
      break;  // unreachable: only fill_mixed_scenario draws these regimes
    case Regime::kLoopEdges: {
      // One or more genuine loop words (harmless by definition) on top of a
      // within-guarantee random set: the guarantee accounting must not
      // charge for them.
      const std::uint64_t loops = 1 + rng.below(shape.d);
      for (std::uint64_t i = 0; i < loops; ++i) {
        req.faults.push_back(loop_edge_word(
            shape.d, shape.n, static_cast<Digit>(rng.below(shape.d))));
      }
      const std::uint64_t extra = boundary == 0 ? 0 : rng.below(boundary + 1);
      for (std::uint64_t v : rng.sample_distinct(space, extra)) {
        req.faults.push_back(v);
      }
      shuffle(req.faults, rng);
      return sc;
    }
  }

  for (std::uint64_t v : rng.sample_distinct(space, count)) {
    req.faults.push_back(v);
  }
  if (sc.regime == Regime::kShuffledDuplicates) {
    duplicate_and_shuffle(req.faults, rng);
  }
  return sc;
}

service::FaultSet ChurnScript::final_fault_set() const {
  service::FaultSet set;
  for (const ChurnEvent& e : events) {
    std::vector<Word>& live =
        e.kind == service::FaultKind::kEdge ? set.edges : set.nodes;
    const auto it = std::lower_bound(live.begin(), live.end(), e.fault);
    if (e.add) {
      if (it == live.end() || *it != e.fault) live.insert(it, e.fault);
    } else if (it != live.end() && *it == e.fault) {
      live.erase(it);
    }
  }
  return set;
}

std::vector<Word> ChurnScript::final_faults() const {
  service::FaultSet set = final_fault_set();
  std::vector<Word> out = std::move(set.nodes);
  out.insert(out.end(), set.edges.begin(), set.edges.end());
  return out;
}

std::string ChurnScript::describe() const {
  std::string out = "(seed=" + std::to_string(seed) +
                    ", base=" + std::to_string(base_request.base) +
                    ", n=" + std::to_string(base_request.n) + ", strategy=" +
                    service::to_string(base_request.strategy) + ")";
  out += " kind=";
  out += service::to_string(base_request.fault_kind);
  const bool mixed = base_request.fault_kind == service::FaultKind::kMixed;
  out += " events=[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ", ";
    out += events[i].add ? '+' : '-';
    // Mixed streams tag each event with its word space.
    if (mixed) {
      out += events[i].kind == service::FaultKind::kEdge ? "e" : "n";
    }
    out += std::to_string(events[i].fault);
  }
  out += "]";
  return out;
}

ChurnScript make_churn_script(std::uint64_t seed, Strategy strategy,
                              std::size_t event_count) {
  // A split stream disjoint from make_scenario's (which uses split(strategy),
  // values 0..6), so churn scripts and one-shot scenarios sharing a seed are
  // decorrelated.
  Rng rng = Rng(seed).split(100 + static_cast<std::uint64_t>(strategy));

  ChurnScript script;
  script.seed = seed;
  EmbedRequest& req = script.base_request;
  req.strategy = strategy;

  if (strategy == Strategy::kMixed) {
    req.fault_kind = FaultKind::kMixed;
    const GraphShape shape = kEdgeGraphs[rng.below(std::size(kEdgeGraphs))];
    req.base = shape.d;
    req.n = shape.n;
    const WordSpace ws(shape.d, shape.n);
    // Each track hovers around its own budget: routers around the pull-back
    // boundary, links around the Proposition 3.4 edge budget, both with a
    // little beyond-guarantee headroom.
    const std::uint64_t node_boundary = node_fault_boundary(shape.d);
    const std::uint64_t edge_boundary =
        edge_fault_guarantee(Strategy::kEdgeAuto, shape.d);
    script.events = churn_events_mixed(
        rng, ws.size(), ws.edge_word_count(),
        std::max<std::uint64_t>(node_boundary, 1) + 1,
        std::max<std::uint64_t>(edge_boundary, 1) + 1, event_count);
    return script;
  }

  bool node_faults = false;
  if (strategy == Strategy::kFfc) {
    node_faults = true;
  } else if (strategy == Strategy::kAuto) {
    node_faults = rng.below(2) == 0;
  }
  req.fault_kind = node_faults ? FaultKind::kNode : FaultKind::kEdge;

  GraphShape shape{};
  if (strategy == Strategy::kButterfly) {
    shape = kButterflyGraphs[rng.below(std::size(kButterflyGraphs))];
  } else if (node_faults) {
    shape = kNodeGraphs[rng.below(std::size(kNodeGraphs))];
  } else {
    shape = kEdgeGraphs[rng.below(std::size(kEdgeGraphs))];
  }
  req.base = shape.d;
  req.n = shape.n;

  const WordSpace ws(shape.d, shape.n);
  const std::uint64_t space = node_faults ? ws.size() : ws.edge_word_count();
  const std::uint64_t boundary =
      node_faults ? node_fault_boundary(shape.d)
                  : edge_fault_guarantee(strategy == Strategy::kAuto
                                             ? Strategy::kEdgeAuto
                                             : strategy,
                                         shape.d);
  // Hover around the guarantee: the live set may exceed the boundary by a
  // little (so the stream visits kNoEmbedding-legal states) but churns back
  // under it.
  const std::uint64_t max_live = std::max<std::uint64_t>(boundary, 1) + 2;
  script.events =
      churn_events(rng, req.fault_kind, space, max_live, event_count);
  return script;
}

ChurnScript make_churn_script(std::uint64_t seed,
                              const EmbedRequest& base_request,
                              std::size_t event_count,
                              std::uint64_t max_live) {
  // A third split stream, disjoint from make_scenario's (split(strategy))
  // and the seed-drawn churn overload's (split(100 + strategy)).
  Rng rng = Rng(seed).split(
      200 + static_cast<std::uint64_t>(base_request.strategy));
  ChurnScript script;
  script.seed = seed;
  script.base_request = base_request;
  script.base_request.faults.clear();
  script.base_request.edge_faults.clear();
  const WordSpace ws(base_request.base, base_request.n);
  if (base_request.fault_kind == FaultKind::kMixed) {
    script.events = churn_events_mixed(rng, ws.size(), ws.edge_word_count(),
                                       max_live, max_live, event_count);
    return script;
  }
  const std::uint64_t space = base_request.fault_kind == FaultKind::kNode
                                  ? ws.size()
                                  : ws.edge_word_count();
  script.events = churn_events(rng, base_request.fault_kind, space, max_live,
                               event_count);
  return script;
}

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kRingAllReduce: return "ring_allreduce";
    case TrafficPattern::kTokenStream: return "token_stream";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kIncast: return "incast";
    case TrafficPattern::kUniform: return "uniform";
  }
  return "unknown";
}

std::string TrafficScenario::describe() const {
  std::string out = "(seed=" + std::to_string(seed) +
                    ", base=" + std::to_string(base_request.base) +
                    ", n=" + std::to_string(base_request.n) + ", strategy=" +
                    service::to_string(base_request.strategy) + ")";
  out += " pattern=";
  out += verify::to_string(pattern);
  out += " horizon=" + std::to_string(horizon);
  out += " queue_capacity=" + std::to_string(queue_capacity);
  const bool mixed = base_request.fault_kind == service::FaultKind::kMixed;
  out += " events=[";
  for (std::size_t i = 0; i < churn.size(); ++i) {
    if (i > 0) out += ", ";
    out += "@" + std::to_string(churn[i].round);
    out += churn[i].event.add ? '+' : '-';
    if (mixed) {
      out += churn[i].event.kind == service::FaultKind::kEdge ? "e" : "n";
    }
    out += std::to_string(churn[i].event.fault);
  }
  out += "]";
  return out;
}

TrafficScenario make_traffic_scenario(std::uint64_t seed) {
  // A fourth split stream, disjoint from make_scenario (split(strategy)),
  // the seed-drawn churn overload (split(100+strategy)) and the explicit-
  // instance churn overload (split(200+strategy)).
  Rng rng = Rng(seed).split(300);

  TrafficScenario sc;
  sc.seed = seed;
  sc.pattern = static_cast<TrafficPattern>(rng.below(5));

  // Traffic rides node-word rings, so instances draw the fail-stop (kFfc)
  // or mixed (kills plus link cuts) session shapes only.
  const bool mixed = rng.below(2) == 0;
  EmbedRequest& req = sc.base_request;
  req.strategy = mixed ? Strategy::kMixed : Strategy::kFfc;
  req.fault_kind = mixed ? FaultKind::kMixed : FaultKind::kNode;
  const GraphShape shape = mixed
                               ? kEdgeGraphs[rng.below(std::size(kEdgeGraphs))]
                               : kNodeGraphs[rng.below(std::size(kNodeGraphs))];
  req.base = shape.d;
  req.n = shape.n;

  sc.queue_capacity = 4 + static_cast<std::uint32_t>(rng.below(13));

  const WordSpace ws(shape.d, shape.n);
  const std::uint64_t node_boundary = node_fault_boundary(shape.d);
  // A quarter of the seeds let the live set exceed the guarantee by one, so
  // the sweep also visits the kNoEmbedding regime (every packet unroutable
  // until churn drops back under the boundary).
  const std::uint64_t headroom = rng.below(4) == 0 ? 1 : 0;

  std::vector<ChurnEvent> events;
  if (mixed) {
    const std::uint64_t edge_boundary =
        edge_fault_guarantee(Strategy::kEdgeAuto, shape.d);
    events = churn_events_mixed(
        rng, ws.size(), ws.edge_word_count(),
        std::max<std::uint64_t>(node_boundary, 1) + headroom,
        std::max<std::uint64_t>(edge_boundary, 1) + headroom,
        2 + rng.below(3));
  } else {
    events = churn_events(rng, FaultKind::kNode, ws.size(),
                          std::max<std::uint64_t>(node_boundary, 1) + headroom,
                          2 + rng.below(3));
  }

  // Section 2.4 prices a cold distributed rebuild at about 4n+2 rounds
  // (probe n, dossier <= n, reroute <= n, announce 1, broadcast n+1); fault
  // epochs are spaced past that so even the cold path finishes re-routing
  // before the next fault lands, and the repair-vs-cold comparison measures
  // rebuild cost, not overlapping outages.
  const std::uint64_t cold_rounds = 4 * static_cast<std::uint64_t>(shape.n) + 2;
  std::uint64_t round = 4 + rng.below(8);  // fault-free warmup
  for (std::size_t i = 0; i < events.size(); ++i) {
    sc.churn.push_back({round, events[i]});
    // A quarter of consecutive event pairs share a round (one fault epoch
    // with two simultaneous faults); the rest open a fresh epoch.
    if (i + 1 < events.size() && rng.below(4) != 0) {
      round += cold_rounds + 4 + rng.below(8);
    }
  }

  // Enough rounds past the last epoch for the final rebuild to finish and a
  // full ring circulation to drain (token streams traverse d^n hops).
  sc.horizon = round + cold_rounds + ws.size() + 24 + rng.below(16);
  return sc;
}

std::vector<TrafficScenario> make_traffic_sweep(std::uint64_t base_seed,
                                                std::size_t count) {
  std::vector<TrafficScenario> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_traffic_scenario(base_seed + i));
  }
  return out;
}

std::vector<Scenario> make_sweep(std::uint64_t base_seed, Strategy strategy,
                                 std::size_t count) {
  std::vector<Scenario> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_scenario(base_seed + i, strategy));
  }
  return out;
}

}  // namespace dbr::verify
