#pragma once

// Seeded, reproducible fault-scenario generator for the fuzz harness.
//
// A scenario is a pure function of (seed, strategy): the same pair always
// yields byte-identical requests, so any failure a sweep prints as
// "(seed=S, base=d, n=n, strategy=s)" can be regenerated with
// make_scenario(S, s) in a debugger or a one-off test. The grammar spans
// the regimes the paper's guarantees distinguish: fault-free, strictly
// within guarantee, exactly on the boundary (f = d-2 node faults,
// f = psi(d)-1 / phi(d) edge faults), beyond guarantee, clustered
// same-necklace node faults, loop-edge faults, and duplicated/permuted
// fault presentations (which must canonicalize away).

#include <cstdint>
#include <string>
#include <vector>

#include "service/types.hpp"

namespace dbr::verify {

/// Fault-set shape of one generated scenario (see the README table).
enum class Regime : std::uint8_t {
  kFaultFree = 0,       ///< f = 0: the construction must always embed
  kWithinGuarantee,     ///< 1 <= f < boundary for the strategy
  kBoundary,            ///< f = d-2 (node) resp. the strategy's edge budget
  kBeyondGuarantee,     ///< f past the guarantee; kNoEmbedding is legal
  kClusteredNecklace,   ///< node faults filling one rotation class
  kLoopEdges,           ///< edge faults including harmless loop words a^(n+1)
  kShuffledDuplicates,  ///< within-guarantee set, duplicated and permuted
  kMixedNodeHeavy,      ///< mixed: mostly dead routers, a few cut links
  kMixedEdgeHeavy,      ///< mixed: mostly cut links, at most one dead router
  kMixedCorrelated,     ///< mixed: dead routers with all 2d incident links
                        ///< listed too (must collapse in canonicalization)
};

/// Short snake_case name of the regime (e.g. "mixed_node_heavy").
const char* to_string(Regime r);

struct Scenario {
  std::uint64_t seed = 0;
  Regime regime = Regime::kFaultFree;
  service::EmbedRequest request;

  /// Leads with the reproduction tuple "(seed=…, base=…, n=…, strategy=…)",
  /// then regime, fault kind and the fault words as presented.
  std::string describe() const;
};

/// Deterministically expands (seed, strategy) into one scenario. The graph
/// shape, regime and fault set are all derived from the seed; kButterfly
/// draws only gcd(d, n) = 1 shapes, node strategies draw node-fault graphs,
/// edge strategies draw n >= 2 graphs, and kAuto flips a seeded coin
/// between the two fault kinds.
Scenario make_scenario(std::uint64_t seed, service::Strategy strategy);

/// The scenarios of seeds base_seed + [0, count) for one strategy.
std::vector<Scenario> make_sweep(std::uint64_t base_seed,
                                 service::Strategy strategy,
                                 std::size_t count);

// --- Churn regime: seeded add/remove event streams ---

/// One fault-churn event: a fault appears (add) or is repaired (clear).
/// `kind` distinguishes a dead router from a cut link in mixed streams; it
/// stays kNode in homogeneous node streams and kEdge in edge streams.
struct ChurnEvent {
  bool add = true;                           ///< true = fault, false = repair
  Word fault = 0;                            ///< node or edge word
  service::FaultKind kind = service::FaultKind::kNode;  ///< which space `fault` lives in

  bool operator==(const ChurnEvent&) const = default;
};

/// A seeded fault-churn timeline over one instance: the evolving-fault
/// regime an EmbedSession serves. Like Scenario it is a pure function of
/// (seed, strategy): base_request names the instance (its fault list is
/// empty; the events are the fault history), and replaying events in order
/// keeps the live set hovering around the strategy's guarantee boundary, so
/// a run crosses in and out of the guarantee.
struct ChurnScript {
  std::uint64_t seed = 0;
  service::EmbedRequest base_request;
  std::vector<ChurnEvent> events;

  /// The fault set live after replaying every event, split by kind (each
  /// list sorted, distinct). Mixed scripts must use this: a node word and
  /// an edge word may share a numeric value.
  service::FaultSet final_fault_set() const;

  /// The live words after replaying every event, node faults then edge
  /// faults (each sorted, distinct). For homogeneous scripts this is simply
  /// the live fault set.
  std::vector<Word> final_faults() const;

  /// Leads with the reproduction tuple "(seed=…, base=…, n=…, strategy=…)",
  /// then the events as "+w"/"-w" in order.
  std::string describe() const;
};

/// Deterministically expands (seed, strategy) into one churn script of
/// `event_count` events. Adds draw fresh words, removals draw live ones;
/// the stream never clears a fault that is not live nor re-adds a live one,
/// so every event mutates the session's fault set. Strategy::kMixed yields
/// a heterogeneous stream: each event is a router kill/repair or a link
/// cut/restore, with both kinds hovering around their guarantee budgets.
ChurnScript make_churn_script(std::uint64_t seed, service::Strategy strategy,
                              std::size_t event_count);

/// Same event grammar over an explicit instance: `base_request` supplies
/// (base, n, fault kind, strategy) — its fault list is ignored — and the
/// live set is capped at `max_live` instead of the seed-drawn guarantee
/// hover (for kMixed, each kind is capped at `max_live` separately). Lets
/// benches churn instances outside the fuzz shape tables while replaying
/// exactly the regime the test suites exercise.
ChurnScript make_churn_script(std::uint64_t seed,
                              const service::EmbedRequest& base_request,
                              std::size_t event_count, std::uint64_t max_live);

// --- Traffic regime: packet flows over the embedded ring under churn ---

/// Traffic pattern injected over the embedded ring. The pattern names the
/// shape only; bench/workload.hpp's TrafficMatrix synthesizes the concrete
/// packet flows against a solved ring (verify/ stays free of sim/ and
/// bench/ code, exactly as it stays free of core/ constructions).
enum class TrafficPattern : std::uint8_t {
  kRingAllReduce = 0,  ///< every ring member streams to its ring successor
                       ///< (the pipelined all-reduce of examples/ring_allreduce)
  kTokenStream,        ///< a few tokens each circle the whole ring
  kHotspot,            ///< spread sources stream at one hot destination
  kIncast,             ///< a synchronized burst fan-in to one sink
  kUniform,            ///< seeded random src -> dst streams
};

/// Short snake_case name of the pattern (e.g. "ring_allreduce").
const char* to_string(TrafficPattern p);

/// One churn event pinned to a simulation round (rounds ascending within a
/// scenario; multiple events may share a round — one fault epoch).
struct TimedChurnEvent {
  std::uint64_t round = 0;
  ChurnEvent event;

  bool operator==(const TimedChurnEvent&) const = default;
};

/// A seeded packet-traffic scenario: one instance, a traffic pattern, a
/// round-timed fault timeline and the simulation knobs (horizon, queue
/// bound). Like Scenario it is a pure function of its seed, so a failing
/// sweep's printed tuple regenerates the exact run. Instances draw kFfc
/// (fail-stop kills only) or kMixed (kills plus link cuts) sessions; churn
/// events are spaced far enough apart that a cold Section-2.4 rebuild
/// completes between fault epochs.
struct TrafficScenario {
  std::uint64_t seed = 0;
  TrafficPattern pattern = TrafficPattern::kRingAllReduce;
  /// Names the instance and session shape; its fault lists are empty (the
  /// timed events are the fault history).
  service::EmbedRequest base_request;
  std::vector<TimedChurnEvent> churn;  ///< rounds ascending
  std::uint64_t horizon = 0;           ///< round budget of the simulation
  std::uint32_t queue_capacity = 0;    ///< per-node egress queue bound

  /// Leads with the reproduction tuple "(seed=…, base=…, n=…, strategy=…)",
  /// then pattern, horizon, queue bound and the timed events.
  std::string describe() const;
};

/// Deterministically expands a seed into one traffic scenario.
TrafficScenario make_traffic_scenario(std::uint64_t seed);

/// The traffic scenarios of seeds base_seed + [0, count).
std::vector<TrafficScenario> make_traffic_sweep(std::uint64_t base_seed,
                                                std::size_t count);

}  // namespace dbr::verify
