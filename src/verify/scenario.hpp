#pragma once

// Seeded, reproducible fault-scenario generator for the fuzz harness.
//
// A scenario is a pure function of (seed, strategy): the same pair always
// yields byte-identical requests, so any failure a sweep prints as
// "(seed=S, base=d, n=n, strategy=s)" can be regenerated with
// make_scenario(S, s) in a debugger or a one-off test. The grammar spans
// the regimes the paper's guarantees distinguish: fault-free, strictly
// within guarantee, exactly on the boundary (f = d-2 node faults,
// f = psi(d)-1 / phi(d) edge faults), beyond guarantee, clustered
// same-necklace node faults, loop-edge faults, and duplicated/permuted
// fault presentations (which must canonicalize away).

#include <cstdint>
#include <string>
#include <vector>

#include "service/types.hpp"

namespace dbr::verify {

enum class Regime : std::uint8_t {
  kFaultFree = 0,       ///< f = 0: the construction must always embed
  kWithinGuarantee,     ///< 1 <= f < boundary for the strategy
  kBoundary,            ///< f = d-2 (node) resp. the strategy's edge budget
  kBeyondGuarantee,     ///< f past the guarantee; kNoEmbedding is legal
  kClusteredNecklace,   ///< node faults filling one rotation class
  kLoopEdges,           ///< edge faults including harmless loop words a^(n+1)
  kShuffledDuplicates,  ///< within-guarantee set, duplicated and permuted
};

const char* to_string(Regime r);

struct Scenario {
  std::uint64_t seed = 0;
  Regime regime = Regime::kFaultFree;
  service::EmbedRequest request;

  /// Leads with the reproduction tuple "(seed=…, base=…, n=…, strategy=…)",
  /// then regime, fault kind and the fault words as presented.
  std::string describe() const;
};

/// Deterministically expands (seed, strategy) into one scenario. The graph
/// shape, regime and fault set are all derived from the seed; kButterfly
/// draws only gcd(d, n) = 1 shapes, node strategies draw node-fault graphs,
/// edge strategies draw n >= 2 graphs, and kAuto flips a seeded coin
/// between the two fault kinds.
Scenario make_scenario(std::uint64_t seed, service::Strategy strategy);

/// The scenarios of seeds base_seed + [0, count) for one strategy.
std::vector<Scenario> make_sweep(std::uint64_t base_seed,
                                 service::Strategy strategy,
                                 std::size_t count);

// --- Churn regime: seeded add/remove event streams ---

/// One fault-churn event: a fault appears (add) or is repaired (clear).
struct ChurnEvent {
  bool add = true;
  Word fault = 0;

  bool operator==(const ChurnEvent&) const = default;
};

/// A seeded fault-churn timeline over one instance: the evolving-fault
/// regime an EmbedSession serves. Like Scenario it is a pure function of
/// (seed, strategy): base_request names the instance (its fault list is
/// empty; the events are the fault history), and replaying events in order
/// keeps the live set hovering around the strategy's guarantee boundary, so
/// a run crosses in and out of the guarantee.
struct ChurnScript {
  std::uint64_t seed = 0;
  service::EmbedRequest base_request;
  std::vector<ChurnEvent> events;

  /// The fault set live after replaying every event (sorted, distinct).
  std::vector<Word> final_faults() const;

  /// Leads with the reproduction tuple "(seed=…, base=…, n=…, strategy=…)",
  /// then the events as "+w"/"-w" in order.
  std::string describe() const;
};

/// Deterministically expands (seed, strategy) into one churn script of
/// `event_count` events. Adds draw fresh words, removals draw live ones;
/// the stream never clears a fault that is not live nor re-adds a live one,
/// so every event mutates the session's fault set.
ChurnScript make_churn_script(std::uint64_t seed, service::Strategy strategy,
                              std::size_t event_count);

/// Same event grammar over an explicit instance: `base_request` supplies
/// (base, n, fault kind, strategy) — its fault list is ignored — and the
/// live set is capped at `max_live` instead of the seed-drawn guarantee
/// hover. Lets benches churn instances outside the fuzz shape tables while
/// replaying exactly the regime the test suites exercise.
ChurnScript make_churn_script(std::uint64_t seed,
                              const service::EmbedRequest& base_request,
                              std::size_t event_count, std::uint64_t max_live);

}  // namespace dbr::verify
