#pragma once

#include <cstdint>
#include <vector>

#include "debruijn/cycle.hpp"
#include "gf/field.hpp"
#include "gf/lfsr.hpp"

namespace dbr::core {

/// psi(d): the paper's guaranteed number of pairwise edge-disjoint
/// Hamiltonian cycles in B(d,n), n >= 2 (Propositions 3.1 and 3.2):
///   psi(2^e)  = 2^e - 1,
///   psi(p^e)  = (p^e + 1)/2  if (p-1)/2 is even and p satisfies
///               condition (b) of Lemma 3.5,
///   psi(p^e)  = (p^e - 1)/2  otherwise (odd p),
///   psi(d)    = prod psi(p_i^{e_i}).
std::uint64_t psi(std::uint64_t d);

/// Condition (a) of Lemma 3.5: 2 is an odd power of a primitive root of Z_p
/// (equivalently, 2 is a quadratic nonresidue; p == +-3 mod 8).
bool lemma35_condition_a(std::uint64_t p);

/// Condition (b) of Lemma 3.5: 2 = lambda^A + lambda^B for odd A, B. Holds
/// whenever p == +-1 (mod 8) and sporadically otherwise (e.g. p = 13).
/// Independent of the choice of primitive root.
bool lemma35_condition_b(std::uint64_t p);

/// phi(d) = sum p_i^{e_i} - 2k for d = p_1^{e_1}...p_k^{e_k} (Section 3.3's
/// edge-fault tolerance bound; NOT Euler's totient).
std::uint64_t phi_edge_bound(std::uint64_t d);

/// Proposition 3.4's guarantee: MAX(psi(d)-1, phi_edge_bound(d)) edge faults
/// are always survivable by some Hamiltonian cycle.
std::uint64_t max_tolerable_edge_faults(std::uint64_t d);

/// The algebraic machinery of Section 3.2.1: a maximal cycle C of length
/// q^n - 1 in B(q,n) plus its d shifted copies s + C, which partition the
/// non-loop edges of B(q,n), and the Hamiltonianization that inserts s^n.
class MaximalCycleFamily {
 public:
  /// Uses the deterministic smallest primitive polynomial of degree n.
  MaximalCycleFamily(const gf::Field& field, unsigned n);
  /// Uses the recurrence c_(n+i) = a_(n-1) c_(n-1+i) + ... + a_0 c_i with
  /// the given taps, whose characteristic polynomial must be primitive
  /// (lets tests reproduce the paper's Examples 3.1-3.4 exactly).
  MaximalCycleFamily(const gf::Field& field, unsigned n,
                     std::vector<gf::Field::Elem> taps);

  const gf::Field& field() const { return *field_; }
  unsigned tuple_length() const { return n_; }
  /// omega = a_0 + ... + a_(n-1); omega != 1 for a primitive polynomial.
  gf::Field::Elem omega() const { return omega_; }

  /// The base maximal cycle C (length q^n - 1, missing only 0^n).
  const SymbolCycle& base_cycle() const { return base_; }
  /// The shifted cycle s + C (missing only s^n).
  SymbolCycle shifted_cycle(gf::Field::Elem s) const;

  /// The Hamiltonian cycle H_s: s + C with the edge a s^(n-1) a-hat replaced
  /// by a s^n, s^n a-hat, where a-hat = s*omega + f_s*(1 - omega) for a
  /// conflict-function value f_s != s (Section 3.2.1).
  SymbolCycle hamiltonian_cycle(gf::Field::Elem s, gf::Field::Elem f_s) const;

  /// The insertion pair for (s, alpha): edge words (alpha s^n, s^n alpha-hat)
  /// with alpha-hat = s + a_0 (alpha - s). Used by the edge-fault search.
  std::pair<Word, Word> insertion_pair(gf::Field::Elem s, gf::Field::Elem alpha) const;

  /// H_s built by choosing the insertion point alpha directly (alpha != s).
  SymbolCycle hamiltonian_cycle_at(gf::Field::Elem s, gf::Field::Elem alpha) const;

 private:
  const gf::Field* field_;
  unsigned n_;
  std::vector<gf::Field::Elem> taps_;
  gf::Field::Elem omega_;
  SymbolCycle base_;
};

/// At least psi(q) pairwise disjoint Hamiltonian cycles in B(q,n) for a
/// prime power q, via Strategy 1 (q even), Strategy 2 (condition (b)) or
/// Strategy 3 (condition (a)). Requires n >= 2.
std::vector<SymbolCycle> disjoint_hcs_prime_power(const gf::Field& field, unsigned n);

/// Rees composition (Lemma 3.6): given Hamiltonian cycles A in B(s,n) and
/// B in B(t,n) with gcd(s,t) = 1, produces the Hamiltonian cycle (A,B) in
/// B(st,n) whose i'th symbol is a_(i mod s^n) * t + b_(i mod t^n).
SymbolCycle rees_compose(const SymbolCycle& a, const SymbolCycle& b,
                         std::uint64_t t);

/// At least psi(d) pairwise disjoint Hamiltonian cycles in B(d,n) for any
/// d >= 2, n >= 2 (Proposition 3.2: prime-power families composed with Rees).
std::vector<SymbolCycle> disjoint_hamiltonian_cycles(std::uint64_t d, unsigned n);

}  // namespace dbr::core
