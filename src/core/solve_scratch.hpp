#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/word.hpp"

namespace dbr::core {

/// Flat Word -> Word map over a dense key range with O(1) clear: a slot is
/// live only while its stamp matches the current epoch, so begin() retires
/// every entry with a counter bump instead of an O(range) fill. Backs the
/// per-solve reroute table (Step 3) and the label-keyed lookups (Step 2,
/// repair reconnect anchors) that used to be per-solve unordered_maps.
class EpochMap {
 public:
  /// Starts a fresh map over keys [0, range); retires all previous entries.
  void begin(std::size_t range) {
    if (value_.size() != range) {
      value_.assign(range, 0);
      stamp_.assign(range, 0);
      epoch_ = 1;
      return;
    }
    if (++epoch_ == 0) {  // stamp wraparound: invalidate stale stamps once
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }
  /// True when `key` holds a live entry.
  bool contains(std::size_t key) const { return stamp_[key] == epoch_; }
  /// The live value at `key`; contains(key) must hold (unchecked).
  Word get(std::size_t key) const { return value_[key]; }
  /// Inserts or overwrites the entry at `key`.
  void put(std::size_t key, Word v) {
    stamp_[key] = epoch_;
    value_[key] = v;
  }

 private:
  std::vector<Word> value_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

/// Reusable scratch arena for the solve/repair hot paths (core/ffc,
/// core/mixed_fault, core/repair). Holds every internal mask, queue,
/// distance array and flat lookup table the solvers need, so a steady-state
/// solve allocates nothing beyond its returned result: buffers are sized on
/// first use per (base, n) and reused across solves (a session churning one
/// instance reaches steady state after its first solve).
///
/// Not thread-safe and not reentrant: use one arena per thread — the engine
/// worker pool goes through solve_scratch_tls() — or one per EmbedSession.
/// Buffer contents between solves are unspecified; each solver phase
/// re-initializes exactly what it reads. The members are deliberately
/// public: they are internal workspaces shared by the core solvers, not a
/// stable API surface.
struct SolveScratch {
  // -- bit-packed node masks (FfcSolver arena solve) --
  BitVec active;    ///< nonfaulty nodes
  BitVec comp;      ///< B*: the chosen strongly connected component
  BitVec visited;   ///< final ring walk bookkeeping
  BitVec backward;  ///< reverse-reach mask (explicit-root solves)
  BitVec on_stack;  ///< Tarjan SCC stack membership

  // -- BFS workspace --
  std::vector<std::uint32_t> dist;  ///< broadcast distances
  std::vector<Word> parent;         ///< broadcast parents (min-predecessor)
  std::vector<Word> frontier;       ///< current BFS level
  std::vector<Word> frontier_next;  ///< next BFS level

  // -- masked-Tarjan SCC workspace --
  /// One DFS frame: the node, its precomputed successor base
  /// suffix(node) * d, and the next digit to expand.
  struct SccFrame {
    Word node;
    Word succ_base;
    Digit next_digit;
  };
  std::vector<Word> scc_index;          ///< Tarjan discovery index (kNoWord = unvisited)
  std::vector<Word> scc_low;            ///< Tarjan low-link
  std::vector<Word> scc_comp;           ///< component id per node
  std::vector<Word> scc_stack;          ///< Tarjan node stack
  std::vector<SccFrame> scc_frames;     ///< iterative DFS frames
  std::vector<std::uint64_t> comp_size; ///< per-component node count
  std::vector<Word> comp_min;           ///< per-component minimum node

  // -- FFC Steps 2-3 --
  std::vector<Word> reps_tmp;       ///< faulty-rep staging (sort + dedup)
  EpochMap parent_by_label;         ///< Step 2: label -> common parent rep
  std::vector<std::pair<Word, Word>> label_pairs;  ///< Step 2: (label, child rep)
  std::vector<Word> members_tmp;    ///< Step 2: one label class, sorted
  EpochMap reroute;                 ///< Step 3: exit node -> entry node

  // -- mixed-fault solve --
  BitVec faulty_neck;               ///< faulty flag per necklace index
  std::vector<Word> nodes_tmp;      ///< sorted distinct node faults
  std::vector<Word> edges_tmp;      ///< sorted distinct edge faults
  std::vector<Word> pullback_tmp;   ///< accumulated pull-back fault set

  // -- ring repair (RingSplicer) --
  std::vector<Word> ring_next;               ///< successor map (kNoWord = uncovered)
  std::vector<Word> ring_pred;               ///< predecessor map
  std::vector<std::uint32_t> ring_comp;      ///< cycle id per covered node
  std::vector<std::uint32_t> uf_parent;      ///< union-find over cycle ids
  std::vector<std::uint64_t> ring_comp_size; ///< per-cycle cover count
  EpochMap anchor;                           ///< reconnect: label -> anchor node
  std::vector<Word> delta_tmp;               ///< fault-set difference staging
  std::vector<Word> excised_tmp;             ///< reps retired by this repair
};

/// The calling thread's arena: what the scratch-less solve/repair entry
/// points use, giving each engine worker its own reusable buffers.
SolveScratch& solve_scratch_tls();

}  // namespace dbr::core
