#include "core/solve_scratch.hpp"

namespace dbr::core {

SolveScratch& solve_scratch_tls() {
  thread_local SolveScratch scratch;
  return scratch;
}

}  // namespace dbr::core
