#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "debruijn/cycle.hpp"

namespace dbr::core {

/// The modified De Bruijn graph MB(d,n) of Section 3.2.3: B(d,n) with a few
/// parallel ("p-") edges between alternating nodes rerouted through the
/// constant nodes s^n so that the edge set decomposes into d pairwise
/// disjoint Hamiltonian cycles (a Hamiltonian decomposition - impossible for
/// B(d,n) itself because of its loops).
///
/// Defined for d an odd prime power with n >= 2, and for d = 2 with n >= 3.
/// Properties guaranteed (and enforced by tests):
///  * exactly d Hamiltonian cycles, pairwise edge-disjoint;
///  * every node has indegree and outdegree d in MB(d,n);
///  * the undirected UMB(d,n) contains UB(d,n) as a subgraph (at most one
///    edge of each antiparallel p-edge pair is rerouted).
///
/// For n >= 3 MB(d,n) is a simple graph (every rerouted edge is new). For
/// n = 2 a rerouted edge can coincide with an existing De Bruijn edge, so
/// MB(d,2) is in general a multigraph - the paper's footnote in Section
/// 3.2.3 - and "edge-disjoint" is meant with multiplicity.
struct ModifiedDeBruijn {
  Digit radix;
  unsigned tuple_length;
  /// The d disjoint Hamiltonian cycles whose union is MB(d,n). These are
  /// node cycles because the rerouted hops are not De Bruijn edges.
  std::vector<NodeCycle> cycles;
  /// Edges of MB(d,n) that are not edges of B(d,n).
  std::vector<std::pair<Word, Word>> added_edges;
  /// Edges of B(d,n) (always non-loop) absent from MB(d,n).
  std::vector<std::pair<Word, Word>> removed_edges;
};

/// Builds MB(d,n) and its Hamiltonian decomposition.
ModifiedDeBruijn modified_debruijn_decomposition(Digit d, unsigned n);

}  // namespace dbr::core
