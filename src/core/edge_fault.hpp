#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/instance_context.hpp"
#include "debruijn/cycle.hpp"

namespace dbr::core {

/// Edge-fault-tolerant ring embedding (Section 3.3).
///
/// Faulty edges are given as (n+1)-words over Z_d (see WordSpace::edge_word).
/// Returns a Hamiltonian cycle of B(d,n) avoiding every faulty edge, built
/// by one of the paper's two constructions:
///
///  * scan of the psi(d) pairwise disjoint Hamiltonian cycles (sufficient
///    whenever f <= psi(d) - 1, Proposition 3.2), or
///  * the recursive phi(d)-construction (Proposition 3.3): for prime-power
///    d, pick a fault-free shifted maximal cycle s + C (at least d - f of
///    the d shifts are fault-free) and a fault-free insertion pair
///    (alpha s^n, s^n alpha-hat) (the d-1 pairs are pairwise disjoint);
///    for composite d = s*t split the fault set into <= phi(s) and
///    <= phi(t) halves, recurse and Rees-compose.
///
/// A result is guaranteed when f <= MAX(psi(d)-1, phi_edge_bound(d))
/// (Proposition 3.4); beyond that the function still tries both routes and
/// returns std::nullopt on failure. Faults on loop edges are harmless: no
/// Hamiltonian cycle traverses a loop.
///
/// Requires d >= 2 and n >= 2.
std::optional<SymbolCycle> fault_free_hamiltonian_cycle(
    std::uint64_t d, unsigned n, std::span<const Word> faulty_edge_words);

/// The phi(d)-construction alone (Proposition 3.3); exposed for tests and
/// for the ablation bench. Returns nullopt if the recursion cannot place
/// the fault set within the per-factor budgets.
std::optional<SymbolCycle> fault_free_hc_phi_construction(
    std::uint64_t d, unsigned n, std::span<const Word> faulty_edge_words);

/// The psi(d)-family scan alone; nullopt if every member hits a fault.
std::optional<SymbolCycle> fault_free_hc_family_scan(
    std::uint64_t d, unsigned n, std::span<const Word> faulty_edge_words);

// --- Context-backed solve phase (the context/solve split) ---
//
// Each solve_edge_* borrows a shared InstanceContext and performs only
// fault-dependent work: the disjoint-HC family, its inverted edge index and
// the per-prime-power maximal-cycle machinery are all taken from the
// context. Answers are identical to the fault_free_* functions above on the
// same instance and fault set.

/// Proposition 3.4 dispatch (scan then phi) against a shared context.
std::optional<SymbolCycle> solve_edge_auto(const InstanceContext& ctx,
                                           std::span<const Word> faulty_edge_words);

/// psi(d)-family selection via the context's inverted edge index: O(f)
/// lookups instead of a full family scan.
std::optional<SymbolCycle> solve_edge_scan(const InstanceContext& ctx,
                                           std::span<const Word> faulty_edge_words);

/// phi(d)-construction using the context's cached maximal-cycle families.
std::optional<SymbolCycle> solve_edge_phi(const InstanceContext& ctx,
                                          std::span<const Word> faulty_edge_words);

}  // namespace dbr::core
