#include "core/butterfly_embedding.hpp"

#include "butterfly/lift.hpp"
#include "core/disjoint_hc.hpp"
#include "core/edge_fault.hpp"
#include "debruijn/cycle.hpp"
#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::core {

namespace {

void require_coprime(const ButterflyDigraph& bf) {
  require(nt::gcd(bf.radix(), bf.levels()) == 1,
          "butterfly embedding requires gcd(d, n) = 1 (Section 3.4)");
}

}  // namespace

std::optional<std::vector<NodeId>> butterfly_fault_free_hc(
    const ButterflyDigraph& bf,
    std::span<const std::pair<NodeId, NodeId>> faulty_edges) {
  require_coprime(bf);
  const WordSpace& ws = bf.columns();
  // Pull every faulty butterfly edge back to its De Bruijn edge (Lemma
  // 3.10): if the De Bruijn cycle avoids U -> V, the lift avoids all n
  // butterfly copies of it, in particular the faulty one.
  std::vector<Word> debruijn_faults;
  debruijn_faults.reserve(faulty_edges.size());
  for (const auto& [u, v] : faulty_edges) {
    debruijn_faults.push_back(butterfly::pull_back_edge(bf, u, v));
  }
  const auto hc =
      fault_free_hamiltonian_cycle(ws.radix(), ws.length(), debruijn_faults);
  if (!hc.has_value()) return std::nullopt;
  return butterfly::lift_cycle(bf, to_node_cycle(ws, *hc));
}

std::optional<std::vector<NodeId>> solve_butterfly(
    const InstanceContext& ctx,
    std::span<const std::pair<NodeId, NodeId>> faulty_edges) {
  const ButterflyDigraph& bf = ctx.butterfly();  // requires gcd(d, n) = 1
  const WordSpace& ws = bf.columns();
  std::vector<Word> debruijn_faults;
  debruijn_faults.reserve(faulty_edges.size());
  for (const auto& [u, v] : faulty_edges) {
    debruijn_faults.push_back(butterfly::pull_back_edge(bf, u, v));
  }
  const auto hc = solve_edge_auto(ctx, debruijn_faults);
  if (!hc.has_value()) return std::nullopt;
  return butterfly::lift_cycle(bf, to_node_cycle(ws, *hc));
}

std::vector<std::vector<NodeId>> butterfly_disjoint_hcs(const ButterflyDigraph& bf) {
  require_coprime(bf);
  const WordSpace& ws = bf.columns();
  std::vector<std::vector<NodeId>> out;
  for (const SymbolCycle& hc : disjoint_hamiltonian_cycles(ws.radix(), ws.length())) {
    out.push_back(butterfly::lift_cycle(bf, to_node_cycle(ws, hc)));
  }
  return out;
}

}  // namespace dbr::core
