#include "core/disjoint_hc.hpp"

#include <algorithm>

#include "gf/poly.hpp"
#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::core {

using gf::Field;
using Elem = Field::Elem;

bool lemma35_condition_a(std::uint64_t p) {
  require(p >= 3 && nt::is_prime(p), "condition (a) defined for odd primes");
  // 2 is an odd power of a primitive root iff 2 is a quadratic nonresidue.
  return nt::pow_mod(2, (p - 1) / 2, p) == p - 1;
}

bool lemma35_condition_b(std::uint64_t p) {
  require(p >= 3 && nt::is_prime(p), "condition (b) defined for odd primes");
  const std::uint64_t lambda = nt::primitive_root(p);
  // Collect the odd powers of lambda, then test all pairs for sum 2.
  std::vector<std::uint64_t> odd_powers;
  std::uint64_t value = lambda;  // lambda^1
  const std::uint64_t lambda_sq = nt::mul_mod(lambda, lambda, p);
  for (std::uint64_t e = 1; e < p - 1; e += 2) {
    odd_powers.push_back(value);
    value = nt::mul_mod(value, lambda_sq, p);
  }
  for (std::uint64_t x : odd_powers) {
    for (std::uint64_t y : odd_powers) {
      if ((x + y) % p == 2) return true;
    }
  }
  return false;
}

namespace {

std::uint64_t psi_prime_power(std::uint64_t p, unsigned e) {
  std::uint64_t q = 1;
  for (unsigned i = 0; i < e; ++i) q *= p;
  if (p == 2) return q - 1;
  if ((p - 1) / 2 % 2 == 0 && lemma35_condition_b(p)) return (q + 1) / 2;
  return (q - 1) / 2;
}

}  // namespace

std::uint64_t psi(std::uint64_t d) {
  require(d >= 2, "psi(d) requires d >= 2");
  std::uint64_t result = 1;
  for (const auto& pp : nt::factor(d)) {
    result *= psi_prime_power(pp.prime, pp.exponent);
  }
  return result;
}

std::uint64_t phi_edge_bound(std::uint64_t d) {
  require(d >= 2, "phi_edge_bound requires d >= 2");
  const auto pf = nt::factor(d);
  std::uint64_t sum = 0;
  for (const auto& pp : pf) sum += pp.value();
  return sum - 2 * pf.size();
}

std::uint64_t max_tolerable_edge_faults(std::uint64_t d) {
  return std::max(psi(d) - 1, phi_edge_bound(d));
}

// ---------------------------------------------------------------------------
// MaximalCycleFamily

MaximalCycleFamily::MaximalCycleFamily(const Field& field, unsigned n)
    : MaximalCycleFamily(
          field, n,
          gf::taps_from_characteristic(field, gf::find_primitive_poly(field, n))) {}

MaximalCycleFamily::MaximalCycleFamily(const Field& field, unsigned n,
                                       std::vector<Elem> taps)
    : field_(&field), n_(n), taps_(std::move(taps)) {
  require(n >= 1, "MaximalCycleFamily requires n >= 1");
  require(taps_.size() == n, "need exactly n taps");
  const gf::Lfsr lfsr(field, taps_);
  require(gf::is_primitive(field, lfsr.characteristic_polynomial()),
          "characteristic polynomial must be primitive over GF(q)");
  omega_ = lfsr.omega();
  ensure(omega_ != 1, "primitive polynomial cannot have root 1, so omega != 1");
  std::vector<Elem> init(n, 0);
  init[n - 1] = 1;
  const auto seq = lfsr.period_sequence(init);
  base_.symbols.assign(seq.begin(), seq.end());
}

SymbolCycle MaximalCycleFamily::shifted_cycle(Elem s) const {
  SymbolCycle out = base_;
  for (Digit& c : out.symbols) c = field_->add(static_cast<Elem>(c), s);
  return out;
}

std::pair<Word, Word> MaximalCycleFamily::insertion_pair(Elem s, Elem alpha) const {
  require(alpha != s, "insertion requires alpha != s");
  const WordSpace ws(static_cast<Digit>(field_->order()), n_);
  // alpha-hat = a_0 alpha + s (1 - a_0) = s + a_0 (alpha - s).
  const Elem alpha_hat =
      field_->add(s, field_->mul(taps_[0], field_->sub(alpha, s)));
  // Edge words ((n+1)-tuples): alpha s^n and s^n alpha-hat.
  const Word s_rep = ws.repeated(static_cast<Digit>(s));  // s^n as n digits
  const Word word_alpha_s_n = static_cast<Word>(alpha) * ws.size() + s_rep;
  const Word word_s_n_alpha_hat = s_rep * field_->order() + alpha_hat;
  return {word_alpha_s_n, word_s_n_alpha_hat};
}

SymbolCycle MaximalCycleFamily::hamiltonian_cycle_at(Elem s, Elem alpha) const {
  require(alpha != s, "insertion requires alpha != s");
  SymbolCycle cycle = shifted_cycle(s);
  const std::size_t k = cycle.symbols.size();
  // Locate the window alpha s^(n-1) and insert one extra 's' n positions
  // later, turning ... alpha s^(n-1) alpha-hat ... into
  // ... alpha s^n alpha-hat ... (Figure 3.1).
  std::size_t pos = k;  // position of window alpha s^(n-1)
  for (std::size_t i = 0; i < k; ++i) {
    bool match = cycle.symbols[i] == alpha;
    for (unsigned j = 1; match && j < n_; ++j) {
      match = cycle.symbols[(i + j) % k] == s;
    }
    if (match) {
      pos = i;
      break;
    }
  }
  ensure(pos < k, "s + C contains every node alpha s^(n-1), alpha != s");
  const std::size_t insert_at = (pos + n_) % k;
  SymbolCycle out;
  out.symbols.reserve(k + 1);
  out.symbols.assign(cycle.symbols.begin(),
                     cycle.symbols.begin() + static_cast<std::ptrdiff_t>(insert_at));
  out.symbols.push_back(static_cast<Digit>(s));
  out.symbols.insert(out.symbols.end(),
                     cycle.symbols.begin() + static_cast<std::ptrdiff_t>(insert_at),
                     cycle.symbols.end());
  return out;
}

SymbolCycle MaximalCycleFamily::hamiltonian_cycle(Elem s, Elem f_s) const {
  require(f_s != s, "conflict function must satisfy f(s) != s");
  // alpha-hat = s omega + f(s) (1 - omega); recover alpha from
  // alpha-hat = s + a_0 (alpha - s).
  const Elem alpha_hat = field_->add(field_->mul(s, omega_),
                                     field_->mul(f_s, field_->sub(1, omega_)));
  const Elem alpha =
      field_->add(s, field_->mul(field_->inv(taps_[0]), field_->sub(alpha_hat, s)));
  ensure(alpha != s, "f(s) != s implies alpha != s (omega != 1)");
  return hamiltonian_cycle_at(s, alpha);
}

// ---------------------------------------------------------------------------
// Strategies 1-3 (Section 3.2.1)

std::vector<SymbolCycle> disjoint_hcs_prime_power(const Field& field, unsigned n) {
  require(n >= 2, "disjoint HC construction requires n >= 2");
  const std::uint64_t q = field.order();
  const std::uint64_t p = field.characteristic();
  const MaximalCycleFamily family(field, n);
  std::vector<SymbolCycle> out;

  if (p == 2) {
    // Strategy 1: f(x) = 0 for x != 0; the q-1 cycles {H_s : s != 0} are
    // pairwise disjoint because 2x = 0 in characteristic 2.
    for (Elem s = 1; s < q; ++s) {
      out.push_back(family.hamiltonian_cycle(s, 0));
    }
    return out;
  }

  // Odd characteristic: lambda is a primitive root of Z_p viewed inside
  // GF(q); J = Z_p^* and the nonzero elements split into (q-1)/(p-1) cosets
  // g_i J. The selected cycles are H_x for x in g_i * QR(p) (even powers of
  // lambda), optionally plus H_0 (Strategy 2 with (p-1)/2 even).
  const std::uint64_t lambda_int = nt::primitive_root(p);
  const Elem lambda = field.from_int(lambda_int);
  const bool cond_b = lemma35_condition_b(p);
  const bool use_strategy2 = cond_b;
  // Strategy 2: f(x) = lambda^A x with 2 = lambda^A + lambda^B; it is enough
  // to know *a* valid odd exponent A. Strategy 3: 2 = lambda^A (odd A), so
  // f(x) = 2x. Either way f multiplies by an odd power of lambda; we pick
  // the concrete multiplier below.
  Elem multiplier;
  if (use_strategy2) {
    // Find odd A with lambda^A + lambda^B = 2, B odd.
    multiplier = 0;
    std::vector<std::uint64_t> odd_powers;
    std::uint64_t value = lambda_int;
    const std::uint64_t lambda_sq = nt::mul_mod(lambda_int, lambda_int, p);
    for (std::uint64_t e = 1; e < p - 1; e += 2) {
      odd_powers.push_back(value);
      value = nt::mul_mod(value, lambda_sq, p);
    }
    for (std::uint64_t x : odd_powers) {
      for (std::uint64_t y : odd_powers) {
        if ((x + y) % p == 2) {
          multiplier = field.from_int(x);
          break;
        }
      }
      if (multiplier != 0) break;
    }
    ensure(multiplier != 0, "condition (b) promised an odd-power pair");
  } else {
    ensure(lemma35_condition_a(p), "Lemma 3.5: condition (a) or (b) holds");
    multiplier = field.from_int(2);  // 2 = lambda^A with A odd
  }

  // Quadratic residues of Z_p (even powers of lambda), embedded in GF(q).
  std::vector<Elem> qr;
  {
    std::uint64_t value = nt::mul_mod(lambda_int, lambda_int, p);  // lambda^2
    for (std::uint64_t k = 1; k <= (p - 1) / 2; ++k) {
      qr.push_back(field.from_int(value));
      value = nt::mul_mod(value, nt::mul_mod(lambda_int, lambda_int, p), p);
    }
  }

  // Coset representatives of Z_p^* in GF(q)^*.
  std::vector<bool> covered(q, false);
  std::vector<Elem> coset_reps;
  for (Elem g = 1; g < q; ++g) {
    if (covered[g]) continue;
    coset_reps.push_back(g);
    for (std::uint64_t u = 1; u < p; ++u) {
      covered[field.mul(g, field.from_int(u))] = true;
    }
  }

  for (Elem g : coset_reps) {
    for (Elem u : qr) {
      const Elem x = field.mul(g, u);
      out.push_back(family.hamiltonian_cycle(x, field.mul(multiplier, x)));
    }
  }
  if (use_strategy2 && (p - 1) / 2 % 2 == 0) {
    // H_0 with f(0) = lambda conflicts only with odd powers of lambda, none
    // of which were selected.
    out.push_back(family.hamiltonian_cycle(0, lambda));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rees composition and the general case

SymbolCycle rees_compose(const SymbolCycle& a, const SymbolCycle& b,
                         std::uint64_t t) {
  require(!a.symbols.empty() && !b.symbols.empty(), "cycles must be nonempty");
  require(nt::gcd(a.symbols.size(), b.symbols.size()) == 1,
          "Rees composition needs coprime cycle lengths (gcd(s,t) = 1)");
  const std::uint64_t len =
      static_cast<std::uint64_t>(a.symbols.size()) * b.symbols.size();
  SymbolCycle out;
  out.symbols.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    out.symbols.push_back(static_cast<Digit>(
        a.symbols[i % a.symbols.size()] * t + b.symbols[i % b.symbols.size()]));
  }
  return out;
}

std::vector<SymbolCycle> disjoint_hamiltonian_cycles(std::uint64_t d, unsigned n) {
  require(d >= 2, "disjoint_hamiltonian_cycles requires d >= 2");
  require(n >= 2, "disjoint_hamiltonian_cycles requires n >= 2");
  const auto pf = nt::factor(d);
  std::vector<SymbolCycle> acc;
  for (std::size_t k = 0; k < pf.size(); ++k) {
    const std::uint64_t t = pf[k].value();
    const gf::Field field(t);
    std::vector<SymbolCycle> part = disjoint_hcs_prime_power(field, n);
    if (k == 0) {
      acc = std::move(part);
      continue;
    }
    std::vector<SymbolCycle> merged;
    merged.reserve(acc.size() * part.size());
    for (const SymbolCycle& a : acc) {
      for (const SymbolCycle& b : part) {
        merged.push_back(rees_compose(a, b, t));
      }
    }
    acc = std::move(merged);
  }
  return acc;
}

}  // namespace dbr::core
