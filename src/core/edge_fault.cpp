#include "core/edge_fault.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/disjoint_hc.hpp"
#include "gf/field.hpp"
#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::core {

namespace {

using EdgeSet = std::unordered_set<Word>;

// Splits every digit of an (n+1)-edge-word over Z_(s*t) into its Z_s / Z_t
// halves (v = a*t + b), yielding the corresponding edge words of B(s,n) and
// B(t,n) used by the Rees recursion in Proposition 3.3.
std::pair<Word, Word> split_edge_word(Word e, unsigned n, std::uint64_t s,
                                      std::uint64_t t) {
  std::uint64_t digits_a = 0, digits_b = 0;
  std::uint64_t place_a = 1, place_b = 1;
  for (unsigned i = 0; i <= n; ++i) {
    const std::uint64_t v = e % (s * t);
    e /= (s * t);
    digits_a += (v / t) * place_a;
    digits_b += (v % t) * place_b;
    place_a *= s;
    place_b *= t;
  }
  return {digits_a, digits_b};
}

std::optional<SymbolCycle> phi_construction(std::uint64_t d, unsigned n,
                                            std::vector<Word> faults,
                                            const InstanceContext* ctx);

// Prime-power base case: f <= d - 2 is always satisfiable. With a context,
// the GF(q) field and maximal-cycle family come precomputed; the fault scan
// below is the only per-solve work.
std::optional<SymbolCycle> phi_prime_power(std::uint64_t q, unsigned n,
                                           const std::vector<Word>& faults,
                                           const InstanceContext* ctx) {
  std::optional<gf::Field> local_field;
  std::optional<MaximalCycleFamily> local_family;
  const MaximalCycleFamily* family;
  if (ctx != nullptr) {
    family = &ctx->maximal_family(q);
  } else {
    local_field.emplace(q);
    local_family.emplace(*local_field, n);
    family = &*local_family;
  }
  const WordSpace ws(static_cast<Digit>(q), n);
  const EdgeSet fault_set(faults.begin(), faults.end());
  for (gf::Field::Elem s = 0; s < q; ++s) {
    const SymbolCycle shifted = family->shifted_cycle(s);
    if (!avoids_edges(ws, shifted, faults)) continue;
    for (gf::Field::Elem alpha = 0; alpha < q; ++alpha) {
      if (alpha == s) continue;
      const auto [e1, e2] = family->insertion_pair(s, alpha);
      if (fault_set.contains(e1) || fault_set.contains(e2)) continue;
      return family->hamiltonian_cycle_at(s, alpha);
    }
  }
  return std::nullopt;
}

std::optional<SymbolCycle> phi_construction(std::uint64_t d, unsigned n,
                                            std::vector<Word> faults,
                                            const InstanceContext* ctx) {
  const auto pf = nt::factor(d);
  if (pf.size() == 1) return phi_prime_power(d, n, faults, ctx);
  // d = s * t with t the largest prime-power factor; split the faults so
  // that each side stays within its own phi budget.
  const std::uint64_t t = pf.back().value();
  const std::uint64_t s = d / t;
  const std::uint64_t budget_s = phi_edge_bound(s);
  std::vector<Word> faults_a, faults_b;
  for (Word e : faults) {
    const auto [ea, eb] = split_edge_word(e, n, s, t);
    if (faults_a.size() < budget_s) {
      faults_a.push_back(ea);
    } else {
      faults_b.push_back(eb);
    }
  }
  // Every prime-power leaf of the recursion is a full prime-power factor of
  // the original base, so the context's family map covers both branches.
  const auto a = phi_construction(s, n, std::move(faults_a), ctx);
  if (!a.has_value()) return std::nullopt;
  const auto b = phi_construction(t, n, std::move(faults_b), ctx);
  if (!b.has_value()) return std::nullopt;
  return rees_compose(*a, *b, t);
}

void require_fault_words(const WordSpace& ws,
                         std::span<const Word> faulty_edge_words) {
  for (Word e : faulty_edge_words) {
    require(e < ws.edge_word_count(), "faulty edge word out of range");
  }
}

std::optional<SymbolCycle> phi_entry(std::uint64_t d, unsigned n,
                                     std::span<const Word> faulty_edge_words,
                                     const InstanceContext* ctx) {
  require(d >= 2 && n >= 2, "requires d >= 2 and n >= 2");
  std::optional<WordSpace> local_ws;
  const WordSpace& ws = ctx != nullptr
                            ? ctx->words()
                            : local_ws.emplace(static_cast<Digit>(d), n);
  require_fault_words(ws, faulty_edge_words);
  std::vector<Word> faults(faulty_edge_words.begin(), faulty_edge_words.end());
  std::sort(faults.begin(), faults.end());
  faults.erase(std::unique(faults.begin(), faults.end()), faults.end());
  auto result = phi_construction(d, n, std::move(faults), ctx);
  if (result.has_value() &&
      !avoids_edges(ws, *result, faulty_edge_words)) {
    return std::nullopt;  // over-budget split landed a fault on both sides
  }
  return result;
}

std::optional<SymbolCycle> auto_dispatch(
    std::uint64_t d, unsigned n, std::span<const Word> faulty_edge_words,
    const InstanceContext* ctx) {
  // Proposition 3.4: take whichever construction covers more faults; try
  // the cheaper guarantee first, then fall back to the other.
  const auto scan = [&] {
    return ctx != nullptr ? solve_edge_scan(*ctx, faulty_edge_words)
                          : fault_free_hc_family_scan(d, n, faulty_edge_words);
  };
  const std::uint64_t f = faulty_edge_words.size();
  if (f + 1 <= psi(d)) {
    auto viaFamily = scan();
    if (viaFamily.has_value()) return viaFamily;
  }
  auto viaPhi = phi_entry(d, n, faulty_edge_words, ctx);
  if (viaPhi.has_value()) return viaPhi;
  return scan();
}

}  // namespace

std::optional<SymbolCycle> fault_free_hc_phi_construction(
    std::uint64_t d, unsigned n, std::span<const Word> faulty_edge_words) {
  return phi_entry(d, n, faulty_edge_words, nullptr);
}

std::optional<SymbolCycle> fault_free_hc_family_scan(
    std::uint64_t d, unsigned n, std::span<const Word> faulty_edge_words) {
  require(d >= 2 && n >= 2, "requires d >= 2 and n >= 2");
  const WordSpace ws(static_cast<Digit>(d), n);
  require_fault_words(ws, faulty_edge_words);
  for (const SymbolCycle& hc : disjoint_hamiltonian_cycles(d, n)) {
    if (avoids_edges(ws, hc, faulty_edge_words)) return hc;
  }
  return std::nullopt;
}

std::optional<SymbolCycle> fault_free_hamiltonian_cycle(
    std::uint64_t d, unsigned n, std::span<const Word> faulty_edge_words) {
  require(d >= 2 && n >= 2, "requires d >= 2 and n >= 2");
  return auto_dispatch(d, n, faulty_edge_words, nullptr);
}

std::optional<SymbolCycle> solve_edge_scan(
    const InstanceContext& ctx, std::span<const Word> faulty_edge_words) {
  require(ctx.supports_edge_faults(), "requires d >= 2 and n >= 2");
  require_fault_words(ctx.words(), faulty_edge_words);
  const PsiFamilyIndex& family = ctx.psi_family();
  const auto idx = family.first_avoiding(faulty_edge_words);
  if (!idx.has_value()) return std::nullopt;
  return family.cycles[*idx];
}

std::optional<SymbolCycle> solve_edge_phi(
    const InstanceContext& ctx, std::span<const Word> faulty_edge_words) {
  return phi_entry(ctx.base(), ctx.words().length(), faulty_edge_words, &ctx);
}

std::optional<SymbolCycle> solve_edge_auto(
    const InstanceContext& ctx, std::span<const Word> faulty_edge_words) {
  require(ctx.words().length() >= 2, "requires d >= 2 and n >= 2");
  return auto_dispatch(ctx.base(), ctx.words().length(), faulty_edge_words,
                       &ctx);
}

}  // namespace dbr::core
