#include "core/instance_context.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::core {

Word LabelMergeTable::exit_of(const WordSpace& ws, std::uint32_t i,
                              Word label) const {
  const auto begin = exit_sorted.begin() + static_cast<std::ptrdiff_t>(member_begin[i]);
  const auto end = exit_sorted.begin() + static_cast<std::ptrdiff_t>(member_begin[i + 1]);
  const auto it = std::lower_bound(
      begin, end, label, [&ws](Word v, Word key) { return ws.suffix(v) < key; });
  return (it != end && ws.suffix(*it) == label) ? *it : kNoWord;
}

Word LabelMergeTable::entry_of(const WordSpace& ws, std::uint32_t i,
                               Word label) const {
  const auto begin = entry_sorted.begin() + static_cast<std::ptrdiff_t>(member_begin[i]);
  const auto end = entry_sorted.begin() + static_cast<std::ptrdiff_t>(member_begin[i + 1]);
  const auto it = std::lower_bound(
      begin, end, label, [&ws](Word v, Word key) { return ws.prefix(v) < key; });
  return (it != end && ws.prefix(*it) == label) ? *it : kNoWord;
}

std::optional<std::size_t> PsiFamilyIndex::first_avoiding(
    std::span<const Word> faulty_edge_words) const {
  std::vector<bool> hit(cycles.size(), false);
  for (Word e : faulty_edge_words) {
    const auto it = members_by_edge.find(e);
    if (it == members_by_edge.end()) continue;
    for (std::uint32_t c : it->second) hit[c] = true;
  }
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    if (!hit[i]) return i;
  }
  return std::nullopt;
}

InstanceContext::InstanceContext(Digit base, unsigned n) : graph_(base, n) {}

std::shared_ptr<const InstanceContext> InstanceContext::make(Digit base,
                                                             unsigned n) {
  return std::make_shared<const InstanceContext>(base, n);
}

const NecklaceTable& InstanceContext::necklaces() const {
  std::call_once(necklace_once_, [this] {
    const WordSpace& ws = words();
    NecklaceTable t;
    const Word unset = ws.size();
    t.min_rot.assign(ws.size(), unset);
    // Ascending scan: the first unassigned member of a rotation class is its
    // minimum, so one walk per necklace labels the whole class.
    for (Word x = 0; x < ws.size(); ++x) {
      if (t.min_rot[x] != unset) continue;
      t.reps.push_back(x);
      Word v = x;
      do {
        t.min_rot[v] = x;
        v = ws.rotate_left(v, 1);
      } while (v != x);
    }
    necklace_table_ = std::move(t);
  });
  return necklace_table_;
}

const LabelMergeTable& InstanceContext::label_merge() const {
  std::call_once(label_merge_once_, [this] {
    const NecklaceTable& nt = necklaces();
    const WordSpace& ws = words();
    const Word size = ws.size();
    require(nt.reps.size() <
                std::numeric_limits<std::uint32_t>::max(),
            "necklace count exceeds the 32-bit index range");
    LabelMergeTable t;
    t.necklace_index.assign(size, 0);
    t.rot_next.assign(size, 0);
    t.members.reserve(size);
    t.member_begin.reserve(nt.reps.size() + 1);
    t.member_begin.push_back(0);
    for (std::uint32_t i = 0; i < nt.reps.size(); ++i) {
      Word v = nt.reps[i];
      do {
        t.necklace_index[v] = i;
        t.members.push_back(v);
        const Word next = ws.rotate_left(v, 1);
        t.rot_next[v] = next;
        v = next;
      } while (v != nt.reps[i]);
      t.member_begin.push_back(t.members.size());
    }
    // Label views: each member slice re-sorted by its exit (suffix) resp.
    // entry (prefix) label. Within one necklace both label maps are
    // injective — a.w and b.w (resp. w.a and w.b) cannot share a rotation
    // class (Section 2.2) — which is what makes exit_of/entry_of total
    // functions on the labels a necklace exposes; verified here once so
    // every solve may rely on it.
    t.exit_sorted = t.members;
    t.entry_sorted = t.members;
    for (std::uint32_t i = 0; i < nt.reps.size(); ++i) {
      const auto begin = static_cast<std::ptrdiff_t>(t.member_begin[i]);
      const auto end = static_cast<std::ptrdiff_t>(t.member_begin[i + 1]);
      std::sort(t.exit_sorted.begin() + begin, t.exit_sorted.begin() + end,
                [&ws](Word a, Word b) { return ws.suffix(a) < ws.suffix(b); });
      std::sort(t.entry_sorted.begin() + begin, t.entry_sorted.begin() + end);
      for (std::ptrdiff_t j = begin + 1; j < end; ++j) {
        ensure(ws.suffix(t.exit_sorted[j - 1]) != ws.suffix(t.exit_sorted[j]),
               "exit labels are unique within a necklace (Section 2.2)");
        ensure(ws.prefix(t.entry_sorted[j - 1]) != ws.prefix(t.entry_sorted[j]),
               "entry labels are unique within a necklace (Section 2.2)");
      }
    }
    label_merge_table_ = std::move(t);
  });
  return label_merge_table_;
}

const PsiFamilyIndex& InstanceContext::psi_family() const {
  require(supports_edge_faults(), "psi family requires n >= 2");
  std::call_once(psi_once_, [this] {
    PsiFamilyIndex fam;
    fam.cycles = disjoint_hamiltonian_cycles(base(), words().length());
    for (std::uint32_t i = 0; i < fam.cycles.size(); ++i) {
      for (Word e : edge_words(words(), fam.cycles[i])) {
        fam.members_by_edge[e].push_back(i);
      }
    }
    psi_ = std::move(fam);
  });
  return psi_;
}

const MaximalCycleFamily& InstanceContext::maximal_family(
    std::uint64_t prime_power) const {
  require(supports_edge_faults(),
          "maximal-cycle machinery requires n >= 2");
  std::call_once(phi_once_, [this] {
    // One family per prime-power factor of the base: exactly the leaves the
    // phi-recursion of Proposition 3.3 can reach for this instance.
    for (const auto& pp : nt::factor(base())) {
      auto field = std::make_unique<gf::Field>(pp.value());
      auto family =
          std::make_unique<MaximalCycleFamily>(*field, words().length());
      families_.emplace(pp.value(), std::move(family));
      fields_.push_back(std::move(field));
    }
  });
  const auto it = families_.find(prime_power);
  require(it != families_.end(),
          "prime power is not a factor of the instance base");
  return *it->second;
}

bool InstanceContext::supports_butterfly() const {
  return std::gcd<std::uint64_t, std::uint64_t>(base(), words().length()) == 1;
}

const ButterflyDigraph& InstanceContext::butterfly() const {
  require(supports_butterfly(), "butterfly lift requires gcd(d, n) = 1");
  std::call_once(butterfly_once_, [this] {
    butterfly_ = std::make_unique<ButterflyDigraph>(base(), words().length());
  });
  return *butterfly_;
}

}  // namespace dbr::core
