#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "butterfly/butterfly.hpp"
#include "core/disjoint_hc.hpp"
#include "debruijn/cycle.hpp"
#include "debruijn/debruijn.hpp"
#include "gf/field.hpp"

namespace dbr::core {

/// Fault-independent necklace structure of B(d,n): the minimal rotation of
/// every word plus the sorted necklace representatives. Shared by every FFC
/// solve on the instance, replacing the per-query O(n d^n) rotation scans.
struct NecklaceTable {
  std::vector<Word> min_rot;  ///< min_rotation(x) for every word x
  std::vector<Word> reps;     ///< sorted representatives of all necklaces
};

/// Precomputed Step-2 "label merge" structure of Section 2.2, shared by
/// every FFC-family solve on the instance: the necklace member lists
/// flattened into CSR form (members of necklace i occupy
/// members[member_begin[i], member_begin[i+1]) in rotation order from the
/// representative), the necklace index of every word, the rotation
/// successor of every word, and per-necklace label lookups — the same
/// member slices re-sorted by (n-1)-digit suffix (exit labels) resp.
/// prefix (entry labels). With these, Step 1.2 leader election walks a
/// CSR slice, and the Step-3 D-edge reroute finds "the node of [x] with
/// suffix w" by binary search — no per-solve necklace rescans and no
/// rebuilding of lists the context already knows.
struct LabelMergeTable {
  std::vector<std::uint32_t> necklace_index;  ///< word -> index into NecklaceTable::reps
  std::vector<std::uint64_t> member_begin;    ///< CSR offsets; size reps + 1
  std::vector<Word> members;      ///< words grouped by necklace, rotation order
  std::vector<Word> rot_next;     ///< rotate_left(x, 1) for every word x
  std::vector<Word> exit_sorted;  ///< member slices re-sorted by suffix
  std::vector<Word> entry_sorted; ///< member slices re-sorted by prefix

  /// Rotation period (member count) of necklace i.
  std::uint64_t period(std::uint32_t i) const {
    return member_begin[i + 1] - member_begin[i];
  }
  /// The unique member of necklace i with the given (n-1)-digit suffix, or
  /// kNoWord (~0) when the necklace does not expose that exit label.
  Word exit_of(const WordSpace& ws, std::uint32_t i, Word label) const;
  /// The unique member of necklace i with the given (n-1)-digit prefix, or
  /// kNoWord (~0) when the necklace does not expose that entry label.
  Word entry_of(const WordSpace& ws, std::uint32_t i, Word label) const;
};

/// The psi(d) pairwise disjoint Hamiltonian cycles of Proposition 3.2, plus
/// an inverted index from edge word to the family members traversing it.
/// Because members are pairwise edge-disjoint each edge maps to at most one
/// cycle, so selecting the first member avoiding a fault set is O(f) lookups
/// instead of a full O(psi * d^n) family scan. The index stores a member
/// *list* per edge so the selection stays exact even for a hypothetical
/// non-disjoint family.
struct PsiFamilyIndex {
  std::vector<SymbolCycle> cycles;  ///< disjoint_hamiltonian_cycles order
  std::unordered_map<Word, std::vector<std::uint32_t>> members_by_edge;

  /// Index of the first cycle using none of the given edge words; equivalent
  /// to scanning `cycles` in order with avoids_edges.
  std::optional<std::size_t> first_avoiding(
      std::span<const Word> faulty_edge_words) const;
};

/// Immutable, shareable per-(base, n) context: everything the paper's
/// constructions compute that does not depend on the fault set. A solve
/// phase (solve_ffc, solve_edge_*, the butterfly lift) borrows a context and
/// performs only fault-dependent work, so distinct fault sets on the same
/// instance share all precompute.
///
/// Sections are built lazily on first use (each under its own call_once), so
/// a node-fault workload never pays for the edge-fault machinery and vice
/// versa. All accessors are safe to call concurrently; after construction
/// the context is logically const and never mutated.
class InstanceContext {
 public:
  /// Validates (base, n) exactly like WordSpace (d >= 2, n >= 1, d^(n+1)
  /// representable); throws precondition_error otherwise.
  InstanceContext(Digit base, unsigned n);

  InstanceContext(const InstanceContext&) = delete;
  InstanceContext& operator=(const InstanceContext&) = delete;

  static std::shared_ptr<const InstanceContext> make(Digit base, unsigned n);

  Digit base() const { return graph_.radix(); }
  unsigned tuple_length() const { return graph_.tuple_length(); }
  const WordSpace& words() const { return graph_.words(); }
  const DeBruijnDigraph& graph() const { return graph_; }

  /// Necklace decomposition behind the Chapter-2 FFC construction.
  const NecklaceTable& necklaces() const;

  /// Precomputed Step-2 label-merge tables (CSR necklace members plus
  /// per-necklace exit/entry node-by-label lookups); built lazily on first
  /// use like every other section.
  const LabelMergeTable& label_merge() const;

  /// True when the Section-3.3 edge-fault constructions apply (n >= 2).
  bool supports_edge_faults() const { return words().length() >= 2; }

  /// Disjoint-HC family + inverted edge index. Requires n >= 2.
  const PsiFamilyIndex& psi_family() const;

  /// The maximal-cycle machinery of Section 3.2.1 for one prime-power factor
  /// of `base` (the leaves of the phi-recursion of Proposition 3.3). The
  /// family and its GF(q) field are built once per factor and shared across
  /// solves. Requires n >= 2 and prime_power | base as a full prime-power
  /// factor.
  const MaximalCycleFamily& maximal_family(std::uint64_t prime_power) const;

  /// True when the Proposition 3.5 lift applies (gcd(base, n) = 1).
  bool supports_butterfly() const;

  /// Butterfly adjacency F(d,n) for the lift. Requires gcd(base, n) = 1.
  const ButterflyDigraph& butterfly() const;

 private:
  DeBruijnDigraph graph_;

  mutable std::once_flag necklace_once_;
  mutable NecklaceTable necklace_table_;

  mutable std::once_flag label_merge_once_;
  mutable LabelMergeTable label_merge_table_;

  mutable std::once_flag psi_once_;
  mutable PsiFamilyIndex psi_;

  mutable std::once_flag phi_once_;
  mutable std::vector<std::unique_ptr<gf::Field>> fields_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<MaximalCycleFamily>>
      families_;

  mutable std::once_flag butterfly_once_;
  mutable std::unique_ptr<ButterflyDigraph> butterfly_;
};

}  // namespace dbr::core
