#include "core/mod_debruijn.hpp"

#include <algorithm>

#include "core/disjoint_hc.hpp"
#include "gf/field.hpp"
#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::core {

namespace {

using gf::Field;
using Elem = Field::Elem;

// Position of node `target` in a node cycle.
std::size_t position_of(const NodeCycle& c, Word target) {
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    if (c.nodes[i] == target) return i;
  }
  throw invariant_error("node not found in cycle");
}

// Rotates the cycle so it starts at `start`.
NodeCycle rotated_to(NodeCycle c, Word start) {
  const std::size_t i = position_of(c, start);
  std::rotate(c.nodes.begin(), c.nodes.begin() + static_cast<std::ptrdiff_t>(i),
              c.nodes.end());
  return c;
}

ModifiedDeBruijn decompose_odd_prime_power(Digit d, unsigned n) {
  const Field field(d);
  const MaximalCycleFamily family(field, n);
  const WordSpace ws(d, n);
  const SymbolCycle& c = family.base_cycle();
  const std::size_t k = c.symbols.size();

  // Find a p-edge in C: an alternating (n+1)-window a b a b ... with a != b.
  std::size_t pos = k;
  Digit alpha = 0, beta = 0;
  for (std::size_t i = 0; i < k && pos == k; ++i) {
    const Digit a = c.symbols[i];
    const Digit b = c.symbols[(i + 1) % k];
    if (a == b) continue;
    bool alternating = true;
    for (unsigned j = 2; j <= n; ++j) {
      const Digit expect = (j % 2 == 0) ? a : b;
      if (c.symbols[(i + j) % k] != expect) {
        alternating = false;
        break;
      }
    }
    if (alternating) {
      pos = i;
      alpha = a;
      beta = b;
    }
  }
  ensure(pos < k, "a maximal cycle contains a p-edge (Section 3.2.3)");

  ModifiedDeBruijn out{d, n, {}, {}, {}};
  for (Elem s = 0; s < d; ++s) {
    // In s + C the p-edge becomes ((alpha+s)(beta+s)~, (beta+s)(alpha+s)~);
    // reroute it through s^n.
    const Digit as = field.add(alpha, s);
    const Digit bs = field.add(beta, s);
    const Word u = ws.alternating(as, bs);
    const Word v = ws.alternating(bs, as);
    const Word sn = ws.repeated(static_cast<Digit>(s));
    NodeCycle cycle = to_node_cycle(ws, family.shifted_cycle(s));
    cycle = rotated_to(std::move(cycle), u);
    ensure(cycle.nodes[1] == v, "shifted p-edge must lie on s + C");
    NodeCycle modified;
    modified.nodes.reserve(cycle.nodes.size() + 1);
    modified.nodes.push_back(u);
    modified.nodes.push_back(sn);
    modified.nodes.insert(modified.nodes.end(), cycle.nodes.begin() + 1,
                          cycle.nodes.end());
    out.cycles.push_back(std::move(modified));
    out.added_edges.emplace_back(u, sn);
    out.added_edges.emplace_back(sn, v);
    out.removed_edges.emplace_back(u, v);
  }
  return out;
}

ModifiedDeBruijn decompose_binary(unsigned n) {
  const Field field(2);
  const MaximalCycleFamily family(field, n);
  const WordSpace ws(2, n);
  const Word zeros = 0;
  const Word ones = ws.size() - 1;

  NodeCycle c0 = to_node_cycle(ws, family.base_cycle());      // misses 0^n
  NodeCycle c1 = to_node_cycle(ws, family.shifted_cycle(1));  // misses 1^n

  const Word w01 = ws.alternating(0, 1);
  const Word w10 = ws.alternating(1, 0);
  // Locate the alternating p-edge: each of (01~ -> 10~) and (10~ -> 01~)
  // lies in exactly one of C, 1+C. The construction reroutes a p-edge of
  // the cycle that will host *both* constant nodes; the other cycle is
  // extended by one constant node along existing De Bruijn edges.
  auto has_edge = [](const NodeCycle& c, Word from, Word to) {
    const std::size_t i = position_of(c, from);
    return c.nodes[(i + 1) % c.nodes.size()] == to;
  };

  ModifiedDeBruijn out{2, n, {}, {}, {}};
  const bool pedge_in_c1 = has_edge(c1, w01, w10) || has_edge(c1, w10, w01);
  if (pedge_in_c1) {
    // Paper's case. Extend C with 0^n between 10^(n-1) and 0^(n-1)1.
    const Word left = ws.shift_prepend(zeros, 1);   // 10^(n-1)
    const Word right = ws.shift_append(zeros, 1);   // 0^(n-1)1
    NodeCycle host = rotated_to(std::move(c0), left);
    ensure(host.nodes[1] == right, "C contains the edge 10^(n-1) -> 0^(n-1)1");
    host.nodes.insert(host.nodes.begin() + 1, zeros);
    // Remove 0^n from 1+C (reconnect via the edge freed from C), then
    // reroute the p-edge through 0^n and 1^n.
    NodeCycle other = rotated_to(std::move(c1), zeros);
    other.nodes.erase(other.nodes.begin());
    const Word from = has_edge(other, w01, w10) ? w01 : w10;
    const Word to = from == w01 ? w10 : w01;
    ensure(has_edge(other, from, to), "p-edge must survive the 0^n removal");
    NodeCycle rebuilt = rotated_to(std::move(other), from);
    NodeCycle result;
    result.nodes.push_back(from);
    result.nodes.push_back(zeros);
    result.nodes.push_back(ones);
    result.nodes.insert(result.nodes.end(), rebuilt.nodes.begin() + 1,
                        rebuilt.nodes.end());
    out.cycles.push_back(std::move(host));
    out.cycles.push_back(std::move(result));
    out.added_edges.emplace_back(from, zeros);
    out.added_edges.emplace_back(zeros, ones);
    out.added_edges.emplace_back(ones, to);
    out.removed_edges.emplace_back(from, to);
  } else {
    // Mirror case: both alternating edges lie in C. Extend 1+C with 1^n
    // between 01^(n-1) and 1^(n-1)0; remove 1^n from C; reroute C's p-edge
    // through 1^n and 0^n.
    const Word left = ws.shift_prepend(ones, 0);   // 01^(n-1)
    const Word right = ws.shift_append(ones, 0);   // 1^(n-1)0
    NodeCycle host = rotated_to(std::move(c1), left);
    ensure(host.nodes[1] == right, "1+C contains the edge 01^(n-1) -> 1^(n-1)0");
    host.nodes.insert(host.nodes.begin() + 1, ones);
    NodeCycle other = rotated_to(std::move(c0), ones);
    other.nodes.erase(other.nodes.begin());
    const Word from = has_edge(other, w01, w10) ? w01 : w10;
    const Word to = from == w01 ? w10 : w01;
    ensure(has_edge(other, from, to), "p-edge must survive the 1^n removal");
    NodeCycle rebuilt = rotated_to(std::move(other), from);
    NodeCycle result;
    result.nodes.push_back(from);
    result.nodes.push_back(ones);
    result.nodes.push_back(zeros);
    result.nodes.insert(result.nodes.end(), rebuilt.nodes.begin() + 1,
                        rebuilt.nodes.end());
    out.cycles.push_back(std::move(host));
    out.cycles.push_back(std::move(result));
    out.added_edges.emplace_back(from, ones);
    out.added_edges.emplace_back(ones, zeros);
    out.added_edges.emplace_back(zeros, to);
    out.removed_edges.emplace_back(from, to);
  }
  return out;
}

}  // namespace

ModifiedDeBruijn modified_debruijn_decomposition(Digit d, unsigned n) {
  if (d == 2) {
    require(n >= 3, "MB(2,n) requires n >= 3");
    return decompose_binary(n);
  }
  std::uint64_t p = 0;
  unsigned e = 0;
  require(nt::is_prime_power(d, &p, &e) && p % 2 == 1,
          "MB(d,n) is defined for odd prime powers and d = 2");
  require(n >= 2, "MB(d,n) requires n >= 2");
  return decompose_odd_prime_power(d, n);
}

}  // namespace dbr::core
