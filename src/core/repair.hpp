#pragma once

/// \file
/// Incremental ring repair: fault-delta splicing on a previously embedded
/// ring (the churn-session fast path).
///
/// The paper's FFC construction is inherently local. A ring H produced by
/// the Chapter-2 algorithm is fully determined by its node sequence: every
/// step is either the natural necklace rotation pi(v) or a labeled reroute
/// exit -> entry with suffix(exit) = prefix(entry) = w, and within one
/// necklace the entry for label w is exactly pi(exit) (the rotation
/// successor of the exit node). A previously computed ring therefore *is*
/// the splice structure — no tree or broadcast state needs to be carried:
///
///  * **Excision** (a new faulty necklace, Lemma 3.8 locality): the dying
///    necklace's arcs are cut out of the cyclic sequence — every in-edge
///    from outside follows the walk through the necklace to its first
///    outside successor and is stitched there. Removing arcs from a single
///    cyclic sequence and reconnecting the remainder in order always
///    leaves a single cycle, and every stitch x -> t reuses an edge the
///    old ring already traversed out of the necklace's boundary, so the
///    stitched steps are genuine B(d,n) edges by construction.
///
///  * **Reinsertion** (a repaired necklace): the necklace is laid down as
///    its own natural rotation cycle, and a *reconnect* pass merges all
///    cycles into one ring with the FFC Step-2 label move — two edges
///    sharing an (n-1)-digit label w (every De Bruijn edge u -> v carries
///    suffix(u) = prefix(v)) cross-stitch into one cycle on genuine edges.
///    The same pass re-joins anything a multi-label excision split.
///
///  * **Pull-back detour** (mixed faults): a newly cut link the ring
///    traverses is charged to its cheaper endpoint necklace (the
///    Chapter-2 pull-back rule) and that necklace is excised.
///
/// Every repair self-validates before it is served: the spliced successor
/// function must close into a single cycle over exactly the surviving
/// cover, the walk must avoid every current fault word (nodes and edges),
/// and the length must sit inside the same paper envelope a cold solve
/// would claim. Anything else *falls back* to the full solve — repair can
/// change which valid ring is served, never whether the answer is valid.
///
/// Hamiltonian-route rings (the Section 3.3 edge strategies and the
/// butterfly lift) admit a cheaper repair: a delta whose new faulty edge
/// words the ring already avoids is a no-op; a traversed fault needs a
/// different family member, which is a full re-solve.

#include <cstdint>
#include <optional>
#include <span>

#include "core/instance_context.hpp"
#include "core/solve_scratch.hpp"
#include "debruijn/cycle.hpp"

namespace dbr::core {

/// Why a repair attempt declined and handed the query back to the full
/// solve path. kNone means the repair was served.
enum class RepairFallback : std::uint8_t {
  kNone = 0,         ///< repaired: no fallback needed.
  kMalformedRing,    ///< the prior ring is not a usable splice structure.
  kRingVanished,     ///< the delta excised every covered node.
  kDisconnected,     ///< label moves could not re-merge the spliced cycles.
  kEnvelope,         ///< the repaired length escapes the paper envelope.
  kCrossesFamily,    ///< the delta needs a different construction/family
                     ///< (e.g. a traversed edge fault or a route switch).
  kTouchesFault,     ///< the spliced walk would visit a live fault word.
};

/// Short snake_case name of the fallback reason (e.g. "crosses_family").
const char* to_string(RepairFallback f);

/// Outcome of one repair attempt. On success either `ring` holds the
/// spliced ring, or `unchanged` reports that the old ring serves the new
/// fault set as-is (the no-op repair: the caller keeps its existing —
/// typically shared, allocation-free — result). The bounds are the
/// recomputed paper envelope for the *new* fault set (what a cold solve
/// would claim).
struct RepairOutcome {
  std::optional<NodeCycle> ring;  ///< the spliced ring, when it changed.
  bool unchanged = false;         ///< the old ring still serves verbatim.
  std::uint64_t lower_bound = 0;  ///< recomputed envelope for the new set.
  std::uint64_t upper_bound = 0;  ///< recomputed envelope for the new set.
  RepairFallback fallback = RepairFallback::kNone;  ///< why not, otherwise.
  std::uint64_t spliced_necklaces = 0;  ///< necklaces excised + reinserted.

  /// True when the repair succeeded (a spliced ring or a no-op).
  bool repaired() const { return unchanged || ring.has_value(); }
};

/// Repairs a Chapter-2 FFC ring across a node-fault delta. `old_faults`
/// is the canonical (sorted, distinct) fault set the ring was solved for,
/// `new_faults` the canonical target set; necklaces newly hit are excised
/// and necklaces whose last fault cleared are re-attached through the
/// label-merge pass. Falls back when the label moves cannot keep the
/// cover on one cycle or the result escapes the Proposition 2.2/2.3
/// envelope for `new_faults`.
RepairOutcome repair_node_ring(const InstanceContext& ctx,
                               const NodeCycle& old_ring,
                               std::span<const Word> old_faults,
                               std::span<const Word> new_faults);

/// repair_node_ring against an explicit scratch arena (sessions own one);
/// the overload above routes to the calling thread's arena, so a
/// steady-state repair allocates only its result.
RepairOutcome repair_node_ring(const InstanceContext& ctx,
                               const NodeCycle& old_ring,
                               std::span<const Word> old_faults,
                               std::span<const Word> new_faults,
                               SolveScratch& scratch);

/// Repairs a Section-3.3 Hamiltonian ring across an edge-fault delta: an
/// `unchanged` no-op when the ring traverses none of `new_faults` (fault
/// words the ring avoids — including every removed fault — cost nothing;
/// one allocation-free scan of the ring's edge words), a kCrossesFamily
/// fallback when a new fault sits on a traversed edge (another family
/// member must be selected, which is the full solve).
RepairOutcome repair_edge_ring(const InstanceContext& ctx,
                               const NodeCycle& old_ring,
                               std::span<const Word> new_faults);

/// Same contract as repair_edge_ring for a lifted butterfly ring: the
/// ring's F(d,n) edges are pulled back to De Bruijn edge words per
/// Lemma 3.8 and checked against `new_faults`.
RepairOutcome repair_butterfly_ring(const InstanceContext& ctx,
                                    const NodeCycle& old_ring,
                                    std::span<const Word> new_faults);

/// Repairs a mixed-fault ring (core/mixed_fault.hpp) across a
/// heterogeneous delta. Hamiltonian-route rings accept avoided-edge
/// deltas only; FFC-pull-back rings excise newly faulty necklaces, charge
/// newly traversed edge faults to their cheaper endpoint necklace (the
/// solver's pull-back rule) and re-attach revived router necklaces. All
/// four fault lists must be canonical (sorted, distinct); the edge lists
/// are the *collapsed* solve sets (dominated cuts removed), exactly what
/// the cold solve would receive.
RepairOutcome repair_mixed_ring(const InstanceContext& ctx,
                                const NodeCycle& old_ring,
                                std::span<const Word> old_node_faults,
                                std::span<const Word> old_edge_faults,
                                std::span<const Word> new_node_faults,
                                std::span<const Word> new_edge_faults);

/// repair_mixed_ring against an explicit scratch arena; same relationship
/// to the overload above as the repair_node_ring pair. (repair_edge_ring
/// and repair_butterfly_ring are already allocation-free scans and need no
/// arena.)
RepairOutcome repair_mixed_ring(const InstanceContext& ctx,
                                const NodeCycle& old_ring,
                                std::span<const Word> old_node_faults,
                                std::span<const Word> old_edge_faults,
                                std::span<const Word> new_node_faults,
                                std::span<const Word> new_edge_faults,
                                SolveScratch& scratch);

}  // namespace dbr::core
