#include "core/repair.hpp"

#include <algorithm>
#include <iterator>
#include <vector>

#include "core/ffc.hpp"
#include "core/mixed_fault.hpp"

namespace dbr::core {

namespace {

constexpr Word kAbsent = kNoWord;

/// Sorted-span set difference a \ b into a reusable scratch vector.
void difference_into(std::span<const Word> a, std::span<const Word> b,
                     std::vector<Word>& out) {
  out.clear();
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
}

/// True for the loop word a^(n+1); loop faults never constrain a ring of
/// length >= 2.
bool is_loop_edge(const WordSpace& ws, Word e) {
  const Digit a = static_cast<Digit>(e % ws.radix());
  return e / ws.radix() == ws.repeated(a);
}

/// True when any node of the necklace of `rep` is in the sorted fault list.
bool necklace_faulty(const WordSpace& ws, Word rep,
                     std::span<const Word> faults) {
  Word node = rep;
  const unsigned p = ws.period(rep);
  for (unsigned k = 0; k < p; ++k, node = ws.rotate_left(node, 1)) {
    if (std::binary_search(faults.begin(), faults.end(), node)) return true;
  }
  return false;
}

/// The editable successor/predecessor view of an FFC-style ring. Every
/// step of such a ring is the natural rotation pi(v) or a labeled reroute
/// exit -> entry with suffix(exit) = prefix(entry); within one necklace
/// the entry for a label is the rotation successor of the exit, which is
/// what makes whole-necklace excision and reinsertion purely local edits.
class RingSplicer {
 public:
  /// Borrows the ring maps and reconnect workspaces from `s`; the splicer
  /// must not outlive the scratch arena or share it with another splicer.
  RingSplicer(const InstanceContext& ctx, SolveScratch& s)
      : ws_(ctx.words()),
        min_rot_(ctx.necklaces().min_rot),
        s_(s),
        next_(s.ring_next),
        pred_(s.ring_pred) {}

  /// Indexes the ring into successor/predecessor maps. False when the
  /// sequence is not a simple cycle of genuine B(d,n) edges.
  bool load(const NodeCycle& ring) {
    next_.assign(ws_.size(), kAbsent);
    pred_.assign(ws_.size(), kAbsent);
    cover_ = 0;
    if (ring.nodes.empty()) return false;
    for (std::size_t i = 0; i < ring.nodes.size(); ++i) {
      const Word u = ring.nodes[i];
      const Word v = ring.nodes[(i + 1) % ring.nodes.size()];
      if (u >= ws_.size() || v >= ws_.size()) return false;
      if (next_[u] != kAbsent || pred_[v] != kAbsent) return false;
      if (ws_.suffix(u) != ws_.prefix(v)) return false;  // not an edge
      next_[u] = v;
      pred_[v] = u;
    }
    cover_ = ring.nodes.size();
    return true;
  }

  bool covered(Word v) const { return next_[v] != kAbsent; }
  Word next_of(Word v) const { return next_[v]; }
  std::uint64_t cover() const { return cover_; }
  Word rep_of(Word v) const { return min_rot_[v]; }

  /// Excises the whole necklace of `rep`. Every in-edge arrives at the
  /// rotation successor pi(e) of a rerouted exit e carrying e's label (the
  /// per-necklace label uniqueness of Section 2.2), so redirecting its
  /// source straight to e's old target is a genuine B(d,n) edge — both
  /// endpoints expose the same (n-1)-digit label. Natural steps die with
  /// the necklace. The redirects keep the successor map a permutation of
  /// the survivors but may split it into several cycles; reconnect()
  /// restores a single ring afterwards. False when the structure is not
  /// splice-shaped (partially covered necklace, missing in-edge, or an
  /// interior reroute).
  bool excise(Word rep) {
    const unsigned p = ws_.period(rep);
    Word node = rep;
    for (unsigned k = 0; k < p; ++k, node = ws_.rotate_left(node, 1)) {
      if (!covered(node)) return false;
    }
    node = rep;
    for (unsigned k = 0; k < p; ++k, node = ws_.rotate_left(node, 1)) {
      const Word entry = ws_.rotate_left(node, 1);
      const Word target = next_[node];
      if (target == entry) continue;  // natural rotation step
      const Word source = pred_[entry];
      if (source == kAbsent || min_rot_[source] == rep) return false;
      next_[source] = target;
      pred_[target] = source;
    }
    node = rep;
    for (unsigned k = 0; k < p; ++k) {
      const Word nxt = ws_.rotate_left(node, 1);
      next_[node] = kAbsent;
      pred_[node] = kAbsent;
      node = nxt;
    }
    cover_ -= p;
    return true;
  }

  /// Lays the revived necklace of `rep` down as its own natural rotation
  /// cycle (pi is a genuine edge, so the necklace closes on itself); the
  /// following reconnect() pass merges it into the main ring through any
  /// shared edge label. False when a node of the necklace is already
  /// covered (not insertable).
  bool lay_down(Word rep) {
    const unsigned p = ws_.period(rep);
    Word node = rep;
    for (unsigned k = 0; k < p; ++k, node = ws_.rotate_left(node, 1)) {
      if (covered(node)) return false;
    }
    node = rep;
    for (unsigned k = 0; k < p; ++k) {
      const Word nxt = ws_.rotate_left(node, 1);
      next_[node] = nxt;
      pred_[nxt] = node;
      node = nxt;
    }
    cover_ += p;
    return true;
  }

  /// Merges the permutation's disjoint cycles back into one ring with the
  /// FFC Step-2 label move: two edges sharing label w (every De Bruijn
  /// edge u -> v carries the label suffix(u) = prefix(v)) can be
  /// cross-stitched — a -> a', b -> b' becomes a -> b', b -> a' — which
  /// stays on genuine edges and concatenates their cycles. One ascending
  /// pass with a per-label anchor unites everything label-connected;
  /// whatever remains separate is physically unreachable from the main
  /// ring (e.g. the all-a word once its neighboring necklace dies), so it
  /// is dropped exactly as the cold solve retreats to the largest
  /// surviving component — the envelope check downstream decides whether
  /// the shrunken ring is still servable. False only on an empty cover.
  bool reconnect() {
    if (cover_ == 0) return false;
    constexpr std::uint32_t kNoComp = ~std::uint32_t{0};
    std::vector<std::uint32_t>& comp = s_.ring_comp;
    comp.assign(ws_.size(), kNoComp);
    std::uint32_t components = 0;
    for (Word v = 0; v < ws_.size(); ++v) {
      if (!covered(v) || comp[v] != kNoComp) continue;
      Word cur = v;
      do {
        comp[cur] = components;
        cur = next_[cur];
      } while (cur != v);
      ++components;
    }
    if (components == 1) return true;
    std::vector<std::uint32_t>& parent = s_.uf_parent;
    parent.resize(components);
    for (std::uint32_t c = 0; c < components; ++c) parent[c] = c;
    const auto find = [&parent](std::uint32_t c) {
      while (parent[c] != c) c = parent[c] = parent[parent[c]];
      return c;
    };
    // label -> smallest covered node; labels are (n-1)-digit values.
    EpochMap& anchor = s_.anchor;
    anchor.begin(ws_.size() / ws_.radix());
    std::uint32_t merged = components;
    for (Word u = 0; u < ws_.size() && merged > 1; ++u) {
      if (!covered(u)) continue;
      const Word label = ws_.suffix(u);
      if (!anchor.contains(label)) {
        anchor.put(label, u);
        continue;
      }
      const Word a = anchor.get(label);
      const std::uint32_t ra = find(comp[a]);
      const std::uint32_t ru = find(comp[u]);
      if (ra == ru) continue;
      parent[ru] = ra;
      --merged;
      std::swap(next_[a], next_[u]);  // cross-stitch on the shared label
      pred_[next_[a]] = a;
      pred_[next_[u]] = u;
    }
    if (merged == 1) return true;
    // Keep the largest label-component (ties toward whichever reaches the
    // shared maximum count first in the ascending scan — deterministic).
    std::vector<std::uint64_t>& size = s_.ring_comp_size;
    size.assign(components, 0);
    std::uint32_t best = kNoComp;
    for (Word v = 0; v < ws_.size(); ++v) {
      if (!covered(v)) continue;
      const std::uint32_t root = find(comp[v]);
      ++size[root];
      if (best == kNoComp || size[root] > size[best]) best = root;
    }
    for (Word v = 0; v < ws_.size(); ++v) {
      if (!covered(v) || find(comp[v]) == best) continue;
      next_[v] = kAbsent;
      pred_[v] = kAbsent;
      --cover_;
    }
    return true;
  }

  /// Walks the spliced successor map from the smallest covered node. The
  /// map is a permutation of the cover, so the walk closes; it must close
  /// after exactly cover() steps (one cycle) without touching a forbidden
  /// node or traversing a forbidden edge word. Both forbidden lists must
  /// be sorted (the canonical fault sets are).
  std::optional<NodeCycle> extract(std::span<const Word> forbidden_nodes,
                                   std::span<const Word> forbidden_edges,
                                   RepairFallback* why) const {
    if (cover_ == 0) {
      *why = RepairFallback::kRingVanished;
      return std::nullopt;
    }
    Word start = kAbsent;
    for (Word v = 0; v < ws_.size(); ++v) {
      if (covered(v)) {
        start = v;
        break;
      }
    }
    NodeCycle out;
    out.nodes.reserve(cover_);
    Word cur = start;
    for (std::uint64_t step = 0; step < cover_; ++step) {
      if (!covered(cur)) {
        *why = RepairFallback::kMalformedRing;
        return std::nullopt;
      }
      if (std::binary_search(forbidden_nodes.begin(), forbidden_nodes.end(),
                             cur)) {
        *why = RepairFallback::kTouchesFault;
        return std::nullopt;
      }
      const Word nxt = next_[cur];
      if (!forbidden_edges.empty() &&
          std::binary_search(forbidden_edges.begin(), forbidden_edges.end(),
                             ws_.edge_word(cur, ws_.tail(nxt)))) {
        *why = RepairFallback::kTouchesFault;
        return std::nullopt;
      }
      out.nodes.push_back(cur);
      cur = nxt;
      if (cur == start && step + 1 < cover_) {
        *why = RepairFallback::kDisconnected;
        return std::nullopt;
      }
    }
    if (cur != start) {
      *why = RepairFallback::kDisconnected;
      return std::nullopt;
    }
    *why = RepairFallback::kNone;
    return out;
  }

 private:
  const WordSpace& ws_;
  const std::vector<Word>& min_rot_;  // borrowed from the context
  SolveScratch& s_;                   // reconnect workspaces
  std::vector<Word>& next_;           // scratch ring_next; kAbsent = not covered
  std::vector<Word>& pred_;           // scratch ring_pred
  std::uint64_t cover_ = 0;
};

/// Shared no-op repair for De Bruijn Hamiltonian rings: one allocation-free
/// scan over the ring's edge words, binary-searching each against the
/// (small, sorted) fault list. Succeeds as `unchanged` iff the ring
/// traverses none of them; kMalformedRing on out-of-range nodes.
void scan_hamiltonian(const WordSpace& ws, const NodeCycle& ring,
                      std::span<const Word> new_faults, RepairOutcome* out) {
  for (std::size_t i = 0; i < ring.nodes.size(); ++i) {
    const Word u = ring.nodes[i];
    const Word v = ring.nodes[(i + 1) % ring.nodes.size()];
    if (u >= ws.size() || v >= ws.size()) {
      out->fallback = RepairFallback::kMalformedRing;
      return;
    }
    if (new_faults.empty()) continue;  // still validating node range
    const Word e = ws.edge_word(u, ws.tail(v));
    if (std::binary_search(new_faults.begin(), new_faults.end(), e)) {
      out->fallback = RepairFallback::kCrossesFamily;
      return;
    }
  }
  out->unchanged = true;
}

}  // namespace

const char* to_string(RepairFallback f) {
  switch (f) {
    case RepairFallback::kNone: return "none";
    case RepairFallback::kMalformedRing: return "malformed_ring";
    case RepairFallback::kRingVanished: return "ring_vanished";
    case RepairFallback::kDisconnected: return "disconnected";
    case RepairFallback::kEnvelope: return "envelope";
    case RepairFallback::kCrossesFamily: return "crosses_family";
    case RepairFallback::kTouchesFault: return "touches_fault";
  }
  return "unknown";
}

RepairOutcome repair_node_ring(const InstanceContext& ctx,
                               const NodeCycle& old_ring,
                               std::span<const Word> old_faults,
                               std::span<const Word> new_faults) {
  return repair_node_ring(ctx, old_ring, old_faults, new_faults,
                          solve_scratch_tls());
}

RepairOutcome repair_node_ring(const InstanceContext& ctx,
                               const NodeCycle& old_ring,
                               std::span<const Word> old_faults,
                               std::span<const Word> new_faults,
                               SolveScratch& s) {
  const WordSpace& ws = ctx.words();
  RepairOutcome out;
  const auto [lo, hi] =
      ffc_cycle_length_bounds(ws.radix(), ws.length(), new_faults.size());
  out.lower_bound = lo;
  out.upper_bound = hi;

  RingSplicer splicer(ctx, s);
  if (!splicer.load(old_ring)) {
    out.fallback = RepairFallback::kMalformedRing;
    return out;
  }

  difference_into(new_faults, old_faults, s.delta_tmp);
  for (Word f : s.delta_tmp) {
    if (f >= ws.size()) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    const Word rep = splicer.rep_of(f);
    if (!splicer.covered(rep)) continue;  // necklace already dead/uncovered
    if (!splicer.excise(rep)) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    ++out.spliced_necklaces;
  }
  difference_into(old_faults, new_faults, s.delta_tmp);
  for (Word f : s.delta_tmp) {
    if (f >= ws.size()) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    const Word rep = splicer.rep_of(f);
    if (splicer.covered(rep)) continue;  // revived by an earlier clear
    if (necklace_faulty(ws, rep, new_faults)) continue;  // still pinned down
    if (!splicer.lay_down(rep)) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    ++out.spliced_necklaces;
  }

  if (!splicer.reconnect()) {
    out.fallback = splicer.cover() == 0 ? RepairFallback::kRingVanished
                                        : RepairFallback::kDisconnected;
    return out;
  }
  RepairFallback why = RepairFallback::kNone;
  std::optional<NodeCycle> ring = splicer.extract(new_faults, {}, &why);
  if (!ring) {
    out.fallback = why;
    return out;
  }
  if (ring->nodes.size() < lo || ring->nodes.size() > hi) {
    out.fallback = RepairFallback::kEnvelope;
    return out;
  }
  out.ring = std::move(*ring);
  return out;
}

RepairOutcome repair_edge_ring(const InstanceContext& ctx,
                               const NodeCycle& old_ring,
                               std::span<const Word> new_faults) {
  const WordSpace& ws = ctx.words();
  RepairOutcome out;
  out.lower_bound = ws.size();
  out.upper_bound = ws.size();
  if (old_ring.nodes.size() != ws.size()) {
    out.fallback = RepairFallback::kMalformedRing;
    return out;
  }
  scan_hamiltonian(ws, old_ring, new_faults, &out);
  return out;
}

RepairOutcome repair_butterfly_ring(const InstanceContext& ctx,
                                    const NodeCycle& old_ring,
                                    std::span<const Word> new_faults) {
  const WordSpace& ws = ctx.words();
  const unsigned n = ws.length();
  const Word columns = ws.size();
  const std::uint64_t total = static_cast<std::uint64_t>(n) * columns;
  RepairOutcome out;
  out.lower_bound = total;
  out.upper_bound = total;
  if (old_ring.nodes.size() != total) {
    out.fallback = RepairFallback::kMalformedRing;
    return out;
  }
  // Lemma 3.8 pull-back: the butterfly edge S_U^j -> S_V^{j+1} implements
  // the De Bruijn edge U -> V with U = pi^{lu}(cu), V = pi^{lv}(cv).
  for (std::size_t i = 0; i < old_ring.nodes.size(); ++i) {
    const Word a = old_ring.nodes[i];
    const Word b = old_ring.nodes[(i + 1) % old_ring.nodes.size()];
    if (a >= total || b >= total) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    const unsigned lu = static_cast<unsigned>(a / columns);
    const unsigned lv = static_cast<unsigned>(b / columns);
    if (lv != (lu + 1) % n) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    const Word u = ws.rotate_left(a % columns, lu);
    const Word v = ws.rotate_left(b % columns, lv);
    if (ws.suffix(u) != ws.prefix(v)) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    if (std::binary_search(new_faults.begin(), new_faults.end(),
                           ws.edge_word(u, ws.tail(v)))) {
      out.fallback = RepairFallback::kCrossesFamily;
      return out;
    }
  }
  out.unchanged = true;
  return out;
}

RepairOutcome repair_mixed_ring(const InstanceContext& ctx,
                                const NodeCycle& old_ring,
                                std::span<const Word> old_node_faults,
                                std::span<const Word> old_edge_faults,
                                std::span<const Word> new_node_faults,
                                std::span<const Word> new_edge_faults) {
  return repair_mixed_ring(ctx, old_ring, old_node_faults, old_edge_faults,
                           new_node_faults, new_edge_faults,
                           solve_scratch_tls());
}

RepairOutcome repair_mixed_ring(const InstanceContext& ctx,
                                const NodeCycle& old_ring,
                                std::span<const Word> old_node_faults,
                                std::span<const Word> old_edge_faults,
                                std::span<const Word> new_node_faults,
                                std::span<const Word> new_edge_faults,
                                SolveScratch& s) {
  const WordSpace& ws = ctx.words();
  RepairOutcome out;
  const auto [lo, hi] = mixed_ring_length_bounds(
      ws.radix(), ws.length(), new_node_faults.size(),
      countable_mixed_edge_faults(ws, new_node_faults, new_edge_faults));
  out.lower_bound = lo;
  out.upper_bound = hi;

  // Hamiltonian-route ring (node-free set served by Section 3.3): only an
  // avoided-edge delta stays local; node faults or a traversed cut need
  // the other route resp. another family member — a full re-solve.
  if (old_ring.nodes.size() == ws.size()) {
    if (!old_node_faults.empty()) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    if (!new_node_faults.empty()) {
      out.fallback = RepairFallback::kCrossesFamily;
      return out;
    }
    scan_hamiltonian(ws, old_ring, new_edge_faults, &out);
    return out;
  }

  // FFC pull-back ring: necklace splicing, with newly traversed cuts
  // charged to their cheaper endpoint necklace (the solver's rule).
  RingSplicer splicer(ctx, s);
  if (!splicer.load(old_ring)) {
    out.fallback = RepairFallback::kMalformedRing;
    return out;
  }

  // Reps this repair retired, kept sorted for the revival pass below.
  std::vector<Word>& excised = s.excised_tmp;
  excised.clear();
  const auto retire_rep = [&excised](Word rep) {
    const auto it = std::lower_bound(excised.begin(), excised.end(), rep);
    if (it == excised.end() || *it != rep) excised.insert(it, rep);
  };
  difference_into(new_node_faults, old_node_faults, s.delta_tmp);
  for (Word f : s.delta_tmp) {
    if (f >= ws.size()) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    const Word rep = splicer.rep_of(f);
    if (!splicer.covered(rep)) continue;
    if (!splicer.excise(rep)) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    retire_rep(rep);
    ++out.spliced_necklaces;
  }
  difference_into(new_edge_faults, old_edge_faults, s.delta_tmp);
  for (Word e : s.delta_tmp) {
    if (e >= ws.edge_word_count()) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    if (is_loop_edge(ws, e)) continue;
    const auto [u, v] = ws.edge_endpoints(e);
    if (!splicer.covered(u) || splicer.next_of(u) != v) continue;  // avoided
    const Word ru = splicer.rep_of(u);
    const Word rv = splicer.rep_of(v);
    const unsigned pu = ws.period(ru);
    const unsigned pv = ws.period(rv);
    const Word pick = (pv < pu || (pv == pu && rv < ru)) ? rv : ru;
    if (!splicer.excise(pick)) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    retire_rep(pick);
    ++out.spliced_necklaces;
  }
  difference_into(old_node_faults, new_node_faults, s.delta_tmp);
  for (Word f : s.delta_tmp) {
    if (f >= ws.size()) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    const Word rep = splicer.rep_of(f);
    if (splicer.covered(rep) ||
        std::binary_search(excised.begin(), excised.end(), rep)) {
      continue;
    }
    if (necklace_faulty(ws, rep, new_node_faults)) continue;
    // Re-attach the revived router necklace; a resurfaced cut inside it is
    // caught by the forbidden-edge check on the final walk.
    if (!splicer.lay_down(rep)) {
      out.fallback = RepairFallback::kMalformedRing;
      return out;
    }
    ++out.spliced_necklaces;
  }

  if (!splicer.reconnect()) {
    out.fallback = splicer.cover() == 0 ? RepairFallback::kRingVanished
                                        : RepairFallback::kDisconnected;
    return out;
  }
  RepairFallback why = RepairFallback::kNone;
  std::optional<NodeCycle> ring =
      splicer.extract(new_node_faults, new_edge_faults, &why);
  if (!ring) {
    out.fallback = why;
    return out;
  }
  if (ring->nodes.size() < lo || ring->nodes.size() > hi) {
    out.fallback = RepairFallback::kEnvelope;
    return out;
  }
  out.ring = std::move(*ring);
  return out;
}

}  // namespace dbr::core
