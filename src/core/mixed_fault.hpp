#pragma once

/// \file
/// Mixed node+edge fault-tolerant ring embedding on B(d,n).
///
/// The paper treats node faults (Chapter 2, the necklace FFC construction)
/// and edge faults (Section 3.3, the psi-scan and phi constructions) in
/// separate chapters, but a real fabric loses routers and links in the same
/// epoch. This solver serves one heterogeneous fault set by composing the
/// two machineries:
///
///  * **Hamiltonian route** — when the canonical fault set has no node
///    faults, the Section 3.3 constructions apply unchanged:
///    solve_edge_auto yields a Hamiltonian cycle avoiding every faulty
///    edge, guaranteed for f <= MAX(psi(d)-1, phi(d)) (Proposition 3.4).
///    (A Hamiltonian cycle must visit *every* node, so node faults can
///    never ride this route: avoiding a node means avoiding its whole
///    incident-edge closure, which disconnects it from any spanning cycle.)
///
///  * **FFC pull-back route** — otherwise every faulty edge is pulled back
///    to a node fault on one of its endpoints (the endpoint whose necklace
///    is cheaper to lose: fewer nodes, i.e. smaller rotation period) and
///    the Chapter 2 FFC construction embeds a ring in the surviving
///    component, avoiding faulty nodes and pulled-back endpoints — hence
///    every faulty edge — at once. Edges already dominated by a faulty
///    necklace charge nothing, and loop words a^(n+1) are skipped (no ring
///    of length >= 2 traverses a loop).
///
/// The pull-back also catches edge-only fault sets *beyond* the
/// Proposition 3.4 budget: when both Section 3.3 constructions fail, the
/// solver degrades to a shorter (non-Hamiltonian) FFC ring instead of
/// giving up — a regime neither chapter covers alone.

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/instance_context.hpp"
#include "core/solve_scratch.hpp"
#include "debruijn/cycle.hpp"

namespace dbr::core {

/// Which composition served a mixed-fault solve.
enum class MixedRoute : std::uint8_t {
  kNone = 0,       ///< no ring: the pull-back closure consumed every node.
  kHamiltonian,    ///< node-free set via solve_edge_auto (Section 3.3).
  kFfcPullback,    ///< faulty edges pulled back to endpoints, then FFC (Chapter 2).
};

/// Short lower-case name of the route ("none", "hamiltonian", "ffc_pullback").
const char* to_string(MixedRoute r);

/// Outcome of one mixed-fault solve.
struct MixedResult {
  /// The fault-avoiding ring; nullopt when the pull-back closure left no
  /// surviving node (the mixed analogue of beyond-guarantee kNoEmbedding).
  std::optional<NodeCycle> cycle;
  MixedRoute route = MixedRoute::kNone;  ///< which composition answered.
  /// Node faults handed to the FFC solve on the pull-back route: the
  /// requested faulty nodes plus one chosen endpoint per undominated
  /// non-loop faulty edge. Zero on the Hamiltonian route.
  std::uint64_t pullback_node_faults = 0;
  /// The endpoints the pull-back chose (one per charged edge fault), in
  /// the order the edges were processed; exposed for tests and the bench.
  std::vector<Word> pulled_back;
};

/// Edge faults that charge the mixed budget: distinct, non-loop, and not
/// dominated by a faulty node (neither endpoint in `faulty_nodes`). This is
/// the edge count both mixed_ring_length_bounds and the verify/ oracle's
/// independent envelope agree on.
std::uint64_t countable_mixed_edge_faults(const WordSpace& ws,
                                          std::span<const Word> faulty_nodes,
                                          std::span<const Word> faulty_edge_words);

/// The guarantee envelope [lower, upper] on |ring| for a mixed fault set
/// with `distinct_node_faults` faulty nodes and `countable_edge_faults`
/// budget-charging edge faults (see countable_mixed_edge_faults):
///
///  * upper = d^n - distinct_node_faults (each faulty node is excluded);
///  * the pull-back guarantee applies the Proposition 2.2/2.3 node
///    envelope to f_eff = distinct_node_faults + countable_edge_faults
///    (each charged edge costs at most one extra necklace);
///  * with no node faults and countable_edge_faults within the
///    Proposition 3.4 budget MAX(psi(d)-1, phi(d)), the Hamiltonian route
///    is guaranteed, so lower = upper = d^n;
///  * lower is the larger of the applicable guarantees, 0 when neither
///    regime applies (kNoEmbedding is then legal).
std::pair<std::uint64_t, std::uint64_t> mixed_ring_length_bounds(
    Digit d, unsigned n, std::uint64_t distinct_node_faults,
    std::uint64_t countable_edge_faults);

/// Mixed-fault solve phase against a shared InstanceContext: returns a ring
/// of B(d,n) that visits no faulty node and traverses no faulty edge word,
/// choosing the route documented above. Fault lists need not be sorted or
/// distinct; the solver canonicalizes its own copies. Requires n >= 2 and
/// in-range fault words; throws precondition_error when the faulty
/// necklaces of the *requested* node faults already cover all of B(d,n)
/// (mirroring the FFC request contract).
MixedResult solve_mixed(const InstanceContext& ctx,
                        std::span<const Word> faulty_nodes,
                        std::span<const Word> faulty_edge_words);

/// solve_mixed against an explicit scratch arena; the overload above routes
/// to the calling thread's arena (solve_scratch_tls), so steady-state
/// mixed solves allocate only their result.
MixedResult solve_mixed(const InstanceContext& ctx,
                        std::span<const Word> faulty_nodes,
                        std::span<const Word> faulty_edge_words,
                        SolveScratch& scratch);

}  // namespace dbr::core
