#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "debruijn/cycle.hpp"
#include "debruijn/debruijn.hpp"

namespace dbr::core {

/// Per-phase communication-round accounting for the distributed FFC run.
/// Section 2.4 predicts probe/dossier/reroute = Theta(n) and broadcast =
/// eccentricity(R) + 1, for a total of O(K + n).
struct DistributedFfcStats {
  std::uint64_t probe_rounds = 0;
  std::uint64_t broadcast_rounds = 0;
  std::uint64_t dossier_rounds = 0;
  std::uint64_t announce_rounds = 0;
  std::uint64_t reroute_rounds = 0;
  std::uint64_t messages = 0;

  std::uint64_t total_rounds() const {
    return probe_rounds + broadcast_rounds + dossier_rounds + announce_rounds +
           reroute_rounds;
  }
};

/// Outcome of one distributed FFC run: the embedded cycle plus the
/// per-phase accounting of Section 2.4.
struct DistributedFfcResult {
  NodeCycle cycle;  ///< H, starting at the root.
  Word root = 0;
  std::uint64_t bstar_size = 0;
  std::uint32_t root_eccentricity = 0;
  DistributedFfcStats stats;
};

/// Pure Section-2.4 cost model: the per-phase communication rounds (and a
/// message envelope) one distributed FFC rebuild of B(base, n) costs,
/// without running the protocol. Probe is exactly n rounds (the necklace
/// token must come full circle), dossier and reroute are upper-bounded by
/// their n-round circulations, the T_w announce is a single multicast round,
/// and broadcast is eccentricity(R) + 1 — pass the measured root
/// eccentricity when known, or 0 to estimate with the fault-free diameter
/// n (withdrawn necklaces can stretch B*'s eccentricity past n, so the
/// default is an estimate there, exact in the fault-free graph).
/// The message envelope charges every node its probe/dossier circulations
/// plus the d-way flood and announce fan-outs. This is the cross-shard
/// message-cost estimator the service fabric surfaces in its stats
/// (service::FabricStats::remap_cost): rebuilding a migrated instance on a
/// successor shard is priced as one distributed rebuild of its B(base, n).
/// Tested against the measured DistributedFfcSolver::run accounting in
/// tests/test_distributed_ffc.cpp.
DistributedFfcStats predict_rebuild_rounds(Digit base, unsigned n,
                                           std::uint32_t eccentricity = 0);

/// Network-level implementation of the FFC algorithm (Section 2.4) on the
/// synchronous multi-port message-passing simulator. Every processor runs
/// the same local rules; messages travel only along De Bruijn links, in the
/// forward (successor) direction:
///
///  1. Necklace probe (n rounds): each node circulates a token along its
///     necklace; nodes whose token fails to return lie on a faulty necklace
///     and withdraw from the computation.
///  2. Broadcast (K+1 rounds): R floods a marker; first reception fixes a
///     node's BFS distance, the minimum-id sender of that round its parent.
///  3. Dossier exchange (n rounds): each surviving necklace ring-all-gathers
///     (id, dist, parent) triples; everyone deduces the necklace leader
///     (earliest reception, min id), the incoming tree label w and the
///     parent necklace.
///  4. T_w announce (1 round): each child necklace's exit node multicasts
///     (child rep, common parent id) to its d successors - precisely the
///     entry nodes w.g of every T_w member - so each member learns the full
///     membership and computes its successor in the ascending rep cycle.
///  5. Reroute circulation (n rounds): the computed exit-node instruction
///     travels around the necklace to the exit node; every node now knows
///     its successor in H (rerouted or necklace rotation).
///
/// The faulty node set is injected into the simulator as fail-stop dead
/// processors; the protocol receives no advance knowledge of it.
class DistributedFfcSolver {
 public:
  explicit DistributedFfcSolver(DeBruijnDigraph graph);

  const DeBruijnDigraph& graph() const { return graph_; }

  /// Runs the protocol with a designated root processor (the paper's
  /// distinguished node R; its minimal rotation is used). The root must not
  /// lie on a faulty necklace.
  DistributedFfcResult run(std::span<const Word> faulty_nodes, Word root) const;

  /// The paper's root rule for the simulation tables: R = 0...01, or the
  /// nearest nonfaulty substitute (breadth-first from 0...01) when R's
  /// necklace is faulty.
  Word default_root(std::span<const Word> faulty_nodes) const;

 private:
  DeBruijnDigraph graph_;
};

}  // namespace dbr::core
