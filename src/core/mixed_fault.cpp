#include "core/mixed_fault.hpp"

#include <algorithm>

#include "core/disjoint_hc.hpp"
#include "core/edge_fault.hpp"
#include "core/ffc.hpp"
#include "util/require.hpp"

namespace dbr::core {

namespace {

std::vector<Word> sorted_distinct(std::span<const Word> in) {
  std::vector<Word> out(in.begin(), in.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// sorted_distinct into a reusable scratch vector (no allocation in steady
/// state).
void sorted_distinct_into(std::span<const Word> in, std::vector<Word>& out) {
  out.assign(in.begin(), in.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

/// True for the loop word a^(n+1) (the edge a^n -> a^n). Loop faults are
/// harmless to any ring of length >= 2.
bool is_loop_edge(const WordSpace& ws, Word e) {
  const Digit a = static_cast<Digit>(e % ws.radix());
  return e / ws.radix() == ws.repeated(a);
}

}  // namespace

const char* to_string(MixedRoute r) {
  switch (r) {
    case MixedRoute::kNone: return "none";
    case MixedRoute::kHamiltonian: return "hamiltonian";
    case MixedRoute::kFfcPullback: return "ffc_pullback";
  }
  return "unknown";
}

std::uint64_t countable_mixed_edge_faults(const WordSpace& ws,
                                          std::span<const Word> faulty_nodes,
                                          std::span<const Word> faulty_edge_words) {
  const std::vector<Word> nodes = sorted_distinct(faulty_nodes);
  const std::vector<Word> edges = sorted_distinct(faulty_edge_words);
  std::uint64_t count = 0;
  for (Word e : edges) {
    if (is_loop_edge(ws, e)) continue;
    const auto [u, v] = ws.edge_endpoints(e);
    if (std::binary_search(nodes.begin(), nodes.end(), u) ||
        std::binary_search(nodes.begin(), nodes.end(), v)) {
      continue;  // dominated: a node-avoiding ring never traverses it
    }
    ++count;
  }
  return count;
}

std::pair<std::uint64_t, std::uint64_t> mixed_ring_length_bounds(
    Digit d, unsigned n, std::uint64_t distinct_node_faults,
    std::uint64_t countable_edge_faults) {
  const std::uint64_t size = WordSpace(d, n).size();
  const std::uint64_t upper =
      distinct_node_faults >= size ? 0 : size - distinct_node_faults;
  // Pull-back guarantee: the Proposition 2.2/2.3 node envelope applied to
  // the combined closure (each charged edge costs at most one endpoint).
  std::uint64_t lower =
      ffc_cycle_length_bounds(d, n, distinct_node_faults + countable_edge_faults)
          .first;
  // Hamiltonian guarantee: with no node faults and the edges within the
  // Proposition 3.4 budget, the Section 3.3 constructions always embed.
  if (distinct_node_faults == 0 &&
      countable_edge_faults <= max_tolerable_edge_faults(d)) {
    lower = size;
  }
  return {lower, upper};
}

MixedResult solve_mixed(const InstanceContext& ctx,
                        std::span<const Word> faulty_nodes,
                        std::span<const Word> faulty_edge_words) {
  return solve_mixed(ctx, faulty_nodes, faulty_edge_words,
                     solve_scratch_tls());
}

MixedResult solve_mixed(const InstanceContext& ctx,
                        std::span<const Word> faulty_nodes,
                        std::span<const Word> faulty_edge_words,
                        SolveScratch& s) {
  const WordSpace& ws = ctx.words();
  require(ws.length() >= 2, "mixed-fault solve requires n >= 2");
  sorted_distinct_into(faulty_nodes, s.nodes_tmp);
  sorted_distinct_into(faulty_edge_words, s.edges_tmp);
  const std::vector<Word>& nodes = s.nodes_tmp;
  const std::vector<Word>& edges = s.edges_tmp;
  for (Word v : nodes) {
    require(v < ws.size(),
            "faulty node word " + std::to_string(v) + " out of range");
  }
  for (Word e : edges) {
    require(e < ws.edge_word_count(),
            "faulty edge word " + std::to_string(e) + " out of range");
  }

  MixedResult out;
  // Hamiltonian route: a node-free fault set is exactly the Section 3.3
  // problem. (With any node fault this route is closed: a Hamiltonian
  // cycle visits every node, so it cannot avoid one.)
  if (nodes.empty()) {
    if (const std::optional<SymbolCycle> hc = solve_edge_auto(ctx, edges)) {
      out.cycle = to_node_cycle(ws, *hc);
      out.route = MixedRoute::kHamiltonian;
      return out;
    }
  }

  // FFC pull-back route. Track the faulty necklaces and how many nodes
  // their removal costs, exactly as the FFC excision will see them; a flat
  // per-necklace bit replaces the reference unordered_set of reps.
  const NecklaceTable& necklaces = ctx.necklaces();
  const LabelMergeTable& lm = ctx.label_merge();
  s.faulty_neck.assign(necklaces.reps.size(), false);
  std::uint64_t removed = 0;
  const auto retire = [&](Word v) {
    const std::uint32_t i = lm.necklace_index[v];
    if (!s.faulty_neck.test(i)) {
      s.faulty_neck.set(i);
      removed += lm.period(i);
    }
  };
  for (Word v : nodes) retire(v);
  // Mirrors the FFC request contract: a request whose own faulty necklaces
  // cover B(d,n) is invalid, not merely unembeddable.
  require(removed < ws.size(), "faulty necklaces cover every node of B(d,n)");

  std::vector<Word>& pullback = s.pullback_tmp;
  pullback.assign(nodes.begin(), nodes.end());
  for (Word e : edges) {
    if (is_loop_edge(ws, e)) continue;
    const auto [u, v] = ws.edge_endpoints(e);
    const std::uint32_t iu = lm.necklace_index[u];
    const std::uint32_t iv = lm.necklace_index[v];
    if (s.faulty_neck.test(iu) || s.faulty_neck.test(iv)) {
      continue;  // an endpoint's necklace is already excised
    }
    // Charge the endpoint whose necklace removes fewer nodes (smaller
    // rotation period); ties toward the smaller representative, so the
    // choice is presentation-independent.
    const Word ru = necklaces.min_rot[u];
    const Word rv = necklaces.min_rot[v];
    const std::uint64_t pu = lm.period(iu);
    const std::uint64_t pv = lm.period(iv);
    const Word pick = (pv < pu || (pv == pu && rv < ru)) ? v : u;
    pullback.push_back(pick);
    out.pulled_back.push_back(pick);
    retire(pick);
  }

  for (;;) {
    out.pullback_node_faults = pullback.size();
    if (removed >= ws.size()) {
      out.route = MixedRoute::kNone;  // the pull-back consumed every node
      return out;
    }
    FfcResult ffc = solve_ffc(ctx, pullback, s);
    if (ffc.cycle.length() == 1) {
      // A single-node ring a^n closes over the loop word a^(n+1); if that
      // loop is faulty the ring is unusable, so retire the node and retry
      // in what remains.
      const Word v = ffc.cycle.nodes.front();
      const Word loop = ws.edge_word(v, ws.tail(v));
      if (std::binary_search(edges.begin(), edges.end(), loop)) {
        pullback.push_back(v);
        retire(v);
        continue;
      }
    }
    out.cycle = std::move(ffc.cycle);
    out.route = MixedRoute::kFfcPullback;
    return out;
  }
}

}  // namespace dbr::core
