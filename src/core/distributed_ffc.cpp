#include "core/distributed_ffc.hpp"

#include <algorithm>
#include <unordered_set>

#include "debruijn/necklaces.hpp"
#include "graph/algorithms.hpp"
#include "sim/engine.hpp"
#include "util/require.hpp"

namespace dbr::core {

namespace {

enum Tag : std::uint32_t {
  kProbe = 1,     // payload: [origin, visited...]
  kFlood = 2,     // payload: [hop]
  kDossier = 3,   // payload: triples (id, dist, parent)*
  kAnnounce = 4,  // payload: [child_rep, parent_node]
  kReroute = 5,   // payload: [exit_node, entry_node]
};

constexpr std::uint64_t kNoWord = ~0ull;

struct Triple {
  Word id;
  std::uint64_t dist;
  Word parent;
};

struct NodeState {
  // Phase 1.
  bool active = false;
  std::vector<Word> necklace;  // rotation order starting at self
  Word rep = kNoWord;
  // Phase 2.
  std::uint64_t dist = kNoWord;
  Word bfs_parent = kNoWord;
  bool must_forward = false;
  // Phase 3.
  std::vector<Triple> known;
  std::vector<Triple> fresh;
  Word leader = kNoWord;
  Word label = kNoWord;        // incoming tree label w (child necklaces only)
  Word leader_parent = kNoWord;
  // Phase 4.
  std::vector<std::pair<Word, Word>> announcements;  // (child_rep, parent node)
  // Phase 5.
  std::optional<Word> reroute;
  std::vector<std::pair<Word, Word>> pending_instructions;
};

}  // namespace

DistributedFfcStats predict_rebuild_rounds(Digit base, unsigned n,
                                           std::uint32_t eccentricity) {
  const WordSpace ws(base, n);  // validates (base, n) like every solver does
  const std::uint64_t size = ws.size();
  const std::uint64_t d = ws.radix();
  DistributedFfcStats est;
  // Phase 1 always steps the full necklace circulation, faults or not.
  est.probe_rounds = n;
  // Phase 2 quiesces one round after the farthest node is reached.
  est.broadcast_rounds = (eccentricity != 0 ? eccentricity : n) + 1;
  // Phase 3 circulates fresh dossiers for at most n - 1 rounds (the initial
  // post is part of round one; a singleton necklace posts nothing).
  est.dossier_rounds = n > 0 ? n - 1 : 0;
  // Phase 4 is a single multicast round from every child-necklace exit node.
  est.announce_rounds = 1;
  // Phase 5 instructions travel at most the necklace length.
  est.reroute_rounds = n;
  // Delivery envelope: n-hop probe tokens and dossier circulations from every
  // node, plus reroute hops (at most one instruction in flight per node per
  // label) and the d-way flood and announce fan-outs.
  est.messages = size * (3 * static_cast<std::uint64_t>(n) + 2 * d) + d;
  return est;
}

DistributedFfcSolver::DistributedFfcSolver(DeBruijnDigraph graph)
    : graph_(std::move(graph)) {}

Word DistributedFfcSolver::default_root(std::span<const Word> faulty_nodes) const {
  const WordSpace& ws = graph_.words();
  const std::vector<bool> faulty = [&] {
    std::vector<bool> mask(ws.size(), false);
    for (Word rep : necklace_reps_of(ws, faulty_nodes)) {
      for (Word v : necklace_nodes(ws, rep)) mask[v] = true;
    }
    return mask;
  }();
  const Word preferred = 1;  // 0...01
  if (!faulty[preferred]) return preferred;
  // Nearest nonfaulty node by breadth-first search over the full topology
  // (the paper: "a neighboring node was used instead").
  const auto r = bfs(graph_, preferred);
  Word best = kNoParent;
  std::uint32_t best_dist = kUnreached;
  for (Word v = 0; v < ws.size(); ++v) {
    if (faulty[v] || r.dist[v] == kUnreached) continue;
    if (r.dist[v] < best_dist || (r.dist[v] == best_dist && v < best)) {
      best_dist = r.dist[v];
      best = v;
    }
  }
  require(best != kNoParent, "no nonfaulty node reachable from 0...01");
  return best;
}

DistributedFfcResult DistributedFfcSolver::run(std::span<const Word> faulty_nodes,
                                               Word root) const {
  const WordSpace& ws = graph_.words();
  const unsigned n = ws.length();
  const Word num_nodes = ws.size();
  require(root < num_nodes, "root out of range");

  sim::Engine engine(num_nodes, [&ws](NodeId u, NodeId v) {
    return ws.suffix(u) == ws.prefix(v);
  });
  {
    const std::unordered_set<Word> dead(faulty_nodes.begin(), faulty_nodes.end());
    for (Word v : dead) engine.kill(v);
  }

  std::vector<NodeState> state(num_nodes);

  // ---------------------------------------------------------------------
  // Phase 1: necklace probe. Every live processor launches a token along
  // its rotation successor; the token accumulates the member list and dies
  // at any dead processor.
  for (Word v = 0; v < num_nodes; ++v) {
    if (!engine.alive(v)) continue;
    engine.post(v, ws.rotate_left(v, 1), {v, kProbe, {v}});
  }
  const std::uint64_t probe_start = engine.rounds();
  for (unsigned r = 0; r < n; ++r) {
    engine.step([&](NodeId dest, std::vector<sim::Message>& batch) {
      for (sim::Message& m : batch) {
        if (m.tag != kProbe) continue;
        const Word origin = m.payload.front();
        if (origin == dest) {
          NodeState& s = state[dest];
          s.active = true;
          s.necklace.assign(m.payload.begin(), m.payload.end());
          s.rep = *std::min_element(s.necklace.begin(), s.necklace.end());
        } else {
          m.payload.push_back(dest);
          engine.post(dest, ws.rotate_left(dest, 1), std::move(m));
        }
      }
    });
  }
  // Any probe still in flight belongs to a faulty necklace and will be
  // discarded with its carrier; drain bookkeeping by construction: probes of
  // live necklaces completed within n rounds.
  const std::uint64_t probe_rounds = engine.rounds() - probe_start;

  require(engine.alive(root) && state[root].active,
          "root lies on a faulty necklace");
  root = state[root].rep;  // ensure N(R) == [R]

  // ---------------------------------------------------------------------
  // Phase 2: broadcast from R. Note: probe leftovers for faulty necklaces
  // may still be in flight; they are filtered by tag.
  const std::uint64_t flood_start = engine.rounds();
  state[root].dist = 0;
  for (Digit a = 0; a < ws.radix(); ++a) {
    engine.post(root, ws.shift_append(root, a), {root, kFlood, {1}});
  }
  const std::uint64_t flood_budget = num_nodes + n + 4;
  std::uint64_t idle_guard = 0;
  while (!engine.idle()) {
    ensure(++idle_guard <= flood_budget, "broadcast failed to quiesce");
    engine.step([&](NodeId dest, std::vector<sim::Message>& batch) {
      NodeState& s = state[dest];
      Word best_sender = kNoWord;
      std::uint64_t hop = 0;
      for (const sim::Message& m : batch) {
        if (m.tag != kFlood) continue;
        if (!s.active) continue;       // withdrawn processors do not join
        if (m.from == dest) continue;  // loop edges carry no information
        if (s.dist != kNoWord) continue;
        hop = m.payload[0];
        if (best_sender == kNoWord || m.from < best_sender) best_sender = m.from;
      }
      if (best_sender != kNoWord) {
        s.dist = hop;
        s.bfs_parent = best_sender;
        s.must_forward = true;
      }
      if (s.must_forward) {
        s.must_forward = false;
        for (Digit a = 0; a < ws.radix(); ++a) {
          engine.post(dest, ws.shift_append(dest, a), {dest, kFlood, {s.dist + 1}});
        }
      }
    });
  }
  const std::uint64_t broadcast_rounds = engine.rounds() - flood_start;

  // ---------------------------------------------------------------------
  // Phase 3: ring all-gather of (id, dist, parent) within each necklace in
  // B* (necklaces are all-or-nothing reached, so s.dist != kNoWord is a
  // consistent participation test).
  const std::uint64_t dossier_start = engine.rounds();
  auto encode_triples = [](const std::vector<Triple>& ts) {
    std::vector<std::uint64_t> payload;
    payload.reserve(ts.size() * 3);
    for (const Triple& t : ts) {
      payload.push_back(t.id);
      payload.push_back(t.dist);
      payload.push_back(t.parent);
    }
    return payload;
  };
  for (Word v = 0; v < num_nodes; ++v) {
    NodeState& s = state[v];
    if (!s.active || s.dist == kNoWord) continue;
    const Triple self{v, s.dist, s.bfs_parent};
    s.known.push_back(self);
    if (s.necklace.size() > 1) {
      engine.post(v, ws.rotate_left(v, 1), {v, kDossier, encode_triples({self})});
    }
  }
  for (unsigned r = 0; r + 1 < n; ++r) {
    if (engine.idle()) break;
    engine.step([&](NodeId dest, std::vector<sim::Message>& batch) {
      NodeState& s = state[dest];
      for (const sim::Message& m : batch) {
        if (m.tag != kDossier) continue;
        for (std::size_t i = 0; i + 3 <= m.payload.size(); i += 3) {
          const Triple t{m.payload[i], m.payload[i + 1], m.payload[i + 2]};
          if (t.id == dest) continue;  // own triple came full circle
          bool fresh_triple = true;
          for (const Triple& k : s.known) {
            if (k.id == t.id) {
              fresh_triple = false;
              break;
            }
          }
          if (fresh_triple) {
            s.known.push_back(t);
            s.fresh.push_back(t);
          }
        }
      }
      if (!s.fresh.empty()) {
        engine.post(dest, ws.rotate_left(dest, 1),
                    {dest, kDossier, encode_triples(s.fresh)});
        s.fresh.clear();
      }
    });
  }
  const std::uint64_t dossier_rounds = engine.rounds() - dossier_start;

  // Leader deduction (local computation, no communication).
  for (Word v = 0; v < num_nodes; ++v) {
    NodeState& s = state[v];
    if (!s.active || s.dist == kNoWord) continue;
    ensure(s.known.size() == s.necklace.size(),
           "dossier all-gather must cover the necklace");
    const Triple* leader = &s.known.front();
    for (const Triple& t : s.known) {
      if (t.dist < leader->dist || (t.dist == leader->dist && t.id < leader->id)) {
        leader = &t;
      }
    }
    s.leader = leader->id;
    if (s.rep != root) {
      s.label = ws.prefix(leader->id);
      s.leader_parent = leader->parent;
    }
  }

  // ---------------------------------------------------------------------
  // Phase 4: T_w announce. The exit node of each child necklace (the unique
  // member whose suffix equals the incoming label) multicasts its necklace
  // representative and the common parent node to all d successors.
  const std::uint64_t announce_start = engine.rounds();
  for (Word v = 0; v < num_nodes; ++v) {
    const NodeState& s = state[v];
    if (!s.active || s.dist == kNoWord || s.rep == root) continue;
    if (ws.suffix(v) != s.label) continue;
    for (Digit a = 0; a < ws.radix(); ++a) {
      engine.post(v, ws.shift_append(v, a),
                  {v, kAnnounce, {s.rep, s.leader_parent}});
    }
  }
  engine.step([&](NodeId dest, std::vector<sim::Message>& batch) {
    NodeState& s = state[dest];
    if (!s.active || s.dist == kNoWord) return;
    for (const sim::Message& m : batch) {
      if (m.tag != kAnnounce) continue;
      s.announcements.emplace_back(m.payload[0], m.payload[1]);
    }
  });
  const std::uint64_t announce_rounds = engine.rounds() - announce_start;

  // Collector logic (local): the receiving node has prefix w; it decides
  // whether its necklace belongs to T_w (as the common parent or as a child
  // with incoming label w), derives the ascending member cycle and prepares
  // the reroute instruction for its necklace's exit node.
  const std::uint64_t reroute_start = engine.rounds();
  for (Word v = 0; v < num_nodes; ++v) {
    NodeState& s = state[v];
    if (s.announcements.empty()) continue;
    const Word w = ws.prefix(v);
    const Word parent_node = s.announcements.front().second;
    const Word parent_rep = ws.min_rotation(parent_node);
    std::vector<Word> members;
    for (const auto& [child_rep, p] : s.announcements) {
      ensure(p == parent_node, "T_w children share one parent (height-one)");
      members.push_back(child_rep);
    }
    const bool is_parent = s.rep == parent_rep;
    const bool is_child = s.rep != root && s.label == w &&
                          std::find(members.begin(), members.end(), s.rep) !=
                              members.end();
    if (!is_parent && !is_child) {
      s.announcements.clear();
      continue;  // adjacent via w in N*, but not a member of T_w
    }
    members.push_back(parent_rep);
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    const auto self_it = std::find(members.begin(), members.end(), s.rep);
    ensure(self_it != members.end(), "member list must contain own necklace");
    const Word target_rep =
        members[(static_cast<std::size_t>(self_it - members.begin()) + 1) %
                members.size()];
    // Exit node of our necklace (suffix w) and entry node of the target
    // necklace (prefix w): both are rotations, computed locally.
    Word exit_node = kNoWord, entry_node = kNoWord;
    for (Word u : s.necklace) {
      if (ws.suffix(u) == w) exit_node = u;
    }
    for (unsigned k = 0; k < n; ++k) {
      const Word u = ws.rotate_left(target_rep, k);
      if (ws.prefix(u) == w) entry_node = u;
    }
    ensure(exit_node != kNoWord && entry_node != kNoWord,
           "members of T_w expose both node forms for label w");
    s.pending_instructions.emplace_back(exit_node, entry_node);
    s.announcements.clear();
  }

  // ---------------------------------------------------------------------
  // Phase 5: circulate reroute instructions to the exit nodes.
  for (Word v = 0; v < num_nodes; ++v) {
    NodeState& s = state[v];
    for (const auto& [exit_node, entry_node] : s.pending_instructions) {
      if (exit_node == v) {
        ensure(!s.reroute.has_value(), "one reroute per node");
        s.reroute = entry_node;
      } else {
        engine.post(v, ws.rotate_left(v, 1), {v, kReroute, {exit_node, entry_node}});
      }
    }
    s.pending_instructions.clear();
  }
  for (unsigned r = 0; r < n; ++r) {
    if (engine.idle()) break;
    engine.step([&](NodeId dest, std::vector<sim::Message>& batch) {
      NodeState& s = state[dest];
      for (sim::Message& m : batch) {
        if (m.tag != kReroute) continue;
        if (m.payload[0] == dest) {
          ensure(!s.reroute.has_value(), "one reroute per node");
          s.reroute = m.payload[1];
        } else {
          engine.post(dest, ws.rotate_left(dest, 1), std::move(m));
        }
      }
    });
  }
  const std::uint64_t reroute_rounds = engine.rounds() - reroute_start;

  // ---------------------------------------------------------------------
  // Collect H by walking the successor pointers from the root.
  DistributedFfcResult result;
  result.root = root;
  result.stats.probe_rounds = probe_rounds;
  result.stats.broadcast_rounds = broadcast_rounds;
  result.stats.dossier_rounds = dossier_rounds;
  result.stats.announce_rounds = announce_rounds;
  result.stats.reroute_rounds = reroute_rounds;
  result.stats.messages = engine.messages_delivered();
  std::uint64_t in_bstar = 0;
  std::uint32_t ecc = 0;
  for (Word v = 0; v < num_nodes; ++v) {
    if (state[v].active && state[v].dist != kNoWord) {
      ++in_bstar;
      ecc = std::max(ecc, static_cast<std::uint32_t>(state[v].dist));
    }
  }
  result.bstar_size = in_bstar;
  result.root_eccentricity = ecc;
  result.cycle.nodes.reserve(in_bstar);
  Word cur = root;
  for (std::uint64_t i = 0; i < in_bstar; ++i) {
    result.cycle.nodes.push_back(cur);
    const NodeState& s = state[cur];
    cur = s.reroute.has_value() ? *s.reroute : ws.rotate_left(cur, 1);
  }
  ensure(cur == root, "distributed H must close after |B*| steps");
  return result;
}

}  // namespace dbr::core
