#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "butterfly/butterfly.hpp"
#include "core/instance_context.hpp"

namespace dbr::core {

/// Fault-tolerant ring embedding in the butterfly F(d,n) (Section 3.4).
/// Requires gcd(d, n) = 1, the condition under which the lift Phi maps
/// Hamiltonian cycles of B(d,n) to Hamiltonian cycles of F(d,n)
/// (LCM(d^n, n) = n d^n).

/// Proposition 3.5: a Hamiltonian cycle of F(d,n) avoiding the given faulty
/// butterfly edges; guaranteed whenever the fault count is at most
/// MAX(psi(d)-1, phi_edge_bound(d)). Faulty edges are (tail, head) node-id
/// pairs; each is pulled back to its De Bruijn edge, a fault-free De Bruijn
/// Hamiltonian cycle is constructed, and the result lifted with Phi.
std::optional<std::vector<NodeId>> butterfly_fault_free_hc(
    const ButterflyDigraph& bf,
    std::span<const std::pair<NodeId, NodeId>> faulty_edges);

/// Proposition 3.6: psi(d) pairwise edge-disjoint Hamiltonian cycles of
/// F(d,n), obtained by lifting the disjoint De Bruijn family.
std::vector<std::vector<NodeId>> butterfly_disjoint_hcs(const ButterflyDigraph& bf);

/// Context-backed solve phase of Proposition 3.5: uses the context's
/// butterfly adjacency and shared edge-fault machinery; only the pull-back,
/// selection and lift are per-solve work. Requires gcd(base, n) = 1.
std::optional<std::vector<NodeId>> solve_butterfly(
    const InstanceContext& ctx,
    std::span<const std::pair<NodeId, NodeId>> faulty_edges);

}  // namespace dbr::core
