#include "core/ffc.hpp"

#include <algorithm>
#include <bit>

#include "graph/algorithms.hpp"
#include "util/require.hpp"

namespace dbr::core {

namespace {

/// Implicit reversal of B(d,n): successors become shift_prepend moves.
struct ReverseDeBruijn {
  const DeBruijnDigraph* g;

  NodeId num_nodes() const { return g->num_nodes(); }

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    for (Digit a = 0; a < g->radix(); ++a) fn(g->words().shift_prepend(v, a));
  }
};

/// The per-node successor base of the De Bruijn shift rule,
/// (u % suffix_count) * d == (u * d) % size, with the modulo
/// strength-reduced to a mask when d^n is a power of two (every d = 2^k
/// instance): the hardware division otherwise dominates the per-edge cost
/// of the masked Tarjan and the broadcast BFS in the arena solve.
struct SuccBase {
  Word suffix_count;
  Word d;
  Word mask;
  Word shift;  ///< log2(d), meaningful only when pow2
  bool pow2;

  explicit SuccBase(const WordSpace& ws)
      : suffix_count(ws.size() / ws.radix()),
        d(ws.radix()),
        mask(ws.size() - 1),
        shift(static_cast<Word>(std::countr_zero(static_cast<Word>(ws.radix())))),
        pow2((ws.size() & (ws.size() - 1)) == 0) {}

  Word operator()(Word u) const {
    return pow2 ? (u * d) & mask : (u % suffix_count) * d;
  }

  /// The shared predecessor suffix: preds of u are a * suffix_count + u / d.
  Word pred_base(Word u) const { return pow2 ? u >> shift : u / d; }
};

}  // namespace

FfcSolver::FfcSolver(DeBruijnDigraph graph) : graph_(std::move(graph)) {}

FfcSolver::FfcSolver(const InstanceContext& ctx)
    : graph_(ctx.graph()), necklaces_(&ctx.necklaces()), ctx_(&ctx) {}

std::vector<bool> FfcSolver::active_mask(std::span<const Word> faulty_nodes) const {
  const WordSpace& ws = graph_.words();
  std::vector<bool> active(ws.size(), true);
  for (Word rep : necklace_reps_of(ws, faulty_nodes)) {
    for (Word v : necklace_nodes(ws, rep)) active[v] = false;
  }
  return active;
}

std::vector<bool> FfcSolver::component_of(const std::vector<bool>& active,
                                          Word root) const {
  require(root < graph_.num_nodes(), "root out of range");
  require(active[root], "root must be a nonfaulty node");
  const SubgraphView<DeBruijnDigraph> fwd(graph_, active);
  const auto forward = bfs(fwd, root, [&](NodeId v) { return active[v]; });
  const ReverseDeBruijn rev{&graph_};
  const SubgraphView<ReverseDeBruijn> bwd(rev, active);
  const auto backward = bfs(bwd, root, [&](NodeId v) { return active[v]; });
  std::vector<bool> comp(graph_.num_nodes(), false);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    comp[v] = forward.dist[v] != kUnreached && backward.dist[v] != kUnreached;
  }
  return comp;
}

std::pair<Word, std::uint64_t> FfcSolver::largest_component_root(
    const std::vector<bool>& active) const {
  require(active.size() == graph_.num_nodes(), "active mask size mismatch");
  const SubgraphView<DeBruijnDigraph> view(graph_, active);
  const auto scc = strongly_connected_components(view);
  std::vector<std::uint64_t> size(scc.count, 0);
  std::vector<Word> min_node(scc.count, kNoParent);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (!active[v]) continue;
    const auto c = scc.component[v];
    ++size[c];
    if (min_node[c] == kNoParent) min_node[c] = v;  // ascending scan
  }
  Word best_root = kNoParent;
  std::uint64_t best_size = 0;
  for (std::uint64_t c = 0; c < scc.count; ++c) {
    if (min_node[c] == kNoParent) continue;
    if (size[c] > best_size ||
        (size[c] == best_size && min_node[c] < best_root)) {
      best_size = size[c];
      best_root = min_node[c];
    }
  }
  require(best_root != kNoParent, "all nodes are faulty");
  return {best_root, best_size};
}

NecklaceAdjacency FfcSolver::necklace_adjacency(const std::vector<bool>& active) const {
  const WordSpace& ws = graph_.words();
  require(active.size() == ws.size(), "active mask size mismatch");
  NecklaceAdjacency out;
  if (necklaces_ != nullptr) {
    // The context already stores every representative in ascending order;
    // filtering it by the mask yields exactly the set the full scan would
    // ({x : active[x] and min_rot(x) == x} == {rep : active[rep]}) without
    // rescanning all d^n words.
    for (Word rep : necklaces_->reps) {
      if (active[rep]) out.reps.push_back(rep);
    }
  } else {
    for (Word x = 0; x < ws.size(); ++x) {
      if (active[x] && min_rot(x) == x) out.reps.push_back(x);
    }
  }
  // For every (n-1)-digit value w, the active nodes of the form a.w sit in
  // pairwise-distinct necklaces; each unordered pair yields two antiparallel
  // w-labeled edges.
  const Word suffix_count = ws.size() / ws.radix();
  std::vector<Word> reps_for_w;
  for (Word w = 0; w < suffix_count; ++w) {
    reps_for_w.clear();
    for (Digit a = 0; a < ws.radix(); ++a) {
      const Word node = ws.compose_prefix(a, w);
      if (active[node]) reps_for_w.push_back(min_rot(node));
    }
    std::sort(reps_for_w.begin(), reps_for_w.end());
    ensure(std::adjacent_find(reps_for_w.begin(), reps_for_w.end()) ==
               reps_for_w.end(),
           "a.w and b.w cannot share a necklace (Section 2.2)");
    for (std::size_t i = 0; i < reps_for_w.size(); ++i) {
      for (std::size_t j = 0; j < reps_for_w.size(); ++j) {
        if (i != j) out.edges.push_back({reps_for_w[i], reps_for_w[j], w});
      }
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

FfcResult FfcSolver::solve(std::span<const Word> faulty_nodes,
                           const FfcOptions& options) const {
  const WordSpace& ws = graph_.words();
  FfcResult result;
  result.faulty_necklace_reps = necklace_reps_of(ws, faulty_nodes);
  result.faulty_node_count = necklace_node_count(ws, result.faulty_necklace_reps);
  const std::vector<bool> active = active_mask(faulty_nodes);

  // --- Choose the distinguished node R and its component B*. ---
  Word root;
  if (options.root.has_value()) {
    require(*options.root < ws.size(), "root out of range");
    require(active[*options.root], "requested root lies on a faulty necklace");
    root = min_rot(*options.root);  // ensure N(R) == [R]
  } else {
    root = largest_component_root(active).first;
  }
  const std::vector<bool> comp = component_of(active, root);
  ensure(comp[root], "root must belong to its own component");
  result.root = root;

  // --- Step 1.1: broadcast tree T' (BFS with min-predecessor tie-break). ---
  const SubgraphView<DeBruijnDigraph> view(graph_, comp);
  const auto tree = bfs(view, root, [&](NodeId v) { return comp[v]; });

  // --- Necklaces of B* and their leaders. ---
  std::uint64_t comp_size = 0;
  std::vector<Word> comp_reps;
  for (Word x = 0; x < ws.size(); ++x) {
    if (!comp[x]) continue;
    ++comp_size;
    ensure(tree.dist[x] != kUnreached,
           "broadcast must reach every node of the strongly connected B*");
    if (min_rot(x) == x) comp_reps.push_back(x);
  }
  result.bstar_size = comp_size;
  result.root_eccentricity = tree.eccentricity();
  result.necklace_count = comp_reps.size();
  const Word root_rep = min_rot(root);
  ensure(root_rep == root, "root is canonical by construction");

  // --- Step 1.2: spanning tree T of N*. For each necklace choose the leader
  // Y (first node to receive M; ties toward the smaller id); the tree edge
  // enters at Y with label w = first n-1 digits of Y, from the necklace of
  // Y's broadcast parent. ---
  for (Word rep : comp_reps) {
    if (rep == root_rep) continue;
    Word leader = kNoParent;
    std::uint32_t best_dist = kUnreached;
    for (Word v : necklace_nodes(ws, rep)) {
      if (tree.dist[v] < best_dist ||
          (tree.dist[v] == best_dist && v < leader)) {
        best_dist = tree.dist[v];
        leader = v;
      }
    }
    ensure(leader != kNoParent, "every component necklace has a leader");
    const Word parent = tree.parent[leader];
    ensure(parent != kNoParent, "non-root leader must have a broadcast parent");
    const Word parent_rep = min_rot(parent);
    ensure(parent_rep != rep, "leader's parent lies in a different necklace");
    result.tree_edges.push_back({parent_rep, rep, ws.prefix(leader)});
  }
  std::sort(result.tree_edges.begin(), result.tree_edges.end());

  // --- Step 2: modify each label class T_w (a height-one star) into a
  // cycle ordered by necklace representative with wrap-around. ---
  std::unordered_map<Word, std::vector<Word>> members_by_label;
  std::unordered_map<Word, Word> parent_by_label;
  for (const LabeledEdge& e : result.tree_edges) {
    auto [it, inserted] = parent_by_label.try_emplace(e.label, e.from);
    ensure(it->second == e.from,
           "T_w must have a common parent (height-one property, Step 1.2)");
    members_by_label[e.label].push_back(e.to);
  }
  for (auto& [label, members] : members_by_label) {
    members.push_back(parent_by_label.at(label));
    std::sort(members.begin(), members.end());
    for (std::size_t i = 0; i < members.size(); ++i) {
      result.modified_edges.push_back(
          {members[i], members[(i + 1) % members.size()], label});
    }
  }
  std::sort(result.modified_edges.begin(), result.modified_edges.end());

  // --- Step 3: successor rule. A D-edge ([x] --w--> [y]) reroutes the exit
  // node of [x] with suffix w to the entry node of [y] with prefix w; all
  // other nodes follow their necklace successor. ---
  std::unordered_map<Word, Word> reroute;  // exit node -> entry node
  for (const LabeledEdge& e : result.modified_edges) {
    Word exit_node = kNoParent, entry_node = kNoParent;
    for (Word v : necklace_nodes(ws, e.from)) {
      if (ws.suffix(v) == e.label) {
        ensure(exit_node == kNoParent, "exit node is unique per label");
        exit_node = v;
      }
    }
    for (Word v : necklace_nodes(ws, e.to)) {
      if (ws.prefix(v) == e.label) {
        ensure(entry_node == kNoParent, "entry node is unique per label");
        entry_node = v;
      }
    }
    ensure(exit_node != kNoParent && entry_node != kNoParent,
           "both endpoints of a D-edge expose the label");
    const bool inserted = reroute.emplace(exit_node, entry_node).second;
    ensure(inserted, "each node is rerouted by at most one D-edge");
  }

  // --- Walk H from the root. ---
  result.cycle.nodes.reserve(comp_size);
  std::vector<bool> visited(ws.size(), false);
  Word cur = root;
  for (std::uint64_t step = 0; step < comp_size; ++step) {
    ensure(comp[cur] && !visited[cur], "H must stay in B* and not revisit");
    visited[cur] = true;
    result.cycle.nodes.push_back(cur);
    const auto it = reroute.find(cur);
    cur = it != reroute.end() ? it->second : ws.rotate_left(cur, 1);
  }
  ensure(cur == root, "H must close after |B*| steps (Proposition 2.1)");
  return result;
}

// ---------------------------------------------------------------------------
// Arena solve: the same FFC algorithm expressed against a reusable
// SolveScratch and the context's precomputed label-merge tables. Bit
// identity with the reference solve() above rests on the order-independence
// of every tie-break: BFS parents are the *minimum* distance-(d-1)
// predecessor, the distinguished component maximizes (size, -min_node), and
// Steps 1.2/2 pick minima over whole member slices — so the work can be
// reorganized (one SCC pass instead of SCC + two reachability BFS, flat
// epoch-stamped tables instead of unordered_maps, CSR slices instead of
// freshly built necklace lists) without changing a single output byte. The
// fuzz suite (test_solve_arena) enforces the claim across the scenario
// corpus.

std::pair<Word, std::uint64_t> FfcSolver::largest_component_arena(
    SolveScratch& s) const {
  const WordSpace& ws = graph_.words();
  const Word size = ws.size();
  const Digit d = ws.radix();
  const SuccBase succ(ws);

  // Masked iterative Tarjan over the De Bruijn successor rule: the succs of
  // v are suffix(v) * d + a, generated digit by digit, so no per-frame
  // successor vector is ever materialized (the reference's dominant
  // allocation cost).
  s.scc_index.assign(size, kNoWord);
  s.scc_low.resize(size);
  s.scc_comp.resize(size);
  s.on_stack.assign(size, false);
  s.scc_stack.clear();
  s.scc_frames.clear();
  Word next_index = 0;
  Word component_count = 0;
  for (Word start = 0; start < size; ++start) {
    if (!s.active.test(start) || s.scc_index[start] != kNoWord) continue;
    s.scc_index[start] = s.scc_low[start] = next_index++;
    s.scc_stack.push_back(start);
    s.on_stack.set(start);
    s.scc_frames.push_back({start, succ(start), 0});
    while (!s.scc_frames.empty()) {
      SolveScratch::SccFrame& f = s.scc_frames.back();
      if (f.next_digit < d) {
        const Word w = f.succ_base + f.next_digit++;
        if (!s.active.test(w)) continue;
        if (s.scc_index[w] == kNoWord) {
          s.scc_index[w] = s.scc_low[w] = next_index++;
          s.scc_stack.push_back(w);
          s.on_stack.set(w);
          s.scc_frames.push_back({w, succ(w), 0});
        } else if (s.on_stack.test(w)) {
          s.scc_low[f.node] = std::min(s.scc_low[f.node], s.scc_index[w]);
        }
      } else {
        const Word v = f.node;
        if (s.scc_low[v] == s.scc_index[v]) {
          for (;;) {
            const Word w = s.scc_stack.back();
            s.scc_stack.pop_back();
            s.on_stack.reset(w);
            s.scc_comp[w] = component_count;
            if (w == v) break;
          }
          ++component_count;
        }
        s.scc_frames.pop_back();
        if (!s.scc_frames.empty()) {
          Word& parent_low = s.scc_low[s.scc_frames.back().node];
          parent_low = std::min(parent_low, s.scc_low[v]);
        }
      }
    }
  }

  // Same selection rule as the reference: maximize size, ties toward the
  // smaller minimum node (an ascending scan, so minima fill in order).
  s.comp_size.assign(component_count, 0);
  s.comp_min.assign(component_count, kNoWord);
  for (Word v = 0; v < size; ++v) {
    if (!s.active.test(v)) continue;
    const Word c = s.scc_comp[v];
    ++s.comp_size[c];
    if (s.comp_min[c] == kNoWord) s.comp_min[c] = v;
  }
  Word best_root = kNoWord;
  std::uint64_t best_size = 0;
  for (Word c = 0; c < component_count; ++c) {
    if (s.comp_min[c] == kNoWord) continue;
    if (s.comp_size[c] > best_size ||
        (s.comp_size[c] == best_size && s.comp_min[c] < best_root)) {
      best_size = s.comp_size[c];
      best_root = s.comp_min[c];
    }
  }
  require(best_root != kNoWord, "all nodes are faulty");
  return {best_root, best_size};
}

FfcResult FfcSolver::solve(std::span<const Word> faulty_nodes,
                           SolveScratch& s, const FfcOptions& options) const {
  require(ctx_ != nullptr,
          "the arena solve requires a context-backed FfcSolver");
  const WordSpace& ws = graph_.words();
  const NecklaceTable& nt = *necklaces_;
  const LabelMergeTable& lm = ctx_->label_merge();
  const Word size = ws.size();
  const Digit d = ws.radix();
  const Word suffix_count = size / d;
  const SuccBase succ(ws);

  FfcResult result;

  // Faulty necklaces (sorted distinct reps), mirroring necklace_reps_of.
  s.reps_tmp.clear();
  for (Word f : faulty_nodes) {
    require(f < size, "node out of range");
    s.reps_tmp.push_back(nt.min_rot[f]);
  }
  std::sort(s.reps_tmp.begin(), s.reps_tmp.end());
  s.reps_tmp.erase(std::unique(s.reps_tmp.begin(), s.reps_tmp.end()),
                   s.reps_tmp.end());
  result.faulty_necklace_reps.assign(s.reps_tmp.begin(), s.reps_tmp.end());

  // Active mask: faulty necklaces removed whole, via their CSR slices.
  s.active.assign(size, true);
  std::uint64_t removed = 0;
  for (Word rep : result.faulty_necklace_reps) {
    const std::uint32_t i = lm.necklace_index[rep];
    for (std::uint64_t j = lm.member_begin[i]; j < lm.member_begin[i + 1]; ++j) {
      s.active.reset(lm.members[j]);
    }
    removed += lm.period(i);
  }
  result.faulty_node_count = removed;

  // --- Choose the distinguished node R and its component B*. ---
  // component_of(active, root) is exactly the SCC of root, so the rootless
  // path reuses the Tarjan labels instead of two more reachability passes.

  // Step 1.1's broadcast BFS (min-predecessor tie-break) over an explicit
  // node mask, so the strong-connectivity fast path below can run it over
  // `active` before B* is known.
  std::uint32_t eccentricity = 0;
  std::uint64_t reached = 0;
  const auto broadcast = [&](Word r, const BitVec& mask) {
    s.dist.assign(size, kUnreached);
    s.parent.resize(size);
    s.dist[r] = 0;
    s.parent[r] = kNoWord;
    s.frontier.clear();
    s.frontier.push_back(r);
    reached = 1;
    eccentricity = 0;
    while (!s.frontier.empty()) {
      s.frontier_next.clear();
      for (Word u : s.frontier) {
        const std::uint32_t du = s.dist[u];
        const Word base = succ(u);
        for (Digit a = 0; a < d; ++a) {
          const Word w = base + a;
          if (w == u) continue;  // loops carry no broadcast information
          if (!mask.test(w)) continue;
          if (s.dist[w] == kUnreached) {
            s.dist[w] = du + 1;
            s.parent[w] = u;
            s.frontier_next.push_back(w);
            ++reached;
            eccentricity = std::max(eccentricity, du + 1);
          } else if (s.dist[w] == du + 1 && u < s.parent[w]) {
            s.parent[w] = u;  // same round, smaller sender id wins
          }
        }
      }
      s.frontier.swap(s.frontier_next);
    }
  };

  Word root = kNoWord;
  bool broadcast_done = false;
  if (options.root.has_value()) {
    require(*options.root < size, "root out of range");
    require(s.active.test(*options.root),
            "requested root lies on a faulty necklace");
    root = nt.min_rot[*options.root];
    // Forward reach into s.comp.
    s.comp.assign(size, false);
    s.comp.set(root);
    s.frontier.clear();
    s.frontier.push_back(root);
    while (!s.frontier.empty()) {
      s.frontier_next.clear();
      for (Word u : s.frontier) {
        const Word base = succ(u);
        for (Digit a = 0; a < d; ++a) {
          const Word w = base + a;
          if (s.active.test(w) && !s.comp.test(w)) {
            s.comp.set(w);
            s.frontier_next.push_back(w);
          }
        }
      }
      s.frontier.swap(s.frontier_next);
    }
    // Backward reach, then intersect.
    s.backward.assign(size, false);
    s.backward.set(root);
    s.frontier.clear();
    s.frontier.push_back(root);
    while (!s.frontier.empty()) {
      s.frontier_next.clear();
      for (Word u : s.frontier) {
        const Word base = u / d;
        for (Digit a = 0; a < d; ++a) {
          const Word w = a * suffix_count + base;
          if (s.active.test(w) && !s.backward.test(w)) {
            s.backward.set(w);
            s.frontier_next.push_back(w);
          }
        }
      }
      s.frontier.swap(s.frontier_next);
    }
    s.comp.and_with(s.backward);
  } else {
    // Fast path: when the active graph is itself strongly connected — the
    // overwhelmingly common case under few faults — B* is all of it and R
    // is its smallest active node, so the Tarjan pass is skipped entirely.
    // Established by the Step-1.1 broadcast from that node (reused below)
    // plus one backward reachability sweep. Selection is bit-identical to
    // the reference: the single SCC is trivially the largest, and its
    // minimum node is the same root the reference's scan picks.
    Word first_active = kNoWord;
    for (Word v = 0; v < size; ++v) {
      if (s.active.test(v)) {
        first_active = v;
        break;
      }
    }
    require(first_active != kNoWord, "all nodes are faulty");
    const std::uint64_t active_count = size - removed;
    broadcast(first_active, s.active);
    if (reached == active_count) {
      // Backward sweep over the predecessor rule a.prefix(u).
      s.backward.assign(size, false);
      s.backward.set(first_active);
      s.frontier.clear();
      s.frontier.push_back(first_active);
      std::uint64_t seen = 1;
      while (!s.frontier.empty() && seen < active_count) {
        s.frontier_next.clear();
        for (Word u : s.frontier) {
          const Word base = succ.pred_base(u);
          for (Digit a = 0; a < d; ++a) {
            const Word w = a * suffix_count + base;
            if (s.active.test(w) && !s.backward.test(w)) {
              s.backward.set(w);
              ++seen;
              s.frontier_next.push_back(w);
            }
          }
        }
        s.frontier.swap(s.frontier_next);
      }
      if (seen == active_count) {
        root = first_active;
        s.comp = s.active;  // B* is every surviving node
        broadcast_done = true;
      }
    }
    if (!broadcast_done) {
      root = largest_component_arena(s).first;
      const Word root_comp = s.scc_comp[root];
      s.comp.assign(size, false);
      for (Word v = 0; v < size; ++v) {
        if (s.active.test(v) && s.scc_comp[v] == root_comp) s.comp.set(v);
      }
    }
  }
  ensure(s.comp.test(root), "root must belong to its own component");
  result.root = root;

  // --- Step 1.1: broadcast tree T' (BFS with min-predecessor tie-break);
  // already computed when the fast path proved B* == active. ---
  if (!broadcast_done) broadcast(root, s.comp);
  const std::uint64_t comp_size = s.comp.count();
  ensure(reached == comp_size,
         "broadcast must reach every node of the strongly connected B*");
  result.bstar_size = comp_size;
  result.root_eccentricity = eccentricity;
  const Word root_rep = nt.min_rot[root];
  ensure(root_rep == root, "root is canonical by construction");

  // --- Step 1.2: spanning tree T of N*: per component necklace, the leader
  // is the member minimizing (broadcast round, id) over its CSR slice. ---
  result.necklace_count = 0;
  for (Word rep : nt.reps) {
    if (!s.comp.test(rep)) continue;
    ++result.necklace_count;
    if (rep == root_rep) continue;
    const std::uint32_t i = lm.necklace_index[rep];
    Word leader = kNoWord;
    std::uint32_t best_dist = kUnreached;
    for (std::uint64_t j = lm.member_begin[i]; j < lm.member_begin[i + 1]; ++j) {
      const Word v = lm.members[j];
      if (s.dist[v] < best_dist || (s.dist[v] == best_dist && v < leader)) {
        best_dist = s.dist[v];
        leader = v;
      }
    }
    ensure(leader != kNoWord, "every component necklace has a leader");
    const Word parent = s.parent[leader];
    ensure(parent != kNoWord, "non-root leader must have a broadcast parent");
    const Word parent_rep = nt.min_rot[parent];
    ensure(parent_rep != rep, "leader's parent lies in a different necklace");
    result.tree_edges.push_back({parent_rep, rep, ws.prefix(leader)});
  }
  std::sort(result.tree_edges.begin(), result.tree_edges.end());

  // --- Step 2: modify each label class T_w into a cycle. The flat
  // parent-per-label table and one (label, child) sort replace the
  // reference's two unordered_maps. ---
  s.parent_by_label.begin(suffix_count);
  s.label_pairs.clear();
  for (const LabeledEdge& e : result.tree_edges) {
    if (s.parent_by_label.contains(e.label)) {
      ensure(s.parent_by_label.get(e.label) == e.from,
             "T_w must have a common parent (height-one property, Step 1.2)");
    } else {
      s.parent_by_label.put(e.label, e.from);
    }
    s.label_pairs.emplace_back(e.label, e.to);
  }
  std::sort(s.label_pairs.begin(), s.label_pairs.end());
  for (std::size_t i = 0; i < s.label_pairs.size();) {
    const Word label = s.label_pairs[i].first;
    s.members_tmp.clear();
    std::size_t j = i;
    for (; j < s.label_pairs.size() && s.label_pairs[j].first == label; ++j) {
      s.members_tmp.push_back(s.label_pairs[j].second);  // ascending by sort
    }
    const Word parent = s.parent_by_label.get(label);
    s.members_tmp.insert(
        std::lower_bound(s.members_tmp.begin(), s.members_tmp.end(), parent),
        parent);
    for (std::size_t k = 0; k < s.members_tmp.size(); ++k) {
      result.modified_edges.push_back(
          {s.members_tmp[k], s.members_tmp[(k + 1) % s.members_tmp.size()],
           label});
    }
    i = j;
  }
  std::sort(result.modified_edges.begin(), result.modified_edges.end());

  // --- Step 3: successor rule, with exit/entry nodes served by the
  // precomputed per-necklace label tables instead of necklace rescans. ---
  s.reroute.begin(size);
  for (const LabeledEdge& e : result.modified_edges) {
    const Word exit_node = lm.exit_of(ws, lm.necklace_index[e.from], e.label);
    const Word entry_node = lm.entry_of(ws, lm.necklace_index[e.to], e.label);
    ensure(exit_node != kNoWord && entry_node != kNoWord,
           "both endpoints of a D-edge expose the label");
    ensure(!s.reroute.contains(exit_node),
           "each node is rerouted by at most one D-edge");
    s.reroute.put(exit_node, entry_node);
  }

  // --- Walk H from the root (table-driven rotation successors). ---
  result.cycle.nodes.reserve(comp_size);
  s.visited.assign(size, false);
  Word cur = root;
  for (std::uint64_t step = 0; step < comp_size; ++step) {
    ensure(s.comp.test(cur) && !s.visited.test(cur),
           "H must stay in B* and not revisit");
    s.visited.set(cur);
    result.cycle.nodes.push_back(cur);
    cur = s.reroute.contains(cur) ? s.reroute.get(cur) : lm.rot_next[cur];
  }
  ensure(cur == root, "H must close after |B*| steps (Proposition 2.1)");
  return result;
}

FfcResult solve_ffc(const InstanceContext& ctx, std::span<const Word> faulty_nodes,
                    const FfcOptions& options) {
  return solve_ffc(ctx, faulty_nodes, solve_scratch_tls(), options);
}

FfcResult solve_ffc(const InstanceContext& ctx, std::span<const Word> faulty_nodes,
                    SolveScratch& scratch, const FfcOptions& options) {
  return FfcSolver(ctx).solve(faulty_nodes, scratch, options);
}

std::pair<std::uint64_t, std::uint64_t> ffc_cycle_length_bounds(
    Digit d, unsigned n, std::uint64_t fault_count) {
  // WordSpace validates d >= 2, n >= 1 and d^(n+1) representable, so d^n
  // below is exact (no silent wraparound for out-of-range instances).
  const std::uint64_t size = WordSpace(d, n).size();
  const std::uint64_t f = fault_count;
  const std::uint64_t upper = f >= size ? 0 : size - f;
  std::uint64_t lower = 0;
  if (f <= d - 2) {
    const std::uint64_t removed = static_cast<std::uint64_t>(n) * f;
    lower = removed >= size ? 0 : size - removed;  // Proposition 2.2
  } else if (d == 2 && f == 1) {
    const std::uint64_t removed = static_cast<std::uint64_t>(n) + 1;
    lower = removed >= size ? 0 : size - removed;  // Proposition 2.3
  }
  return {lower, upper};
}

}  // namespace dbr::core
