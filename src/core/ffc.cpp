#include "core/ffc.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/require.hpp"

namespace dbr::core {

namespace {

/// Implicit reversal of B(d,n): successors become shift_prepend moves.
struct ReverseDeBruijn {
  const DeBruijnDigraph* g;

  NodeId num_nodes() const { return g->num_nodes(); }

  template <typename Fn>
  void for_each_successor(NodeId v, Fn&& fn) const {
    for (Digit a = 0; a < g->radix(); ++a) fn(g->words().shift_prepend(v, a));
  }
};

}  // namespace

FfcSolver::FfcSolver(DeBruijnDigraph graph) : graph_(std::move(graph)) {}

FfcSolver::FfcSolver(const InstanceContext& ctx)
    : graph_(ctx.graph()), necklaces_(&ctx.necklaces()) {}

std::vector<bool> FfcSolver::active_mask(std::span<const Word> faulty_nodes) const {
  const WordSpace& ws = graph_.words();
  std::vector<bool> active(ws.size(), true);
  for (Word rep : necklace_reps_of(ws, faulty_nodes)) {
    for (Word v : necklace_nodes(ws, rep)) active[v] = false;
  }
  return active;
}

std::vector<bool> FfcSolver::component_of(const std::vector<bool>& active,
                                          Word root) const {
  require(root < graph_.num_nodes(), "root out of range");
  require(active[root], "root must be a nonfaulty node");
  const SubgraphView<DeBruijnDigraph> fwd(graph_, active);
  const auto forward = bfs(fwd, root, [&](NodeId v) { return active[v]; });
  const ReverseDeBruijn rev{&graph_};
  const SubgraphView<ReverseDeBruijn> bwd(rev, active);
  const auto backward = bfs(bwd, root, [&](NodeId v) { return active[v]; });
  std::vector<bool> comp(graph_.num_nodes(), false);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    comp[v] = forward.dist[v] != kUnreached && backward.dist[v] != kUnreached;
  }
  return comp;
}

std::pair<Word, std::uint64_t> FfcSolver::largest_component_root(
    const std::vector<bool>& active) const {
  require(active.size() == graph_.num_nodes(), "active mask size mismatch");
  const SubgraphView<DeBruijnDigraph> view(graph_, active);
  const auto scc = strongly_connected_components(view);
  std::vector<std::uint64_t> size(scc.count, 0);
  std::vector<Word> min_node(scc.count, kNoParent);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (!active[v]) continue;
    const auto c = scc.component[v];
    ++size[c];
    if (min_node[c] == kNoParent) min_node[c] = v;  // ascending scan
  }
  Word best_root = kNoParent;
  std::uint64_t best_size = 0;
  for (std::uint64_t c = 0; c < scc.count; ++c) {
    if (min_node[c] == kNoParent) continue;
    if (size[c] > best_size ||
        (size[c] == best_size && min_node[c] < best_root)) {
      best_size = size[c];
      best_root = min_node[c];
    }
  }
  require(best_root != kNoParent, "all nodes are faulty");
  return {best_root, best_size};
}

NecklaceAdjacency FfcSolver::necklace_adjacency(const std::vector<bool>& active) const {
  const WordSpace& ws = graph_.words();
  require(active.size() == ws.size(), "active mask size mismatch");
  NecklaceAdjacency out;
  if (necklaces_ != nullptr) {
    // The context already stores every representative in ascending order;
    // filtering it by the mask yields exactly the set the full scan would
    // ({x : active[x] and min_rot(x) == x} == {rep : active[rep]}) without
    // rescanning all d^n words.
    for (Word rep : necklaces_->reps) {
      if (active[rep]) out.reps.push_back(rep);
    }
  } else {
    for (Word x = 0; x < ws.size(); ++x) {
      if (active[x] && min_rot(x) == x) out.reps.push_back(x);
    }
  }
  // For every (n-1)-digit value w, the active nodes of the form a.w sit in
  // pairwise-distinct necklaces; each unordered pair yields two antiparallel
  // w-labeled edges.
  const Word suffix_count = ws.size() / ws.radix();
  std::vector<Word> reps_for_w;
  for (Word w = 0; w < suffix_count; ++w) {
    reps_for_w.clear();
    for (Digit a = 0; a < ws.radix(); ++a) {
      const Word node = ws.compose_prefix(a, w);
      if (active[node]) reps_for_w.push_back(min_rot(node));
    }
    std::sort(reps_for_w.begin(), reps_for_w.end());
    ensure(std::adjacent_find(reps_for_w.begin(), reps_for_w.end()) ==
               reps_for_w.end(),
           "a.w and b.w cannot share a necklace (Section 2.2)");
    for (std::size_t i = 0; i < reps_for_w.size(); ++i) {
      for (std::size_t j = 0; j < reps_for_w.size(); ++j) {
        if (i != j) out.edges.push_back({reps_for_w[i], reps_for_w[j], w});
      }
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

FfcResult FfcSolver::solve(std::span<const Word> faulty_nodes,
                           const FfcOptions& options) const {
  const WordSpace& ws = graph_.words();
  FfcResult result;
  result.faulty_necklace_reps = necklace_reps_of(ws, faulty_nodes);
  result.faulty_node_count = necklace_node_count(ws, result.faulty_necklace_reps);
  const std::vector<bool> active = active_mask(faulty_nodes);

  // --- Choose the distinguished node R and its component B*. ---
  Word root;
  if (options.root.has_value()) {
    require(*options.root < ws.size(), "root out of range");
    require(active[*options.root], "requested root lies on a faulty necklace");
    root = min_rot(*options.root);  // ensure N(R) == [R]
  } else {
    root = largest_component_root(active).first;
  }
  const std::vector<bool> comp = component_of(active, root);
  ensure(comp[root], "root must belong to its own component");
  result.root = root;

  // --- Step 1.1: broadcast tree T' (BFS with min-predecessor tie-break). ---
  const SubgraphView<DeBruijnDigraph> view(graph_, comp);
  const auto tree = bfs(view, root, [&](NodeId v) { return comp[v]; });

  // --- Necklaces of B* and their leaders. ---
  std::uint64_t comp_size = 0;
  std::vector<Word> comp_reps;
  for (Word x = 0; x < ws.size(); ++x) {
    if (!comp[x]) continue;
    ++comp_size;
    ensure(tree.dist[x] != kUnreached,
           "broadcast must reach every node of the strongly connected B*");
    if (min_rot(x) == x) comp_reps.push_back(x);
  }
  result.bstar_size = comp_size;
  result.root_eccentricity = tree.eccentricity();
  result.necklace_count = comp_reps.size();
  const Word root_rep = min_rot(root);
  ensure(root_rep == root, "root is canonical by construction");

  // --- Step 1.2: spanning tree T of N*. For each necklace choose the leader
  // Y (first node to receive M; ties toward the smaller id); the tree edge
  // enters at Y with label w = first n-1 digits of Y, from the necklace of
  // Y's broadcast parent. ---
  for (Word rep : comp_reps) {
    if (rep == root_rep) continue;
    Word leader = kNoParent;
    std::uint32_t best_dist = kUnreached;
    for (Word v : necklace_nodes(ws, rep)) {
      if (tree.dist[v] < best_dist ||
          (tree.dist[v] == best_dist && v < leader)) {
        best_dist = tree.dist[v];
        leader = v;
      }
    }
    ensure(leader != kNoParent, "every component necklace has a leader");
    const Word parent = tree.parent[leader];
    ensure(parent != kNoParent, "non-root leader must have a broadcast parent");
    const Word parent_rep = min_rot(parent);
    ensure(parent_rep != rep, "leader's parent lies in a different necklace");
    result.tree_edges.push_back({parent_rep, rep, ws.prefix(leader)});
  }
  std::sort(result.tree_edges.begin(), result.tree_edges.end());

  // --- Step 2: modify each label class T_w (a height-one star) into a
  // cycle ordered by necklace representative with wrap-around. ---
  std::unordered_map<Word, std::vector<Word>> members_by_label;
  std::unordered_map<Word, Word> parent_by_label;
  for (const LabeledEdge& e : result.tree_edges) {
    auto [it, inserted] = parent_by_label.try_emplace(e.label, e.from);
    ensure(it->second == e.from,
           "T_w must have a common parent (height-one property, Step 1.2)");
    members_by_label[e.label].push_back(e.to);
  }
  for (auto& [label, members] : members_by_label) {
    members.push_back(parent_by_label.at(label));
    std::sort(members.begin(), members.end());
    for (std::size_t i = 0; i < members.size(); ++i) {
      result.modified_edges.push_back(
          {members[i], members[(i + 1) % members.size()], label});
    }
  }
  std::sort(result.modified_edges.begin(), result.modified_edges.end());

  // --- Step 3: successor rule. A D-edge ([x] --w--> [y]) reroutes the exit
  // node of [x] with suffix w to the entry node of [y] with prefix w; all
  // other nodes follow their necklace successor. ---
  std::unordered_map<Word, Word> reroute;  // exit node -> entry node
  for (const LabeledEdge& e : result.modified_edges) {
    Word exit_node = kNoParent, entry_node = kNoParent;
    for (Word v : necklace_nodes(ws, e.from)) {
      if (ws.suffix(v) == e.label) {
        ensure(exit_node == kNoParent, "exit node is unique per label");
        exit_node = v;
      }
    }
    for (Word v : necklace_nodes(ws, e.to)) {
      if (ws.prefix(v) == e.label) {
        ensure(entry_node == kNoParent, "entry node is unique per label");
        entry_node = v;
      }
    }
    ensure(exit_node != kNoParent && entry_node != kNoParent,
           "both endpoints of a D-edge expose the label");
    const bool inserted = reroute.emplace(exit_node, entry_node).second;
    ensure(inserted, "each node is rerouted by at most one D-edge");
  }

  // --- Walk H from the root. ---
  result.cycle.nodes.reserve(comp_size);
  std::vector<bool> visited(ws.size(), false);
  Word cur = root;
  for (std::uint64_t step = 0; step < comp_size; ++step) {
    ensure(comp[cur] && !visited[cur], "H must stay in B* and not revisit");
    visited[cur] = true;
    result.cycle.nodes.push_back(cur);
    const auto it = reroute.find(cur);
    cur = it != reroute.end() ? it->second : ws.rotate_left(cur, 1);
  }
  ensure(cur == root, "H must close after |B*| steps (Proposition 2.1)");
  return result;
}

FfcResult solve_ffc(const InstanceContext& ctx, std::span<const Word> faulty_nodes,
                    const FfcOptions& options) {
  return FfcSolver(ctx).solve(faulty_nodes, options);
}

std::pair<std::uint64_t, std::uint64_t> ffc_cycle_length_bounds(
    Digit d, unsigned n, std::uint64_t fault_count) {
  // WordSpace validates d >= 2, n >= 1 and d^(n+1) representable, so d^n
  // below is exact (no silent wraparound for out-of-range instances).
  const std::uint64_t size = WordSpace(d, n).size();
  const std::uint64_t f = fault_count;
  const std::uint64_t upper = f >= size ? 0 : size - f;
  std::uint64_t lower = 0;
  if (f <= d - 2) {
    const std::uint64_t removed = static_cast<std::uint64_t>(n) * f;
    lower = removed >= size ? 0 : size - removed;  // Proposition 2.2
  } else if (d == 2 && f == 1) {
    const std::uint64_t removed = static_cast<std::uint64_t>(n) + 1;
    lower = removed >= size ? 0 : size - removed;  // Proposition 2.3
  }
  return {lower, upper};
}

}  // namespace dbr::core
