#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/instance_context.hpp"
#include "core/solve_scratch.hpp"
#include "debruijn/cycle.hpp"
#include "debruijn/debruijn.hpp"
#include "debruijn/necklaces.hpp"

namespace dbr::core {

/// The necklace adjacency graph N* of Section 2.2: nodes are the necklaces
/// of B*, with an edge labeled w (a (n-1)-digit value) from [x] to [y]
/// whenever a.w is in [x] and b.w is in [y] for digits a != b. Edges come in
/// antiparallel pairs sharing a label.
struct NecklaceAdjacency {
  struct Edge {
    Word from;   // necklace representative
    Word to;     // necklace representative
    Word label;  // (n-1)-digit value w

    auto operator<=>(const Edge&) const = default;
  };

  std::vector<Word> reps;   // sorted representatives of the necklaces of B*
  std::vector<Edge> edges;  // all directed labeled edges, sorted
};

/// A labeled necklace-tree edge (used for both the spanning tree T and the
/// modified tree D of the FFC algorithm).
struct LabeledEdge {
  Word from;
  Word to;
  Word label;

  auto operator<=>(const LabeledEdge&) const = default;
};

/// Everything the FFC algorithm produces, including the intermediate
/// structures needed to reproduce Figures 2.1-2.4 and to audit the proof
/// obligations of Section 2.3.
struct FfcResult {
  NodeCycle cycle;  ///< H, starting at the root; Hamiltonian on B*.
  Word root = 0;    ///< The distinguished node R (a necklace representative).
  std::uint64_t bstar_size = 0;          ///< |B*| == cycle length.
  std::uint32_t root_eccentricity = 0;   ///< max directed distance from R in B*.
  std::vector<Word> faulty_necklace_reps;  ///< reps of removed necklaces
  std::uint64_t faulty_node_count = 0;     ///< N_F: nodes in faulty necklaces
  std::uint64_t necklace_count = 0;        ///< necklaces forming B*
  std::vector<LabeledEdge> tree_edges;      ///< T (Step 1)
  std::vector<LabeledEdge> modified_edges;  ///< D (Step 2)
};

/// Optional knobs of the FFC solve.
struct FfcOptions {
  /// Root override. Must be a nonfaulty node; its minimal rotation is used
  /// as R and the cycle is constructed in R's component. When absent the
  /// solver works in the largest component of B(d,n) minus the faulty
  /// necklaces (ties toward the component containing the smallest node) and
  /// roots at that component's smallest node.
  std::optional<Word> root;
};

/// The paper's guarantee envelope on |H| for `fault_count` distinct faulty
/// nodes in B(d,n): Proposition 2.2 gives |H| >= d^n - n*f when f <= d - 2,
/// Proposition 2.3 gives |H| >= 2^n - (n+1) for a single fault in B(2,n);
/// outside both regimes the lower bound degrades to 0 (the surviving
/// component can be arbitrarily small). The upper bound is d^n - f: each
/// faulty node removes at least itself. Returns {lower, upper}.
std::pair<std::uint64_t, std::uint64_t> ffc_cycle_length_bounds(
    Digit d, unsigned n, std::uint64_t fault_count);

/// Node-fault-tolerant ring embedding: the FFC algorithm of Chapter 2.
///
/// Given a set of faulty nodes (locations need not be distinct), removes
/// every necklace containing a fault and stitches the remaining necklaces of
/// the surviving component B* into a single cycle H via a spanning tree of
/// the necklace adjacency graph. H has unit dilation and congestion: it is a
/// subgraph of the faulty graph.
///
/// Guarantees reproduced from the paper, enforced by tests:
///  * H is a Hamiltonian cycle of B* (Proposition 2.1).
///  * |H| >= d^n - nf and eccentricity <= 2n when f <= d-2 (Proposition 2.2).
///  * |H| >= 2^n - (n+1) for a single fault in B(2,n) (Proposition 2.3).
class FfcSolver {
 public:
  explicit FfcSolver(DeBruijnDigraph graph);

  /// Context-backed solver: borrows the precomputed necklace table of `ctx`
  /// so solve() performs only fault-dependent work (the caller must keep the
  /// context alive for the solver's lifetime).
  explicit FfcSolver(const InstanceContext& ctx);

  const DeBruijnDigraph& graph() const { return graph_; }

  /// Runs the full FFC algorithm (reference implementation). Allocates all
  /// working state per call; kept verbatim as the differential-testing
  /// baseline and the raw-speed yardstick for the arena path below (the
  /// fuzz suite holds the two bit-identical).
  FfcResult solve(std::span<const Word> faulty_nodes, const FfcOptions& options = {}) const;

  /// Allocation-free FFC solve into a reusable arena; requires a
  /// context-backed solver (the arena path leans on the precomputed
  /// label-merge tables). Bit-identical to solve(): every tie-break of the
  /// reference (broadcast min-predecessor parents, largest-component
  /// max-size/min-node selection, Step-2 ascending member order) is
  /// order-independent, so reorganizing the computation around the arena
  /// preserves the exact result bytes.
  FfcResult solve(std::span<const Word> faulty_nodes, SolveScratch& scratch,
                  const FfcOptions& options = {}) const;

  /// Active-node mask after removing faulty necklaces (true = in play).
  std::vector<bool> active_mask(std::span<const Word> faulty_nodes) const;

  /// The necklace adjacency graph N* over a given active component mask.
  NecklaceAdjacency necklace_adjacency(const std::vector<bool>& active) const;

  /// The strongly connected component of `root` within the active subgraph
  /// (forward-reach intersected with backward-reach). Returned as a mask.
  std::vector<bool> component_of(const std::vector<bool>& active, Word root) const;

  /// Size and representative (smallest node) of the largest strongly
  /// connected component of the active subgraph.
  std::pair<Word, std::uint64_t> largest_component_root(
      const std::vector<bool>& active) const;

 private:
  /// Minimal rotation of x: table lookup when context-backed, else computed.
  Word min_rot(Word x) const {
    return necklaces_ != nullptr ? necklaces_->min_rot[x]
                                 : graph_.words().min_rotation(x);
  }

  /// Arena solve internals (definitions in ffc.cpp).
  std::pair<Word, std::uint64_t> largest_component_arena(SolveScratch& s) const;

  DeBruijnDigraph graph_;
  const NecklaceTable* necklaces_ = nullptr;  // borrowed; may be null
  const InstanceContext* ctx_ = nullptr;      // borrowed; may be null
};

/// The solve phase of the context/solve split: runs the FFC algorithm on a
/// shared InstanceContext, paying only fault-dependent work. Uses the
/// calling thread's scratch arena (solve_scratch_tls), so steady-state
/// solves allocate only their result.
FfcResult solve_ffc(const InstanceContext& ctx, std::span<const Word> faulty_nodes,
                    const FfcOptions& options = {});

/// solve_ffc against an explicit scratch arena (sessions own one; the
/// scratch-less overload routes to the thread-local arena).
FfcResult solve_ffc(const InstanceContext& ctx, std::span<const Word> faulty_nodes,
                    SolveScratch& scratch, const FfcOptions& options = {});

}  // namespace dbr::core
