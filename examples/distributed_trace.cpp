// Runs the distributed FFC protocol of Section 2.4 on the paper's Example
// 2.1 network (B(3,3) with processors 020 and 112 dead) and reports the
// per-phase communication rounds - the network-level view of the same
// computation the centralized solver performs.
//
//   $ ./distributed_trace

#include <iostream>

#include "core/distributed_ffc.hpp"
#include "core/ffc.hpp"
#include "debruijn/cycle.hpp"

int main() {
  using namespace dbr;
  const DeBruijnDigraph graph(3, 3);
  const WordSpace& ws = graph.words();
  const core::DistributedFfcSolver solver(graph);

  const std::vector<Word> faults{ws.from_digits(std::vector<Digit>{0, 2, 0}),
                                 ws.from_digits(std::vector<Digit>{1, 1, 2})};
  std::cout << "network: B(3,3), 27 processors; dead: 020, 112\n"
            << "(the protocol is not told which processors died)\n\n";

  const auto result = solver.run(faults, /*root=*/0);

  std::cout << "phase rounds:\n"
            << "  necklace probe : " << result.stats.probe_rounds << " (= n)\n"
            << "  broadcast      : " << result.stats.broadcast_rounds
            << " (= ecc(R) + 1 = " << result.root_eccentricity << " + 1)\n"
            << "  dossier gather : " << result.stats.dossier_rounds << " (< n)\n"
            << "  T_w announce   : " << result.stats.announce_rounds << "\n"
            << "  reroute        : " << result.stats.reroute_rounds << " (< n)\n"
            << "  total          : " << result.stats.total_rounds() << " = O(K + n)\n"
            << "  messages       : " << result.stats.messages << "\n\n";

  std::cout << "ring found by the network (" << result.cycle.length()
            << " processors):\n  " << to_string(ws, result.cycle) << "\n\n";

  // Cross-check against the centralized solver.
  const core::FfcSolver central(graph);
  core::FfcOptions opts;
  opts.root = 0;
  const bool identical = central.solve(faults, opts).cycle == result.cycle;
  std::cout << "matches the centralized FFC solver: " << (identical ? "YES" : "NO")
            << "\n";
  return identical ? 0 : 1;
}
