// Edge failures: build the psi(d) edge-disjoint Hamiltonian rings of a
// De Bruijn network, kill links, and re-embed a full-length ring
// (Chapter 3 / Propositions 3.2-3.4).
//
//   $ ./edge_fault_rings [d n]      (defaults: d=4 n=3)

#include <cstdlib>
#include <iostream>

#include "core/disjoint_hc.hpp"
#include "core/edge_fault.hpp"
#include "debruijn/cycle.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dbr;
  const std::uint64_t d = argc > 1 ? static_cast<std::uint64_t>(std::atoi(argv[1])) : 4;
  const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;
  const WordSpace ws(static_cast<Digit>(d), n);

  std::cout << "B(" << d << "," << n << "): psi(" << d << ") = " << core::psi(d)
            << " edge-disjoint Hamiltonian rings guaranteed; tolerates "
            << core::max_tolerable_edge_faults(d) << " link failures\n\n";

  const auto family = core::disjoint_hamiltonian_cycles(d, n);
  std::cout << "disjoint ring family (" << family.size() << " rings):\n";
  for (std::size_t i = 0; i < family.size(); ++i) {
    std::cout << "  ring " << i << ": [";
    for (std::size_t j = 0; j < std::min<std::size_t>(12, family[i].length()); ++j) {
      std::cout << (j ? "," : "") << family[i].symbols[j];
    }
    std::cout << (family[i].length() > 12 ? ",...]" : "]") << " length "
              << family[i].length() << "\n";
  }

  // Kill max-budget random links and recover.
  Rng rng(7);
  std::vector<Word> faults;
  const unsigned budget = static_cast<unsigned>(core::max_tolerable_edge_faults(d));
  while (faults.size() < budget) {
    const Word e = rng.below(ws.edge_word_count());
    const auto [u, v] = ws.edge_endpoints(e);
    if (u != v) faults.push_back(e);
  }
  std::cout << "\nkilling " << faults.size() << " links:";
  for (Word e : faults) {
    const auto [u, v] = ws.edge_endpoints(e);
    std::cout << " " << ws.to_string(u) << "->" << ws.to_string(v);
  }
  std::cout << "\n";

  const auto ring = core::fault_free_hamiltonian_cycle(d, n, faults);
  if (!ring.has_value()) {
    std::cout << "no fault-free Hamiltonian ring found (beyond guarantee?)\n";
    return 1;
  }
  std::cout << "recovered a full " << ring->length() << "-node ring avoiding all "
            << faults.size() << " dead links: "
            << (is_hamiltonian(ws, *ring) && avoids_edges(ws, *ring, faults)
                    ? "verified"
                    : "verification FAILED")
            << "\n";
  return 0;
}
