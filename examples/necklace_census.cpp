// Necklace census tool (Chapter 4): exact counts of the necklaces of B(d,n)
// by length and by weight, via the Moebius-inversion formulas of
// Propositions 4.1 and 4.2.
//
//   $ ./necklace_census [d n]      (defaults: d=2 n=12)

#include <cstdlib>
#include <iostream>

#include "necklace/count.hpp"
#include "nt/numtheory.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dbr;
  const std::uint64_t d = argc > 1 ? static_cast<std::uint64_t>(std::atoi(argv[1])) : 2;
  const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 12;

  std::cout << "Necklace census of B(" << d << "," << n << ")\n";
  std::cout << "total necklaces: " << necklace::necklaces_total(d, n) << "\n\n";

  {
    TextTable t({"length t", "necklaces", "nodes covered"});
    for (std::uint64_t len : nt::divisors(n)) {
      const std::uint64_t count = necklace::necklaces_by_length(d, n, len);
      t.new_row().add(len).add(count).add(count * len);
    }
    std::cout << "by length (lengths divide n):\n";
    t.print(std::cout);
  }

  std::cout << "\nby weight:\n";
  {
    TextTable t({"weight k", "necklaces"});
    for (std::uint64_t k = 0; k <= n * (d - 1); ++k) {
      const std::uint64_t count = necklace::weight_necklaces_total(d, n, k);
      if (count > 0) t.new_row().add(k).add(count);
    }
    t.print(std::cout);
  }

  std::cout << "\nA faulty processor removes its whole necklace from the FFC\n"
               "ring (Chapter 2), so these counts bound the damage a single\n"
               "fault can do: at most n nodes (an aperiodic necklace).\n";
  return 0;
}
