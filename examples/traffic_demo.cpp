// What a fault costs the application, in packets.
//
// Token streams circle a ring embedded in B(3,4) (81 processors) while a
// processor on the ring fails mid-flight. The control plane re-embeds the
// ring and re-routes the streams, but the data plane keeps forwarding
// along the stale tables until the new ones install — Section 2.4 rounds
// of exposure during which packets bleed into the dead router or arrive
// at nodes the new ring excised.
//
// The same experiment runs twice: once with incremental repair (a local
// necklace splice, priced n + 2 rounds) and once forcing a cold
// distributed re-solve (~4n + 2 rounds). Same flows, same fault, same
// round; the only difference is how long the stale window stays open —
// and the packet-loss ledger shows exactly what that buys.
//
//   $ ./traffic_demo

#include <iostream>

#include "sim/traffic.hpp"
#include "verify/scenario.hpp"

using namespace dbr;
using sim::DropReason;
using sim::TrafficStats;

namespace {

/// Runs the fixed experiment — four token streams, one on-ring kill at
/// round 12 — under the given engine options; returns the final ledger.
TrafficStats run_mode(const service::EngineOptions& options) {
  service::EmbedRequest shape;
  shape.base = 3;
  shape.n = 4;
  shape.fault_kind = service::FaultKind::kNode;
  shape.strategy = service::Strategy::kFfc;
  sim::TrafficHarness h(shape, options);

  const service::EmbedResponse first = h.driver.current_ring();
  const std::vector<Word>& ring = first.result->ring.nodes;
  const std::size_t k = ring.size();

  sim::TrafficSim traffic(h.driver);
  // Four tokens, evenly spaced, each streaming 48 packets the long way
  // around to its ring predecessor: every packet crosses (almost) the
  // whole ring, so a mid-ring failure is always mid-flight for someone.
  for (std::uint32_t t = 0; t < 4; ++t) {
    const std::size_t at = t * k / 4;
    traffic.add_flow({ring[at], ring[(at + k - 1) % k], 48, 0, t});
  }

  std::vector<verify::TimedChurnEvent> churn;
  churn.push_back(
      {12, {true, ring[k / 2], service::FaultKind::kNode}});  // on-ring kill
  return traffic.run(churn, 400);
}

void report(const char* mode, const TrafficStats& s) {
  const auto reason = [&s](DropReason r) {
    return s.dropped[static_cast<std::size_t>(r)];
  };
  std::cout << "\n--- " << mode << " ---\n"
            << "  injected " << s.injected << ", delivered " << s.delivered
            << ", still queued " << s.in_flight << "\n"
            << "  drops: dead_node=" << reason(DropReason::kDeadNode)
            << " cut_link=" << reason(DropReason::kCutLink)
            << " queue_overflow=" << reason(DropReason::kQueueOverflow)
            << " no_route=" << reason(DropReason::kNoRoute) << "\n";
  for (const sim::FaultImpact& f : s.faults) {
    std::cout << "  fault @round " << f.round << ": "
              << (f.repaired ? "spliced locally" : "cold re-solve")
              << ", table restored after " << f.recovery_rounds
              << " rounds, " << f.drops_total()
              << " packets lost in the window\n";
  }
  std::cout << "  conservation: "
            << (s.conserved() ? "every packet accounted for" : "VIOLATED")
            << ", oracle violations: " << s.oracle_violations << "\n";
}

}  // namespace

int main() {
  std::cout << "B(3,4): token streams over the embedded ring; the processor "
               "under\nthe tokens fails at round 12.\n";

  service::EngineOptions repair;
  repair.incremental_repair = true;
  const TrafficStats spliced = run_mode(repair);
  report("incremental repair", spliced);

  service::EngineOptions cold;
  cold.incremental_repair = false;
  const TrafficStats resolved = run_mode(cold);
  report("cold re-solve", resolved);

  const std::uint64_t repair_lost =
      spliced.faults.empty() ? 0 : spliced.faults[0].drops_total();
  const std::uint64_t cold_lost =
      resolved.faults.empty() ? 0 : resolved.faults[0].drops_total();
  std::cout << "\nThe shorter splice window cost the application "
            << repair_lost << " packets; waiting out a distributed re-solve "
            << "cost " << cold_lost << ".\n";
  return 0;
}
