// Quickstart for the src/service embedding query engine: one engine, mixed
// node-fault / edge-fault / butterfly scenarios, repeated queries served
// from the sharded result cache. Run from the build directory:
//
//   ./service_demo

#include <iostream>
#include <vector>

#include "service/engine.hpp"
#include "util/table.hpp"

using namespace dbr;
using namespace dbr::service;

namespace {

std::string fault_list(const WordSpace& ws, const EmbedRequest& req) {
  // Edge words are (n+1)-tuples; borrow a wider space to render them.
  const WordSpace edge_ws(ws.radix(), ws.length() + 1);
  std::string out;
  for (Word f : req.faults) {
    if (!out.empty()) out += " ";
    out += req.fault_kind == FaultKind::kNode ? ws.to_string(f)
                                              : edge_ws.to_string(f);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  EmbedEngine engine;

  // The paper's running examples as service queries:
  //  * Example 2.1's node faults {020, 112} in B(3,3) (FFC),
  //  * an edge fault in B(4,4) (psi-family scan / phi-construction),
  //  * an edge fault lifted to the butterfly F(3,4) (gcd(3,4) = 1).
  std::vector<EmbedRequest> requests;

  {
    EmbedRequest req;
    req.base = 3;
    req.n = 3;
    req.fault_kind = FaultKind::kNode;
    const WordSpace ws(3, 3);
    req.faults = {ws.from_digits(std::vector<Digit>{0, 2, 0}),
                  ws.from_digits(std::vector<Digit>{1, 1, 2})};
    requests.push_back(req);
  }
  {
    EmbedRequest req;
    req.base = 4;
    req.n = 4;
    req.fault_kind = FaultKind::kEdge;
    const WordSpace edge_ws(4, 5);
    req.faults = {edge_ws.from_digits(std::vector<Digit>{0, 1, 2, 3, 0})};
    requests.push_back(req);
  }
  {
    EmbedRequest req;
    req.base = 3;
    req.n = 4;
    req.fault_kind = FaultKind::kEdge;
    req.strategy = Strategy::kButterfly;
    const WordSpace edge_ws(3, 5);
    req.faults = {edge_ws.from_digits(std::vector<Digit>{2, 1, 0, 1, 2})};
    requests.push_back(req);
  }

  // Each scenario twice: the second round is served from the cache.
  std::vector<EmbedRequest> stream = requests;
  stream.insert(stream.end(), requests.begin(), requests.end());

  TextTable table({"graph", "kind", "faults", "strategy", "status", "|ring|",
                   "lower", "upper", "cache", "latency_us"});
  for (const EmbedRequest& req : stream) {
    const EmbedResponse resp = engine.query(req);
    const WordSpace ws(req.base, req.n);
    table.new_row()
        .add("B(" + std::to_string(req.base) + "," + std::to_string(req.n) + ")")
        .add(std::string(to_string(req.fault_kind)))
        .add(fault_list(ws, req))
        .add(std::string(to_string(resp.result->strategy_used)))
        .add(std::string(to_string(resp.result->status)))
        .add(resp.result->ring_length)
        .add(resp.result->lower_bound)
        .add(resp.result->upper_bound)
        .add(std::string(resp.cache_hit ? "hit" : "miss"))
        .add(resp.latency_micros, 1);
  }
  std::cout << table.to_string();

  const CacheStats stats = engine.cache_stats();
  std::cout << "\ncache: " << stats.entries << " entries, " << stats.hits
            << " hits / " << stats.misses << " misses (hit rate "
            << stats.hit_rate() << ")\n";

  // The first ring in full, as a reproduction touchstone (Example 2.1: the
  // 21-node cycle of B* after removing necklaces [002] and [112]).
  const EmbedResponse first = engine.query(requests[0]);
  const WordSpace ws(requests[0].base, requests[0].n);
  std::cout << "\nExample 2.1 ring (" << first.result->ring_length
            << " nodes): " << to_string(ws, first.result->ring) << "\n";
  return 0;
}
