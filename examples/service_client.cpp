// The service_demo walkthrough, over the wire: connect to an embed server,
// run a stateless solve, then drive a fault-churn session — inject faults,
// solve, heal one fault (served by an incremental repair splice), reset —
// and finish with the STATS snapshot. Run from the build directory:
//
//   ./service_client                         # spawns its own in-process server
//   ./service_client --connect 127.0.0.1:4800   # drives a running embed_server
//
// The self-hosted mode enables incremental repair so the clear_fault step
// demonstrates a repaired=true splice, mirroring examples/service_demo.cpp
// where the same flow runs in-process.

#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "net/client.hpp"
#include "net/server.hpp"
#include "service/engine.hpp"
#include "util/table.hpp"
#include "util/word.hpp"

using namespace dbr;
using namespace dbr::net;
using namespace dbr::service;

namespace {

void add_row(TextTable& table, const std::string& step,
             const Client::SolveReply& reply) {
  table.new_row()
      .add(step)
      .add(std::string(to_string(reply.status)))
      .add(reply.status == WireStatus::kOk
               ? std::string(to_string(reply.embed.status))
               : std::string("-"))
      .add(reply.embed.ring_length)
      .add(reply.embed.lower_bound)
      .add(reply.embed.upper_bound)
      .add(std::string(reply.embed.cache_hit
                           ? "hit"
                           : (reply.embed.repaired ? "repaired" : "solve")))
      .add(reply.embed.latency_micros, 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_to;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_to = argv[++i];
    } else {
      std::cerr << "usage: service_client [--connect HOST:PORT]\n";
      return 64;
    }
  }

  // Self-host unless pointed at a running server.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::unique_ptr<EmbedEngine> engine;
  std::unique_ptr<Server> server;
  if (connect_to.empty()) {
    EngineOptions eopts;
    eopts.incremental_repair = true;  // make the healing step a splice
    engine = std::make_unique<EmbedEngine>(eopts);
    server = std::make_unique<Server>(*engine);
    server->start();
    port = server->port();
    std::cout << "self-hosted embed server on port " << port << "\n\n";
  } else {
    const std::size_t colon = connect_to.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--connect expects HOST:PORT\n";
      return 64;
    }
    host = connect_to.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(connect_to.c_str() + colon + 1, nullptr, 10));
  }

  try {
    Client client;
    client.connect(host, port);

    TextTable table({"step", "wire", "embed", "|ring|", "lower", "upper",
                     "served_by", "latency_us"});

    // 1. A stateless solve: Example 2.1's node faults {020, 112} in B(3,3).
    const WordSpace ws(3, 3);
    EmbedRequest req;
    req.base = 3;
    req.n = 3;
    req.fault_kind = FaultKind::kNode;
    req.faults = {ws.from_digits(std::vector<Digit>{0, 2, 0}),
                  ws.from_digits(std::vector<Digit>{1, 1, 2})};
    add_row(table, "solve B(3,3) f={020,112}", client.solve(req));

    // 2. A fault-churn session on B(2,11): faults arrive one at a time...
    const Client::Reply configured =
        client.configure_session(2, 11, FaultKind::kNode);
    if (configured.status != WireStatus::kOk) {
      std::cerr << "session config failed: " << configured.message << "\n";
      return 1;
    }
    for (const Word fault : {Word{3}, Word{200}, Word{777}}) {
      client.add_fault(FaultKind::kNode, fault);
      add_row(table, "session +fault " + std::to_string(fault),
              client.session_solve());
    }

    // 3. ...then one heals: with incremental repair on, this delta is
    // served by splicing the previous ring (served_by says "repaired").
    client.clear_fault(FaultKind::kNode, 200);
    add_row(table, "session -fault 200", client.session_solve());

    // 4. Back to a fault-free instance.
    client.reset_faults();
    add_row(table, "session reset", client.session_solve());

    std::cout << table.to_string();

    // 5. The STATS wire op: one coherent engine/server/session snapshot.
    const Client::StatsReply stats = client.stats();
    if (stats.status != WireStatus::kOk) {
      std::cerr << "stats failed: " << stats.message << "\n";
      return 1;
    }
    const auto& engine_stats = stats.stats.engine;
    const auto& server_stats = stats.stats.server;
    std::cout << "\nengine: " << engine_stats.serve.queries << " queries, "
              << engine_stats.serve.result_hits << " result hits, "
              << engine_stats.contexts.hits << " context hits\n"
              << "server: " << server_stats.solves << " solves over "
              << server_stats.frames_in << " frames in / "
              << server_stats.frames_out << " frames out, "
              << server_stats.connections << " open connections\n";
    if (stats.stats.has_session) {
      std::cout << "session: " << stats.stats.session.adds << " adds, "
                << stats.stats.session.removes << " removes, "
                << stats.stats.session.solves << " solves, "
                << stats.stats.repair.spliced << " repair splices ("
                << stats.stats.repair.fell_back << " fell back)\n";
    }
  } catch (const TransportError& e) {
    std::cerr << "transport error: " << e.what() << "\n";
    return 1;
  }

  if (server) {
    server->drain();
    server->wait();
  }
  return 0;
}
