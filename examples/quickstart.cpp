// Quickstart: embed a fault-free ring in a 1024-processor De Bruijn network
// with three dead processors.
//
//   $ ./quickstart [d n f]        (defaults: d=2 n=10 f=3)

#include <cstdlib>
#include <iostream>

#include "core/ffc.hpp"
#include "debruijn/cycle.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dbr;
  const Digit d = argc > 1 ? static_cast<Digit>(std::atoi(argv[1])) : 2;
  const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 10;
  const unsigned f = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 3;

  const core::FfcSolver solver{DeBruijnDigraph(d, n)};
  const WordSpace& ws = solver.graph().words();
  std::cout << "B(" << unsigned(d) << "," << n << "): " << ws.size()
            << " processors, " << solver.graph().num_edges() << " links\n";

  // Fail f random processors (the algorithm is not told which ones - it
  // removes their whole necklaces, per the Chapter 2 fault model).
  Rng rng(2024);
  const auto faults = rng.sample_distinct(ws.size(), f);
  std::cout << "faulty processors:";
  for (Word v : faults) std::cout << " " << ws.to_string(v);
  std::cout << "\n";

  const core::FfcResult result = solver.solve(faults);
  std::cout << "fault-free ring length: " << result.cycle.length() << " (>= "
            << ws.size() - n * f << " guaranteed when f <= d-2)\n"
            << "nodes lost to faulty necklaces: " << result.faulty_node_count << "\n"
            << "root R = " << ws.to_string(result.root)
            << ", eccentricity (broadcast rounds): " << result.root_eccentricity
            << "\n";

  // The ring is a subgraph of the surviving network: unit dilation and
  // congestion. Print the first few hops.
  std::cout << "ring prefix: ";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, result.cycle.length()); ++i) {
    std::cout << ws.to_string(result.cycle.nodes[i]) << " -> ";
  }
  std::cout << "...\n";
  return 0;
}
