// Fault-tolerant rings in a butterfly network via the De Bruijn lift of
// Section 3.4: build the disjoint Hamiltonian family of F(d,n), kill links,
// recover a full ring (needs gcd(d,n) = 1).
//
//   $ ./butterfly_rings [d n]      (defaults: d=3 n=4)

#include <cstdlib>
#include <iostream>
#include <set>

#include "butterfly/lift.hpp"
#include "core/butterfly_embedding.hpp"
#include "core/disjoint_hc.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dbr;
  const Digit d = argc > 1 ? static_cast<Digit>(std::atoi(argv[1])) : 3;
  const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  const ButterflyDigraph bf(d, n);

  std::cout << "F(" << unsigned(d) << "," << n << "): " << bf.num_nodes()
            << " nodes (" << n << " levels x " << bf.columns().size()
            << " columns)\n";

  const auto family = core::butterfly_disjoint_hcs(bf);
  std::cout << "lifted " << family.size() << " edge-disjoint Hamiltonian rings "
            << "(psi(" << unsigned(d) << ") = " << core::psi(d) << ")\n";
  for (std::size_t i = 0; i < family.size(); ++i) {
    std::cout << "  ring " << i << ": " << family[i].size() << " nodes, starts (";
    std::cout << bf.level_of(family[i][0]) << ","
              << bf.columns().to_string(bf.column_of(family[i][0])) << ")\n";
  }

  // Kill budget-many random butterfly links; recover a full ring.
  const unsigned budget = static_cast<unsigned>(core::max_tolerable_edge_faults(d));
  Rng rng(11);
  const auto edges = bf.materialize().edge_list();
  std::vector<std::pair<NodeId, NodeId>> faults;
  for (auto idx : rng.sample_distinct(edges.size(), budget)) {
    faults.push_back(edges[idx]);
  }
  std::cout << "\nkilling " << faults.size() << " butterfly links\n";
  const auto ring = core::butterfly_fault_free_hc(bf, faults);
  if (!ring.has_value()) {
    std::cout << "no fault-free ring found\n";
    return 1;
  }
  std::set<std::pair<NodeId, NodeId>> used;
  for (std::size_t i = 0; i < ring->size(); ++i) {
    used.insert({(*ring)[i], (*ring)[(i + 1) % ring->size()]});
  }
  bool avoided = true;
  for (const auto& e : faults) avoided = avoided && !used.contains(e);
  std::cout << "recovered ring: " << ring->size() << " nodes, valid = "
            << (butterfly::is_butterfly_cycle(bf, *ring) ? "yes" : "NO")
            << ", avoids all dead links = " << (avoided ? "yes" : "NO") << "\n";
  return 0;
}
