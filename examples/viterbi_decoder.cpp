// The paper's VLSI motivation (Section 1.2): "maximum-likelihood decoding of
// convolutional codes requires the decoder to find the best match between a
// received stream of symbols and a path in a De Bruijn graph" - the reason
// JPL built an 8192-processor De Bruijn machine for the Galileo mission.
//
// This example runs exactly that workload on the library's B(2,n): a rate
// 1/2 convolutional encoder whose state diagram is B(2,n), a binary
// symmetric channel, and a Viterbi decoder whose add-compare-select step
// walks the De Bruijn predecessor structure. Decoding succeeds when the
// corrupted stream is pulled back to the transmitted bits.
//
//   $ ./viterbi_decoder [n bits flips]   (defaults: 6 160 6)

#include <cstdlib>
#include <iostream>
#include <limits>

#include "debruijn/debruijn.hpp"
#include "util/rng.hpp"

namespace {

using namespace dbr;

// Rate-1/2 encoder: state = last n input bits (a node of B(2,n)); on input
// bit b the state slides to shift_append(state, b) - a De Bruijn edge - and
// emits two parity bits from fixed taps over the (n+1)-bit edge window.
struct Code {
  const WordSpace& ws;
  Word g0, g1;  // generator taps over the (n+1)-bit edge word

  std::pair<unsigned, unsigned> emit(Word state, Digit bit) const {
    const Word window = ws.edge_word(state, bit);
    return {static_cast<unsigned>(__builtin_popcountll(window & g0) & 1),
            static_cast<unsigned>(__builtin_popcountll(window & g1) & 1)};
  }
};

}  // namespace

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const unsigned num_bits = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 160;
  const unsigned flips = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 6;

  const DeBruijnDigraph graph(2, n);
  const WordSpace& ws = graph.words();
  // Standard-style generators: all-ones and alternating taps (n+1 bits).
  const Code code{ws, ws.edge_word(ws.size() - 1, 1),
                  ws.edge_word(ws.alternating(1, 0), (n % 2 == 0) ? 1u : 0u)};

  std::cout << "convolutional code over B(2," << n << "): " << ws.size()
            << " trellis states (the JPL machine used B(2,13))\n";

  // Encode a random message (tail-padded with n zeros to flush the state).
  Rng rng(1234);
  std::vector<Digit> message(num_bits);
  for (auto& b : message) b = static_cast<Digit>(rng.below(2));
  std::vector<Digit> padded = message;
  padded.insert(padded.end(), n, 0);
  std::vector<unsigned> stream;
  Word state = 0;
  for (Digit b : padded) {
    const auto [c0, c1] = code.emit(state, b);
    stream.push_back(c0);
    stream.push_back(c1);
    state = ws.shift_append(state, b);
  }

  // Binary symmetric channel: flip a few coded bits.
  auto corrupted = stream;
  for (auto idx : rng.sample_distinct(stream.size(), flips)) corrupted[idx] ^= 1u;
  std::cout << "sent " << stream.size() << " coded bits, channel flipped " << flips
            << "\n";

  // Viterbi: path metric per De Bruijn node; transitions follow the edges.
  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 2;
  std::vector<unsigned> metric(ws.size(), kInf);
  metric[0] = 0;
  std::vector<std::vector<Digit>> decision(padded.size(),
                                           std::vector<Digit>(ws.size(), 0));
  for (std::size_t t = 0; t < padded.size(); ++t) {
    std::vector<unsigned> next_metric(ws.size(), kInf);
    const unsigned r0 = corrupted[2 * t], r1 = corrupted[2 * t + 1];
    for (Word s = 0; s < ws.size(); ++s) {
      if (metric[s] >= kInf) continue;
      for (Digit b = 0; b < 2; ++b) {
        const auto [c0, c1] = code.emit(s, b);
        const unsigned branch = (c0 != r0) + (c1 != r1);
        const Word to = ws.shift_append(s, b);
        if (metric[s] + branch < next_metric[to]) {
          next_metric[to] = metric[s] + branch;
          decision[t][to] = ws.head(s);  // dropped bit identifies the predecessor
        }
      }
    }
    metric.swap(next_metric);
  }

  // Traceback from the flushed all-zero state.
  std::vector<Digit> decoded(padded.size());
  Word cur = 0;
  for (std::size_t t = padded.size(); t-- > 0;) {
    decoded[t] = ws.tail(cur);                       // input bit at step t
    cur = ws.shift_prepend(cur, decision[t][cur]);   // predecessor state
  }
  decoded.resize(num_bits);

  unsigned errors = 0;
  for (unsigned i = 0; i < num_bits; ++i) errors += decoded[i] != message[i];
  std::cout << "path metric at the flushed state: " << metric[0]
            << " (<= " << flips << " expected)\n"
            << "decoded " << num_bits << " bits with " << errors
            << " errors -> " << (errors == 0 ? "DECODED CORRECTLY" : "RESIDUAL ERRORS")
            << "\n";
  return errors == 0 ? 0 : 1;
}
