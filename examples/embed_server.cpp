// Standalone embed service: an EmbedEngine (or, with --shards > 1, a
// sharded ShardRouter fabric) behind a net::Server, run until
// SIGTERM/SIGINT, then drained gracefully — in-flight solves finish, reply
// buffers flush, and the process exits 0. The CI server-smoke job runs this
// binary, points bench/server_throughput at it, then SIGTERMs it and
// asserts the clean drain.
//
//   ./embed_server --port 4800
//   ./embed_server --port 4800 --shards 4 --replicas 1   # fabric mode
//   ./server_throughput --connect 127.0.0.1:4800 --no-baseline
//
// Flags: --port N           TCP port (default 4800; 0 = ephemeral, printed)
//        --workers N        worker threads (default DBR_THREADS)
//        --max-pending N    admission bound before kOverloaded (default 1024)
//        --timeout-ms F     per-request deadline (default off)
//        --solve-delay-ms F debug solve delay (test/CI hook, default off)
//        --repair           enable incremental session repair
//        --validate         oracle-check every computed answer
//        --shards N         fabric mode: N consistent-hash engine shards
//                           (default 1 = single engine)
//        --replicas N       fabric mode: hot-key replicas (default 1)

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "net/server.hpp"
#include "service/engine.hpp"
#include "service/fabric.hpp"
#include "util/parallel.hpp"

using namespace dbr;
using namespace dbr::net;

namespace {

int usage(const char* arg) {
  std::cerr << "unknown flag: " << arg << "\n"
            << "usage: embed_server [--port N] [--workers N] "
               "[--max-pending N] [--timeout-ms F] [--solve-delay-ms F] "
               "[--repair] [--validate] [--shards N] [--replicas N]\n";
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  options.port = 4800;
  service::EngineOptions engine_options;
  std::size_t shards = 1;
  std::size_t replicas = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--port")
      options.port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--workers")
      options.workers = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-pending")
      options.max_pending = std::strtoull(next(), nullptr, 10);
    else if (arg == "--timeout-ms")
      options.request_timeout_ms = std::strtod(next(), nullptr);
    else if (arg == "--solve-delay-ms")
      options.debug_solve_delay_ms = std::strtod(next(), nullptr);
    else if (arg == "--repair")
      engine_options.incremental_repair = true;
    else if (arg == "--validate")
      engine_options.validate_responses = true;
    else if (arg == "--shards")
      shards = std::strtoull(next(), nullptr, 10);
    else if (arg == "--replicas")
      replicas = std::strtoull(next(), nullptr, 10);
    else
      return usage(argv[i]);
  }

  // Block the shutdown signals *before* any thread spawns, so every server
  // thread inherits the mask and only the sigwait thread ever sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  // Single-engine by default; --shards > 1 stands up the consistent-hash
  // fabric and serves every kSolve through its router instead. The fabric's
  // own worker pools are for its query_batch path; the server's workers
  // drive fabric.query() inline, so per-shard pools stay at 0 here.
  std::unique_ptr<service::EmbedEngine> engine;
  std::unique_ptr<service::ShardRouter> fabric;
  std::unique_ptr<Server> server;
  if (shards > 1) {
    service::FabricOptions fabric_options;
    fabric_options.shards = shards;
    fabric_options.hot_replicas = replicas;
    fabric_options.workers_per_shard = 0;
    fabric_options.engine = engine_options;
    fabric = std::make_unique<service::ShardRouter>(fabric_options);
    server = std::make_unique<Server>(*fabric, options);
  } else {
    engine = std::make_unique<service::EmbedEngine>(engine_options);
    server = std::make_unique<Server>(*engine, options);
  }
  try {
    server->start();
  } catch (const std::exception& e) {
    std::cerr << "embed_server: " << e.what() << "\n";
    return 1;
  }
  std::cout << "embed_server listening on port " << server->port()
            << " (workers=" << (options.workers ? options.workers : worker_count())
            << ", max_pending=" << options.max_pending
            << (fabric ? ", shards=" + std::to_string(shards) : std::string())
            << ")" << std::endl;

  std::thread signal_thread([&] {
    int sig = 0;
    sigwait(&sigs, &sig);
    std::cout << "embed_server: received "
              << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
              << ", draining" << std::endl;
    server->drain();
  });

  server->wait();  // returns once the drain completes
  signal_thread.join();

  const ServerStats stats = server->stats();
  std::cout << "embed_server drained: accepted=" << stats.accepted
            << " solves=" << stats.solves << " frames_in=" << stats.frames_in
            << " frames_out=" << stats.frames_out
            << " overloaded=" << stats.overloaded
            << " timeouts=" << stats.timeouts
            << " bad_frames=" << stats.bad_frames
            << " shutdown_rejects=" << stats.shutdown_rejects << std::endl;
  return 0;
}
