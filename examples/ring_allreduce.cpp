// The paper's whole point, end to end: "allow a faulty De Bruijn network to
// efficiently support algorithms that make use of a ring" (Chapter 1).
//
// This example fails processors in B(2,8), re-embeds the fault-free ring
// with the FFC algorithm, and then runs a classic ring algorithm - a
// ring all-reduce (global sum) - on the surviving machine through the
// message-passing simulator. Every transfer uses only physical De Bruijn
// links (the ring has unit dilation), and completes in |ring| - 1 rounds.
//
//   $ ./ring_allreduce [f]        (default: 4 faults)

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/ffc.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dbr;
  const unsigned f = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;

  const core::FfcSolver solver{DeBruijnDigraph(2, 8)};
  const WordSpace& ws = solver.graph().words();
  Rng rng(99);
  const auto faults = rng.sample_distinct(ws.size(), f);

  std::cout << "B(2,8): 256 processors, " << f << " failed\n";
  const auto result = solver.solve(faults);
  const auto& ring = result.cycle.nodes;
  std::cout << "fault-free ring: " << ring.size() << " processors\n";

  // Each surviving processor contributes value = its own id; the ring
  // all-reduce pipelines partial sums around the embedded cycle.
  std::map<Word, std::size_t> position;
  for (std::size_t i = 0; i < ring.size(); ++i) position[ring[i]] = i;

  sim::Engine engine(ws.size(), [&ws](NodeId u, NodeId v) {
    return ws.suffix(u) == ws.prefix(v);  // physical De Bruijn links only
  });
  for (Word v : faults) engine.kill(v);

  // Round 0: the ring start sends its value; each receiver adds its own and
  // forwards; after |ring| - 1 hops the final node holds the global sum.
  std::uint64_t expected = 0;
  for (Word v : ring) expected += v;

  const Word start = ring.front();
  engine.post(start, ring[1], {start, 1, {start}});
  std::uint64_t global_sum = 0;
  while (!engine.idle()) {
    engine.step([&](NodeId dest, std::vector<sim::Message>& batch) {
      for (const sim::Message& m : batch) {
        const std::uint64_t acc = m.payload[0] + dest;
        const std::size_t pos = position.at(dest);
        if (pos + 1 < ring.size()) {
          engine.post(dest, ring[pos + 1], {dest, 1, {acc}});
        } else {
          global_sum = acc;  // last ring node holds the reduction
        }
      }
    });
  }

  std::cout << "all-reduce finished in " << engine.rounds() << " rounds (= |ring|-1 = "
            << ring.size() - 1 << ")\n";
  std::cout << "global sum = " << global_sum << ", expected = " << expected << " -> "
            << (global_sum == expected ? "CORRECT" : "WRONG") << "\n";
  std::cout << "\nEvery hop used a physical link of the faulty machine: the\n"
               "embedded ring has unit dilation and congestion (Section 1.1).\n";
  return global_sum == expected ? 0 : 1;
}
