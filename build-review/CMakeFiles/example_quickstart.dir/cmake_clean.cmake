file(REMOVE_RECURSE
  "CMakeFiles/example_quickstart.dir/examples/quickstart.cpp.o"
  "CMakeFiles/example_quickstart.dir/examples/quickstart.cpp.o.d"
  "quickstart"
  "quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
