# Empty dependencies file for bench_prop_2_bounds.
# This may be replaced when dependencies are built.
