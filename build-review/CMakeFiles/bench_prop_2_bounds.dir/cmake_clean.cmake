file(REMOVE_RECURSE
  "CMakeFiles/bench_prop_2_bounds.dir/bench/prop_2_bounds.cpp.o"
  "CMakeFiles/bench_prop_2_bounds.dir/bench/prop_2_bounds.cpp.o.d"
  "prop_2_bounds"
  "prop_2_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop_2_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
