# Empty compiler generated dependencies file for test_solve_arena.
# This may be replaced when dependencies are built.
