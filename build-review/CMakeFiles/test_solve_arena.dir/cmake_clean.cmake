file(REMOVE_RECURSE
  "CMakeFiles/test_solve_arena.dir/tests/test_solve_arena.cpp.o"
  "CMakeFiles/test_solve_arena.dir/tests/test_solve_arena.cpp.o.d"
  "test_solve_arena"
  "test_solve_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solve_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
