file(REMOVE_RECURSE
  "CMakeFiles/bench_fabric_throughput.dir/bench/fabric_throughput.cpp.o"
  "CMakeFiles/bench_fabric_throughput.dir/bench/fabric_throughput.cpp.o.d"
  "fabric_throughput"
  "fabric_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fabric_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
