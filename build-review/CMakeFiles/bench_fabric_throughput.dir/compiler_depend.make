# Empty compiler generated dependencies file for bench_fabric_throughput.
# This may be replaced when dependencies are built.
