# Empty dependencies file for test_mod_debruijn.
# This may be replaced when dependencies are built.
