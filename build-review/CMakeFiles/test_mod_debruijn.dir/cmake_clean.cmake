file(REMOVE_RECURSE
  "CMakeFiles/test_mod_debruijn.dir/tests/test_mod_debruijn.cpp.o"
  "CMakeFiles/test_mod_debruijn.dir/tests/test_mod_debruijn.cpp.o.d"
  "test_mod_debruijn"
  "test_mod_debruijn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mod_debruijn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
