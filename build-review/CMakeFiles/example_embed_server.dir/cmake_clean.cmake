file(REMOVE_RECURSE
  "CMakeFiles/example_embed_server.dir/examples/embed_server.cpp.o"
  "CMakeFiles/example_embed_server.dir/examples/embed_server.cpp.o.d"
  "embed_server"
  "embed_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_embed_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
