# Empty dependencies file for example_embed_server.
# This may be replaced when dependencies are built.
