file(REMOVE_RECURSE
  "CMakeFiles/test_numtheory.dir/tests/test_numtheory.cpp.o"
  "CMakeFiles/test_numtheory.dir/tests/test_numtheory.cpp.o.d"
  "test_numtheory"
  "test_numtheory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numtheory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
