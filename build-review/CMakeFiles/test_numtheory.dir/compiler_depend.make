# Empty compiler generated dependencies file for test_numtheory.
# This may be replaced when dependencies are built.
