file(REMOVE_RECURSE
  "CMakeFiles/test_field.dir/tests/test_field.cpp.o"
  "CMakeFiles/test_field.dir/tests/test_field.cpp.o.d"
  "test_field"
  "test_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
