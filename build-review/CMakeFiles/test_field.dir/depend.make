# Empty dependencies file for test_field.
# This may be replaced when dependencies are built.
