file(REMOVE_RECURSE
  "CMakeFiles/bench_prop_3_edge_faults.dir/bench/prop_3_edge_faults.cpp.o"
  "CMakeFiles/bench_prop_3_edge_faults.dir/bench/prop_3_edge_faults.cpp.o.d"
  "prop_3_edge_faults"
  "prop_3_edge_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop_3_edge_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
