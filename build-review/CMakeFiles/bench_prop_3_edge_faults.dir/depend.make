# Empty dependencies file for bench_prop_3_edge_faults.
# This may be replaced when dependencies are built.
