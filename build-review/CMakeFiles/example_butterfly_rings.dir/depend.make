# Empty dependencies file for example_butterfly_rings.
# This may be replaced when dependencies are built.
