file(REMOVE_RECURSE
  "CMakeFiles/example_butterfly_rings.dir/examples/butterfly_rings.cpp.o"
  "CMakeFiles/example_butterfly_rings.dir/examples/butterfly_rings.cpp.o.d"
  "butterfly_rings"
  "butterfly_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_butterfly_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
