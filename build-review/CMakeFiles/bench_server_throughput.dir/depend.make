# Empty dependencies file for bench_server_throughput.
# This may be replaced when dependencies are built.
