file(REMOVE_RECURSE
  "CMakeFiles/bench_server_throughput.dir/bench/server_throughput.cpp.o"
  "CMakeFiles/bench_server_throughput.dir/bench/server_throughput.cpp.o.d"
  "server_throughput"
  "server_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
