file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_3_3_umb.dir/bench/fig_3_3_umb.cpp.o"
  "CMakeFiles/bench_fig_3_3_umb.dir/bench/fig_3_3_umb.cpp.o.d"
  "fig_3_3_umb"
  "fig_3_3_umb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_3_3_umb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
