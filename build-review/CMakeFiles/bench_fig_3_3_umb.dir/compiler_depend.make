# Empty compiler generated dependencies file for bench_fig_3_3_umb.
# This may be replaced when dependencies are built.
