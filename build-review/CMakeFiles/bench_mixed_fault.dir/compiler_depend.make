# Empty compiler generated dependencies file for bench_mixed_fault.
# This may be replaced when dependencies are built.
