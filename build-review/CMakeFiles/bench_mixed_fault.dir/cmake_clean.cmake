file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_fault.dir/bench/mixed_fault.cpp.o"
  "CMakeFiles/bench_mixed_fault.dir/bench/mixed_fault.cpp.o.d"
  "mixed_fault"
  "mixed_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
