# Empty dependencies file for test_necklace_count.
# This may be replaced when dependencies are built.
