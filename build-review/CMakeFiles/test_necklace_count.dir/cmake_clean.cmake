file(REMOVE_RECURSE
  "CMakeFiles/test_necklace_count.dir/tests/test_necklace_count.cpp.o"
  "CMakeFiles/test_necklace_count.dir/tests/test_necklace_count.cpp.o.d"
  "test_necklace_count"
  "test_necklace_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_necklace_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
