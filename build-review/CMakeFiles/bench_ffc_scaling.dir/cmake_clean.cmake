file(REMOVE_RECURSE
  "CMakeFiles/bench_ffc_scaling.dir/bench/ffc_scaling.cpp.o"
  "CMakeFiles/bench_ffc_scaling.dir/bench/ffc_scaling.cpp.o.d"
  "ffc_scaling"
  "ffc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ffc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
