# Empty compiler generated dependencies file for bench_ffc_scaling.
# This may be replaced when dependencies are built.
