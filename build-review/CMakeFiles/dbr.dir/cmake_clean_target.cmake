file(REMOVE_RECURSE
  "libdbr.a"
)
