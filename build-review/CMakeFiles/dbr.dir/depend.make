# Empty dependencies file for dbr.
# This may be replaced when dependencies are built.
