
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/butterfly/butterfly.cpp" "CMakeFiles/dbr.dir/src/butterfly/butterfly.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/butterfly/butterfly.cpp.o.d"
  "/root/repo/src/butterfly/lift.cpp" "CMakeFiles/dbr.dir/src/butterfly/lift.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/butterfly/lift.cpp.o.d"
  "/root/repo/src/core/butterfly_embedding.cpp" "CMakeFiles/dbr.dir/src/core/butterfly_embedding.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/butterfly_embedding.cpp.o.d"
  "/root/repo/src/core/disjoint_hc.cpp" "CMakeFiles/dbr.dir/src/core/disjoint_hc.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/disjoint_hc.cpp.o.d"
  "/root/repo/src/core/distributed_ffc.cpp" "CMakeFiles/dbr.dir/src/core/distributed_ffc.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/distributed_ffc.cpp.o.d"
  "/root/repo/src/core/edge_fault.cpp" "CMakeFiles/dbr.dir/src/core/edge_fault.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/edge_fault.cpp.o.d"
  "/root/repo/src/core/ffc.cpp" "CMakeFiles/dbr.dir/src/core/ffc.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/ffc.cpp.o.d"
  "/root/repo/src/core/instance_context.cpp" "CMakeFiles/dbr.dir/src/core/instance_context.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/instance_context.cpp.o.d"
  "/root/repo/src/core/mixed_fault.cpp" "CMakeFiles/dbr.dir/src/core/mixed_fault.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/mixed_fault.cpp.o.d"
  "/root/repo/src/core/mod_debruijn.cpp" "CMakeFiles/dbr.dir/src/core/mod_debruijn.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/mod_debruijn.cpp.o.d"
  "/root/repo/src/core/repair.cpp" "CMakeFiles/dbr.dir/src/core/repair.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/repair.cpp.o.d"
  "/root/repo/src/core/solve_scratch.cpp" "CMakeFiles/dbr.dir/src/core/solve_scratch.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/core/solve_scratch.cpp.o.d"
  "/root/repo/src/debruijn/cycle.cpp" "CMakeFiles/dbr.dir/src/debruijn/cycle.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/debruijn/cycle.cpp.o.d"
  "/root/repo/src/debruijn/debruijn.cpp" "CMakeFiles/dbr.dir/src/debruijn/debruijn.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/debruijn/debruijn.cpp.o.d"
  "/root/repo/src/debruijn/kautz.cpp" "CMakeFiles/dbr.dir/src/debruijn/kautz.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/debruijn/kautz.cpp.o.d"
  "/root/repo/src/debruijn/necklaces.cpp" "CMakeFiles/dbr.dir/src/debruijn/necklaces.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/debruijn/necklaces.cpp.o.d"
  "/root/repo/src/debruijn/shuffle_exchange.cpp" "CMakeFiles/dbr.dir/src/debruijn/shuffle_exchange.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/debruijn/shuffle_exchange.cpp.o.d"
  "/root/repo/src/gf/field.cpp" "CMakeFiles/dbr.dir/src/gf/field.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/gf/field.cpp.o.d"
  "/root/repo/src/gf/lfsr.cpp" "CMakeFiles/dbr.dir/src/gf/lfsr.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/gf/lfsr.cpp.o.d"
  "/root/repo/src/gf/poly.cpp" "CMakeFiles/dbr.dir/src/gf/poly.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/gf/poly.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "CMakeFiles/dbr.dir/src/graph/digraph.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/euler.cpp" "CMakeFiles/dbr.dir/src/graph/euler.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/graph/euler.cpp.o.d"
  "/root/repo/src/graph/longest_cycle.cpp" "CMakeFiles/dbr.dir/src/graph/longest_cycle.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/graph/longest_cycle.cpp.o.d"
  "/root/repo/src/graph/union_find.cpp" "CMakeFiles/dbr.dir/src/graph/union_find.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/graph/union_find.cpp.o.d"
  "/root/repo/src/hypercube/fault_free_cycle.cpp" "CMakeFiles/dbr.dir/src/hypercube/fault_free_cycle.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/hypercube/fault_free_cycle.cpp.o.d"
  "/root/repo/src/hypercube/hypercube.cpp" "CMakeFiles/dbr.dir/src/hypercube/hypercube.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/hypercube/hypercube.cpp.o.d"
  "/root/repo/src/necklace/count.cpp" "CMakeFiles/dbr.dir/src/necklace/count.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/necklace/count.cpp.o.d"
  "/root/repo/src/net/client.cpp" "CMakeFiles/dbr.dir/src/net/client.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/net/client.cpp.o.d"
  "/root/repo/src/net/server.cpp" "CMakeFiles/dbr.dir/src/net/server.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/net/server.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "CMakeFiles/dbr.dir/src/net/wire.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/net/wire.cpp.o.d"
  "/root/repo/src/nt/numtheory.cpp" "CMakeFiles/dbr.dir/src/nt/numtheory.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/nt/numtheory.cpp.o.d"
  "/root/repo/src/service/cache.cpp" "CMakeFiles/dbr.dir/src/service/cache.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/service/cache.cpp.o.d"
  "/root/repo/src/service/context_cache.cpp" "CMakeFiles/dbr.dir/src/service/context_cache.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/service/context_cache.cpp.o.d"
  "/root/repo/src/service/engine.cpp" "CMakeFiles/dbr.dir/src/service/engine.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/service/engine.cpp.o.d"
  "/root/repo/src/service/fabric.cpp" "CMakeFiles/dbr.dir/src/service/fabric.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/service/fabric.cpp.o.d"
  "/root/repo/src/service/session.cpp" "CMakeFiles/dbr.dir/src/service/session.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/service/session.cpp.o.d"
  "/root/repo/src/service/stats.cpp" "CMakeFiles/dbr.dir/src/service/stats.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/service/stats.cpp.o.d"
  "/root/repo/src/service/types.cpp" "CMakeFiles/dbr.dir/src/service/types.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/service/types.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/dbr.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/sim/engine.cpp.o.d"
  "/root/repo/src/sim/session_driver.cpp" "CMakeFiles/dbr.dir/src/sim/session_driver.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/sim/session_driver.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "CMakeFiles/dbr.dir/src/sim/traffic.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/sim/traffic.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "CMakeFiles/dbr.dir/src/util/parallel.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/util/parallel.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/dbr.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/word.cpp" "CMakeFiles/dbr.dir/src/util/word.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/util/word.cpp.o.d"
  "/root/repo/src/verify/oracle.cpp" "CMakeFiles/dbr.dir/src/verify/oracle.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/verify/oracle.cpp.o.d"
  "/root/repo/src/verify/scenario.cpp" "CMakeFiles/dbr.dir/src/verify/scenario.cpp.o" "gcc" "CMakeFiles/dbr.dir/src/verify/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
