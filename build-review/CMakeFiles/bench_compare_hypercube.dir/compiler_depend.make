# Empty compiler generated dependencies file for bench_compare_hypercube.
# This may be replaced when dependencies are built.
