file(REMOVE_RECURSE
  "CMakeFiles/bench_compare_hypercube.dir/bench/compare_hypercube.cpp.o"
  "CMakeFiles/bench_compare_hypercube.dir/bench/compare_hypercube.cpp.o.d"
  "compare_hypercube"
  "compare_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compare_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
