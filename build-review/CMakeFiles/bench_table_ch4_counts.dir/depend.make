# Empty dependencies file for bench_table_ch4_counts.
# This may be replaced when dependencies are built.
