file(REMOVE_RECURSE
  "CMakeFiles/bench_table_ch4_counts.dir/bench/table_ch4_counts.cpp.o"
  "CMakeFiles/bench_table_ch4_counts.dir/bench/table_ch4_counts.cpp.o.d"
  "table_ch4_counts"
  "table_ch4_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_ch4_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
