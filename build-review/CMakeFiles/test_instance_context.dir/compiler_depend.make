# Empty compiler generated dependencies file for test_instance_context.
# This may be replaced when dependencies are built.
