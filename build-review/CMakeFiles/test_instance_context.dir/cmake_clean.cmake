file(REMOVE_RECURSE
  "CMakeFiles/test_instance_context.dir/tests/test_instance_context.cpp.o"
  "CMakeFiles/test_instance_context.dir/tests/test_instance_context.cpp.o.d"
  "test_instance_context"
  "test_instance_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instance_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
