file(REMOVE_RECURSE
  "CMakeFiles/test_sim_engine.dir/tests/test_sim_engine.cpp.o"
  "CMakeFiles/test_sim_engine.dir/tests/test_sim_engine.cpp.o.d"
  "test_sim_engine"
  "test_sim_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
