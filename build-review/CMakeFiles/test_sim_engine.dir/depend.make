# Empty dependencies file for test_sim_engine.
# This may be replaced when dependencies are built.
