# Empty compiler generated dependencies file for example_distributed_trace.
# This may be replaced when dependencies are built.
