file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_trace.dir/examples/distributed_trace.cpp.o"
  "CMakeFiles/example_distributed_trace.dir/examples/distributed_trace.cpp.o.d"
  "distributed_trace"
  "distributed_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
