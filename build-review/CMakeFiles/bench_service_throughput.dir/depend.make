# Empty dependencies file for bench_service_throughput.
# This may be replaced when dependencies are built.
