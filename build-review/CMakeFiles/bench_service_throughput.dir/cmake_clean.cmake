file(REMOVE_RECURSE
  "CMakeFiles/bench_service_throughput.dir/bench/service_throughput.cpp.o"
  "CMakeFiles/bench_service_throughput.dir/bench/service_throughput.cpp.o.d"
  "service_throughput"
  "service_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
