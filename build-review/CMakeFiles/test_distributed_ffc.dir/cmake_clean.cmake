file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_ffc.dir/tests/test_distributed_ffc.cpp.o"
  "CMakeFiles/test_distributed_ffc.dir/tests/test_distributed_ffc.cpp.o.d"
  "test_distributed_ffc"
  "test_distributed_ffc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_ffc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
