file(REMOVE_RECURSE
  "CMakeFiles/bench_verify_overhead.dir/bench/verify_overhead.cpp.o"
  "CMakeFiles/bench_verify_overhead.dir/bench/verify_overhead.cpp.o.d"
  "verify_overhead"
  "verify_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verify_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
