# Empty dependencies file for bench_verify_overhead.
# This may be replaced when dependencies are built.
