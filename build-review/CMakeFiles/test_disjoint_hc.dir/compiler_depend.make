# Empty compiler generated dependencies file for test_disjoint_hc.
# This may be replaced when dependencies are built.
