file(REMOVE_RECURSE
  "CMakeFiles/test_disjoint_hc.dir/tests/test_disjoint_hc.cpp.o"
  "CMakeFiles/test_disjoint_hc.dir/tests/test_disjoint_hc.cpp.o.d"
  "test_disjoint_hc"
  "test_disjoint_hc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disjoint_hc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
