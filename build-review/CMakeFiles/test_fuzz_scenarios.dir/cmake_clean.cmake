file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_scenarios.dir/tests/test_fuzz_scenarios.cpp.o"
  "CMakeFiles/test_fuzz_scenarios.dir/tests/test_fuzz_scenarios.cpp.o.d"
  "test_fuzz_scenarios"
  "test_fuzz_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
