# Empty dependencies file for test_fuzz_scenarios.
# This may be replaced when dependencies are built.
