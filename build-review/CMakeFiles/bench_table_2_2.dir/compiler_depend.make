# Empty compiler generated dependencies file for bench_table_2_2.
# This may be replaced when dependencies are built.
