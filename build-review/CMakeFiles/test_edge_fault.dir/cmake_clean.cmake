file(REMOVE_RECURSE
  "CMakeFiles/test_edge_fault.dir/tests/test_edge_fault.cpp.o"
  "CMakeFiles/test_edge_fault.dir/tests/test_edge_fault.cpp.o.d"
  "test_edge_fault"
  "test_edge_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
