# Empty compiler generated dependencies file for test_edge_fault.
# This may be replaced when dependencies are built.
