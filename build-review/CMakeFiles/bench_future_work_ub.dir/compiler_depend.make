# Empty compiler generated dependencies file for bench_future_work_ub.
# This may be replaced when dependencies are built.
