file(REMOVE_RECURSE
  "CMakeFiles/bench_future_work_ub.dir/bench/future_work_ub.cpp.o"
  "CMakeFiles/bench_future_work_ub.dir/bench/future_work_ub.cpp.o.d"
  "future_work_ub"
  "future_work_ub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_work_ub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
