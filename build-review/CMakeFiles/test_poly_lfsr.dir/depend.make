# Empty dependencies file for test_poly_lfsr.
# This may be replaced when dependencies are built.
