file(REMOVE_RECURSE
  "CMakeFiles/test_poly_lfsr.dir/tests/test_poly_lfsr.cpp.o"
  "CMakeFiles/test_poly_lfsr.dir/tests/test_poly_lfsr.cpp.o.d"
  "test_poly_lfsr"
  "test_poly_lfsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poly_lfsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
