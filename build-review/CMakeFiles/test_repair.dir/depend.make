# Empty dependencies file for test_repair.
# This may be replaced when dependencies are built.
