file(REMOVE_RECURSE
  "CMakeFiles/test_repair.dir/tests/test_repair.cpp.o"
  "CMakeFiles/test_repair.dir/tests/test_repair.cpp.o.d"
  "test_repair"
  "test_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
