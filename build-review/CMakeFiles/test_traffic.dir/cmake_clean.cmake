file(REMOVE_RECURSE
  "CMakeFiles/test_traffic.dir/tests/test_traffic.cpp.o"
  "CMakeFiles/test_traffic.dir/tests/test_traffic.cpp.o.d"
  "test_traffic"
  "test_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
