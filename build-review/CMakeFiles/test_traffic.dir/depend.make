# Empty dependencies file for test_traffic.
# This may be replaced when dependencies are built.
