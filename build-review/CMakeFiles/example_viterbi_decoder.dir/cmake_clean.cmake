file(REMOVE_RECURSE
  "CMakeFiles/example_viterbi_decoder.dir/examples/viterbi_decoder.cpp.o"
  "CMakeFiles/example_viterbi_decoder.dir/examples/viterbi_decoder.cpp.o.d"
  "viterbi_decoder"
  "viterbi_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_viterbi_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
