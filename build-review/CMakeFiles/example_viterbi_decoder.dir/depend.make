# Empty dependencies file for example_viterbi_decoder.
# This may be replaced when dependencies are built.
