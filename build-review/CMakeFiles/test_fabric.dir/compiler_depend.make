# Empty compiler generated dependencies file for test_fabric.
# This may be replaced when dependencies are built.
