file(REMOVE_RECURSE
  "CMakeFiles/test_fabric.dir/tests/test_fabric.cpp.o"
  "CMakeFiles/test_fabric.dir/tests/test_fabric.cpp.o.d"
  "test_fabric"
  "test_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
