# Empty compiler generated dependencies file for test_se_kautz.
# This may be replaced when dependencies are built.
