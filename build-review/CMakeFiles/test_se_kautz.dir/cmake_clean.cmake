file(REMOVE_RECURSE
  "CMakeFiles/test_se_kautz.dir/tests/test_se_kautz.cpp.o"
  "CMakeFiles/test_se_kautz.dir/tests/test_se_kautz.cpp.o.d"
  "test_se_kautz"
  "test_se_kautz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_se_kautz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
