# Empty dependencies file for example_edge_fault_rings.
# This may be replaced when dependencies are built.
