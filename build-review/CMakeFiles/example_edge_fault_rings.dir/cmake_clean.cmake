file(REMOVE_RECURSE
  "CMakeFiles/example_edge_fault_rings.dir/examples/edge_fault_rings.cpp.o"
  "CMakeFiles/example_edge_fault_rings.dir/examples/edge_fault_rings.cpp.o.d"
  "edge_fault_rings"
  "edge_fault_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_edge_fault_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
