file(REMOVE_RECURSE
  "CMakeFiles/test_context_cache.dir/tests/test_context_cache.cpp.o"
  "CMakeFiles/test_context_cache.dir/tests/test_context_cache.cpp.o.d"
  "test_context_cache"
  "test_context_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
