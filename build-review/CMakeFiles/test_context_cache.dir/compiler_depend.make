# Empty compiler generated dependencies file for test_context_cache.
# This may be replaced when dependencies are built.
