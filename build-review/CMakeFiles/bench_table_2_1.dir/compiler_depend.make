# Empty compiler generated dependencies file for bench_table_2_1.
# This may be replaced when dependencies are built.
