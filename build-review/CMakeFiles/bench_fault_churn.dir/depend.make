# Empty dependencies file for bench_fault_churn.
# This may be replaced when dependencies are built.
