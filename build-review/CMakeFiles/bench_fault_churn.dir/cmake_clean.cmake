file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_churn.dir/bench/fault_churn.cpp.o"
  "CMakeFiles/bench_fault_churn.dir/bench/fault_churn.cpp.o.d"
  "fault_churn"
  "fault_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
