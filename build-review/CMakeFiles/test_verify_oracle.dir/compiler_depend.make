# Empty compiler generated dependencies file for test_verify_oracle.
# This may be replaced when dependencies are built.
