file(REMOVE_RECURSE
  "CMakeFiles/test_verify_oracle.dir/tests/test_verify_oracle.cpp.o"
  "CMakeFiles/test_verify_oracle.dir/tests/test_verify_oracle.cpp.o.d"
  "test_verify_oracle"
  "test_verify_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
