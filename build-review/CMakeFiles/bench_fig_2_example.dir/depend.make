# Empty dependencies file for bench_fig_2_example.
# This may be replaced when dependencies are built.
