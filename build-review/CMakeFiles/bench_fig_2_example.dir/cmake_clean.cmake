file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_2_example.dir/bench/fig_2_example.cpp.o"
  "CMakeFiles/bench_fig_2_example.dir/bench/fig_2_example.cpp.o.d"
  "fig_2_example"
  "fig_2_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_2_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
