# Empty dependencies file for bench_table_3_1.
# This may be replaced when dependencies are built.
