file(REMOVE_RECURSE
  "CMakeFiles/bench_table_3_1.dir/bench/table_3_1.cpp.o"
  "CMakeFiles/bench_table_3_1.dir/bench/table_3_1.cpp.o.d"
  "table_3_1"
  "table_3_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_3_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
