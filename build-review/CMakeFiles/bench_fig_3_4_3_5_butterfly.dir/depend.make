# Empty dependencies file for bench_fig_3_4_3_5_butterfly.
# This may be replaced when dependencies are built.
