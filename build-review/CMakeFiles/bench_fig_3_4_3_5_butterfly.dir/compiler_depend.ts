# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig_3_4_3_5_butterfly.
