file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_3_4_3_5_butterfly.dir/bench/fig_3_4_3_5_butterfly.cpp.o"
  "CMakeFiles/bench_fig_3_4_3_5_butterfly.dir/bench/fig_3_4_3_5_butterfly.cpp.o.d"
  "fig_3_4_3_5_butterfly"
  "fig_3_4_3_5_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_3_4_3_5_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
