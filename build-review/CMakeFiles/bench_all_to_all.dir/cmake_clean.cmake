file(REMOVE_RECURSE
  "CMakeFiles/bench_all_to_all.dir/bench/all_to_all.cpp.o"
  "CMakeFiles/bench_all_to_all.dir/bench/all_to_all.cpp.o.d"
  "all_to_all"
  "all_to_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_all_to_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
