# Empty dependencies file for bench_all_to_all.
# This may be replaced when dependencies are built.
