# Empty dependencies file for example_service_demo.
# This may be replaced when dependencies are built.
