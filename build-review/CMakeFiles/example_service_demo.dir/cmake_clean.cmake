file(REMOVE_RECURSE
  "CMakeFiles/example_service_demo.dir/examples/service_demo.cpp.o"
  "CMakeFiles/example_service_demo.dir/examples/service_demo.cpp.o.d"
  "service_demo"
  "service_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_service_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
