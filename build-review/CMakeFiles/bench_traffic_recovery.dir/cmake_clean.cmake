file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic_recovery.dir/bench/traffic_recovery.cpp.o"
  "CMakeFiles/bench_traffic_recovery.dir/bench/traffic_recovery.cpp.o.d"
  "traffic_recovery"
  "traffic_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
