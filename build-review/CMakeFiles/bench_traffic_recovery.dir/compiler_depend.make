# Empty compiler generated dependencies file for bench_traffic_recovery.
# This may be replaced when dependencies are built.
