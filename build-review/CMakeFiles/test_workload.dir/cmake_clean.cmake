file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/tests/test_workload.cpp.o"
  "CMakeFiles/test_workload.dir/tests/test_workload.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
