# Empty compiler generated dependencies file for test_workload.
# This may be replaced when dependencies are built.
