file(REMOVE_RECURSE
  "CMakeFiles/test_ffc.dir/tests/test_ffc.cpp.o"
  "CMakeFiles/test_ffc.dir/tests/test_ffc.cpp.o.d"
  "test_ffc"
  "test_ffc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ffc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
