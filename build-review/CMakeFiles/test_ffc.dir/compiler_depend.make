# Empty compiler generated dependencies file for test_ffc.
# This may be replaced when dependencies are built.
