file(REMOVE_RECURSE
  "CMakeFiles/example_necklace_census.dir/examples/necklace_census.cpp.o"
  "CMakeFiles/example_necklace_census.dir/examples/necklace_census.cpp.o.d"
  "necklace_census"
  "necklace_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_necklace_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
