# Empty compiler generated dependencies file for example_necklace_census.
# This may be replaced when dependencies are built.
