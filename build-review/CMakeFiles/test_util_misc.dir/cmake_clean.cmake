file(REMOVE_RECURSE
  "CMakeFiles/test_util_misc.dir/tests/test_util_misc.cpp.o"
  "CMakeFiles/test_util_misc.dir/tests/test_util_misc.cpp.o.d"
  "test_util_misc"
  "test_util_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
