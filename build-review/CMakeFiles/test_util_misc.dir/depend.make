# Empty dependencies file for test_util_misc.
# This may be replaced when dependencies are built.
