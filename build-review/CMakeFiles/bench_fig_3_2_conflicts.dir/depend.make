# Empty dependencies file for bench_fig_3_2_conflicts.
# This may be replaced when dependencies are built.
