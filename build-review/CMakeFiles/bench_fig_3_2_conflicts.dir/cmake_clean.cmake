file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_3_2_conflicts.dir/bench/fig_3_2_conflicts.cpp.o"
  "CMakeFiles/bench_fig_3_2_conflicts.dir/bench/fig_3_2_conflicts.cpp.o.d"
  "fig_3_2_conflicts"
  "fig_3_2_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_3_2_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
