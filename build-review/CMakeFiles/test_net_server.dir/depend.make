# Empty dependencies file for test_net_server.
# This may be replaced when dependencies are built.
