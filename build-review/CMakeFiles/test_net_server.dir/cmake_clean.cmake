file(REMOVE_RECURSE
  "CMakeFiles/test_net_server.dir/tests/test_net_server.cpp.o"
  "CMakeFiles/test_net_server.dir/tests/test_net_server.cpp.o.d"
  "test_net_server"
  "test_net_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
