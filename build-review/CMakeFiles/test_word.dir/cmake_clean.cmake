file(REMOVE_RECURSE
  "CMakeFiles/test_word.dir/tests/test_word.cpp.o"
  "CMakeFiles/test_word.dir/tests/test_word.cpp.o.d"
  "test_word"
  "test_word.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_word.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
