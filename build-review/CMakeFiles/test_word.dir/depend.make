# Empty dependencies file for test_word.
# This may be replaced when dependencies are built.
