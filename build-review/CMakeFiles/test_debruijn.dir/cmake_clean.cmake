file(REMOVE_RECURSE
  "CMakeFiles/test_debruijn.dir/tests/test_debruijn.cpp.o"
  "CMakeFiles/test_debruijn.dir/tests/test_debruijn.cpp.o.d"
  "test_debruijn"
  "test_debruijn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_debruijn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
