# Empty dependencies file for test_debruijn.
# This may be replaced when dependencies are built.
