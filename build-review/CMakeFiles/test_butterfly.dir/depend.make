# Empty dependencies file for test_butterfly.
# This may be replaced when dependencies are built.
