file(REMOVE_RECURSE
  "CMakeFiles/test_butterfly.dir/tests/test_butterfly.cpp.o"
  "CMakeFiles/test_butterfly.dir/tests/test_butterfly.cpp.o.d"
  "test_butterfly"
  "test_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
