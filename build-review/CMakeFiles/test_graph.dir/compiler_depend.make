# Empty compiler generated dependencies file for test_graph.
# This may be replaced when dependencies are built.
