file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/tests/test_graph.cpp.o"
  "CMakeFiles/test_graph.dir/tests/test_graph.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
