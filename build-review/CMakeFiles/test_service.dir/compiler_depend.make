# Empty compiler generated dependencies file for test_service.
# This may be replaced when dependencies are built.
