file(REMOVE_RECURSE
  "CMakeFiles/test_service.dir/tests/test_service.cpp.o"
  "CMakeFiles/test_service.dir/tests/test_service.cpp.o.d"
  "test_service"
  "test_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
