# Empty dependencies file for example_service_client.
# This may be replaced when dependencies are built.
