file(REMOVE_RECURSE
  "CMakeFiles/example_service_client.dir/examples/service_client.cpp.o"
  "CMakeFiles/example_service_client.dir/examples/service_client.cpp.o.d"
  "service_client"
  "service_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_service_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
