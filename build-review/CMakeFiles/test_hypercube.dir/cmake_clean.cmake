file(REMOVE_RECURSE
  "CMakeFiles/test_hypercube.dir/tests/test_hypercube.cpp.o"
  "CMakeFiles/test_hypercube.dir/tests/test_hypercube.cpp.o.d"
  "test_hypercube"
  "test_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
