# Empty dependencies file for test_hypercube.
# This may be replaced when dependencies are built.
