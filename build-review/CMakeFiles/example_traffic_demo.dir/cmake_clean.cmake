file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_demo.dir/examples/traffic_demo.cpp.o"
  "CMakeFiles/example_traffic_demo.dir/examples/traffic_demo.cpp.o.d"
  "traffic_demo"
  "traffic_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
