# Empty compiler generated dependencies file for example_traffic_demo.
# This may be replaced when dependencies are built.
