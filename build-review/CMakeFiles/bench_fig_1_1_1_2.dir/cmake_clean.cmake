file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_1_1_1_2.dir/bench/fig_1_1_1_2.cpp.o"
  "CMakeFiles/bench_fig_1_1_1_2.dir/bench/fig_1_1_1_2.cpp.o.d"
  "fig_1_1_1_2"
  "fig_1_1_1_2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_1_1_1_2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
