# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig_1_1_1_2.
