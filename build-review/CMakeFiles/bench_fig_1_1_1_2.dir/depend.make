# Empty dependencies file for bench_fig_1_1_1_2.
# This may be replaced when dependencies are built.
