file(REMOVE_RECURSE
  "CMakeFiles/test_session.dir/tests/test_session.cpp.o"
  "CMakeFiles/test_session.dir/tests/test_session.cpp.o.d"
  "test_session"
  "test_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
