# Empty dependencies file for test_session.
# This may be replaced when dependencies are built.
