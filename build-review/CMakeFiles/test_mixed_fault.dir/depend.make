# Empty dependencies file for test_mixed_fault.
# This may be replaced when dependencies are built.
