file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_fault.dir/tests/test_mixed_fault.cpp.o"
  "CMakeFiles/test_mixed_fault.dir/tests/test_mixed_fault.cpp.o.d"
  "test_mixed_fault"
  "test_mixed_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
