# Empty dependencies file for bench_ablation_strategies.
# This may be replaced when dependencies are built.
