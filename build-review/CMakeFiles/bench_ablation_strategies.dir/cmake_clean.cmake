file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_strategies.dir/bench/ablation_strategies.cpp.o"
  "CMakeFiles/bench_ablation_strategies.dir/bench/ablation_strategies.cpp.o.d"
  "ablation_strategies"
  "ablation_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
