file(REMOVE_RECURSE
  "CMakeFiles/example_ring_allreduce.dir/examples/ring_allreduce.cpp.o"
  "CMakeFiles/example_ring_allreduce.dir/examples/ring_allreduce.cpp.o.d"
  "ring_allreduce"
  "ring_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ring_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
