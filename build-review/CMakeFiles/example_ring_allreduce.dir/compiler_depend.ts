# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_ring_allreduce.
