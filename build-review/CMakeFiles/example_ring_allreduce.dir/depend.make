# Empty dependencies file for example_ring_allreduce.
# This may be replaced when dependencies are built.
