# Empty compiler generated dependencies file for bench_prop_3_butterfly.
# This may be replaced when dependencies are built.
