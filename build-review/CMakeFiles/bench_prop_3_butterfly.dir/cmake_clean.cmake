file(REMOVE_RECURSE
  "CMakeFiles/bench_prop_3_butterfly.dir/bench/prop_3_butterfly.cpp.o"
  "CMakeFiles/bench_prop_3_butterfly.dir/bench/prop_3_butterfly.cpp.o.d"
  "prop_3_butterfly"
  "prop_3_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop_3_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
