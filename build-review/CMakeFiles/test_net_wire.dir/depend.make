# Empty dependencies file for test_net_wire.
# This may be replaced when dependencies are built.
