file(REMOVE_RECURSE
  "CMakeFiles/test_net_wire.dir/tests/test_net_wire.cpp.o"
  "CMakeFiles/test_net_wire.dir/tests/test_net_wire.cpp.o.d"
  "test_net_wire"
  "test_net_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
