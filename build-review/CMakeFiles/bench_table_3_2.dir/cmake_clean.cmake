file(REMOVE_RECURSE
  "CMakeFiles/bench_table_3_2.dir/bench/table_3_2.cpp.o"
  "CMakeFiles/bench_table_3_2.dir/bench/table_3_2.cpp.o.d"
  "table_3_2"
  "table_3_2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_3_2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
