#include <gtest/gtest.h>

#include <set>

#include "gf/field.hpp"
#include "gf/lfsr.hpp"
#include "gf/poly.hpp"
#include "util/require.hpp"

namespace dbr::gf {
namespace {

TEST(Poly, BasicArithmetic) {
  const Field f(5);
  const Poly a{{1, 2}};      // 2x + 1
  const Poly b{{4, 3, 1}};   // x^2 + 3x + 4
  EXPECT_EQ(poly_add(f, a, b), (Poly{{0, 0, 1}}));
  EXPECT_EQ(poly_mul(f, a, b).coeffs, (std::vector<Field::Elem>{4, 1, 2, 2}));
  EXPECT_EQ(poly_sub(f, b, b), Poly{});
  EXPECT_EQ(poly_mul(f, a, Poly{}), Poly{});
}

TEST(Poly, EvalHorner) {
  const Field f(7);
  const Poly p{{3, 0, 1}};  // x^2 + 3
  EXPECT_EQ(poly_eval(f, p, 0), 3u);
  EXPECT_EQ(poly_eval(f, p, 2), 0u);  // 4 + 3 = 7 = 0
  EXPECT_EQ(poly_eval(f, p, 3), 5u);  // 9 + 3 = 12 = 5
}

TEST(Poly, ModAndGcd) {
  const Field f(5);
  const Poly m{{2, 4, 1}};  // x^2 + 4x + 2 = x^2 - x - 3 (Example 3.1)
  const Poly x3 = poly_powmod(f, poly_x(), 3, m);
  // x^2 = x + 3 (mod m); x^3 = x^2 + 3x = 4x + 3.
  EXPECT_EQ(x3.coeffs, (std::vector<Field::Elem>{3, 4}));
  // gcd of m with a multiple of itself is m (monic-normalized).
  const Poly mult = poly_mul(f, m, Poly{{1, 1}});
  EXPECT_EQ(poly_gcd(f, m, mult), m);
}

TEST(Poly, IrreducibilityBinary) {
  const Field f(2);
  EXPECT_TRUE(is_irreducible(f, Poly{{1, 1, 1}}));        // x^2+x+1
  EXPECT_FALSE(is_irreducible(f, Poly{{1, 0, 1}}));       // x^2+1 = (x+1)^2
  EXPECT_TRUE(is_irreducible(f, Poly{{1, 1, 0, 1}}));     // x^3+x+1
  EXPECT_TRUE(is_irreducible(f, Poly{{1, 0, 1, 1}}));     // x^3+x^2+1
  EXPECT_FALSE(is_irreducible(f, Poly{{1, 0, 0, 1}}));    // x^3+1
  EXPECT_TRUE(is_irreducible(f, Poly{{1, 1, 0, 0, 1}}));  // x^4+x+1
  // x^4+x^3+x^2+x+1 is irreducible (5th cyclotomic) but has order 5 < 15,
  // so it is not primitive: irreducibility does not imply primitivity.
  EXPECT_TRUE(is_irreducible(f, Poly{{1, 1, 1, 1, 1}}));
  EXPECT_FALSE(is_primitive(f, Poly{{1, 1, 1, 1, 1}}));
}

TEST(Poly, IrreducibleCountsMatchTheory) {
  // The number of monic irreducible polynomials of degree n over GF(q) is
  // (1/n) sum_{j|n} mu(n/j) q^j. Spot-check a few (q, n) pairs by scanning.
  struct Case {
    std::uint64_t q;
    unsigned n;
    std::uint64_t expected;
  };
  for (const Case& c : {Case{2, 2, 1}, Case{2, 3, 2}, Case{2, 4, 3}, Case{2, 5, 6},
                        Case{3, 2, 3}, Case{3, 3, 8}, Case{5, 2, 10}, Case{4, 2, 6}}) {
    const Field f(c.q);
    std::uint64_t total = 1;
    for (unsigned i = 0; i < c.n; ++i) total *= c.q;
    std::uint64_t count = 0;
    for (std::uint64_t code = 0; code < total; ++code) {
      std::vector<Field::Elem> coeffs(c.n + 1, 0);
      coeffs[c.n] = 1;
      std::uint64_t v = code;
      for (unsigned i = 0; i < c.n; ++i) {
        coeffs[i] = static_cast<Field::Elem>(v % c.q);
        v /= c.q;
      }
      if (is_irreducible(f, Poly{coeffs})) ++count;
    }
    EXPECT_EQ(count, c.expected) << "q=" << c.q << " n=" << c.n;
  }
}

TEST(Poly, PrimitivityExample31) {
  // Example 3.1: x^2 - x - 3 is primitive over GF(5).
  const Field f(5);
  const Poly p{{2, 4, 1}};  // -3 = 2, -1 = 4
  EXPECT_TRUE(is_primitive(f, p));
  // x^2 + 1 over GF(5): irreducible? x^2+1 has roots 2,3 mod 5 -> reducible.
  EXPECT_FALSE(is_primitive(f, Poly{{1, 0, 1}}));
  // x^2 + 2 is irreducible over GF(5) but has order 8 < 24: not primitive.
  EXPECT_TRUE(is_irreducible(f, Poly{{2, 0, 1}}));
  EXPECT_FALSE(is_primitive(f, Poly{{2, 0, 1}}));
}

TEST(Poly, PrimitivityExample32) {
  // Example 3.2: x^2 - x - z is primitive over GF(4), where z = 2.
  const Field f(4);
  const Poly p{{2, 1, 1}};  // -z = z (char 2), -1 = 1
  EXPECT_TRUE(is_primitive(f, p));
}

class PrimitiveSearch
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(PrimitiveSearch, FindsPrimitiveOfRequestedDegree) {
  const auto [q, n] = GetParam();
  const Field f(q);
  const Poly p = find_primitive_poly(f, n);
  EXPECT_EQ(p.degree(), static_cast<int>(n));
  EXPECT_TRUE(is_primitive(f, p));
}

INSTANTIATE_TEST_SUITE_P(
    Fields, PrimitiveSearch,
    ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 3},
                      std::pair<std::uint64_t, unsigned>{2, 10},
                      std::pair<std::uint64_t, unsigned>{3, 5},
                      std::pair<std::uint64_t, unsigned>{4, 3},
                      std::pair<std::uint64_t, unsigned>{5, 2},
                      std::pair<std::uint64_t, unsigned>{7, 2},
                      std::pair<std::uint64_t, unsigned>{8, 2},
                      std::pair<std::uint64_t, unsigned>{9, 2},
                      std::pair<std::uint64_t, unsigned>{13, 2},
                      std::pair<std::uint64_t, unsigned>{16, 2}),
    [](const auto& pinfo) {
      return "GF" + std::to_string(pinfo.param.first) + "deg" +
             std::to_string(pinfo.param.second);
    });

TEST(Lfsr, Example31GoldenSequence) {
  // Example 3.1: s_{2+i} = s_{1+i} + 3 s_i over GF(5), s0 = 0, s1 = 1 gives
  // the maximal cycle [0,1,1,4,2,4,0,2,2,3,4,3,0,4,4,1,3,1,0,3,3,2,1,2].
  const Field f(5);
  const Lfsr lfsr(f, {3, 1});
  const auto seq = lfsr.period_sequence({0, 1});
  const std::vector<Field::Elem> expected{0, 1, 1, 4, 2, 4, 0, 2, 2, 3, 4, 3,
                                          0, 4, 4, 1, 3, 1, 0, 3, 3, 2, 1, 2};
  EXPECT_EQ(seq, expected);
}

TEST(Lfsr, Example31CharacteristicPolynomial) {
  const Field f(5);
  const Lfsr lfsr(f, {3, 1});
  EXPECT_EQ(lfsr.characteristic_polynomial(), (Poly{{2, 4, 1}}));
  EXPECT_EQ(lfsr.omega(), 4u);  // a0 + a1 = 3 + 1
}

TEST(Lfsr, Example32GF4Sequence) {
  // Example 3.2: c_{2+i} = c_{1+i} + z c_i over GF(4) with z = 2 gives a
  // period-15 sequence; verified against a hand-computed expansion.
  const Field f(4);
  const Field::Elem z = 2, z2 = 3;
  const Lfsr lfsr(f, {z, 1});
  const auto seq = lfsr.period_sequence({0, 1});
  const std::vector<Field::Elem> expected{0, 1, 1, z2, 1, 0, z, z, 1, z, 0, z2, z2, z, z2};
  EXPECT_EQ(seq, expected);
}

TEST(Lfsr, MaximalPeriodForPrimitivePolynomials) {
  // A primitive characteristic polynomial of degree n over GF(q) yields
  // period q^n - 1 from any nonzero start (Section 3.1).
  for (std::uint64_t q : {2ull, 3ull, 4ull, 5ull, 7ull, 9ull}) {
    const Field f(q);
    for (unsigned n : {2u, 3u}) {
      const Poly p = find_primitive_poly(f, n);
      const Lfsr lfsr(f, taps_from_characteristic(f, p));
      std::vector<Field::Elem> init(n, 0);
      init[n - 1] = 1;
      const auto seq = lfsr.period_sequence(init);
      std::uint64_t expect = 1;
      for (unsigned i = 0; i < n; ++i) expect *= q;
      EXPECT_EQ(seq.size(), expect - 1) << "q=" << q << " n=" << n;
    }
  }
}

TEST(Lfsr, MaximalSequenceWindowsAreAllNonzeroTuples) {
  // Every nonzero n-tuple appears exactly once as a window: the sequence is
  // a cycle through all nodes of B(q,n) except 0^n.
  const Field f(3);
  const unsigned n = 4;
  const Poly p = find_primitive_poly(f, n);
  const Lfsr lfsr(f, taps_from_characteristic(f, p));
  const auto seq = lfsr.period_sequence({0, 0, 0, 1});
  ASSERT_EQ(seq.size(), 80u);
  std::set<std::uint64_t> windows;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::uint64_t w = 0;
    for (unsigned j = 0; j < n; ++j) w = w * 3 + seq[(i + j) % seq.size()];
    windows.insert(w);
  }
  EXPECT_EQ(windows.size(), 80u);
  EXPECT_FALSE(windows.contains(0));
}

TEST(Lfsr, AffineOffsetShiftsSequence) {
  // Lemma 3.2: the shifted cycle s + C satisfies the affine recurrence with
  // offset s(1 - omega). Generate both and compare elementwise.
  const Field f(5);
  const Lfsr base(f, {3, 1});
  const auto c = base.period_sequence({0, 1});
  for (Field::Elem s = 1; s < 5; ++s) {
    const Field::Elem offset = f.mul(s, f.sub(1, base.omega()));
    const Lfsr shifted(f, {3, 1}, offset);
    const auto d = shifted.period_sequence({s, f.add(1, s)});
    ASSERT_EQ(d.size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(d[i], f.add(c[i], s));
    }
  }
}

TEST(Lfsr, RejectsZeroLowTap) {
  const Field f(5);
  EXPECT_THROW(Lfsr(f, {0, 1}), precondition_error);
  EXPECT_THROW(Lfsr(f, {}), precondition_error);
}

}  // namespace
}  // namespace dbr::gf
